"""Unit tests for the graph-analysis kernels (validated against networkx)."""

import networkx as nx
import numpy as np
import pytest

from repro.errors import ConvergenceError
from repro.generators import (
    complete_graph,
    path_graph,
    planted_partition_graph,
    ring_of_cliques,
    rmat_graph,
    star_graph,
)
from repro.graph import from_edges, to_networkx
from repro.kernels import (
    bfs_distances,
    core_numbers,
    eccentricity_lower_bound,
    global_clustering_coefficient,
    local_clustering_coefficients,
    pagerank,
    triangle_counts,
)


class TestBFS:
    def test_path_distances(self):
        g = path_graph(5)
        np.testing.assert_array_equal(bfs_distances(g, 0), [0, 1, 2, 3, 4])
        np.testing.assert_array_equal(bfs_distances(g, 2), [2, 1, 0, 1, 2])

    def test_unreachable(self):
        g = from_edges(np.array([0]), np.array([1]), n_vertices=4)
        dist = bfs_distances(g, 0)
        assert dist[1] == 1
        assert dist[2] == -1 and dist[3] == -1

    def test_star(self):
        g = star_graph(5)
        dist = bfs_distances(g, 1)  # a leaf
        assert dist[0] == 1
        assert all(dist[k] == 2 for k in range(2, 6))

    def test_source_validated(self, karate):
        with pytest.raises(ValueError):
            bfs_distances(karate, 99)

    @pytest.mark.parametrize("seed", range(3))
    def test_against_networkx(self, random_graph_factory, seed):
        g = random_graph_factory(n=30, m=60, seed=seed)
        dist = bfs_distances(g, 0)
        ref = nx.single_source_shortest_path_length(to_networkx(g), 0)
        for v in range(g.n_vertices):
            assert dist[v] == ref.get(v, -1)

    def test_eccentricity_bound_path(self):
        g = path_graph(10)
        assert eccentricity_lower_bound(g, source=5) == 9  # finds diameter

    def test_eccentricity_validation(self, karate):
        with pytest.raises(ValueError):
            eccentricity_lower_bound(karate, sweeps=0)


class TestTriangles:
    def test_triangle_graph(self):
        g = complete_graph(3)
        np.testing.assert_array_equal(triangle_counts(g), [1, 1, 1])

    def test_k5(self):
        g = complete_graph(5)
        # Each vertex is in C(4,2) = 6 triangles.
        np.testing.assert_array_equal(triangle_counts(g), [6] * 5)

    def test_path_has_none(self):
        assert triangle_counts(path_graph(6)).sum() == 0

    def test_against_networkx(self, karate):
        tri = triangle_counts(karate)
        ref = nx.triangles(to_networkx(karate))
        for v in range(34):
            assert tri[v] == ref[v]

    def test_local_clustering_against_networkx(self, karate):
        ours = local_clustering_coefficients(karate)
        ref = nx.clustering(to_networkx(karate))
        for v in range(34):
            assert ours[v] == pytest.approx(ref[v])

    def test_global_clustering_against_networkx(self, karate):
        assert global_clustering_coefficient(karate) == pytest.approx(
            nx.transitivity(to_networkx(karate))
        )

    def test_rmat_lacks_community_structure(self):
        """[36]'s observation, cited by the paper: R-MAT clustering is low
        compared to a genuinely community-structured graph."""
        rmat_cc = global_clustering_coefficient(rmat_graph(9, 8, seed=0))
        planted_cc = global_clustering_coefficient(
            planted_partition_graph(600, seed=0)
        )
        assert planted_cc > 2 * rmat_cc

    def test_empty(self):
        g = from_edges(np.empty(0, int), np.empty(0, int), n_vertices=3)
        assert triangle_counts(g).sum() == 0
        assert global_clustering_coefficient(g) == 0.0


class TestKCore:
    def test_triangle_with_tail(self):
        g = from_edges(
            np.array([0, 0, 1, 2]), np.array([1, 2, 2, 3])
        )
        np.testing.assert_array_equal(core_numbers(g), [2, 2, 2, 1])

    def test_clique_core(self):
        g = complete_graph(6)
        np.testing.assert_array_equal(core_numbers(g), [5] * 6)

    def test_against_networkx(self, karate):
        ours = core_numbers(karate)
        ref = nx.core_number(to_networkx(karate))
        for v in range(34):
            assert ours[v] == ref[v]

    @pytest.mark.parametrize("seed", range(3))
    def test_random_against_networkx(self, random_graph_factory, seed):
        g = random_graph_factory(n=40, m=120, seed=seed, weighted=False)
        ours = core_numbers(g)
        nxg = to_networkx(g)
        nxg.remove_edges_from(nx.selfloop_edges(nxg))
        ref = nx.core_number(nxg)
        for v in range(g.n_vertices):
            assert ours[v] == ref.get(v, 0)

    def test_isolated_vertices_zero(self):
        g = from_edges(np.array([0]), np.array([1]), n_vertices=4)
        cores = core_numbers(g)
        assert cores[2] == 0 and cores[3] == 0

    def test_empty(self):
        g = from_edges(np.empty(0, int), np.empty(0, int), n_vertices=2)
        np.testing.assert_array_equal(core_numbers(g), [0, 0])


class TestPageRank:
    def test_sums_to_one(self, karate):
        assert pagerank(karate).sum() == pytest.approx(1.0)

    def test_against_networkx(self, karate):
        ours = pagerank(karate, tol=1e-12)
        ref = nx.pagerank(
            to_networkx(karate), alpha=0.85, weight="weight", tol=1e-12
        )
        np.testing.assert_allclose(
            ours, [ref[v] for v in range(34)], atol=1e-8
        )

    def test_star_hub_ranks_highest(self):
        g = star_graph(8)
        pr = pagerank(g)
        assert pr.argmax() == 0

    def test_symmetric_regular_graph_uniform(self):
        g = ring_of_cliques(4, 4)
        # Not regular (link vertices differ) but a clique is:
        g2 = complete_graph(5)
        pr = pagerank(g2)
        np.testing.assert_allclose(pr, 0.2)

    def test_weighted_influence(self):
        # Vertex 1 heavily tied to 0: ranks above 2.
        g = from_edges(np.array([0, 0]), np.array([1, 2]), np.array([10.0, 1.0]))
        pr = pagerank(g)
        assert pr[1] > pr[2]

    def test_damping_validated(self, karate):
        with pytest.raises(ValueError):
            pagerank(karate, damping=1.0)

    def test_convergence_error(self, karate):
        with pytest.raises(ConvergenceError):
            pagerank(karate, tol=1e-16, max_iter=2)

    def test_empty(self):
        g = from_edges(np.empty(0, int), np.empty(0, int), n_vertices=0)
        assert len(pagerank(g)) == 0
