"""At-rest corruption sweep across every ``atomic_write`` consumer.

The ``atomic_write_faults`` fixture (conftest) corrupts files *after*
they commit — a torn truncation or a flipped byte — modeling the bit
rot and partial-sector loss the rename protocol cannot prevent.  Every
durable artifact in the tree must then fail *loudly and recoverably*
on reload: a typed error, a quarantine, or a discarded merge — never a
crash, a hang, or silently-wrong data.
"""

import json

import numpy as np
import pytest

from repro.errors import CheckpointError, ReproError, SpillError
from repro.metrics import Partition
from repro.obs import Tracer, read_trace, write_trace
from repro.obs.telemetry import TelemetrySampler, read_status
from repro.resilience import CheckpointManager, CheckpointState
from repro.spmatrix.spill import read_spill, write_spill
from repro.stream.delta import EdgeStore
from repro.stream.store import ServiceState, SnapshotStore
from repro.types import VERTEX_DTYPE


# --------------------------------------------------------------- fixture
class TestFixtureSemantics:
    def test_torn_truncates_once(self, tmp_path, atomic_write_faults):
        from repro.util.atomicio import atomic_write_text

        atomic_write_faults.torn("victim", keep=0.5)
        p = atomic_write_text(tmp_path / "victim.json", "x" * 100)
        assert len(p.read_bytes()) == 50
        # One-shot: a rewrite commits clean.
        atomic_write_text(tmp_path / "victim.json", "y" * 100)
        assert len(p.read_bytes()) == 100

    def test_bitflip_changes_one_byte(self, tmp_path, atomic_write_faults):
        from repro.util.atomicio import atomic_write_bytes

        atomic_write_faults.bitflip("blob", offset=3)
        p = atomic_write_bytes(tmp_path / "blob.bin", bytes(range(10)))
        data = p.read_bytes()
        assert data[3] == 3 ^ 0xFF
        assert bytes(data[:3]) == bytes(range(3))

    def test_unmatched_paths_untouched(self, tmp_path, atomic_write_faults):
        from repro.util.atomicio import atomic_write_text

        atomic_write_faults.torn("nomatch")
        p = atomic_write_text(tmp_path / "clean.txt", "intact")
        assert p.read_text() == "intact"
        assert atomic_write_faults.corrupted == []


# ------------------------------------------------------------ checkpoints
def _ckpt_state(graph, level=0):
    # Identity maps keep the composed community count equal to the graph
    # size, so the state passes semantic validation and any load failure
    # below is attributable to the injected corruption alone.
    return CheckpointState(
        level=level,
        graph=graph,
        maps=[
            np.arange(graph.n_vertices, dtype=VERTEX_DTYPE)
            for _ in range(level)
        ],
        member_counts=np.ones(graph.n_vertices, dtype=VERTEX_DTYPE),
        level_stats=[{"level": k} for k in range(level)],
        scorer_name="modularity",
    )


class TestCheckpointCorruption:
    def test_control_both_levels_load_clean(self, karate, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(_ckpt_state(karate, level=0))
        manager.save(_ckpt_state(karate, level=1))
        state, n_invalid = manager.load_latest()
        assert n_invalid == 0
        assert state is not None and state.level == 1

    # A flip at offset 0 breaks the first local-header magic of the zip
    # container, which every ``np.load`` checks — unlike a mid-file flip,
    # which can land in inter-member slack the reader never touches.
    @pytest.mark.parametrize(
        "mode,kwargs", [("torn", {}), ("bitflip", {"offset": 0})]
    )
    def test_quarantined_and_older_survives(
        self, karate, tmp_path, atomic_write_faults, mode, kwargs
    ):
        manager = CheckpointManager(tmp_path)
        manager.save(_ckpt_state(karate, level=0))
        getattr(atomic_write_faults, mode)("level_00001", **kwargs)
        manager.save(_ckpt_state(karate, level=1))
        assert atomic_write_faults.corrupted  # the fault must have fired
        state, n_invalid = manager.load_latest()
        assert n_invalid == 1
        assert state is not None and state.level == 0
        assert list(tmp_path.glob("*.corrupt"))

    def test_payload_bitflip_caught_by_member_crc(
        self, karate, tmp_path, atomic_write_faults
    ):
        # A flip *inside* an array's compressed payload must be caught by
        # the container's per-member CRC-32, not silently resumed from.
        manager = CheckpointManager(tmp_path)
        path = manager.save(_ckpt_state(karate, level=1))
        import zipfile

        import struct

        with zipfile.ZipFile(path) as zf:
            info = zf.getinfo("ei.npy")
        data = bytearray(path.read_bytes())
        # Local file header: name/extra lengths live at offsets 26 and 28.
        fn_len, extra_len = struct.unpack_from(
            "<HH", data, info.header_offset + 26
        )
        payload_start = info.header_offset + 30 + fn_len + extra_len
        data[payload_start + info.compress_size // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        state, n_invalid = manager.load_latest()
        assert n_invalid == 1 and state is None
        assert list(tmp_path.glob("*.corrupt"))


# --------------------------------------------------------- stream snapshots
class TestSnapshotCorruption:
    @pytest.mark.parametrize(
        "mode,kwargs", [("torn", {}), ("bitflip", {"offset": 0})]
    )
    def test_quarantined_on_load(
        self, tmp_path, atomic_write_faults, mode, kwargs
    ):
        store = SnapshotStore(tmp_path)
        edges = EdgeStore(
            3,
            np.array([0, 1], dtype=VERTEX_DTYPE),
            np.array([1, 2], dtype=VERTEX_DTYPE),
            np.array([1.0, 1.0]),
        )
        labels = Partition.from_labels(np.array([0, 0, 1])).labels
        getattr(atomic_write_faults, mode)("snap_", **kwargs)
        store.save(ServiceState(wal_seq=4, batch_seq=4, store=edges, labels=labels))
        assert atomic_write_faults.corrupted  # the fault must have fired
        state, n_invalid = store.load_latest()
        assert state is None and n_invalid == 1
        assert list(tmp_path.glob("*.corrupt"))


# -------------------------------------------------------------- WAL manifest
class TestWalManifestCorruption:
    def test_recovery_ignores_corrupt_manifest(
        self, tmp_path, atomic_write_faults
    ):
        from repro.stream.wal import WriteAheadLog

        wal = WriteAheadLog(tmp_path)
        wal.recover()
        atomic_write_faults.bitflip("manifest.json")
        wal.append(b"payload")  # rewrites the (now corrupted) manifest
        wal.close()
        # The manifest is advisory; recovery trusts only segment CRCs.
        wal2 = WriteAheadLog(tmp_path)
        rec = wal2.recover()
        assert rec.clean and rec.n_records == 1
        assert [r.payload for r in wal2.records()] == [b"payload"]
        wal2.close()


# ------------------------------------------------------------- bench ledgers
class TestLedgerCorruption:
    @pytest.mark.parametrize("mode", ["torn", "bitflip"])
    def test_run_ledger_read_raises(self, tmp_path, atomic_write_faults, mode):
        from repro.bench.ledger import RunRecord, read_ledger, write_ledger

        getattr(atomic_write_faults, mode)("BENCH_")
        path = write_ledger(RunRecord(name="t"), directory=tmp_path)
        with pytest.raises(ReproError):
            read_ledger(path)

    def test_stream_ledger_discarded_not_merged(
        self, tmp_path, atomic_write_faults
    ):
        from repro.stream.replay import (
            ReplayHarness,
            read_stream_bench,
        )
        from repro.stream.service import DetectionService

        bench = tmp_path / "BENCH_stream.json"
        atomic_write_faults.torn("BENCH_stream")
        svc = DetectionService(tmp_path / "svc")
        harness = ReplayHarness(svc, bench_path=bench)
        harness._write_bench({1: {"seq": 1}})
        with pytest.raises(ReproError):
            read_stream_bench(bench)
        assert harness._load_entries() == {}


# ------------------------------------------------------------------- traces
class TestTraceCorruption:
    @pytest.mark.parametrize("mode", ["torn", "bitflip"])
    def test_corrupt_trace_reads_incomplete_or_raises(
        self, tmp_path, atomic_write_faults, mode
    ):
        tr = Tracer()
        with tr.span("root"):
            pass
        getattr(atomic_write_faults, mode)("trace.jsonl")
        path = tmp_path / "trace.jsonl"
        write_trace(tr, path, meta={})
        try:
            data = read_trace(path)
        except ReproError:
            return  # typed rejection is fine
        assert not data.complete  # ...as is a flagged partial read


# -------------------------------------------------------------- status.json
class TestStatusCorruption:
    @pytest.mark.parametrize("mode", ["torn", "bitflip"])
    def test_corrupt_status_raises_typed_error(
        self, tmp_path, atomic_write_faults, mode
    ):
        status = tmp_path / "status.json"
        getattr(atomic_write_faults, mode)("status.json")
        sampler = TelemetrySampler(None, interval_s=0.01, status_path=status)
        sampler.sample_once()
        with pytest.raises(ReproError):
            read_status(status)


# -------------------------------------------------------------- spill store
class TestSpillCorruption:
    def test_bitflip_payload_fails_checksum(
        self, tmp_path, atomic_write_faults
    ):
        path = tmp_path / "shard.spill"
        atomic_write_faults.bitflip("shard.spill", offset=-8)
        write_spill(path, {"a": np.arange(64, dtype=np.float64)})
        # Flip the last payload byte (offset -8 lands inside array "a").
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(SpillError):
            arrs = read_spill(path)
            np.asarray(arrs["a"])

    def test_torn_spill_raises(self, tmp_path, atomic_write_faults):
        path = tmp_path / "shard2.spill"
        atomic_write_faults.torn("shard2.spill", keep=0.3)
        write_spill(path, {"a": np.arange(64, dtype=np.float64)})
        with pytest.raises(SpillError):
            read_spill(path)
