"""Tests for the benchmark ledger: records, atomic I/O, comparison."""

import json
import os

import pytest

from repro.bench.ledger import (
    LEDGER_SCHEMA_VERSION,
    LedgerComparison,
    Repetition,
    RunRecord,
    compare_ledgers,
    config_drift,
    host_info,
    ledger_path,
    peak_rss_bytes,
    read_ledger,
    render_comparison,
    render_ledger,
    repetition_from_run,
    write_ledger,
)
from repro.bench.smoke import run_smoke
from repro.errors import ReproError


def make_record(
    name="a", totals=(1.0, 1.2), score=0.1, match=0.5, contract=0.4,
    modularity=0.3,
) -> RunRecord:
    reps = []
    for k, t in enumerate(totals):
        # Later repetitions slightly slower, so min-of-N picks index 0.
        f = 1.0 + 0.1 * k
        reps.append(
            Repetition(
                total_s=t,
                phases={
                    "score": score * f,
                    "match": match * f,
                    "contract": contract * f,
                    "total": (score + match + contract) * f,
                },
                quality={
                    "version": 1,
                    "levels": [
                        {
                            "level": 0,
                            "n_communities": 10,
                            "modularity": modularity,
                            "coverage": 0.5,
                            "mirror_coverage": 0.5,
                            "merge_fraction": 0.45,
                            "matching_passes": 3,
                            "community_sizes": {
                                "edges": [1.0, 2.0],
                                "counts": [5, 5, 0],
                                "total": 10,
                                "sum": 20.0,
                                "max": 2,
                            },
                        }
                    ],
                },
                peak_rss_bytes=1 << 20,
                n_levels=1,
                n_communities=10,
                terminated_by="coverage",
            )
        )
    return RunRecord(
        name=name,
        graph={"name": "toy", "n_vertices": 20, "n_edges": 40},
        config={"matcher": "worklist"},
        host=host_info(),
        repetitions=reps,
        created_unix=123.0,
    )


class TestRecord:
    def test_min_of_n(self):
        rec = make_record(totals=(2.0, 1.5, 1.9))
        assert rec.min_total_s() == 1.5
        assert rec.min_phase_s("match") == pytest.approx(0.5)
        assert rec.min_phase_s("nonexistent") is None

    def test_no_repetitions(self):
        rec = RunRecord(name="empty")
        with pytest.raises(ValueError, match="no repetitions"):
            rec.min_total_s()
        assert rec.best_final_modularity() is None

    def test_final_quality(self):
        rec = make_record(modularity=0.42)
        assert rec.best_final_modularity() == pytest.approx(0.42)
        assert rec.repetitions[0].final_quality()["modularity"] == 0.42
        assert Repetition(total_s=1.0).final_quality() is None


class TestIO:
    def test_round_trip(self, tmp_path):
        rec = make_record()
        path = write_ledger(rec, directory=tmp_path)
        assert path == ledger_path("a", tmp_path)
        assert path.name == "BENCH_a.json"
        loaded = read_ledger(path)
        assert loaded.name == rec.name
        assert loaded.version == LEDGER_SCHEMA_VERSION
        assert loaded.as_dict() == rec.as_dict()

    def test_explicit_path(self, tmp_path):
        path = write_ledger(make_record(), tmp_path / "sub" / "x.json")
        assert path.exists()
        assert read_ledger(path).name == "a"

    def test_no_tmp_residue(self, tmp_path):
        write_ledger(make_record(), directory=tmp_path)
        assert [p.name for p in tmp_path.iterdir()] == ["BENCH_a.json"]

    def test_atomic_on_serialization_failure(self, tmp_path):
        """A failing write must leave the previous ledger intact."""
        path = write_ledger(make_record(name="a", modularity=0.3),
                            directory=tmp_path)
        bad = make_record(name="a")
        bad.config = {"unserializable": object()}
        with pytest.raises(TypeError):
            write_ledger(bad, directory=tmp_path)
        loaded = read_ledger(path)  # old content survived, parseable
        assert loaded.best_final_modularity() == pytest.approx(0.3)
        assert [p.name for p in tmp_path.iterdir()] == ["BENCH_a.json"]

    def test_read_rejects_missing(self, tmp_path):
        with pytest.raises(ReproError, match="cannot read"):
            read_ledger(tmp_path / "nope.json")

    def test_read_rejects_non_json(self, tmp_path):
        p = tmp_path / "x.json"
        p.write_text("not json")
        with pytest.raises(ReproError, match="not valid JSON"):
            read_ledger(p)

    def test_read_rejects_wrong_schema(self, tmp_path):
        p = tmp_path / "x.json"
        p.write_text(json.dumps({"schema": "other", "version": 1}))
        with pytest.raises(ReproError, match="not a repro-bench-ledger"):
            read_ledger(p)

    def test_read_rejects_wrong_version(self, tmp_path):
        d = make_record().as_dict()
        d["version"] = 999
        p = tmp_path / "x.json"
        p.write_text(json.dumps(d))
        with pytest.raises(ReproError, match="unsupported ledger version"):
            read_ledger(p)

    def test_read_rejects_malformed_repetition(self, tmp_path):
        d = make_record().as_dict()
        del d["repetitions"][0]["total_s"]
        p = tmp_path / "x.json"
        p.write_text(json.dumps(d))
        with pytest.raises(ReproError, match="malformed ledger"):
            read_ledger(p)


class TestCompare:
    def test_identical_is_ok(self):
        cmp = compare_ledgers(make_record(), make_record(name="b"))
        assert isinstance(cmp, LedgerComparison)
        assert not cmp.regressed
        assert {r.status for r in cmp.rows} == {"ok"}

    def test_regression_beyond_tolerance(self):
        base = make_record()
        slow = make_record(name="b", match=0.8, totals=(1.4, 1.6))
        cmp = compare_ledgers(base, slow, tolerance=0.05)
        assert cmp.regressed
        assert "phase.match" in [r.metric for r in cmp.regressions()]
        # score/contract unchanged → still ok
        by_metric = {r.metric: r.status for r in cmp.rows}
        assert by_metric["phase.score"] == "ok"
        assert by_metric["phase.contract"] == "ok"

    def test_noise_floor_suppresses_tiny_absolute_deltas(self):
        base = make_record(score=0.0001)
        new = make_record(name="b", score=0.0004)  # 4x slower but 0.3 ms
        cmp = compare_ledgers(base, new, tolerance=0.05, noise_floor_s=0.005)
        by_metric = {r.metric: r.status for r in cmp.rows}
        assert by_metric["phase.score"] == "ok"

    def test_tolerance_suppresses_small_relative_deltas(self):
        base = make_record(match=10.0)
        new = make_record(name="b", match=10.2)  # 2% slower but 200 ms
        cmp = compare_ledgers(base, new, tolerance=0.05, noise_floor_s=0.005)
        by_metric = {r.metric: r.status for r in cmp.rows}
        assert by_metric["phase.match"] == "ok"

    def test_improvement_flagged(self):
        base = make_record(match=1.0)
        new = make_record(name="b", match=0.5, totals=(0.6, 0.7))
        cmp = compare_ledgers(base, new)
        by_metric = {r.metric: r.status for r in cmp.rows}
        assert by_metric["phase.match"] == "improved"
        assert not cmp.regressed

    def test_min_of_n_uses_best_repetition(self):
        # New ledger has one slow outlier rep but a best rep equal to base:
        # min-of-N must not regress.
        base = make_record(totals=(1.0,))
        new = make_record(name="b", totals=(1.0, 5.0))
        cmp = compare_ledgers(base, new)
        assert not cmp.regressed

    def test_quality_regression(self):
        base = make_record(modularity=0.40)
        worse = make_record(name="b", modularity=0.30)
        cmp = compare_ledgers(base, worse, quality_tolerance=0.02)
        by_metric = {r.metric: r.status for r in cmp.rows}
        assert by_metric["final_modularity"] == "regression"
        assert cmp.regressed

    def test_quality_improvement_and_na(self):
        base = make_record(modularity=0.30)
        better = make_record(name="b", modularity=0.40)
        cmp = compare_ledgers(base, better)
        assert {r.metric: r.status for r in cmp.rows}[
            "final_modularity"
        ] == "improved"
        no_q = make_record(name="c")
        for rep in no_q.repetitions:
            rep.quality = None
        cmp2 = compare_ledgers(base, no_q)
        assert {r.metric: r.status for r in cmp2.rows}[
            "final_modularity"
        ] == "n/a"
        assert not cmp2.regressed

    def test_missing_phases_are_na(self):
        base = make_record()
        bare = make_record(name="b")
        for rep in bare.repetitions:
            rep.phases = {}
        cmp = compare_ledgers(base, bare)
        statuses = {r.metric: r.status for r in cmp.rows}
        assert statuses["phase.score"] == "n/a"
        assert statuses["end_to_end"] == "ok"  # total_s still present
        assert not cmp.regressed

    def test_rejects_negative_tolerance(self):
        with pytest.raises(ValueError):
            compare_ledgers(make_record(), make_record(), tolerance=-1)


class TestRender:
    def test_render_ledger_contains_tables(self):
        text = render_ledger(make_record())
        assert "benchmark ledger — a" in text
        assert "per-phase seconds" in text
        assert "quality timeline" in text
        assert "peak RSS" in text

    def test_render_comparison_verdicts(self):
        ok = compare_ledgers(make_record(), make_record(name="b"))
        assert "no regression" in render_comparison(ok)
        bad = compare_ledgers(
            make_record(), make_record(name="b", match=5.0, totals=(6.0,))
        )
        out = render_comparison(bad)
        assert "REGRESSION" in out
        assert "phase.match" in out


class TestHelpers:
    def test_host_info_keys(self):
        info = host_info()
        assert {"platform", "python", "cpu_count", "hostname"} <= set(info)

    def test_peak_rss_positive(self):
        rss = peak_rss_bytes()
        assert rss is None or rss > 0


class TestSmoke:
    def test_run_smoke_writes_valid_ledger(self, tmp_path):
        record, path = run_smoke(
            name="smoketest", n_vertices=400, reps=2, directory=tmp_path
        )
        assert path == tmp_path / "BENCH_smoketest.json"
        loaded = read_ledger(path)
        assert len(loaded.repetitions) == 2
        rep = loaded.repetitions[0]
        assert set(rep.phases) >= {"score", "match", "contract", "total"}
        assert rep.quality["levels"], "quality timeline missing"
        assert rep.total_s > 0
        assert loaded.best_final_modularity() is not None
        # A smoke ledger must compare cleanly against itself.
        cmp = compare_ledgers(loaded, loaded)
        assert not cmp.regressed

    def test_run_smoke_rejects_zero_reps(self, tmp_path):
        with pytest.raises(ValueError):
            run_smoke(reps=0, directory=tmp_path)

    def test_repetition_from_run_without_tracer(self, tmp_path):
        from repro.bench import run_with_trace
        from repro.generators import planted_partition_graph

        run = run_with_trace(
            planted_partition_graph(200, seed=1), graph_name="g"
        )
        rep = repetition_from_run(run, 0.5)
        assert rep.total_s == 0.5
        assert rep.phases == {}
        assert rep.quality is None
        assert rep.n_levels == run.result.n_levels


class TestAttributionInLedger:
    """Repetition.attribution: computed from the tracer, persisted, rendered."""

    def test_repetition_from_run_with_tracer(self):
        from repro.bench import run_with_trace
        from repro.generators import planted_partition_graph
        from repro.obs import Tracer

        run = run_with_trace(
            planted_partition_graph(200, seed=1),
            graph_name="g",
            tracer=Tracer(),
        )
        rep = repetition_from_run(run, 0.5)
        assert rep.attribution is not None
        assert rep.attribution["version"] == 1
        assert set(rep.attribution) >= {
            "phases", "levels", "hotspots", "workers", "serial", "amdahl",
            "consistency",
        }
        assert rep.attribution["consistency"]["violations"] == []

    def test_attribution_round_trips_through_ledger_io(self, tmp_path):
        record = make_record()
        record.repetitions[0].attribution = {
            "version": 1,
            "hotspots": [{"name": "match_pass", "self_s": 0.2}],
        }
        path = tmp_path / "BENCH_a.json"
        write_ledger(record, path)
        loaded = read_ledger(path)
        assert loaded.repetitions[0].attribution == (
            record.repetitions[0].attribution
        )
        assert loaded.repetitions[1].attribution is None

    def test_render_ledger_shows_attribution_block(self):
        record = make_record()
        record.repetitions[0].attribution = {
            "version": 1,
            "hotspots": [
                {"name": "match_pass", "self_s": 0.2, "share": 0.5, "n_spans": 3}
            ],
            "workers": {
                "source": "worker_chunk",
                "n_lanes": 2,
                "n_chunks": 4,
                "busy_s": {"1": 0.1, "2": 0.1},
                "imbalance": 1.0,
                "queue_wait_s": 0.01,
                "exec_s": 0.2,
            },
            "serial": {"fraction": 0.25},
            "amdahl": {
                "serial_fraction": 0.25,
                "n_workers": 2,
                "ceiling_at_n": 1.6,
                "ceiling_inf": 4.0,
            },
            "consistency": {"checked": True, "violations": []},
        }
        text = render_ledger(record)
        assert "attribution (repetition 0):" in text
        assert "match_pass" in text
        assert "Amdahl" in text

    def test_render_ledger_without_attribution_omits_block(self):
        text = render_ledger(make_record())
        assert "attribution" not in text


class TestTunerBlock:
    def _tuner_block(self):
        return {
            "policy": "cost-model",
            "kinds": ["matcher", "contractor"],
            "n_decisions": 2,
            "selected": {"matcher": {"gmm": 1}, "contractor": {"bucket": 1}},
            "decisions": [
                {
                    "level": 0,
                    "kind": "matcher",
                    "chosen": "gmm",
                    "policy": "cost-model",
                    "constrained_sharded": True,
                    "shape": {
                        "n_vertices": 10,
                        "n_edges": 20,
                        "density": 0.4,
                        "degree_cv": 1.0,
                    },
                    "candidates": ["gmm", "worklist"],
                    "predicted_s": {"gmm": 0.001, "worklist": 0.002},
                },
                {
                    "level": 0,
                    "kind": "contractor",
                    "chosen": "bucket",
                    "policy": "cost-model",
                    "constrained_sharded": False,
                    "shape": {
                        "n_vertices": 10,
                        "n_edges": 20,
                        "density": 0.4,
                        "degree_cv": 1.0,
                    },
                    "candidates": ["bucket", "shard"],
                    "predicted_s": {"bucket": 0.001, "shard": 0.003},
                },
            ],
        }

    def test_tuner_round_trips(self, tmp_path):
        rec = make_record()
        rec.repetitions[0].tuner = self._tuner_block()
        path = write_ledger(rec, directory=tmp_path)
        loaded = read_ledger(path)
        assert loaded.repetitions[0].tuner == self._tuner_block()
        assert loaded.repetitions[1].tuner is None

    def test_pre_tuner_ledger_still_loads(self, tmp_path):
        path = write_ledger(make_record(), directory=tmp_path)
        doc = json.loads(path.read_text())
        for rep in doc["repetitions"]:
            rep.pop("tuner", None)
        path.write_text(json.dumps(doc))
        loaded = read_ledger(path)
        assert all(r.tuner is None for r in loaded.repetitions)

    def test_render_includes_tuner_summary(self):
        rec = make_record()
        rec.repetitions[0].tuner = self._tuner_block()
        text = render_ledger(rec)
        assert "tuner (repetition 0)" in text
        assert "cost-model" in text
        assert "gmm" in text and "bucket" in text
        assert "constrained" in text

    def test_render_without_tuner_has_no_block(self):
        assert "tuner (repetition" not in render_ledger(make_record())


class TestConfigDrift:
    def test_no_drift_on_equal_configs(self):
        assert config_drift(make_record(), make_record(name="b")) == []

    def test_detects_each_drifting_key(self):
        base = make_record()
        new = make_record(name="b")
        new.config = dict(new.config, matcher="auto",
                          tuner={"policy": "cost-model"})
        lines = config_drift(base, new)
        assert len(lines) == 2
        joined = "\n".join(lines)
        assert "config.matcher" in joined
        assert "'worklist'" in joined and "'auto'" in joined
        assert "config.tuner" in joined

    def test_key_absent_on_both_sides_never_drifts(self):
        # Pre-tuner ledgers have no "tuner" key at all; absence on both
        # sides must not register as drift.
        base, new = make_record(), make_record(name="b")
        assert "tuner" not in base.config
        assert config_drift(base, new) == []

    def test_scorer_drift_detected(self):
        base = make_record()
        new = make_record(name="b")
        new.config = dict(new.config, scorer="conductance")
        lines = config_drift(base, new)
        assert len(lines) == 1
        assert "config.scorer" in lines[0]

    def test_custom_keys(self):
        base = make_record()
        new = make_record(name="b")
        new.config = dict(new.config, seed=99)
        assert config_drift(base, new) == []
        lines = config_drift(base, new, keys=("seed",))
        assert len(lines) == 1 and "config.seed" in lines[0]
