"""Unit tests for induced subgraphs and largest-component extraction."""

import numpy as np
import pytest

from repro.graph import from_edges, induced_subgraph, largest_component


class TestInducedSubgraph:
    def test_keeps_internal_edges(self):
        g = from_edges(np.array([0, 1, 2]), np.array([1, 2, 3]))
        sub, mapping = induced_subgraph(g, np.array([0, 1, 2]))
        assert sub.n_vertices == 3
        assert sub.n_edges == 2
        np.testing.assert_array_equal(mapping, [0, 1, 2])

    def test_drops_cross_edges(self):
        g = from_edges(np.array([0, 1]), np.array([1, 2]))
        sub, _ = induced_subgraph(g, np.array([0, 1]))
        assert sub.n_edges == 1

    def test_preserves_weights_and_self_weights(self):
        g = from_edges(np.array([0, 1, 1]), np.array([1, 1, 2]), np.array([2.0, 5.0, 1.0]))
        sub, mapping = induced_subgraph(g, np.array([0, 1]))
        assert sub.edges.w[0] == 2.0
        assert sub.self_weights[1] == 5.0

    def test_renumbering(self):
        g = from_edges(np.array([2]), np.array([4]), n_vertices=5)
        sub, mapping = induced_subgraph(g, np.array([2, 4]))
        assert sub.n_vertices == 2
        assert sub.n_edges == 1
        np.testing.assert_array_equal(mapping, [2, 4])

    def test_out_of_range_rejected(self):
        g = from_edges(np.array([0]), np.array([1]))
        with pytest.raises(ValueError):
            induced_subgraph(g, np.array([5]))

    def test_duplicate_ids_deduped(self):
        g = from_edges(np.array([0]), np.array([1]))
        sub, mapping = induced_subgraph(g, np.array([0, 0, 1]))
        assert sub.n_vertices == 2


class TestLargestComponent:
    def test_picks_biggest(self):
        # Component {0,1,2} vs {3,4}.
        g = from_edges(np.array([0, 1, 3]), np.array([1, 2, 4]))
        sub, mapping = largest_component(g)
        assert sub.n_vertices == 3
        np.testing.assert_array_equal(mapping, [0, 1, 2])

    def test_whole_graph_connected(self, karate):
        sub, mapping = largest_component(karate)
        assert sub.n_vertices == karate.n_vertices
        assert sub.n_edges == karate.n_edges

    def test_isolated_vertices_dropped(self):
        g = from_edges(np.array([0]), np.array([1]), n_vertices=5)
        sub, _ = largest_component(g)
        assert sub.n_vertices == 2

    def test_validates(self, random_graph_factory):
        g = random_graph_factory(n=40, m=30, seed=7)
        sub, _ = largest_component(g)
        sub.validate()
