"""Unit tests for connected components (validated against scipy)."""

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph

from repro.graph import connected_components, from_edges


def scipy_components(n, ei, ej):
    m = sp.coo_matrix(
        (np.ones(len(ei)), (ei, ej)), shape=(n, n)
    )
    return csgraph.connected_components(m, directed=False)


class TestComponents:
    def test_single_component(self):
        labels, k = connected_components(4, np.array([0, 1, 2]), np.array([1, 2, 3]))
        assert k == 1
        assert len(set(labels.tolist())) == 1

    def test_two_components(self):
        labels, k = connected_components(4, np.array([0, 2]), np.array([1, 3]))
        assert k == 2
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_isolated_vertices(self):
        labels, k = connected_components(5, np.array([0]), np.array([1]))
        assert k == 4

    def test_empty_graph(self):
        labels, k = connected_components(3, np.empty(0, int), np.empty(0, int))
        assert k == 3
        np.testing.assert_array_equal(labels, [0, 1, 2])

    def test_zero_vertices(self):
        labels, k = connected_components(0, np.empty(0, int), np.empty(0, int))
        assert k == 0
        assert len(labels) == 0

    def test_labels_dense(self):
        labels, k = connected_components(6, np.array([0, 4]), np.array([5, 2]))
        assert set(labels.tolist()) == set(range(k))

    def test_numbered_by_smallest_vertex(self):
        labels, k = connected_components(4, np.array([2]), np.array([3]))
        # Components: {0}, {1}, {2,3} -> ids 0, 1, 2.
        np.testing.assert_array_equal(labels, [0, 1, 2, 2])

    @pytest.mark.parametrize("seed", range(5))
    def test_against_scipy(self, seed):
        rng = np.random.default_rng(seed)
        n = 60
        m = rng.integers(10, 80)
        ei = rng.integers(0, n, m)
        ej = rng.integers(0, n, m)
        labels, k = connected_components(n, ei, ej)
        k_ref, labels_ref = scipy_components(n, ei, ej)
        assert k == k_ref
        # Same partition up to renaming.
        pairs = set(zip(labels.tolist(), labels_ref.tolist()))
        assert len(pairs) == k

    def test_long_path(self):
        # Exercises the pointer-jumping depth bound.
        n = 500
        i = np.arange(n - 1)
        labels, k = connected_components(n, i, i + 1)
        assert k == 1
