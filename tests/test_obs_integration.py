"""Integration tests: the obs layer wired through the real pipeline."""

import numpy as np
import pytest

from repro.core import detect_communities
from repro.core.termination import TerminationCriteria
from repro.bench.harness import run_with_trace
from repro.generators import karate_club, planted_partition_graph
from repro.obs import NULL_TRACER, Tracer
from repro.parallel.pool import parallel_edge_scores
from repro.pregel.engine import PregelEngine
from repro.pregel.programs import ComponentsProgram
from repro.util.timing import Timer


@pytest.fixture(scope="module")
def graph():
    return planted_partition_graph(600, seed=3)


class TestAgglomerationSpans:
    def test_level_spans_with_phase_children(self, graph):
        tr = Tracer()
        result = detect_communities(graph, tracer=tr)
        levels = tr.find("level")
        assert len(levels) >= result.n_levels >= 1
        by_id = {s.span_id: s for s in tr.spans}
        for name in ("score", "match", "contract"):
            spans = tr.find(name)
            # every completed level has each phase exactly once
            phase_levels = sorted(
                s.level for s in spans if s.parent_id is not None
            )
            assert set(range(result.n_levels)) <= set(phase_levels)
            for s in spans:
                assert by_id[s.parent_id].name == "level"
                assert s.start_ns <= s.end_ns

    def test_level_span_attrs_match_stats(self, graph):
        tr = Tracer()
        result = detect_communities(graph, tracer=tr)
        levels = {s.level: s for s in tr.find("level")}
        for stats in result.levels:
            span = levels[stats.level]
            assert span.attrs["n_vertices"] == stats.n_vertices
            assert span.attrs["n_edges"] == stats.n_edges
            assert span.attrs["n_pairs"] == stats.n_pairs

    def test_match_pass_spans_and_worklist_gauge(self, graph):
        tr = Tracer()
        result = detect_communities(graph, tracer=tr)
        passes = tr.find("match_pass")
        assert len(passes) == sum(s.matching_passes for s in result.levels)
        g = tr.metrics.gauges["match.worklist_edges"]
        assert g.n_sets == len(passes)
        assert g.max >= g.min >= 0

    def test_contraction_stage_spans_and_histogram(self, graph):
        tr = Tracer()
        result = detect_communities(graph, tracer=tr)
        for stage in (
            "contract_map",
            "contract_relabel",
            "contract_bucket_sort",
            "contract_accumulate",
        ):
            assert len(tr.find(stage)) == result.n_levels
        hist = tr.metrics.histograms["contract.bucket_occupancy"]
        assert hist.total > 0

    def test_matching_pass_histogram(self, graph):
        tr = Tracer()
        result = detect_communities(graph, tracer=tr)
        hist = tr.metrics.histograms["agglomeration.matching_passes"]
        assert hist.total == result.n_levels

    def test_legacy_kernels_also_traced(self):
        g = karate_club()
        tr = Tracer()
        detect_communities(g, matcher="sweep", contractor="chains", tracer=tr)
        assert tr.find("match_pass")
        assert tr.find("contract_relabel")

    def test_traced_and_untraced_results_identical(self, graph):
        r0 = detect_communities(graph)
        r1 = detect_communities(graph, tracer=Tracer())
        r2 = detect_communities(graph, tracer=NULL_TRACER)
        np.testing.assert_array_equal(
            r0.partition.labels, r1.partition.labels
        )
        np.testing.assert_array_equal(
            r0.partition.labels, r2.partition.labels
        )


class TestNullTracerOverhead:
    def test_untraced_not_slower_than_traced(self):
        """The NullTracer path must not cost measurable time.

        Compares medians of interleaved untraced/traced runs; the
        untraced runs get a generous 1.25x + 10ms allowance so the test
        never flakes on scheduler noise while still catching a real
        regression (e.g. accidental span allocation on the null path).
        """
        g = planted_partition_graph(800, seed=1)
        detect_communities(g)  # warm caches/JIT-ish paths
        untraced, traced = [], []
        for _ in range(5):
            with Timer() as t:
                detect_communities(g)
            untraced.append(t.elapsed)
            with Timer() as t:
                detect_communities(g, tracer=Tracer())
            traced.append(t.elapsed)
        assert np.median(untraced) <= 1.25 * np.median(traced) + 0.010


class TestPregelSpans:
    def test_superstep_spans(self):
        g = karate_club()
        engine = PregelEngine(g)
        tr = Tracer()
        engine.run(ComponentsProgram(), tracer=tr)
        run_spans = tr.find("pregel_run")
        steps = tr.find("superstep")
        assert len(run_spans) == 1
        assert len(steps) == engine.n_supersteps
        assert run_spans[0].attrs["n_supersteps"] == engine.n_supersteps
        for span, stats in zip(steps, engine.stats):
            assert span.attrs["active_vertices"] == stats.active_vertices
            assert span.attrs["messages_sent"] == stats.messages_sent

    def test_untraced_run_unchanged(self):
        g = karate_club()
        states = PregelEngine(g).run(ComponentsProgram())
        traced = PregelEngine(g)
        states_t = traced.run(ComponentsProgram(), tracer=Tracer())
        assert states == states_t


class TestPoolSpans:
    def test_inline_chunk_spans(self, graph):
        tr = Tracer()
        scores = parallel_edge_scores(graph, n_workers=1, tracer=tr)
        assert len(scores) == graph.n_edges
        runs = tr.find("pool_run")
        chunks = tr.find("pool_chunk")
        assert len(runs) == 1
        assert runs[0].attrs["mode"] == "inline"
        assert len(chunks) == runs[0].attrs["n_chunks"]
        assert sum(c.items for c in chunks) == graph.n_edges

    def test_process_chunk_spans(self, graph):
        pytest.importorskip("multiprocessing.shared_memory")
        tr = Tracer()
        scores = parallel_edge_scores(graph, n_workers=2, tracer=tr)
        np.testing.assert_allclose(
            scores, parallel_edge_scores(graph, n_workers=1)
        )
        runs = tr.find("pool_run")
        chunks = tr.find("pool_chunk")
        assert len(runs) == 1
        if runs[0].attrs["mode"] == "processes":
            assert all("worker_s" in c.attrs for c in chunks)
            assert all(c.attrs["worker_s"] >= 0 for c in chunks)


class TestHarnessIntegration:
    def test_run_with_trace_phase_breakdown(self):
        g = karate_club()
        tr = Tracer()
        run = run_with_trace(g, graph_name="karate", tracer=tr)
        phases = run.phase_breakdown()
        assert phases is not None
        assert phases["total"] > 0
        assert 0.0 <= phases["contract_share"] <= 1.0
        run_spans = tr.find("run")
        assert len(run_spans) == 1
        assert run_spans[0].attrs["graph"] == "karate"

    def test_phase_breakdown_none_when_untraced(self):
        g = karate_club()
        run = run_with_trace(g, graph_name="karate")
        assert run.phase_breakdown() is None

    def test_shared_tracer_separates_runs(self):
        tr = Tracer()
        a = run_with_trace(karate_club(), graph_name="a", tracer=tr)
        b = run_with_trace(
            planted_partition_graph(300, seed=0), graph_name="b", tracer=tr
        )
        from repro.obs.sinks import phase_totals

        pa = a.phase_breakdown()
        pb = b.phase_breakdown()
        combined = phase_totals(list(tr.spans))["total"]
        assert combined == pytest.approx(pa["total"] + pb["total"])

    def test_termination_criteria_still_respected(self, graph):
        tr = Tracer()
        result = detect_communities(
            graph,
            termination=TerminationCriteria(max_levels=2, coverage=None),
            tracer=tr,
        )
        assert result.n_levels <= 2
        assert len(tr.find("level")) <= 2
