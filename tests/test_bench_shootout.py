"""Tests for the kernel shootout harness (`repro.bench.shootout`)."""

import json

import numpy as np
import pytest

from repro.bench.ledger import read_ledger
from repro.bench.shootout import main, run_shootout, suite_graphs
from repro.core.registry import kernel_names
from repro.core.tuner import CostModelPolicy, load_cost_table


class TestSuiteGraphs:
    def test_three_shape_diverse_workloads(self):
        graphs = suite_graphs(scale=0.1, seed=3)
        assert [name for name, _ in graphs] == ["sbm", "ba", "rmat"]
        for _, g in graphs:
            assert g.n_vertices > 0 and g.n_edges > 0

    def test_scale_grows_the_suite(self):
        small = suite_graphs(scale=0.1)
        large = suite_graphs(scale=1.0)
        for (_, gs), (_, gl) in zip(small, large):
            assert gl.n_vertices >= gs.n_vertices

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError, match="scale"):
            suite_graphs(scale=0.0)


class TestRunShootout:
    @pytest.fixture(scope="class")
    def result(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("shootout")
        record, path, cost_table = run_shootout(
            name="kernels-test",
            scale=0.1,
            seed=2,
            directory=directory,
            matchers=["worklist", "sweep"],
            contractors=["bucket", "spmatrix"],
            fit_out=str(directory / "fit.json"),
        )
        return record, path, cost_table, directory

    def test_one_repetition_per_cell(self, result):
        record, _, _, _ = result
        assert len(record.repetitions) == 4
        cells = record.config["cells"]
        assert {(c["matcher"], c["contractor"]) for c in cells} == {
            ("worklist", "bucket"),
            ("worklist", "spmatrix"),
            ("sweep", "bucket"),
            ("sweep", "spmatrix"),
        }
        for rep in record.repetitions:
            assert rep.total_s > 0
            assert rep.phases.get("match", 0) > 0
            assert rep.phases.get("contract", 0) > 0
            assert rep.terminated_by == "suite"

    def test_ledger_round_trips(self, result):
        record, path, _, _ = result
        loaded = read_ledger(path)
        assert loaded.name == "kernels-test"
        assert len(loaded.repetitions) == 4
        assert loaded.config["matcher"] == "worklistxsweep"

    def test_cost_table_is_loadable_everywhere(self, result):
        record, path, cost_table, directory = result
        # The embedded, the ledger-wrapped, and the --fit-out copies all
        # validate and price the swept kernels.
        for source in (cost_table, path, directory / "fit.json"):
            table = load_cost_table(source)
            assert set(table["coefficients"]) == {"matcher", "contractor"}
            assert set(table["coefficients"]["matcher"]) == {
                "worklist",
                "sweep",
            }
        policy = CostModelPolicy(cost_table)
        from repro.core.tuner import LevelShape

        shape = LevelShape(
            n_vertices=500, n_edges=4000, density=0.03, degree_cv=1.0
        )
        chosen, predicted = policy.select(
            "contractor", shape, ["bucket", "spmatrix"]
        )
        assert chosen in ("bucket", "spmatrix")
        assert all(p is not None for p in predicted.values())

    def test_fit_out_is_bare_json(self, result):
        _, _, _, directory = result
        doc = json.loads((directory / "fit.json").read_text())
        assert doc["version"] == 1
        assert "coefficients" in doc

    def test_default_pools_are_the_registry(self):
        # No kernel pool args: the sweep covers every registered kernel
        # (checked without running — the cells come from kernel_names).
        assert set(kernel_names("matcher")) == {"worklist", "sweep", "gmm"}
        assert set(kernel_names("contractor")) == {
            "bucket",
            "chains",
            "shard",
            "spmatrix",
        }


class TestMain:
    def test_cli_renders_cells_and_writes_ledger(self, tmp_path, capsys):
        rc = main(
            [
                "--scale",
                "0.1",
                "--seed",
                "2",
                "--out-dir",
                str(tmp_path),
                "--matchers",
                "worklist",
                "--contractors",
                "bucket",
                "spmatrix",
                "--append-ledger-dir",
                str(tmp_path),
            ]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert "kernel shootout" in captured.out
        assert "spmatrix" in captured.out
        assert "fitted cost table" in captured.err
        names = sorted(p.name for p in tmp_path.iterdir())
        assert "BENCH_kernels.json" in names
        assert any(n.startswith("BENCH_kernels-") for n in names)


class TestParityGate:
    def test_divergent_cell_raises(self, monkeypatch, tmp_path):
        # Corrupt one matcher's output post hoc: the parity gate must
        # name the offending cell instead of silently ledgering it.
        import repro.bench.shootout as shootout_mod

        real = shootout_mod.run_with_trace

        def crooked(graph, *, matcher="worklist", **kw):
            run = real(graph, matcher=matcher, **kw)
            if matcher == "sweep":
                labels = run.result.partition.labels
                labels = np.where(labels == 0, 1, labels)
                run.result.partition.labels[:] = labels
            return run

        monkeypatch.setattr(shootout_mod, "run_with_trace", crooked)
        with pytest.raises(AssertionError, match=r"\(sweep, bucket\)"):
            run_shootout(
                scale=0.1,
                seed=2,
                directory=tmp_path,
                matchers=["worklist", "sweep"],
                contractors=["bucket"],
            )
