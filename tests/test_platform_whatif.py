"""Unit tests for what-if machine variants."""

import pytest

from repro.errors import PlatformModelError
from repro.platform import CRAY_XMT, INTEL_E7_8870, KernelRecord, simulate_time
from repro.platform.whatif import scale_bandwidth, scale_clock, single_socket


def big_loop():
    return [KernelRecord(name="k", items=10**6, mem_words=5 * 10**6)]


class TestSingleSocket:
    def test_scales_cores_and_bandwidth(self):
        one = single_socket(INTEL_E7_8870)
        assert one.n_processors == 1
        assert one.physical_cores == 10
        assert one.max_parallelism == 20
        assert one.total_bandwidth_words == pytest.approx(
            INTEL_E7_8870.total_bandwidth_words / 4
        )

    def test_two_sockets(self):
        two = single_socket(INTEL_E7_8870, sockets=2)
        assert two.physical_cores == 20

    def test_slower_than_full_machine(self):
        one = single_socket(INTEL_E7_8870)
        t_one = simulate_time(big_loop(), one, one.max_parallelism).total
        t_full = simulate_time(
            big_loop(), INTEL_E7_8870, INTEL_E7_8870.max_parallelism
        ).total
        assert t_one > t_full

    def test_rejects_xmt(self):
        with pytest.raises(PlatformModelError):
            single_socket(CRAY_XMT)

    def test_rejects_bad_count(self):
        with pytest.raises(PlatformModelError):
            single_socket(INTEL_E7_8870, sockets=5)


class TestScaling:
    def test_bandwidth_speeds_memory_bound_work(self):
        fast = scale_bandwidth(INTEL_E7_8870, 2.0)
        t_base = simulate_time(big_loop(), INTEL_E7_8870, 40).total
        t_fast = simulate_time(big_loop(), fast, 40).total
        assert t_fast < t_base

    def test_xmt2_is_roughly_a_bandwidth_scaled_xmt(self):
        """The paper attributes the XMT2's gain to memory bandwidth; the
        model agrees: bandwidth-scaling the XMT covers most of the gap."""
        from repro.platform import CRAY_XMT2

        boosted = scale_bandwidth(CRAY_XMT, 3.0)
        t_boost = simulate_time(big_loop(), boosted, 64).total
        t_xmt2 = simulate_time(big_loop(), CRAY_XMT2, 64).total
        t_xmt = simulate_time(big_loop(), CRAY_XMT, 64).total
        assert t_boost < t_xmt
        assert t_boost < 3 * t_xmt2

    def test_clock_speeds_compute_bound_work(self):
        compute = [KernelRecord(name="k", items=10**7)]
        fast = scale_clock(INTEL_E7_8870, 2.0)
        assert (
            simulate_time(compute, fast, 8).total
            < simulate_time(compute, INTEL_E7_8870, 8).total
        )

    def test_validation(self):
        with pytest.raises(PlatformModelError):
            scale_bandwidth(INTEL_E7_8870, 0)
        with pytest.raises(PlatformModelError):
            scale_clock(INTEL_E7_8870, -1)
