"""Unit tests for machine models (Table I facts + model validation)."""

import pytest

from repro.errors import PlatformModelError
from repro.platform import (
    CRAY_XMT,
    CRAY_XMT2,
    INTEL_E7_8870,
    INTEL_X5650,
    INTEL_X5570,
    PLATFORMS,
    MachineModel,
    get_machine,
)


class TestTable1Facts:
    """The architectural facts must match the paper's Table I exactly."""

    def test_xmt(self):
        assert CRAY_XMT.table1_row() == ("XMT", 128, 100, "500MHz")

    def test_xmt2(self):
        assert CRAY_XMT2.table1_row() == ("XMT2", 64, 102, "500MHz")

    def test_e7_8870(self):
        assert INTEL_E7_8870.table1_row() == ("E7-8870", 4, 20, "2.40GHz")

    def test_x5650(self):
        assert INTEL_X5650.table1_row() == ("X5650", 2, 12, "2.66GHz")

    def test_x5570(self):
        assert INTEL_X5570.table1_row() == ("X5570", 2, 8, "2.93GHz")

    def test_physical_core_counts(self):
        assert INTEL_E7_8870.physical_cores == 40
        assert INTEL_X5650.physical_cores == 12
        assert INTEL_X5570.physical_cores == 8


class TestParallelismLimits:
    def test_xmt_allocates_processors(self):
        assert CRAY_XMT.max_parallelism == 128
        assert CRAY_XMT.allocation_unit == "processors"

    def test_intel_allocates_logical_threads(self):
        assert INTEL_E7_8870.max_parallelism == 80
        assert INTEL_X5650.max_parallelism == 24
        assert INTEL_X5570.max_parallelism == 16
        assert INTEL_E7_8870.allocation_unit == "threads"

    def test_check_parallelism(self):
        CRAY_XMT2.check_parallelism(64)
        with pytest.raises(PlatformModelError):
            CRAY_XMT2.check_parallelism(65)
        with pytest.raises(PlatformModelError):
            CRAY_XMT2.check_parallelism(0)


class TestRegistry:
    def test_all_five_registered(self):
        assert set(PLATFORMS) == {"XMT", "XMT2", "E7-8870", "X5650", "X5570"}

    def test_get_machine(self):
        assert get_machine("XMT") is CRAY_XMT

    def test_unknown_platform(self):
        with pytest.raises(PlatformModelError, match="unknown platform"):
            get_machine("M1-Max")


class TestValidation:
    def _base(self, **kw):
        args = dict(
            name="t", kind="openmp", clock_hz=1e9, n_processors=1,
            threads_per_processor=2, physical_cores=1, ht_yield=0.5,
            cpi=1.0, words_per_sec_per_thread=1e8,
            total_bandwidth_words=1e9, atomic_cycles=1.0,
            contended_cycles=10.0, chain_latency_s=1e-7,
            loop_overhead_s=1e-6,
        )
        args.update(kw)
        return MachineModel(**args)

    def test_bad_kind(self):
        with pytest.raises(PlatformModelError):
            self._base(kind="gpu")

    def test_bad_clock(self):
        with pytest.raises(PlatformModelError):
            self._base(clock_hz=0)

    def test_bad_ht_yield(self):
        with pytest.raises(PlatformModelError):
            self._base(ht_yield=1.5)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            CRAY_XMT.cpi = 1.0  # type: ignore[misc]
