"""Unit tests for the R-MAT generator."""

import numpy as np
import pytest

from repro.generators import rmat_edges, rmat_graph
from repro.graph.components import connected_components


class TestRmatEdges:
    def test_edge_count(self):
        i, j = rmat_edges(6, 8, seed=0)
        assert len(i) == len(j) == (1 << 6) * 8

    def test_vertex_range(self):
        i, j = rmat_edges(7, 4, seed=1)
        assert i.min() >= 0 and j.min() >= 0
        assert i.max() < (1 << 7) and j.max() < (1 << 7)

    def test_deterministic_given_seed(self):
        a = rmat_edges(6, 4, seed=42)
        b = rmat_edges(6, 4, seed=42)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    def test_different_seeds_differ(self):
        a = rmat_edges(6, 4, seed=1)
        b = rmat_edges(6, 4, seed=2)
        assert not np.array_equal(a[0], b[0])

    def test_skew_toward_low_ids(self):
        # a = 0.55 concentrates mass in the low-id quadrant.
        i, j = rmat_edges(10, 16, noise=0.0, seed=0)
        half = 1 << 9
        low = np.count_nonzero((i < half) & (j < half))
        high = np.count_nonzero((i >= half) & (j >= half))
        assert low > 1.5 * high

    def test_probabilities_validated(self):
        with pytest.raises(ValueError, match="sum to 1"):
            rmat_edges(4, 2, a=0.9, b=0.9, c=0.0, d=0.0)

    def test_scale_validated(self):
        with pytest.raises(ValueError):
            rmat_edges(-1, 2)

    def test_edge_factor_validated(self):
        with pytest.raises(ValueError):
            rmat_edges(4, 0)

    def test_noise_validated(self):
        with pytest.raises(ValueError):
            rmat_edges(4, 2, noise=1.5)

    def test_scale_zero(self):
        i, j = rmat_edges(0, 5, seed=0)
        assert np.all(i == 0) and np.all(j == 0)

    def test_quadrant_split_uniform_params(self):
        # With a=b=c=d=0.25 and no noise the distribution is uniform.
        i, j = rmat_edges(8, 64, a=0.25, b=0.25, c=0.25, d=0.25, noise=0.0, seed=3)
        half = 1 << 7
        counts = [
            np.count_nonzero((i < half) & (j < half)),
            np.count_nonzero((i < half) & (j >= half)),
            np.count_nonzero((i >= half) & (j < half)),
            np.count_nonzero((i >= half) & (j >= half)),
        ]
        total = sum(counts)
        for c in counts:
            assert abs(c / total - 0.25) < 0.02


class TestRmatGraph:
    def test_connected(self):
        g = rmat_graph(8, 8, seed=0)
        _, k = connected_components(g.n_vertices, g.edges.ei, g.edges.ej)
        assert k == 1

    def test_duplicates_accumulated(self):
        g = rmat_graph(6, 16, seed=0, extract_largest_component=False)
        # With 1024 samples over 64 vertices, duplicates are certain.
        assert g.edges.w.max() > 1.0

    def test_no_component_extraction(self):
        g = rmat_graph(6, 1, seed=0, extract_largest_component=False)
        assert g.n_vertices == 64

    def test_valid_representation(self):
        g = rmat_graph(8, 8, seed=5)
        g.validate()

    def test_power_law_ish_degrees(self):
        g = rmat_graph(10, 16, seed=0)
        deg = g.edges.degrees()
        # Heavy tail: the max degree dwarfs the median.
        assert deg.max() > 4 * np.median(deg[deg > 0])
