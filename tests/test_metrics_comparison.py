"""Unit tests for NMI and ARI."""

import numpy as np
import pytest

from repro.metrics import (
    Partition,
    adjusted_rand_index,
    normalized_mutual_information,
)


def P(*labels):
    return Partition.from_labels(np.array(labels))


class TestNMI:
    def test_identical(self):
        a = P(0, 0, 1, 1)
        assert normalized_mutual_information(a, a) == pytest.approx(1.0)

    def test_renamed_identical(self):
        assert normalized_mutual_information(
            P(0, 0, 1, 1), P(1, 1, 0, 0)
        ) == pytest.approx(1.0)

    def test_independent_near_zero(self):
        rng = np.random.default_rng(0)
        a = Partition.from_labels(rng.integers(0, 5, 2000))
        b = Partition.from_labels(rng.integers(0, 5, 2000))
        assert abs(normalized_mutual_information(a, b)) < 0.05

    def test_degenerate_all_one_vs_split(self):
        assert normalized_mutual_information(P(0, 0, 0), P(0, 1, 2)) == 0.0

    def test_both_degenerate(self):
        assert normalized_mutual_information(P(0, 0), P(0, 0)) == 1.0

    def test_symmetric(self):
        a, b = P(0, 0, 1, 2), P(0, 1, 1, 1)
        assert normalized_mutual_information(
            a, b
        ) == pytest.approx(normalized_mutual_information(b, a))

    def test_range(self):
        rng = np.random.default_rng(1)
        for _ in range(10):
            a = Partition.from_labels(rng.integers(0, 4, 50))
            b = Partition.from_labels(rng.integers(0, 4, 50))
            v = normalized_mutual_information(a, b)
            assert -1e-9 <= v <= 1 + 1e-9

    def test_mismatched_sizes(self):
        with pytest.raises(ValueError):
            normalized_mutual_information(P(0, 1), P(0, 1, 2))

    def test_empty(self):
        e = Partition(np.empty(0, dtype=np.int64))
        assert normalized_mutual_information(e, e) == 1.0


class TestARI:
    def test_identical(self):
        a = P(0, 0, 1, 1)
        assert adjusted_rand_index(a, a) == pytest.approx(1.0)

    def test_renamed(self):
        assert adjusted_rand_index(P(0, 0, 1), P(2, 2, 0)) == pytest.approx(1.0)

    def test_independent_near_zero(self):
        rng = np.random.default_rng(2)
        a = Partition.from_labels(rng.integers(0, 5, 2000))
        b = Partition.from_labels(rng.integers(0, 5, 2000))
        assert abs(adjusted_rand_index(a, b)) < 0.05

    def test_known_value(self):
        # sklearn's doc example: ARI([0,0,1,2],[0,0,1,1]) = 0.571428...
        a = P(0, 0, 1, 2)
        b = P(0, 0, 1, 1)
        assert adjusted_rand_index(a, b) == pytest.approx(0.5714285714, abs=1e-9)

    def test_symmetric(self):
        a, b = P(0, 1, 1, 2), P(0, 0, 1, 2)
        assert adjusted_rand_index(a, b) == pytest.approx(
            adjusted_rand_index(b, a)
        )

    def test_degenerate_same(self):
        assert adjusted_rand_index(P(0, 0, 0), P(0, 0, 0)) == 1.0

    def test_empty(self):
        e = Partition(np.empty(0, dtype=np.int64))
        assert adjusted_rand_index(e, e) == 1.0
