"""Shared fixtures for the test suite, plus a per-test timeout guard.

The timeout guard exists for the fault-injection suite: it exercises a
worker-process pool under injected crashes and delays, and a supervision
bug there hangs rather than fails.  ``pytest-timeout`` is not a
dependency of this repo, so a minimal SIGALRM-based equivalent lives
here — a ``@pytest.mark.timeout(seconds)`` marker (or the
``REPRO_TEST_TIMEOUT`` environment variable as a suite-wide default)
aborts a stuck test with a traceback instead of wedging CI.  SIGALRM is
main-thread/Unix only, which covers how this suite runs everywhere it
is supported; elsewhere the guard degrades to a no-op.
"""

from __future__ import annotations

import os
import signal

import numpy as np
import pytest

from repro.generators import (
    complete_graph,
    karate_club,
    path_graph,
    ring_of_cliques,
    star_graph,
    two_triangles,
)
from repro.graph import from_edges

_HAS_SIGALRM = hasattr(signal, "SIGALRM")


def _test_timeout_s(item: pytest.Item) -> float | None:
    marker = item.get_closest_marker("timeout")
    if marker is not None and marker.args:
        return float(marker.args[0])
    env = os.environ.get("REPRO_TEST_TIMEOUT", "")
    if env:
        try:
            return float(env)
        except ValueError:
            return None
    return None


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item: pytest.Item):
    seconds = _test_timeout_s(item) if _HAS_SIGALRM else None
    if not seconds or seconds <= 0:
        return (yield)

    def _expired(signum, frame):
        raise TimeoutError(
            f"{item.nodeid} exceeded its {seconds:g}s timeout"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        return (yield)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def karate():
    return karate_club()


@pytest.fixture
def triangles():
    return two_triangles()


@pytest.fixture
def cliques():
    return ring_of_cliques(5, 4)


@pytest.fixture
def star():
    return star_graph(10)


@pytest.fixture
def path():
    return path_graph(8)


@pytest.fixture
def k5():
    return complete_graph(5)


@pytest.fixture
def random_graph_factory():
    """Factory producing small Erdős–Rényi-ish graphs with weights."""

    def make(n=30, m=60, seed=0, weighted=True, n_vertices=None):
        rng = np.random.default_rng(seed)
        i = rng.integers(0, n, size=m)
        j = rng.integers(0, n, size=m)
        keep = i != j
        w = rng.integers(1, 10, size=m).astype(float) if weighted else None
        return from_edges(
            i[keep],
            j[keep],
            w[keep] if w is not None else None,
            n_vertices=n_vertices or n,
        )

    return make
