"""Shared fixtures for the test suite, plus a per-test timeout guard.

The timeout guard exists for the fault-injection suite: it exercises a
worker-process pool under injected crashes and delays, and a supervision
bug there hangs rather than fails.  ``pytest-timeout`` is not a
dependency of this repo, so a minimal SIGALRM-based equivalent lives
here — a ``@pytest.mark.timeout(seconds)`` marker (or the
``REPRO_TEST_TIMEOUT`` environment variable as a suite-wide default)
aborts a stuck test with a traceback instead of wedging CI.  SIGALRM is
main-thread/Unix only, which covers how this suite runs everywhere it
is supported; elsewhere the guard degrades to a no-op.
"""

from __future__ import annotations

import os
import signal
import sys
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

import numpy as np
import pytest

from repro.generators import (
    complete_graph,
    karate_club,
    path_graph,
    ring_of_cliques,
    star_graph,
    two_triangles,
)
from repro.graph import from_edges

_HAS_SIGALRM = hasattr(signal, "SIGALRM")


def _test_timeout_s(item: pytest.Item) -> float | None:
    marker = item.get_closest_marker("timeout")
    if marker is not None and marker.args:
        return float(marker.args[0])
    env = os.environ.get("REPRO_TEST_TIMEOUT", "")
    if env:
        try:
            return float(env)
        except ValueError:
            return None
    return None


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item: pytest.Item):
    seconds = _test_timeout_s(item) if _HAS_SIGALRM else None
    if not seconds or seconds <= 0:
        return (yield)

    def _expired(signum, frame):
        raise TimeoutError(
            f"{item.nodeid} exceeded its {seconds:g}s timeout"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        return (yield)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


# ------------------------------------------------ atomic-write faults
@dataclass
class _WriteFault:
    """One armed corruption, matched by substring of the final path."""

    match: str
    mode: str  # "torn" | "bitflip"
    keep: float = 0.5  # torn: fraction of committed bytes surviving
    offset: int | None = None  # bitflip: byte to flip (default: middle)
    fired: bool = False


class AtomicWriteFaults:
    """Corrupts files *after* ``atomic_write`` commits them.

    Simulates what the atomic-rename contract cannot prevent — media
    corruption of a file at rest — so reader-side validation (CRCs,
    schema checks, quarantine) can be exercised against every consumer
    through one fixture.  Each armed fault fires once, on the first
    committed path containing its ``match`` substring.
    """

    def __init__(self) -> None:
        self.faults: list[_WriteFault] = []
        self.corrupted: list[Path] = []

    def torn(self, match: str, *, keep: float = 0.5) -> None:
        """Arm a truncation: only ``keep`` of the bytes survive."""
        self.faults.append(_WriteFault(match, "torn", keep=keep))

    def bitflip(self, match: str, *, offset: int | None = None) -> None:
        """Arm a single flipped byte (default: mid-file)."""
        self.faults.append(_WriteFault(match, "bitflip", offset=offset))

    def _apply(self, path: Path) -> None:
        for f in self.faults:
            if f.fired or f.match not in str(path):
                continue
            f.fired = True
            data = path.read_bytes()
            if not data:
                return
            if f.mode == "torn":
                path.write_bytes(data[: int(len(data) * f.keep)])
            else:
                k = f.offset if f.offset is not None else len(data) // 2
                corrupt = bytearray(data)
                corrupt[k] ^= 0xFF
                path.write_bytes(bytes(corrupt))
            self.corrupted.append(path)
            return


@pytest.fixture
def atomic_write_faults(monkeypatch):
    """Intercept every ``atomic_write`` in the tree with fault injection.

    Patches the canonical writer *and* every ``repro`` module that
    bound it by name, so all durable-artifact writers (checkpoints,
    snapshots, ledgers, traces, status files, spill stores, WAL
    manifests) route through the corruptor.
    """
    import repro.util.atomicio as aio

    plan = AtomicWriteFaults()
    real = aio.atomic_write

    @contextmanager
    def faulty(path, *, mode="w", encoding=None):
        with real(path, mode=mode, encoding=encoding) as fh:
            yield fh
        plan._apply(Path(os.fspath(path)))

    monkeypatch.setattr(aio, "atomic_write", faulty)
    for name, module in list(sys.modules.items()):
        if not name.startswith("repro"):
            continue
        if getattr(module, "atomic_write", None) is real:
            monkeypatch.setattr(module, "atomic_write", faulty)
    return plan


@pytest.fixture
def karate():
    return karate_club()


@pytest.fixture
def triangles():
    return two_triangles()


@pytest.fixture
def cliques():
    return ring_of_cliques(5, 4)


@pytest.fixture
def star():
    return star_graph(10)


@pytest.fixture
def path():
    return path_graph(8)


@pytest.fixture
def k5():
    return complete_graph(5)


@pytest.fixture
def random_graph_factory():
    """Factory producing small Erdős–Rényi-ish graphs with weights."""

    def make(n=30, m=60, seed=0, weighted=True, n_vertices=None):
        rng = np.random.default_rng(seed)
        i = rng.integers(0, n, size=m)
        j = rng.integers(0, n, size=m)
        keep = i != j
        w = rng.integers(1, 10, size=m).astype(float) if weighted else None
        return from_edges(
            i[keep],
            j[keep],
            w[keep] if w is not None else None,
            n_vertices=n_vertices or n,
        )

    return make
