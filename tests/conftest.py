"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.generators import (
    complete_graph,
    karate_club,
    path_graph,
    ring_of_cliques,
    star_graph,
    two_triangles,
)
from repro.graph import from_edges


@pytest.fixture
def karate():
    return karate_club()


@pytest.fixture
def triangles():
    return two_triangles()


@pytest.fixture
def cliques():
    return ring_of_cliques(5, 4)


@pytest.fixture
def star():
    return star_graph(10)


@pytest.fixture
def path():
    return path_graph(8)


@pytest.fixture
def k5():
    return complete_graph(5)


@pytest.fixture
def random_graph_factory():
    """Factory producing small Erdős–Rényi-ish graphs with weights."""

    def make(n=30, m=60, seed=0, weighted=True, n_vertices=None):
        rng = np.random.default_rng(seed)
        i = rng.integers(0, n, size=m)
        j = rng.integers(0, n, size=m)
        keep = i != j
        w = rng.integers(1, 10, size=m).astype(float) if weighted else None
        return from_edges(
            i[keep],
            j[keep],
            w[keep] if w is not None else None,
            n_vertices=n_vertices or n,
        )

    return make
