"""Tests for Chrome trace-event (Perfetto) export (`repro.obs.perfetto`)."""

from __future__ import annotations

import json

import pytest

from repro.obs import Tracer, to_chrome_trace, write_perfetto
from repro.obs.trace import Span


def make_trace():
    tr = Tracer()
    with tr.span("level", level=0):
        with tr.span("score", level=0) as sp:
            sp.set(items=7, scorer="modularity")
    tr.record_span(
        "worker_chunk",
        start_ns=tr.spans[0].start_ns,
        end_ns=tr.spans[0].end_ns,
        pid=999_999,
        lo=0,
        hi=7,
    )
    return tr


def complete_events(doc):
    return [e for e in doc["traceEvents"] if e["ph"] == "X"]


def metadata_events(doc):
    return [e for e in doc["traceEvents"] if e["ph"] == "M"]


class TestToChromeTrace:
    def test_one_x_event_per_span(self):
        tr = make_trace()
        doc = to_chrome_trace(tr.spans)
        assert len(complete_events(doc)) == len(tr.spans)

    def test_event_schema(self):
        doc = to_chrome_trace(make_trace().spans)
        for ev in complete_events(doc):
            assert set(ev) >= {"name", "cat", "ph", "ts", "dur", "pid", "tid", "args"}
            assert ev["ts"] >= 0
            assert ev["dur"] >= 0
            assert isinstance(ev["pid"], int) and isinstance(ev["tid"], int)

    def test_timestamps_microseconds_relative_to_origin(self):
        tr = make_trace()
        doc = to_chrome_trace(tr.spans)
        origin_ns = min(s.start_ns for s in tr.spans)
        by_name = {e["name"]: e for e in complete_events(doc)}
        score = next(s for s in tr.spans if s.name == "score")
        assert by_name["score"]["ts"] == pytest.approx(
            (score.start_ns - origin_ns) / 1e3
        )
        assert by_name["score"]["dur"] == pytest.approx(
            score.duration_ns / 1e3
        )

    def test_args_carry_span_identity_level_items_attrs(self):
        doc = to_chrome_trace(make_trace().spans)
        score = next(
            e for e in complete_events(doc) if e["name"] == "score"
        )
        assert score["args"]["level"] == 0
        assert score["args"]["items"] == 7
        assert score["args"]["scorer"] == "modularity"
        assert "span_id" in score["args"] and "parent_id" in score["args"]

    def test_worker_lane_gets_own_process_track(self):
        doc = to_chrome_trace(make_trace().spans)
        lane = next(
            e for e in complete_events(doc) if e["name"] == "worker_chunk"
        )
        assert lane["pid"] == 999_999
        names = {
            (e["pid"], e["args"]["name"])
            for e in metadata_events(doc)
            if e["name"] == "process_name"
        }
        assert (999_999, "worker 999999") in names
        assert any(label == "repro (parent)" for _, label in names)

    def test_thread_name_metadata_per_lane(self):
        doc = to_chrome_trace(make_trace().spans)
        thread_meta = [
            e for e in metadata_events(doc) if e["name"] == "thread_name"
        ]
        lanes = {
            (e["pid"], e["tid"]) for e in complete_events(doc)
        }
        assert {(e["pid"], e["tid"]) for e in thread_meta} == lanes

    def test_v1_spans_without_pid_land_on_one_lane(self):
        spans = [
            Span(name="a", span_id=0, start_ns=0, end_ns=100),
            Span(name="b", span_id=1, parent_id=0, start_ns=10, end_ns=50),
        ]
        doc = to_chrome_trace(spans)
        pids = {e["pid"] for e in complete_events(doc)}
        assert len(pids) == 1

    def test_empty_span_list(self):
        doc = to_chrome_trace([])
        assert complete_events(doc) == []
        assert doc["displayTimeUnit"] == "ms"

    def test_meta_lands_in_other_data(self):
        doc = to_chrome_trace([], meta={"graph": "karate"})
        assert doc["otherData"] == {"graph": "karate"}


class TestWritePerfetto:
    def test_writes_valid_json(self, tmp_path):
        tr = make_trace()
        out = tmp_path / "trace.perfetto.json"
        n = write_perfetto(list(tr.spans), out)
        doc = json.loads(out.read_text())
        assert len(doc["traceEvents"]) == n
        assert len(complete_events(doc)) == len(tr.spans)

    def test_no_tmp_residue(self, tmp_path):
        out = tmp_path / "t.json"
        write_perfetto(list(make_trace().spans), out)
        assert [p.name for p in tmp_path.iterdir()] == ["t.json"]

    def test_failed_write_leaves_no_final_file(self, tmp_path):
        target = tmp_path / "missing-dir" / "t.json"
        with pytest.raises(OSError):
            write_perfetto(list(make_trace().spans), target)
        assert not target.exists()
