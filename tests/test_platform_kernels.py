"""Unit tests for KernelRecord / TraceRecorder."""

import pytest

from repro.platform import KernelRecord, TraceRecorder


class TestKernelRecord:
    def test_defaults(self):
        r = KernelRecord(name="k", items=10)
        assert r.mem_words == 0
        assert r.contention == 0.0
        assert r.level == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            KernelRecord(name="k", items=-1)
        with pytest.raises(ValueError):
            KernelRecord(name="k", items=1, mem_words=-1)

    def test_contention_range(self):
        with pytest.raises(ValueError):
            KernelRecord(name="k", items=1, contention=1.5)

    def test_frozen(self):
        r = KernelRecord(name="k", items=1)
        with pytest.raises(AttributeError):
            r.items = 2  # type: ignore[misc]


class TestTraceRecorder:
    def test_level_stamping(self):
        rec = TraceRecorder()
        rec.record(KernelRecord(name="a", items=1))
        rec.next_level()
        rec.record(KernelRecord(name="b", items=2))
        assert rec.records[0].level == 0
        assert rec.records[1].level == 1
        assert rec.n_levels == 2

    def test_by_name_and_level(self):
        rec = TraceRecorder()
        rec.record(KernelRecord(name="a", items=1))
        rec.record(KernelRecord(name="b", items=2))
        rec.next_level()
        rec.record(KernelRecord(name="a", items=3))
        assert len(rec.by_name("a")) == 2
        assert len(rec.by_level(0)) == 2
        assert len(rec.by_level(1)) == 1

    def test_total_items(self):
        rec = TraceRecorder()
        rec.record(KernelRecord(name="a", items=5))
        rec.record(KernelRecord(name="b", items=7))
        assert rec.total_items() == 12
        assert rec.total_items("a") == 5

    def test_empty(self):
        rec = TraceRecorder()
        assert rec.n_levels == 0
        assert rec.total_items() == 0
