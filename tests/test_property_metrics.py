"""Property-based tests for the metrics layer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.graph import from_edges
from repro.metrics import (
    Partition,
    adjusted_rand_index,
    conductances,
    coverage,
    modularity,
    normalized_mutual_information,
)


@st.composite
def graph_and_partition(draw):
    n = draw(st.integers(2, 25))
    m = draw(st.integers(1, 60))
    i = draw(hnp.arrays(np.int64, m, elements=st.integers(0, n - 1)))
    j = draw(hnp.arrays(np.int64, m, elements=st.integers(0, n - 1)))
    g = from_edges(i, j, None, n_vertices=n)
    labels = draw(hnp.arrays(np.int64, n, elements=st.integers(0, 5)))
    return g, Partition.from_labels(labels)


@st.composite
def partition_pair(draw):
    n = draw(st.integers(1, 40))
    a = draw(hnp.arrays(np.int64, n, elements=st.integers(0, 6)))
    b = draw(hnp.arrays(np.int64, n, elements=st.integers(0, 6)))
    return Partition.from_labels(a), Partition.from_labels(b)


class TestMetricProperties:
    @given(graph_and_partition())
    @settings(max_examples=60, deadline=None)
    def test_modularity_bounded(self, args):
        g, p = args
        q = modularity(g, p)
        assert -1.0 - 1e-9 <= q <= 1.0 + 1e-9

    @given(graph_and_partition())
    @settings(max_examples=60, deadline=None)
    def test_coverage_in_unit_interval(self, args):
        g, p = args
        assert 0.0 <= coverage(g, p) <= 1.0

    @given(graph_and_partition())
    @settings(max_examples=60, deadline=None)
    def test_conductances_in_unit_interval(self, args):
        g, p = args
        phi = conductances(g, p)
        assert np.all(phi >= 0.0)
        assert np.all(phi <= 1.0 + 1e-9)

    @given(graph_and_partition())
    @settings(max_examples=40, deadline=None)
    def test_all_in_one_extremes(self, args):
        g, _ = args
        one = Partition(np.zeros(g.n_vertices, dtype=np.int64))
        assert coverage(g, one) == 1.0
        assert abs(modularity(g, one)) < 1e-12

    @given(partition_pair())
    @settings(max_examples=60, deadline=None)
    def test_comparison_symmetry_and_self(self, pair):
        a, b = pair
        assert abs(
            normalized_mutual_information(a, b)
            - normalized_mutual_information(b, a)
        ) < 1e-9
        assert abs(
            adjusted_rand_index(a, b) - adjusted_rand_index(b, a)
        ) < 1e-9
        assert normalized_mutual_information(a, a) == pytest.approx(1.0)
        assert adjusted_rand_index(a, a) == pytest.approx(1.0)
