"""Unit and integration tests for the per-level quality timeline."""

import numpy as np
import pytest

from repro.core import detect_communities
from repro.generators import planted_partition_graph
from repro.metrics import coverage, modularity
from repro.obs import (
    NULL_TIMELINE,
    NullTimeline,
    QualityTimeline,
    as_timeline,
)
from repro.obs.timeline import (
    SIZE_HISTOGRAM_EDGES,
    TIMELINE_SCHEMA_VERSION,
    LevelQuality,
)


class TestRecordLevel:
    def test_sample_fields(self):
        tl = QualityTimeline()
        s = tl.record_level(
            level=0,
            n_vertices_entering=100,
            n_pairs=40,
            matching_passes=3,
            n_communities=60,
            modularity=0.25,
            coverage=0.4,
            member_counts=np.array([1, 2, 4, 1]),
        )
        assert s.level == 0
        assert s.n_communities == 60
        assert s.merge_fraction == pytest.approx(0.4)
        assert s.mirror_coverage == pytest.approx(0.6)
        assert s.matching_passes == 3
        assert tl.n_levels == 1
        assert tl.final is s

    def test_size_histogram_shape(self):
        tl = QualityTimeline()
        s = tl.record_level(
            level=0,
            n_vertices_entering=10,
            n_pairs=2,
            matching_passes=1,
            n_communities=8,
            modularity=0.0,
            coverage=0.0,
            member_counts=np.array([1, 1, 2, 3, 5, 8]),
        )
        h = s.community_sizes
        assert h["edges"] == list(SIZE_HISTOGRAM_EDGES)
        assert len(h["counts"]) == len(SIZE_HISTOGRAM_EDGES) + 1
        assert h["total"] == 6
        assert h["sum"] == 20.0
        assert h["max"] == 8

    def test_empty_entering_vertices(self):
        tl = QualityTimeline()
        s = tl.record_level(
            level=0,
            n_vertices_entering=0,
            n_pairs=0,
            matching_passes=0,
            n_communities=0,
            modularity=0.0,
            coverage=1.0,
            member_counts=np.array([]),
        )
        assert s.merge_fraction == 0.0
        assert s.community_sizes["max"] == 0

    def test_empty_timeline(self):
        tl = QualityTimeline()
        assert tl.final is None
        assert tl.n_levels == 0
        assert tl.as_dict()["levels"] == []


class TestRoundTrip:
    def test_dict_round_trip(self):
        tl = QualityTimeline()
        for lvl in range(3):
            tl.record_level(
                level=lvl,
                n_vertices_entering=100 >> lvl,
                n_pairs=30 >> lvl,
                matching_passes=lvl + 1,
                n_communities=70 >> lvl,
                modularity=0.1 * lvl,
                coverage=0.2 * lvl,
                member_counts=np.arange(1, 5),
            )
        d = tl.as_dict()
        assert d["version"] == TIMELINE_SCHEMA_VERSION
        tl2 = QualityTimeline.from_dict(d)
        assert tl2.levels == tl.levels
        assert isinstance(tl2.final, LevelQuality)

    def test_from_dict_rejects_bad_version(self):
        with pytest.raises(ValueError, match="version"):
            QualityTimeline.from_dict({"version": 999, "levels": []})


class TestNullTimeline:
    def test_noop(self):
        nt = NullTimeline()
        assert nt.record_level(level=0) is None
        assert nt.final is None
        assert nt.levels == ()
        assert nt.as_dict()["levels"] == []
        assert not nt.enabled

    def test_as_timeline(self):
        assert as_timeline(None) is NULL_TIMELINE
        tl = QualityTimeline()
        assert as_timeline(tl) is tl


class TestDetectIntegration:
    def test_timeline_matches_level_stats(self):
        graph = planted_partition_graph(500, seed=7)
        tl = QualityTimeline()
        result = detect_communities(graph, timeline=tl)
        assert tl.n_levels == result.n_levels > 0
        for sample, stats in zip(tl.levels, result.levels):
            assert sample.level == stats.level
            assert sample.modularity == stats.modularity_after
            assert sample.coverage == stats.coverage_after
            assert sample.mirror_coverage == pytest.approx(
                1.0 - stats.coverage_after
            )
            assert sample.matching_passes == stats.matching_passes
            assert sample.merge_fraction == pytest.approx(
                stats.n_pairs / stats.n_vertices
            )
        # The final sample describes the returned partition.
        final = tl.final
        assert final.n_communities == result.n_communities
        assert final.modularity == pytest.approx(
            modularity(graph, result.partition), abs=1e-9
        )
        assert final.coverage == pytest.approx(
            coverage(graph, result.partition), abs=1e-9
        )

    def test_community_sizes_sum_to_input_vertices(self):
        graph = planted_partition_graph(300, seed=3)
        tl = QualityTimeline()
        detect_communities(graph, timeline=tl)
        for sample in tl.levels:
            h = sample.community_sizes
            assert h["sum"] == graph.n_vertices
            assert h["total"] == sample.n_communities

    def test_default_is_null_timeline(self):
        graph = planted_partition_graph(200, seed=1)
        result = detect_communities(graph)  # must not record anything
        assert result.n_levels > 0


class TestTunerField:
    def test_record_level_stores_tuner_copy(self):
        tl = QualityTimeline()
        picked = {"matcher": "gmm", "contractor": "bucket",
                  "constrained_sharded": False}
        s = tl.record_level(
            level=0,
            n_vertices_entering=10,
            n_pairs=2,
            matching_passes=1,
            n_communities=8,
            modularity=0.1,
            coverage=0.3,
            member_counts=np.array([1, 1, 2]),
            tuner=picked,
        )
        assert s.tuner == picked
        picked["matcher"] = "mutated"
        assert s.tuner["matcher"] == "gmm"  # stored a copy

    def test_tuner_defaults_none_and_round_trips(self):
        tl = QualityTimeline()
        tl.record_level(
            level=0,
            n_vertices_entering=10,
            n_pairs=2,
            matching_passes=1,
            n_communities=8,
            modularity=0.1,
            coverage=0.3,
            member_counts=np.array([1, 1, 2]),
        )
        tl.record_level(
            level=1,
            n_vertices_entering=8,
            n_pairs=1,
            matching_passes=1,
            n_communities=7,
            modularity=0.2,
            coverage=0.4,
            member_counts=np.array([1, 2]),
            tuner={"matcher": "sweep"},
        )
        assert tl.levels[0].tuner is None
        d = tl.as_dict()
        assert d["version"] == TIMELINE_SCHEMA_VERSION  # still v1
        tl2 = QualityTimeline.from_dict(d)
        assert tl2.levels == tl.levels
        assert tl2.levels[1].tuner == {"matcher": "sweep"}

    def test_pre_tuner_dict_still_loads(self):
        # A timeline serialized before the tuner field existed has no
        # "tuner" key per level; from_dict must default it to None.
        tl = QualityTimeline()
        tl.record_level(
            level=0,
            n_vertices_entering=10,
            n_pairs=2,
            matching_passes=1,
            n_communities=8,
            modularity=0.1,
            coverage=0.3,
            member_counts=np.array([1, 1, 2]),
        )
        d = tl.as_dict()
        for lvl in d["levels"]:
            lvl.pop("tuner", None)
        tl2 = QualityTimeline.from_dict(d)
        assert tl2.levels[0].tuner is None
