"""Property-based tests for connected components vs scipy's reference."""

import numpy as np
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.graph import connected_components


@st.composite
def edge_sets(draw):
    n = draw(st.integers(1, 60))
    m = draw(st.integers(0, 120))
    ei = draw(hnp.arrays(np.int64, m, elements=st.integers(0, n - 1)))
    ej = draw(hnp.arrays(np.int64, m, elements=st.integers(0, n - 1)))
    return n, ei, ej


class TestComponentsProperties:
    @given(edge_sets())
    @settings(max_examples=80, deadline=None)
    def test_matches_scipy(self, args):
        n, ei, ej = args
        labels, k = connected_components(n, ei, ej)
        if len(ei):
            mat = sp.coo_matrix((np.ones(len(ei)), (ei, ej)), shape=(n, n))
            k_ref, labels_ref = csgraph.connected_components(mat, directed=False)
        else:
            k_ref, labels_ref = n, np.arange(n)
        assert k == k_ref
        pairs = set(zip(labels.tolist(), list(labels_ref)))
        assert len(pairs) == k

    @given(edge_sets())
    @settings(max_examples=60, deadline=None)
    def test_endpoints_always_agree(self, args):
        n, ei, ej = args
        labels, _ = connected_components(n, ei, ej)
        np.testing.assert_array_equal(labels[ei], labels[ej])

    @given(edge_sets())
    @settings(max_examples=60, deadline=None)
    def test_labels_dense(self, args):
        n, ei, ej = args
        labels, k = connected_components(n, ei, ej)
        if n:
            assert set(np.unique(labels)) == set(range(k))
