"""Property-based tests for the full agglomeration driver."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro import TerminationCriteria, detect_communities, modularity
from repro.graph import from_edges
from repro.metrics import coverage


@st.composite
def graphs(draw):
    n = draw(st.integers(2, 25))
    m = draw(st.integers(1, 70))
    i = draw(hnp.arrays(np.int64, m, elements=st.integers(0, n - 1)))
    j = draw(hnp.arrays(np.int64, m, elements=st.integers(0, n - 1)))
    w = draw(
        hnp.arrays(np.float64, m, elements=st.floats(0.5, 5.0, allow_nan=False))
    )
    return from_edges(i, j, w, n_vertices=n)


class TestDriverProperties:
    @given(graphs())
    @settings(max_examples=40, deadline=None)
    def test_levels_modularity_monotone(self, g):
        res = detect_communities(
            g, termination=TerminationCriteria.local_maximum()
        )
        qs = [s.modularity_after for s in res.levels]
        assert all(b >= a - 1e-9 for a, b in zip(qs, qs[1:]))

    @given(graphs())
    @settings(max_examples=40, deadline=None)
    def test_final_graph_consistent_with_partition(self, g):
        res = detect_communities(
            g, termination=TerminationCriteria.local_maximum()
        )
        assert res.final_graph.n_vertices == res.n_communities
        assert abs(
            res.final_graph.coverage() - coverage(g, res.partition)
        ) < 1e-9
        assert abs(
            res.final_graph.total_weight() - g.total_weight()
        ) < 1e-6 * max(1.0, g.total_weight())

    @given(graphs())
    @settings(max_examples=30, deadline=None)
    def test_nonnegative_final_modularity_vs_singletons(self, g):
        """Each merge strictly improves modularity, so the result is at
        least as good as the all-singletons start."""
        res = detect_communities(
            g, termination=TerminationCriteria.local_maximum()
        )
        from repro.metrics import Partition

        q_single = modularity(g, Partition.singletons(g.n_vertices))
        q_final = modularity(g, res.partition)
        assert q_final >= q_single - 1e-9

    @given(graphs(), st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_min_communities_respected(self, g, k):
        res = detect_communities(
            g,
            termination=TerminationCriteria(coverage=None, min_communities=k),
        )
        assert res.n_communities >= min(k, g.n_vertices)

    @given(graphs(), st.integers(2, 6))
    @settings(max_examples=30, deadline=None)
    def test_max_community_size_respected(self, g, cap):
        res = detect_communities(
            g,
            termination=TerminationCriteria(
                coverage=None, max_community_size=cap
            ),
        )
        assert res.partition.sizes().max() <= cap
