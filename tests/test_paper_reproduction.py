"""Fast end-to-end reproduction checks inside the unit suite.

The benchmarks regenerate the paper's exhibits at full (scaled) size;
these tests re-assert the headline *shape* claims at quarter scale so
that ``pytest tests/`` alone evidences the reproduction.  Bands are wider
than the benchmarks' (quarter-scale graphs sit further from the model's
calibration point).
"""

import pytest

from repro.bench import load_dataset, peak_rate, run_with_trace, scaling_experiment
from repro.bench.experiments import ALL_PLATFORMS
from repro.bench.paper_data import FIG2_BEST_SPEEDUPS, TABLE1, TABLE2
from repro.platform import PLATFORMS


@pytest.fixture(scope="module")
def sweeps():
    # rmat shrinks well (quarter scale); soc-LiveJournal1 is already tiny
    # at benchmark scale and collapses entirely on the XMT if shrunk more.
    scales = {"rmat-24-16": 0.25, "soc-LiveJournal1": 1.0}
    out = {}
    for gname, scale in scales.items():
        graph = load_dataset(gname, scale=scale, seed=1)
        run = run_with_trace(graph, graph_name=gname)
        out[gname] = scaling_experiment(run, ALL_PLATFORMS, seed=0)
    return out


class TestTable1Facts:
    def test_machine_registry_matches_paper(self):
        for name, (procs, threads, speed) in TABLE1.items():
            row = PLATFORMS[name].table1_row()
            assert row == (name, procs, threads, speed)


class TestTable2Roles:
    def test_dataset_registry_matches_paper(self):
        from repro.bench import DATASETS

        for name, (v, e, ref) in TABLE2.items():
            assert DATASETS[name].paper_vertices == v
            assert DATASETS[name].paper_edges == e


class TestFigure2Shape:
    def test_speedups_within_band(self, sweeps):
        for (g, plat), paper in FIG2_BEST_SPEEDUPS.items():
            ours = sweeps[g][plat].best_speedup()
            assert paper / 3 <= ours <= paper * 3, (g, plat, ours, paper)

    def test_rmat_platform_ordering(self, sweeps):
        su = {p: sr.best_speedup() for p, sr in sweeps["rmat-24-16"].items()}
        assert su["XMT2"] > su["E7-8870"] > su["X5570"]
        assert su["XMT"] > su["X5650"]

    def test_small_graph_collapses_on_xmt(self, sweeps):
        lj = {p: sr.best_speedup() for p, sr in sweeps["soc-LiveJournal1"].items()}
        assert lj["XMT"] == min(lj.values())
        assert lj["XMT"] < sweeps["rmat-24-16"]["XMT"].best_speedup()


class TestTable3Shape:
    def test_intel_fastest_xmt_slowest(self, sweeps):
        for g, platforms in sweeps.items():
            rates = {p: peak_rate(sr) for p, sr in platforms.items()}
            assert rates["E7-8870"] == max(rates.values())
            assert rates["XMT"] == min(rates.values())

    def test_single_unit_times_order(self, sweeps):
        for g, platforms in sweeps.items():
            t1 = {p: sr.best_single_unit_time() for p, sr in platforms.items()}
            # Intel single threads beat XMT single processors (Figure 1).
            assert max(t1["X5570"], t1["X5650"], t1["E7-8870"]) < t1["XMT"]
            assert t1["XMT2"] < t1["XMT"]
