"""Unit tests for the §IV memory accounting."""

import pytest

from repro.core.memory import MemoryEstimate, algorithm_memory_words


class TestFormulas:
    def test_graph_formula_matches_representation(self, karate):
        est = algorithm_memory_words(34, 78)
        assert est.graph == karate.memory_words()

    def test_scoring_matching_formula(self):
        est = algorithm_memory_words(100, 500)
        assert est.scoring_matching == 500 + 4 * 100

    def test_openmp_locks(self):
        omp = algorithm_memory_words(100, 500, openmp=True)
        xmt = algorithm_memory_words(100, 500, openmp=False)
        assert omp.locks == 100
        assert xmt.locks == 0
        assert omp.total == xmt.total + 100

    def test_contraction_scratch(self):
        est = algorithm_memory_words(100, 500)
        assert est.contraction_scratch == 100 + 1 + 2 * 500
        assert est.contraction_scratch_legacy == 500 + 100

    def test_legacy_flag(self):
        legacy = algorithm_memory_words(100, 500, legacy_contraction=True)
        assert legacy.contraction_scratch == legacy.contraction_scratch_legacy

    def test_new_method_needs_more_scratch(self):
        # §IV-C: "This requires |V|+1+2|E| storage, more than our original."
        est = algorithm_memory_words(1000, 5000)
        assert est.contraction_scratch > est.contraction_scratch_legacy

    def test_bytes(self):
        est = algorithm_memory_words(10, 20)
        assert est.bytes() == 8 * est.total

    def test_validation(self):
        with pytest.raises(ValueError):
            algorithm_memory_words(-1, 5)

    def test_uk_2007_05_sizing(self):
        """The paper's uk-2007-05 (105.9M / 3.3G edges) at 64-bit words
        consumes well over half of the E7 box's 256 GiB by this
        accounting alone — hence §V-C's switch to 32-bit vertex labels
        on the Intel platform (halving it leaves comfortable headroom)."""
        est = algorithm_memory_words(105_896_555, 3_301_876_564)
        gib = est.bytes() / 2**30
        assert gib > 128
        assert gib / 2 < 0.5 * 256
