"""Property-based round-trip and fuzz tests for graph I/O."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import GraphFormatError
from repro.graph import (
    from_edges,
    load_npz,
    read_edgelist,
    read_metis,
    save_npz,
    write_edgelist,
    write_metis,
)


@st.composite
def graphs(draw):
    n = draw(st.integers(1, 20))
    m = draw(st.integers(0, 40))
    i = draw(hnp.arrays(np.int64, m, elements=st.integers(0, n - 1)))
    j = draw(hnp.arrays(np.int64, m, elements=st.integers(0, n - 1)))
    # Exactly representable weights so text round-trips are lossless.
    w = draw(
        hnp.arrays(np.float64, m, elements=st.integers(1, 64).map(float))
    )
    return from_edges(i, j, w, n_vertices=n)


class TestRoundtripProperties:
    @given(g=graphs())
    @settings(max_examples=40, deadline=None)
    def test_edgelist_roundtrip(self, g, tmp_path_factory):
        path = tmp_path_factory.mktemp("io") / "g.txt"
        write_edgelist(g, path)
        back = read_edgelist(path)
        assert back.n_edges == g.n_edges
        assert back.total_weight() == pytest.approx(g.total_weight())
        np.testing.assert_array_equal(back.edges.ei, g.edges.ei)
        np.testing.assert_array_equal(back.edges.ej, g.edges.ej)
        np.testing.assert_array_equal(back.edges.w, g.edges.w)

    @given(g=graphs())
    @settings(max_examples=40, deadline=None)
    def test_metis_roundtrip(self, g, tmp_path_factory):
        path = tmp_path_factory.mktemp("io") / "g.metis"
        write_metis(g, path)
        back = read_metis(path)
        assert back.n_vertices == g.n_vertices
        assert back.n_edges == g.n_edges
        np.testing.assert_array_equal(back.edges.w, g.edges.w)

    @given(g=graphs())
    @settings(max_examples=40, deadline=None)
    def test_npz_roundtrip_exact(self, g, tmp_path_factory):
        path = tmp_path_factory.mktemp("io") / "g.npz"
        save_npz(g, path)
        back = load_npz(path)
        np.testing.assert_array_equal(back.edges.ei, g.edges.ei)
        np.testing.assert_array_equal(back.edges.w, g.edges.w)
        np.testing.assert_array_equal(back.self_weights, g.self_weights)


class TestFuzzReaders:
    """Malformed text must raise GraphFormatError, never crash oddly."""

    @given(text=st.text(alphabet="0123456789 \t\n.-#%abc", max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_edgelist_fuzz(self, text, tmp_path_factory):
        path = tmp_path_factory.mktemp("fuzz") / "g.txt"
        path.write_text(text)
        try:
            g = read_edgelist(path)
            g.validate()  # anything accepted must be a valid graph
        except GraphFormatError:
            pass

    @given(text=st.text(alphabet="0123456789 \n%", max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_metis_fuzz(self, text, tmp_path_factory):
        path = tmp_path_factory.mktemp("fuzz") / "g.metis"
        path.write_text(text)
        try:
            g = read_metis(path)
            g.validate()
        except (GraphFormatError, ValueError):
            pass
