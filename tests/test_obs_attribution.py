"""Tests for the performance-attribution analyzer (`repro.obs.attribution`).

The consistency invariant — every parent span covers its children, and
worker lanes fit their pool region with at most ``n_workers``-fold
overlap — is verified here both on synthetic span trees with planted
violations and on real traced runs over the serial *and* process-pool
backends.
"""

from __future__ import annotations

import math

import pytest

from repro.core import create_kernel, detect_communities
from repro.obs import Tracer
from repro.obs.attribution import (
    amdahl_ceiling,
    attribute_run,
    consistency_report,
    hotspots,
    load_imbalance,
    self_times,
    serial_fraction,
    worker_stats,
)
from repro.obs.trace import Span
from repro.parallel.backends import ProcessPoolBackend


def span(
    name,
    span_id,
    start,
    end,
    *,
    parent=None,
    level=None,
    pid=1000,
    attrs=None,
):
    """A Span with second-denominated start/end for readable fixtures."""
    return Span(
        name=name,
        span_id=span_id,
        parent_id=parent,
        level=level,
        start_ns=int(start * 1e9),
        end_ns=int(end * 1e9),
        pid=pid,
        tid=pid,
        attrs=attrs or {},
    )


def serial_tree():
    """root(0..10) -> a(1..4) -> a1(2..3), b(5..9)."""
    return [
        span("a1", 2, 2.0, 3.0, parent=1),
        span("a", 1, 1.0, 4.0, parent=0),
        span("b", 3, 5.0, 9.0, parent=0),
        span("root", 0, 0.0, 10.0),
    ]


class TestSelfTimes:
    def test_duration_minus_direct_children(self):
        selfs = self_times(serial_tree())
        assert selfs[0] == pytest.approx(10.0 - 3.0 - 4.0)  # root
        assert selfs[1] == pytest.approx(3.0 - 1.0)  # a minus a1
        assert selfs[2] == pytest.approx(1.0)  # leaf
        assert selfs[3] == pytest.approx(4.0)  # leaf

    def test_self_times_partition_root_duration(self):
        selfs = self_times(serial_tree())
        assert sum(selfs.values()) == pytest.approx(10.0)

    def test_worker_lanes_excluded_from_tree(self):
        spans = [
            span("pool_run", 1, 0.0, 2.0, parent=0),
            # Two overlapping lanes — 3s of busy inside a 2s parent.
            span("worker_chunk", 2, 0.0, 1.5, parent=1, pid=2001),
            span("worker_chunk", 3, 0.0, 1.5, parent=1, pid=2002),
            span("root", 0, 0.0, 2.0),
        ]
        selfs = self_times(spans)
        assert 2 not in selfs and 3 not in selfs
        # pool_run keeps its full duration: lanes don't drain it.
        assert selfs[1] == pytest.approx(2.0)

    def test_negative_residue_clamped(self):
        spans = [
            span("child", 1, 0.0, 1.001, parent=0),
            span("parent", 0, 0.0, 1.0),
        ]
        assert self_times(spans)[0] == 0.0

    def test_tracer_built_tree(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        selfs = self_times(tr.spans)
        outer = tr.find("outer")[0]
        inner = tr.find("inner")[0]
        assert selfs[outer.span_id] + selfs[inner.span_id] == pytest.approx(
            outer.duration_s
        )


class TestHotspots:
    def test_ranked_by_total_self_time(self):
        ranked = hotspots(serial_tree())
        assert [h["name"] for h in ranked[:2]] == ["b", "root"]

    def test_shares_sum_to_one(self):
        ranked = hotspots(serial_tree())
        assert sum(h["share"] for h in ranked) == pytest.approx(1.0)

    def test_top_limits_output(self):
        assert len(hotspots(serial_tree(), top=2)) == 2

    def test_same_name_aggregates(self):
        spans = [
            span("work", 1, 0.0, 1.0, parent=0),
            span("work", 2, 2.0, 3.0, parent=0),
            span("root", 0, 0.0, 4.0),
        ]
        (top, _) = hotspots(spans, top=2)
        assert top["name"] == "work"
        assert top["self_s"] == pytest.approx(2.0)
        assert top["n_spans"] == 2

    def test_empty(self):
        assert hotspots([]) == []


class TestLoadImbalance:
    def test_balanced_is_one(self):
        assert load_imbalance({"a": 2.0, "b": 2.0}) == pytest.approx(1.0)

    def test_skew(self):
        assert load_imbalance([3.0, 1.0]) == pytest.approx(1.5)

    def test_empty_and_zero(self):
        assert load_imbalance({}) == 0.0
        assert load_imbalance({"a": 0.0}) == 0.0


class TestWorkerStats:
    def test_groups_lanes_by_pid(self):
        spans = [
            span("pool_run", 1, 0.0, 2.0, parent=0),
            span(
                "worker_chunk", 2, 0.0, 1.0, parent=1, pid=2001,
                attrs={"queue_wait_s": 0.25},
            ),
            span(
                "worker_chunk", 3, 1.0, 2.0, parent=1, pid=2001,
                attrs={"queue_wait_s": 0.25},
            ),
            span("worker_chunk", 4, 0.0, 2.0, parent=1, pid=2002),
            span("root", 0, 0.0, 2.0),
        ]
        w = worker_stats(spans)
        assert w["source"] == "worker_chunk"
        assert w["n_lanes"] == 2
        assert w["n_chunks"] == 3
        assert w["busy_s"]["2001"] == pytest.approx(2.0)
        assert w["busy_s"]["2002"] == pytest.approx(2.0)
        assert w["imbalance"] == pytest.approx(1.0)
        assert w["queue_wait_s"] == pytest.approx(0.5)
        assert w["exec_s"] == pytest.approx(4.0)

    def test_falls_back_to_pool_chunk(self):
        spans = [
            span("pool_chunk", 1, 0.0, 1.0, parent=0),
            span("root", 0, 0.0, 2.0),
        ]
        assert worker_stats(spans)["source"] == "pool_chunk"

    def test_no_lanes(self):
        w = worker_stats(serial_tree())
        assert w["source"] is None
        assert w["n_lanes"] == 0
        assert w["imbalance"] == 0.0


class TestSerialFractionAndAmdahl:
    def test_fully_serial(self):
        sf = serial_fraction(serial_tree())
        assert sf["fraction"] == pytest.approx(1.0)
        assert sf["parallel_s"] == 0.0

    def test_pool_regions_count_as_parallel(self):
        spans = [
            span(
                "pool_run", 1, 2.0, 6.0, parent=0,
                attrs={"mode": "processes", "n_workers": 4},
            ),
            span("root", 0, 0.0, 10.0),
        ]
        sf = serial_fraction(spans)
        assert sf["parallel_s"] == pytest.approx(4.0)
        assert sf["fraction"] == pytest.approx(0.6)

    def test_inline_pool_is_serial(self):
        spans = [
            span("pool_run", 1, 2.0, 6.0, parent=0, attrs={"mode": "inline"}),
            span("root", 0, 0.0, 10.0),
        ]
        assert serial_fraction(spans)["fraction"] == pytest.approx(1.0)

    def test_empty(self):
        assert serial_fraction([])["fraction"] == 1.0

    def test_amdahl_endpoints(self):
        assert amdahl_ceiling(0.0, 8) == 8.0
        assert amdahl_ceiling(1.0, 8) == pytest.approx(1.0)
        assert amdahl_ceiling(0.5, math.inf) == pytest.approx(2.0)

    def test_amdahl_law(self):
        # f=0.1 at N=10: 1 / (0.1 + 0.9/10)
        assert amdahl_ceiling(0.1, 10) == pytest.approx(1.0 / 0.19)

    def test_amdahl_validation(self):
        with pytest.raises(ValueError):
            amdahl_ceiling(-0.1, 4)
        with pytest.raises(ValueError):
            amdahl_ceiling(1.1, 4)
        with pytest.raises(ValueError):
            amdahl_ceiling(0.5, 0)


class TestConsistencyReport:
    def test_clean_tree(self):
        assert consistency_report(serial_tree()) == []

    def test_coverage_violation(self):
        spans = [
            span("a", 1, 0.0, 0.9, parent=0),
            span("b", 2, 0.0, 0.9, parent=0),
            span("parent", 0, 0.0, 1.0),
        ]
        kinds = {v["kind"] for v in consistency_report(spans)}
        assert "coverage" in kinds

    def test_containment_violation(self):
        spans = [
            span("child", 1, 0.5, 3.0, parent=0),
            span("parent", 0, 0.0, 1.0),
        ]
        report = consistency_report(spans)
        assert any(v["kind"] == "containment" for v in report)

    def test_lane_overlap_violation(self):
        spans = [
            # 1 worker allowed, but two full-width lanes = 2x overlap.
            span(
                "pool_run", 0, 0.0, 1.0,
                attrs={"mode": "processes", "n_workers": 1},
            ),
            span("worker_chunk", 1, 0.0, 1.0, parent=0, pid=2001),
            span("worker_chunk", 2, 0.0, 1.0, parent=0, pid=2002),
        ]
        report = consistency_report(spans)
        assert any(v["kind"] == "lane_overlap" for v in report)

    def test_lanes_within_worker_budget_ok(self):
        spans = [
            span(
                "pool_run", 0, 0.0, 1.0,
                attrs={"mode": "processes", "n_workers": 2},
            ),
            span("worker_chunk", 1, 0.0, 1.0, parent=0, pid=2001),
            span("worker_chunk", 2, 0.0, 1.0, parent=0, pid=2002),
        ]
        assert consistency_report(spans) == []

    def test_lane_from_foreign_clock_domain(self):
        spans = [
            span("pool_run", 0, 0.0, 1.0, attrs={"n_workers": 2}),
            # Ends far beyond its pool region: wrong clock domain.
            span("worker_chunk", 1, 50.0, 51.0, parent=0, pid=2001),
        ]
        report = consistency_report(spans)
        assert any(v["kind"] == "containment" for v in report)

    def test_tolerance_suppresses_jitter(self):
        spans = [
            span("child", 1, 0.0, 1.0005, parent=0),
            span("parent", 0, 0.0, 1.0),
        ]
        assert consistency_report(spans) == []
        assert consistency_report(
            spans, rel_tol=0.0, abs_tol_s=0.0
        ) != []


class TestAttributeRun:
    def test_block_shape(self):
        block = attribute_run(serial_tree())
        assert block["version"] == 1
        assert set(block["phases"]) == {"score", "match", "contract"}
        for key in (
            "levels",
            "hotspots",
            "workers",
            "serial",
            "amdahl",
            "consistency",
        ):
            assert key in block

    def test_n_workers_from_span_attrs_not_lane_pids(self):
        # A fork-per-chunk pool leaves one pid per chunk; the Amdahl N
        # must come from the stamped pool width instead.
        spans = [
            span(
                "pool_run", 0, 0.0, 1.0,
                attrs={"mode": "processes", "n_workers": 2},
            ),
        ] + [
            span(
                "worker_chunk", i, 0.1 * i, 0.1 * i + 0.05,
                parent=0, pid=3000 + i,
            )
            for i in range(1, 7)
        ]
        block = attribute_run(spans)
        assert block["workers"]["n_lanes"] == 6
        assert block["amdahl"]["n_workers"] == 2

    def test_per_level_breakdown(self):
        spans = [
            span("score", 1, 0.0, 1.0, parent=0, level=0),
            span("match", 2, 1.0, 2.0, parent=0, level=0),
            span("contract", 3, 2.0, 4.0, parent=0, level=0),
            span("level", 0, 0.0, 4.0, level=0),
            span("score", 5, 4.0, 4.5, parent=4, level=1),
            span("level", 4, 4.0, 5.0, level=1),
        ]
        block = attribute_run(spans)
        assert [lv["level"] for lv in block["levels"]] == [0, 1]
        lv0 = block["levels"][0]
        assert lv0["score_s"] == pytest.approx(1.0)
        assert lv0["contract_s"] == pytest.approx(2.0)
        assert lv0["total_s"] == pytest.approx(4.0)

    def test_empty_trace(self):
        block = attribute_run([])
        assert block["consistency"]["checked"] == 0
        assert block["serial"]["fraction"] == 1.0


@pytest.mark.timeout(120)
class TestRealRunConsistency:
    """The invariant holds on real traces from both execution backends."""

    def test_serial_backend(self, karate):
        tr = Tracer()
        detect_communities(
            karate, create_kernel("scorer", "modularity"), tracer=tr
        )
        block = attribute_run(list(tr.spans))
        assert block["consistency"]["violations"] == []
        assert block["serial"]["fraction"] == pytest.approx(1.0)
        assert block["phases"]["match"]["total_s"] > 0

    def test_process_pool_backend(self, karate):
        tr = Tracer()
        detect_communities(
            karate,
            create_kernel("scorer", "modularity"),
            tracer=tr,
            backend=ProcessPoolBackend(2),
        )
        block = attribute_run(list(tr.spans))
        assert block["consistency"]["violations"] == []
        lanes = [s for s in tr.spans if s.name == "worker_chunk"]
        assert lanes, "process pool must flight-record worker lanes"
        assert block["workers"]["source"] == "worker_chunk"
        assert block["amdahl"]["n_workers"] == 2
        assert 0.0 <= block["serial"]["fraction"] <= 1.0
