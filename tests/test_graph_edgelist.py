"""Unit tests for the parity-hashed bucketed edge list (§IV-A)."""

import numpy as np
import pytest

from repro.errors import InvariantViolation
from repro.graph.edgelist import EdgeList, parity_canonical
from repro.types import VERTEX_DTYPE


class TestParityCanonical:
    def test_same_parity_stores_min_first(self):
        first, second = parity_canonical(np.array([4]), np.array([2]))
        assert first[0] == 2 and second[0] == 4

    def test_same_parity_odd(self):
        first, second = parity_canonical(np.array([7]), np.array([3]))
        assert first[0] == 3 and second[0] == 7

    def test_mixed_parity_stores_max_first(self):
        first, second = parity_canonical(np.array([2]), np.array([5]))
        assert first[0] == 5 and second[0] == 2

    def test_mixed_parity_other_order(self):
        first, second = parity_canonical(np.array([5]), np.array([2]))
        assert first[0] == 5 and second[0] == 2

    def test_orientation_invariant(self):
        rng = np.random.default_rng(0)
        i = rng.integers(0, 100, 200)
        j = rng.integers(0, 100, 200)
        f1, s1 = parity_canonical(i, j)
        f2, s2 = parity_canonical(j, i)
        np.testing.assert_array_equal(f1, f2)
        np.testing.assert_array_equal(s1, s2)

    def test_scatters_hub_edges(self):
        """A hub's edges must land in multiple buckets, not one."""
        hub = np.zeros(10, dtype=np.int64)
        leaves = np.arange(1, 11, dtype=np.int64)
        first, _ = parity_canonical(hub, leaves)
        # Odd leaves store (leaf, hub): the hub does not own those edges.
        assert len(np.unique(first)) > 1


class TestFromRaw:
    def test_basic(self):
        e = EdgeList.from_raw(
            np.array([0, 1]), np.array([1, 2]), None, n_vertices=3
        )
        assert e.n_edges == 2
        assert e.n_vertices == 3
        e.validate()

    def test_duplicate_accumulation(self):
        e = EdgeList.from_raw(
            np.array([0, 1, 0]),
            np.array([1, 0, 1]),
            np.array([1.0, 2.0, 3.0]),
            n_vertices=2,
        )
        assert e.n_edges == 1
        assert e.w[0] == 6.0
        e.validate()

    def test_no_accumulate_keeps_duplicates_invalid(self):
        e = EdgeList.from_raw(
            np.array([0, 1]),
            np.array([1, 0]),
            None,
            n_vertices=2,
            accumulate=False,
        )
        with pytest.raises(InvariantViolation):
            e.validate()

    def test_rejects_self_loops(self):
        with pytest.raises(ValueError, match="self loop"):
            EdgeList.from_raw(np.array([1]), np.array([1]), None, n_vertices=2)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            EdgeList.from_raw(np.array([0]), np.array([5]), None, n_vertices=3)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            EdgeList.from_raw(np.array([0, 1]), np.array([1]), None, 3)

    def test_rejects_bad_weights(self):
        with pytest.raises(ValueError, match="weight"):
            EdgeList.from_raw(
                np.array([0]), np.array([1]), np.array([1.0, 2.0]), 2
            )

    def test_empty(self):
        e = EdgeList.from_raw(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), None, 5
        )
        assert e.n_edges == 0
        assert e.n_vertices == 5
        e.validate()

    def test_unit_weights_default(self):
        e = EdgeList.from_raw(np.array([0, 2]), np.array([1, 3]), None, 4)
        np.testing.assert_array_equal(e.w, [1.0, 1.0])


class TestBuckets:
    def test_bucket_contains_only_first_stored(self):
        rng = np.random.default_rng(1)
        i = rng.integers(0, 50, 300)
        j = rng.integers(0, 50, 300)
        keep = i != j
        e = EdgeList.from_raw(i[keep], j[keep], None, 50)
        for v in range(50):
            sl = e.bucket(v)
            assert np.all(e.ei[sl] == v)

    def test_buckets_tile_edge_array(self):
        rng = np.random.default_rng(2)
        i = rng.integers(0, 20, 100)
        j = rng.integers(0, 20, 100)
        keep = i != j
        e = EdgeList.from_raw(i[keep], j[keep], None, 20)
        total = int((e.bucket_end - e.bucket_start).sum())
        assert total == e.n_edges

    def test_bucket_out_of_range(self):
        e = EdgeList.from_raw(np.array([0]), np.array([1]), None, 2)
        with pytest.raises(IndexError):
            e.bucket(2)
        with pytest.raises(IndexError):
            e.bucket(-1)

    def test_edge_stored_exactly_once(self):
        e = EdgeList.from_raw(np.array([0, 1, 2]), np.array([1, 2, 0]), None, 3)
        # Each unordered pair appears in exactly one bucket.
        pairs = set()
        for v in range(3):
            sl = e.bucket(v)
            for a, b in zip(e.ei[sl], e.ej[sl]):
                pairs.add(frozenset((int(a), int(b))))
        assert len(pairs) == 3


class TestAccessors:
    def test_degrees(self):
        e = EdgeList.from_raw(np.array([0, 0, 1]), np.array([1, 2, 2]), None, 4)
        np.testing.assert_array_equal(e.degrees(), [2, 2, 2, 0])

    def test_strengths(self):
        e = EdgeList.from_raw(
            np.array([0, 1]), np.array([1, 2]), np.array([2.0, 3.0]), 3
        )
        np.testing.assert_allclose(e.strengths(), [2.0, 5.0, 3.0])

    def test_total_weight(self):
        e = EdgeList.from_raw(
            np.array([0, 1]), np.array([1, 2]), np.array([2.0, 3.0]), 3
        )
        assert e.total_weight() == 5.0

    def test_memory_words_matches_paper_accounting(self):
        e = EdgeList.from_raw(np.array([0, 1]), np.array([1, 2]), None, 3)
        assert e.memory_words() == 3 * 2 + 2 * 3

    def test_copy_is_deep(self):
        e = EdgeList.from_raw(np.array([0]), np.array([1]), None, 2)
        c = e.copy()
        c.w[0] = 99.0
        assert e.w[0] == 1.0


class TestValidate:
    def test_detects_parity_violation(self):
        e = EdgeList.from_raw(np.array([0]), np.array([2]), None, 3)
        e.ei, e.ej = e.ej.copy(), e.ei.copy()
        with pytest.raises(InvariantViolation, match="parity"):
            e.validate()

    def test_detects_self_loop(self):
        e = EdgeList.from_raw(np.array([0]), np.array([2]), None, 3)
        e.ej = e.ei.copy()
        with pytest.raises(InvariantViolation):
            e.validate()

    def test_detects_bad_bucket_sizes(self):
        e = EdgeList.from_raw(np.array([0, 2]), np.array([2, 4]), None, 5)
        e.bucket_end = e.bucket_end.copy()
        e.bucket_end[0] += 1
        with pytest.raises(InvariantViolation):
            e.validate()

    def test_detects_length_mismatch(self):
        e = EdgeList.from_raw(np.array([0]), np.array([1]), None, 2)
        e.w = np.array([1.0, 2.0])
        with pytest.raises(InvariantViolation, match="length"):
            e.validate()

    def test_valid_empty(self):
        e = EdgeList.from_raw(
            np.empty(0, dtype=VERTEX_DTYPE), np.empty(0, dtype=VERTEX_DTYPE), None, 3
        )
        e.validate()
