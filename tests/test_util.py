"""Unit tests for the util subpackage."""

import numpy as np
import pytest

from repro.util import Timer, as_generator, spawn_seeds
from repro.util.arrays import (
    compact_indices,
    group_reduce_sum,
    renumber_dense,
    segment_starts,
)
from repro.util.validation import (
    check_1d,
    check_nonnegative,
    check_positive,
    check_same_length,
)


class TestRng:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_reproducible(self):
        assert as_generator(7).integers(100) == as_generator(7).integers(100)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_seed_sequence(self):
        ss = np.random.SeedSequence(5)
        a = as_generator(ss).integers(1000)
        b = as_generator(np.random.SeedSequence(5)).integers(1000)
        assert a == b

    def test_spawn_seeds_independent(self):
        seeds = spawn_seeds(0, 3)
        vals = [as_generator(s).integers(10**9) for s in seeds]
        assert len(set(vals)) == 3

    def test_spawn_seeds_reproducible(self):
        a = [s.generate_state(1)[0] for s in spawn_seeds(42, 2)]
        b = [s.generate_state(1)[0] for s in spawn_seeds(42, 2)]
        assert a == b

    def test_spawn_negative(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)

    def test_spawn_from_generator(self):
        seeds = spawn_seeds(np.random.default_rng(1), 2)
        assert len(seeds) == 2


class TestTimer:
    def test_measures_time(self):
        with Timer() as t:
            sum(range(1000))
        assert t.elapsed >= 0.0

    def test_monotonic_ns_backing(self):
        with Timer() as t:
            sum(range(1000))
        assert isinstance(t.start_ns, int)
        assert isinstance(t.stop_ns, int)
        assert t.stop_ns >= t.start_ns
        assert t.elapsed_ns == t.stop_ns - t.start_ns
        assert t.elapsed == pytest.approx(t.elapsed_ns / 1e9)

    def test_start_stop_explicit(self):
        t = Timer()
        assert t.start() is t
        elapsed = t.stop()
        assert elapsed >= 0.0
        assert t.elapsed == elapsed

    def test_lap_checkpoints(self):
        t = Timer().start()
        a = t.lap()
        sum(range(10_000))
        b = t.lap()
        assert a >= 0.0 and b >= 0.0
        assert t.laps == [a, b]
        # laps are disjoint intervals, so they can't exceed the total
        assert sum(t.laps) <= t.elapsed + 1e-6

    def test_lap_before_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().lap()

    def test_stop_before_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_elapsed_while_running(self):
        t = Timer().start()
        first = t.elapsed
        sum(range(10_000))
        assert t.elapsed >= first

    def test_unstarted_elapsed_is_zero(self):
        assert Timer().elapsed == 0.0
        assert Timer().elapsed_ns == 0

    def test_restart_clears_laps(self):
        t = Timer().start()
        t.lap()
        t.start()
        assert t.laps == []


class TestArrays:
    def test_group_reduce_sum(self):
        out = group_reduce_sum(
            np.array([0, 2, 0]), np.array([1.0, 2.0, 3.0]), 3
        )
        np.testing.assert_array_equal(out, [4.0, 0.0, 2.0])

    def test_group_reduce_sum_length_check(self):
        with pytest.raises(ValueError):
            group_reduce_sum(np.array([0]), np.array([1.0, 2.0]), 2)

    def test_segment_starts(self):
        np.testing.assert_array_equal(
            segment_starts(np.array([1, 1, 3, 3, 3, 7])), [0, 2, 5]
        )

    def test_segment_starts_empty(self):
        assert len(segment_starts(np.empty(0, int))) == 0

    def test_compact_indices(self):
        np.testing.assert_array_equal(
            compact_indices(np.array([True, False, True])), [0, 2]
        )

    def test_renumber_dense(self):
        labels, k = renumber_dense(np.array([10, 3, 10, 7]))
        assert k == 3
        np.testing.assert_array_equal(labels, [2, 0, 2, 1])


class TestValidation:
    def test_check_1d(self):
        check_1d(np.zeros(3), "x")
        with pytest.raises(ValueError):
            check_1d(np.zeros((2, 2)), "x")
        with pytest.raises(TypeError):
            check_1d([1, 2], "x")

    def test_check_same_length(self):
        check_same_length("a", np.zeros(2), "b", np.zeros(2))
        with pytest.raises(ValueError):
            check_same_length("a", np.zeros(2), "b", np.zeros(3))

    def test_check_scalars(self):
        check_nonnegative(0, "x")
        check_positive(1, "x")
        with pytest.raises(ValueError):
            check_nonnegative(-1, "x")
        with pytest.raises(ValueError):
            check_positive(0, "x")


class TestLogging:
    def test_get_logger_namespacing(self):
        from repro.util.log import get_logger

        assert get_logger().name == "repro"
        assert get_logger("core").name == "repro.core"

    def test_enable_console_logging_detachable(self):
        import logging

        from repro.util.log import enable_console_logging, get_logger

        handler = enable_console_logging(logging.DEBUG)
        try:
            assert handler in logging.getLogger("repro").handlers
        finally:
            logging.getLogger("repro").removeHandler(handler)

    def test_enable_console_logging_idempotent(self):
        import logging

        from repro.util.log import enable_console_logging

        logger = logging.getLogger("repro")
        before = len(logger.handlers)
        first = enable_console_logging(logging.INFO)
        try:
            second = enable_console_logging(logging.DEBUG)
            assert second is first  # reused, not stacked
            assert len(logger.handlers) == before + 1
            assert first.level == logging.DEBUG  # level updated in place
        finally:
            logger.removeHandler(first)

    def test_enable_console_logging_reattaches_after_detach(self):
        import logging

        from repro.util.log import enable_console_logging

        logger = logging.getLogger("repro")
        first = enable_console_logging()
        logger.removeHandler(first)
        second = enable_console_logging()
        try:
            assert second in logger.handlers
        finally:
            logger.removeHandler(second)
