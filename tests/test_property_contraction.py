"""Property-based tests for contraction: weight conservation, modularity
delta exactness, and dendrogram/partition consistency."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import (
    ModularityScorer,
    contract,
    contract_hash_chains,
    match_locally_dominant,
)
from repro.graph import from_edges
from repro.metrics import Partition, community_graph_modularity, modularity


@st.composite
def graphs(draw):
    n = draw(st.integers(2, 30))
    m = draw(st.integers(1, 90))
    i = draw(hnp.arrays(np.int64, m, elements=st.integers(0, n - 1)))
    j = draw(hnp.arrays(np.int64, m, elements=st.integers(0, n - 1)))
    w = draw(
        hnp.arrays(np.float64, m, elements=st.floats(0.5, 10.0, allow_nan=False))
    )
    return from_edges(i, j, w, n_vertices=n)


class TestContractionProperties:
    @given(graphs())
    @settings(max_examples=60, deadline=None)
    def test_weight_conserved_and_valid(self, g):
        scores = ModularityScorer().score(g)
        matching = match_locally_dominant(g, scores)
        new, mapping = contract(g, matching)
        new.validate()
        assert abs(new.total_weight() - g.total_weight()) < 1e-6 * max(
            1.0, g.total_weight()
        )

    @given(graphs())
    @settings(max_examples=60, deadline=None)
    def test_modularity_delta_exact(self, g):
        scores = ModularityScorer().score(g)
        matching = match_locally_dominant(g, scores)
        before = community_graph_modularity(g)
        new, _ = contract(g, matching)
        after = community_graph_modularity(new)
        gained = float(scores[matching.matched_edges].sum())
        assert abs((after - before) - gained) < 1e-9

    @given(graphs())
    @settings(max_examples=40, deadline=None)
    def test_hash_chain_equivalence(self, g):
        scores = ModularityScorer().score(g)
        matching = match_locally_dominant(g, scores)
        a, map_a = contract(g, matching)
        b, map_b = contract_hash_chains(g, matching)
        np.testing.assert_array_equal(map_a, map_b)
        np.testing.assert_array_equal(a.edges.w, b.edges.w)

    @given(graphs())
    @settings(max_examples=40, deadline=None)
    def test_contracted_modularity_matches_partition_view(self, g):
        """Closed-form modularity of the contracted graph must equal the
        partition modularity on the original graph."""
        scores = ModularityScorer().score(g)
        matching = match_locally_dominant(g, scores)
        new, mapping = contract(g, matching)
        p = Partition.from_labels(mapping)
        assert abs(
            community_graph_modularity(new) - modularity(g, p)
        ) < 1e-9

    @given(graphs())
    @settings(max_examples=40, deadline=None)
    def test_vertex_count_arithmetic(self, g):
        scores = ModularityScorer().score(g)
        matching = match_locally_dominant(g, scores)
        new, mapping = contract(g, matching)
        assert new.n_vertices == g.n_vertices - matching.n_pairs
        assert mapping.max() == new.n_vertices - 1
