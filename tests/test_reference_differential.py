"""Differential tests: vectorized kernels vs pure-Python references.

Exact agreement is required — both sides use the same total orders and
the same arithmetic, so any divergence is a vectorization bug.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import (
    ConductanceScorer,
    ModularityScorer,
    contract,
    match_locally_dominant,
)
from repro.graph import from_edges
from repro.metrics import Partition, coverage, modularity
from repro.reference import (
    conductance_scores_ref,
    contract_ref,
    coverage_ref,
    locally_dominant_matching_ref,
    modularity_ref,
    modularity_scores_ref,
)


@st.composite
def graphs(draw):
    n = draw(st.integers(2, 25))
    m = draw(st.integers(1, 70))
    i = draw(hnp.arrays(np.int64, m, elements=st.integers(0, n - 1)))
    j = draw(hnp.arrays(np.int64, m, elements=st.integers(0, n - 1)))
    weighted = draw(st.booleans())
    if weighted:
        w = draw(
            hnp.arrays(
                np.float64, m, elements=st.floats(0.5, 8.0, allow_nan=False)
            )
        )
    else:
        w = None
    return from_edges(i, j, w, n_vertices=n)


class TestScoringDifferential:
    @given(graphs())
    @settings(max_examples=60, deadline=None)
    def test_modularity_scores_identical(self, g):
        fast = ModularityScorer().score(g)
        slow = modularity_scores_ref(g)
        # Association order differs (bincount vs sequential sums), so
        # agreement is to ULP-scale tolerance, not bit-exact.
        np.testing.assert_allclose(fast, slow, rtol=0, atol=1e-12)

    @given(graphs())
    @settings(max_examples=60, deadline=None)
    def test_conductance_scores_identical(self, g):
        fast = ConductanceScorer().score(g)
        slow = conductance_scores_ref(g)
        np.testing.assert_allclose(fast, slow, rtol=0, atol=1e-12)


class TestMatchingDifferential:
    @given(graphs())
    @settings(max_examples=60, deadline=None)
    def test_matching_identical(self, g):
        scores = ModularityScorer().score(g)
        fast = match_locally_dominant(g, scores)
        slow = locally_dominant_matching_ref(g, scores)
        np.testing.assert_array_equal(fast.partner, slow.partner)
        np.testing.assert_array_equal(fast.matched_edges, slow.matched_edges)
        assert fast.passes == slow.passes
        assert fast.failed_claims == slow.failed_claims

    def test_matching_identical_karate(self, karate):
        scores = ModularityScorer().score(karate)
        fast = match_locally_dominant(karate, scores)
        slow = locally_dominant_matching_ref(karate, scores)
        np.testing.assert_array_equal(fast.partner, slow.partner)


class TestContractionDifferential:
    @given(graphs())
    @settings(max_examples=50, deadline=None)
    def test_contraction_identical(self, g):
        scores = ModularityScorer().score(g)
        matching = match_locally_dominant(g, scores)
        fast, map_fast = contract(g, matching)
        slow, map_slow = contract_ref(g, matching)
        np.testing.assert_array_equal(map_fast, map_slow)
        np.testing.assert_array_equal(fast.edges.ei, slow.edges.ei)
        np.testing.assert_array_equal(fast.edges.ej, slow.edges.ej)
        np.testing.assert_allclose(fast.edges.w, slow.edges.w, atol=1e-12)
        np.testing.assert_allclose(
            fast.self_weights, slow.self_weights, atol=1e-12
        )


class TestMetricsDifferential:
    @given(graphs(), st.integers(1, 5))
    @settings(max_examples=50, deadline=None)
    def test_modularity_and_coverage(self, g, k):
        rng = np.random.default_rng(k)
        p = Partition.from_labels(rng.integers(0, k, g.n_vertices))
        assert modularity(g, p) == pytest.approx(
            modularity_ref(g, p), abs=1e-12
        )
        assert coverage(g, p) == pytest.approx(
            coverage_ref(g, p), abs=1e-12
        )
