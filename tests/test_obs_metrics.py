"""Unit tests for counters, gauges, and histograms (repro.obs.metrics)."""

import numpy as np
import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)


class TestCounter:
    def test_increments(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)


class TestGauge:
    def test_tracks_last_min_max(self):
        g = Gauge("x")
        for v in (5, 2, 9):
            g.set(v)
        assert g.value == 9
        assert g.min == 2
        assert g.max == 9
        assert g.n_sets == 3

    def test_fresh_gauge_extremes(self):
        g = Gauge("x")
        assert g.n_sets == 0
        assert g.min == float("inf")
        assert g.max == float("-inf")


class TestHistogramBucketEdges:
    def test_le_semantics_on_exact_edge(self):
        h = Histogram("x", edges=[1, 2, 4])
        # Prometheus `le`: a value equal to an edge lands in that bucket.
        h.observe(1)
        h.observe(2)
        h.observe(4)
        assert h.counts == [1, 1, 1, 0]

    def test_overflow_bucket(self):
        h = Histogram("x", edges=[1, 2, 4])
        h.observe(5)
        h.observe(1000)
        assert h.counts == [0, 0, 0, 2]

    def test_below_first_edge(self):
        h = Histogram("x", edges=[10, 20])
        h.observe(0)
        h.observe(-3)
        assert h.counts == [2, 0, 0]

    def test_total_and_sum_and_mean(self):
        h = Histogram("x", edges=[1, 2])
        for v in (0.5, 1.5, 3.0):
            h.observe(v)
        assert h.total == 3
        assert h.sum == pytest.approx(5.0)
        assert h.mean() == pytest.approx(5.0 / 3)

    def test_empty_mean(self):
        assert Histogram("x").mean() == 0.0

    def test_rejects_bad_edges(self):
        with pytest.raises(ValueError):
            Histogram("x", edges=[])
        with pytest.raises(ValueError):
            Histogram("x", edges=[1, 1])
        with pytest.raises(ValueError):
            Histogram("x", edges=[2, 1])

    def test_default_buckets(self):
        h = Histogram("x")
        assert h.edges == tuple(float(e) for e in DEFAULT_BUCKETS)
        assert len(h.counts) == len(DEFAULT_BUCKETS) + 1


class TestObserveMany:
    def test_matches_scalar_observe(self):
        values = [0.5, 1, 2, 3, 7, 8, 9, 300]
        a = Histogram("a", edges=[1, 2, 4, 8])
        b = Histogram("b", edges=[1, 2, 4, 8])
        for v in values:
            a.observe(v)
        b.observe_many(np.array(values))
        assert a.counts == b.counts
        assert a.total == b.total
        assert a.sum == pytest.approx(b.sum)

    def test_accepts_iterable_and_empty(self):
        h = Histogram("x", edges=[1])
        h.observe_many(iter([0.5, 2]))
        assert h.counts == [1, 1]
        h.observe_many(np.empty(0))
        assert h.total == 2


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("c") is reg.counter("c")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h", edges=[99])

    def test_histogram_custom_edges_on_create(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", edges=[3, 6])
        assert h.edges == (3.0, 6.0)

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h", edges=[1]).observe(0.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"]["g"]["value"] == 1.5
        assert snap["gauges"]["g"]["n_sets"] == 1
        assert snap["histograms"]["h"]["counts"] == [1, 0]

    def test_snapshot_unset_gauge_has_null_extremes(self):
        reg = MetricsRegistry()
        reg.gauge("g")
        snap = reg.snapshot()
        assert snap["gauges"]["g"]["min"] is None
        assert snap["gauges"]["g"]["max"] is None


class TestNullRegistry:
    def test_all_noops(self):
        reg = NullMetricsRegistry()
        reg.counter("c").inc(5)
        reg.gauge("g").set(2)
        reg.histogram("h").observe(1)
        reg.histogram("h").observe_many([1, 2, 3])
        assert reg.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_shared_instances(self):
        reg = NullMetricsRegistry()
        assert reg.counter("a") is reg.counter("b")
        assert reg.histogram("a") is reg.histogram("b")


class TestNaNRejection:
    def test_gauge_rejects_nan(self):
        g = Gauge("g")
        g.set(1.0)
        with pytest.raises(ValueError, match="NaN"):
            g.set(float("nan"))
        # state untouched by the rejected set
        assert g.value == 1.0
        assert g.n_sets == 1

    def test_histogram_observe_rejects_nan(self):
        h = Histogram("h", edges=[1, 2])
        with pytest.raises(ValueError, match="NaN"):
            h.observe(float("nan"))
        assert h.total == 0
        assert h.sum == 0.0

    def test_histogram_observe_many_rejects_nan(self):
        h = Histogram("h", edges=[1, 2])
        with pytest.raises(ValueError, match="NaN"):
            h.observe_many(np.array([1.0, np.nan, 2.0]))
        assert h.total == 0

    def test_infinities_still_allowed_on_gauge(self):
        g = Gauge("g")
        g.set(float("inf"))
        assert g.max == float("inf")


class TestMerge:
    def test_counter_merge(self):
        a, b = Counter("c"), Counter("c")
        a.inc(3)
        b.inc(4)
        a.merge(b)
        assert a.value == 7

    def test_gauge_merge_extremes_and_last(self):
        a, b = Gauge("g"), Gauge("g")
        a.set(5)
        b.set(1)
        b.set(10)
        a.merge(b)
        assert a.min == 1
        assert a.max == 10
        assert a.value == 10  # other's last value wins
        assert a.n_sets == 3

    def test_gauge_merge_unset_other_is_noop(self):
        a, b = Gauge("g"), Gauge("g")
        a.set(5)
        a.merge(b)
        assert a.value == 5
        assert a.n_sets == 1

    def test_histogram_merge(self):
        a = Histogram("h", edges=[1, 2, 4])
        b = Histogram("h", edges=[1, 2, 4])
        a.observe(1)
        b.observe(3)
        b.observe(100)
        a.merge(b)
        assert a.counts == [1, 0, 1, 1]
        assert a.total == 3
        assert a.sum == 104.0

    def test_histogram_merge_rejects_mismatched_edges(self):
        a = Histogram("h", edges=[1, 2])
        b = Histogram("h", edges=[1, 2, 4])
        with pytest.raises(ValueError, match="cannot merge"):
            a.merge(b)

    def test_registry_merge_creates_and_folds(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("shared").inc(1)
        b.counter("shared").inc(2)
        b.counter("only_b").inc(5)
        b.gauge("g").set(3)
        b.histogram("h", edges=[1, 2]).observe(1)
        a.merge(b)
        assert a.counters["shared"].value == 3
        assert a.counters["only_b"].value == 5
        assert a.gauges["g"].value == 3
        assert a.histograms["h"].total == 1

    def test_registry_merge_mismatched_histogram_edges_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", edges=[1, 2]).observe(1)
        b.histogram("h", edges=[1, 2, 4]).observe(1)
        with pytest.raises(ValueError, match="cannot merge"):
            a.merge(b)

    def test_null_registry_merge_is_noop(self):
        reg = NullMetricsRegistry()
        other = MetricsRegistry()
        other.counter("c").inc(1)
        reg.merge(other)
        assert reg.snapshot()["counters"] == {}


class TestFromSnapshot:
    def test_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(7)
        reg.gauge("g").set(2)
        reg.gauge("g").set(9)
        reg.histogram("h", edges=[1, 2]).observe_many([0.5, 1.5, 9])
        rebuilt = MetricsRegistry.from_snapshot(reg.snapshot())
        assert rebuilt.snapshot() == reg.snapshot()

    def test_unset_gauge_round_trip(self):
        reg = MetricsRegistry()
        reg.gauge("g")  # created but never set
        rebuilt = MetricsRegistry.from_snapshot(reg.snapshot())
        assert rebuilt.gauges["g"].n_sets == 0
        assert rebuilt.snapshot() == reg.snapshot()
        # merging the rebuilt unset gauge must stay a no-op
        reg2 = MetricsRegistry()
        reg2.gauge("g").set(4)
        reg2.merge(rebuilt)
        assert reg2.gauges["g"].value == 4


class TestPrometheus:
    def test_counter_exposition(self):
        reg = MetricsRegistry()
        reg.counter("match.passes").inc(3)
        text = reg.render_prometheus()
        assert "# TYPE repro_match_passes_total counter" in text
        assert "repro_match_passes_total 3" in text

    def test_gauge_exposition_with_extremes(self):
        reg = MetricsRegistry()
        reg.gauge("worklist").set(5)
        reg.gauge("worklist").set(2)
        text = reg.render_prometheus()
        assert "repro_worklist 2.0" in text
        assert "repro_worklist_min 2.0" in text
        assert "repro_worklist_max 5.0" in text

    def test_histogram_cumulative_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("sizes", edges=[1, 2, 4])
        h.observe_many([0.5, 1.5, 3, 100])
        text = reg.render_prometheus()
        assert '# TYPE repro_sizes histogram' in text
        assert 'repro_sizes_bucket{le="1.0"} 1' in text
        assert 'repro_sizes_bucket{le="2.0"} 2' in text
        assert 'repro_sizes_bucket{le="4.0"} 3' in text
        assert 'repro_sizes_bucket{le="+Inf"} 4' in text
        assert "repro_sizes_count 4" in text
        assert "repro_sizes_sum 105.0" in text

    def test_name_sanitization_and_namespace(self):
        reg = MetricsRegistry()
        reg.counter("a.b-c/d").inc()
        text = reg.render_prometheus(namespace="ns")
        assert "ns_a_b_c_d_total 1" in text

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""
        assert NullMetricsRegistry().render_prometheus() == ""

    def test_parseable_line_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(1)
        reg.histogram("h", edges=[1]).observe(0.5)
        for line in reg.render_prometheus().strip().splitlines():
            if line.startswith("#"):
                assert line.startswith("# TYPE ")
            else:
                name, value = line.rsplit(" ", 1)
                assert name
                float(value)  # every sample value parses as a number


class TestFromSnapshotValidation:
    """Worker snapshots are validated on ingest, before any merge."""

    def good_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("chunks").inc(3)
        reg.gauge("load").set(0.5)
        reg.histogram("wait", [1.0, 2.0]).observe(1.5)
        return reg.snapshot()

    def test_round_trip(self):
        snap = self.good_snapshot()
        reg = MetricsRegistry.from_snapshot(snap)
        assert reg.snapshot() == snap

    def test_rejects_non_dict(self):
        with pytest.raises(ValueError, match="must be a dict"):
            MetricsRegistry.from_snapshot([("counters", {})])  # type: ignore[arg-type]

    def test_rejects_negative_counter(self):
        snap = self.good_snapshot()
        snap["counters"]["chunks"] = -1
        with pytest.raises(ValueError, match="'chunks'.*negative"):
            MetricsRegistry.from_snapshot(snap)

    def test_rejects_nan_gauge(self):
        snap = self.good_snapshot()
        snap["gauges"]["load"]["value"] = float("nan")
        with pytest.raises(ValueError, match="'load'.*NaN"):
            MetricsRegistry.from_snapshot(snap)

    def test_rejects_bucket_count_mismatch(self):
        snap = self.good_snapshot()
        snap["histograms"]["wait"]["counts"] = [0, 1]  # needs len(edges)+1 == 3
        with pytest.raises(
            ValueError, match="bucket schema mismatch between worker and parent"
        ):
            MetricsRegistry.from_snapshot(snap)

    def test_rejects_negative_bucket_count(self):
        snap = self.good_snapshot()
        snap["histograms"]["wait"]["counts"] = [0, -1, 2]
        snap["histograms"]["wait"]["total"] = 1
        with pytest.raises(ValueError, match="'wait'.*negative bucket"):
            MetricsRegistry.from_snapshot(snap)

    def test_rejects_total_bucket_sum_mismatch(self):
        snap = self.good_snapshot()
        snap["histograms"]["wait"]["total"] = 99
        with pytest.raises(ValueError, match="total 99 does not match"):
            MetricsRegistry.from_snapshot(snap)

    def test_merge_after_ingest_preserves_bucket_boundaries(self):
        parent = MetricsRegistry()
        parent.histogram("wait", [1.0, 2.0]).observe(0.5)
        worker = MetricsRegistry.from_snapshot(self.good_snapshot())
        parent.merge(worker)
        h = parent.histograms["wait"]
        assert h.edges == (1.0, 2.0)
        assert h.total == 2

    def test_merge_rejects_mismatched_edges_after_ingest(self):
        parent = MetricsRegistry()
        parent.histogram("wait", [5.0]).observe(0.5)
        worker = MetricsRegistry.from_snapshot(self.good_snapshot())
        with pytest.raises(ValueError, match="cannot merge edges"):
            parent.merge(worker)
