"""Unit tests for counters, gauges, and histograms (repro.obs.metrics)."""

import numpy as np
import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)


class TestCounter:
    def test_increments(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)


class TestGauge:
    def test_tracks_last_min_max(self):
        g = Gauge("x")
        for v in (5, 2, 9):
            g.set(v)
        assert g.value == 9
        assert g.min == 2
        assert g.max == 9
        assert g.n_sets == 3

    def test_fresh_gauge_extremes(self):
        g = Gauge("x")
        assert g.n_sets == 0
        assert g.min == float("inf")
        assert g.max == float("-inf")


class TestHistogramBucketEdges:
    def test_le_semantics_on_exact_edge(self):
        h = Histogram("x", edges=[1, 2, 4])
        # Prometheus `le`: a value equal to an edge lands in that bucket.
        h.observe(1)
        h.observe(2)
        h.observe(4)
        assert h.counts == [1, 1, 1, 0]

    def test_overflow_bucket(self):
        h = Histogram("x", edges=[1, 2, 4])
        h.observe(5)
        h.observe(1000)
        assert h.counts == [0, 0, 0, 2]

    def test_below_first_edge(self):
        h = Histogram("x", edges=[10, 20])
        h.observe(0)
        h.observe(-3)
        assert h.counts == [2, 0, 0]

    def test_total_and_sum_and_mean(self):
        h = Histogram("x", edges=[1, 2])
        for v in (0.5, 1.5, 3.0):
            h.observe(v)
        assert h.total == 3
        assert h.sum == pytest.approx(5.0)
        assert h.mean() == pytest.approx(5.0 / 3)

    def test_empty_mean(self):
        assert Histogram("x").mean() == 0.0

    def test_rejects_bad_edges(self):
        with pytest.raises(ValueError):
            Histogram("x", edges=[])
        with pytest.raises(ValueError):
            Histogram("x", edges=[1, 1])
        with pytest.raises(ValueError):
            Histogram("x", edges=[2, 1])

    def test_default_buckets(self):
        h = Histogram("x")
        assert h.edges == tuple(float(e) for e in DEFAULT_BUCKETS)
        assert len(h.counts) == len(DEFAULT_BUCKETS) + 1


class TestObserveMany:
    def test_matches_scalar_observe(self):
        values = [0.5, 1, 2, 3, 7, 8, 9, 300]
        a = Histogram("a", edges=[1, 2, 4, 8])
        b = Histogram("b", edges=[1, 2, 4, 8])
        for v in values:
            a.observe(v)
        b.observe_many(np.array(values))
        assert a.counts == b.counts
        assert a.total == b.total
        assert a.sum == pytest.approx(b.sum)

    def test_accepts_iterable_and_empty(self):
        h = Histogram("x", edges=[1])
        h.observe_many(iter([0.5, 2]))
        assert h.counts == [1, 1]
        h.observe_many(np.empty(0))
        assert h.total == 2


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("c") is reg.counter("c")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h", edges=[99])

    def test_histogram_custom_edges_on_create(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", edges=[3, 6])
        assert h.edges == (3.0, 6.0)

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h", edges=[1]).observe(0.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"]["g"]["value"] == 1.5
        assert snap["gauges"]["g"]["n_sets"] == 1
        assert snap["histograms"]["h"]["counts"] == [1, 0]

    def test_snapshot_unset_gauge_has_null_extremes(self):
        reg = MetricsRegistry()
        reg.gauge("g")
        snap = reg.snapshot()
        assert snap["gauges"]["g"]["min"] is None
        assert snap["gauges"]["g"]["max"] is None


class TestNullRegistry:
    def test_all_noops(self):
        reg = NullMetricsRegistry()
        reg.counter("c").inc(5)
        reg.gauge("g").set(2)
        reg.histogram("h").observe(1)
        reg.histogram("h").observe_many([1, 2, 3])
        assert reg.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_shared_instances(self):
        reg = NullMetricsRegistry()
        assert reg.counter("a") is reg.counter("b")
        assert reg.histogram("a") is reg.histogram("b")
