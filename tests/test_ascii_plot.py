"""Unit tests for the text-mode figure renderer."""

import pytest

from repro.bench import ascii_xy_plot, plot_scaling_results
from repro.bench.harness import ScalingResult
from repro.platform import INTEL_X5570


class TestAsciiXYPlot:
    def test_basic_render(self):
        out = ascii_xy_plot(
            {"a": [(1, 1), (10, 10)], "b": [(1, 10), (10, 1)]},
            title="T",
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "o a" in lines[-1] and "x b" in lines[-1]
        assert any("o" in ln for ln in lines[1:-1])
        assert any("x" in ln for ln in lines[1:-1])

    def test_log_ticks_present(self):
        out = ascii_xy_plot({"s": [(1, 1), (100, 1000)]})
        assert "100" in out
        assert "1000" in out or "10" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_xy_plot({})

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            ascii_xy_plot({"s": [(0, 1)]})

    def test_single_point(self):
        out = ascii_xy_plot({"s": [(2, 3)]})
        assert "o" in out

    def test_dimensions(self):
        out = ascii_xy_plot(
            {"s": [(1, 1), (8, 8)]}, width=30, height=8, title="t"
        )
        # title + height rows + axis + tick line + legend
        assert len(out.splitlines()) == 1 + 8 + 1 + 1 + 1

    def test_axis_labels_in_legend(self):
        out = ascii_xy_plot(
            {"s": [(1, 1)]}, xlabel="threads", ylabel="sec"
        )
        assert "threads" in out and "sec" in out


class TestPlotScalingResults:
    def test_time_and_speedup_modes(self):
        sr = ScalingResult(
            machine=INTEL_X5570,
            graph_name="g",
            n_edges=100,
            times={1: [4.0, 4.1, 4.2], 2: [2.0, 2.1, 2.2], 4: [1.0, 1.1, 1.2]},
        )
        t = plot_scaling_results({"X5570": sr}, title="times")
        s = plot_scaling_results({"X5570": sr}, speedup=True, title="su")
        assert "times" in t
        assert "speed-up" in s
        assert "X5570" in t
