"""Unit tests for the deterministic fault-injection plan."""

import pytest

from repro.resilience import FaultPlan, FaultSpec, truncate_file


class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec("explode")
        with pytest.raises(ValueError):
            FaultSpec("delay", delay_s=-1.0)

    def test_defaults(self):
        spec = FaultSpec("kill")
        assert spec.exit_code == 17


class TestFaultPlan:
    def test_decide_hits_only_scheduled_attempts(self):
        plan = FaultPlan.kill_first_attempt([0, 2])
        assert plan.decide(0, 0).kind == "kill"
        assert plan.decide(2, 0).kind == "kill"
        assert plan.decide(1, 0) is None
        assert plan.decide(0, 1) is None  # retry attempt is clean

    def test_kill_every_attempt_covers_all_attempts(self):
        plan = FaultPlan.kill_every_attempt([1], attempts=3)
        assert plan.n_faults == 3
        for attempt in range(3):
            assert plan.decide(1, attempt).kind == "kill"

    def test_delay_and_corrupt_builders(self):
        delayed = FaultPlan.delay_first_attempt([0], delay_s=0.5)
        assert delayed.decide(0, 0).delay_s == 0.5
        corrupt = FaultPlan.corrupt_first_attempt([3])
        assert corrupt.decide(3, 0).kind == "corrupt"

    def test_add_is_chainable(self):
        plan = FaultPlan().add(0, 0, FaultSpec("kill")).add(
            0, 1, FaultSpec("corrupt")
        )
        assert plan.n_faults == 2

    def test_seeded_is_deterministic(self):
        a = FaultPlan.seeded(7, 16, p_kill=0.3, p_corrupt=0.2)
        b = FaultPlan.seeded(7, 16, p_kill=0.3, p_corrupt=0.2)
        assert a.faults == b.faults

    def test_seeded_depends_on_seed(self):
        a = FaultPlan.seeded(1, 64, p_kill=0.5)
        b = FaultPlan.seeded(2, 64, p_kill=0.5)
        assert a.faults != b.faults

    def test_seeded_probability_zero_is_empty(self):
        assert FaultPlan.seeded(0, 32).n_faults == 0

    def test_seeded_probability_validation(self):
        with pytest.raises(ValueError):
            FaultPlan.seeded(0, 4, p_kill=0.8, p_delay=0.8)
        with pytest.raises(ValueError):
            FaultPlan.seeded(0, 4, p_kill=-0.1)


class TestTruncateFile:
    def test_truncates_to_fraction(self, tmp_path):
        path = tmp_path / "blob"
        path.write_bytes(b"x" * 100)
        kept = truncate_file(path, keep_fraction=0.3)
        assert kept == 30
        assert path.stat().st_size == 30

    def test_zero_fraction_empties(self, tmp_path):
        path = tmp_path / "blob"
        path.write_bytes(b"x" * 10)
        assert truncate_file(path, keep_fraction=0.0) == 0

    def test_validation(self, tmp_path):
        path = tmp_path / "blob"
        path.write_bytes(b"x")
        with pytest.raises(ValueError):
            truncate_file(path, keep_fraction=1.0)


class TestPhaseFaults:
    def test_stall_builder_schedules_named_levels(self):
        plan = FaultPlan.stall_phase("score", [0, 2], delay_s=0.25)
        assert plan.decide_phase("score", 0).kind == "stall"
        assert plan.decide_phase("score", 0).delay_s == 0.25
        assert plan.decide_phase("score", 2).kind == "stall"
        assert plan.decide_phase("score", 1) is None
        assert plan.decide_phase("match", 0) is None
        assert plan.n_faults == 2

    def test_pressure_builder_carries_allocation(self):
        plan = FaultPlan.pressure_phase("contract", [1], alloc_mb=32.0)
        spec = plan.decide_phase("contract", 1)
        assert spec.kind == "memory_pressure"
        assert spec.alloc_mb == 32.0

    def test_phase_and_chunk_plans_compose(self):
        plan = FaultPlan.kill_first_attempt([0]).add_phase(
            "score", 0, FaultSpec("stall", delay_s=0.1)
        )
        assert plan.decide(0, 0).kind == "kill"
        assert plan.decide_phase("score", 0).kind == "stall"
        assert plan.n_faults == 2

    def test_kind_segregation_enforced(self):
        # phase injectors only into the phase table, chunk ones only
        # into the chunk table
        with pytest.raises(ValueError):
            FaultPlan().add_phase("score", 0, FaultSpec("corrupt"))
        with pytest.raises(ValueError):
            FaultPlan().add(0, 0, FaultSpec("memory_pressure"))

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec("memory_pressure", alloc_mb=0.0)
        with pytest.raises(ValueError):
            FaultSpec("stall", delay_s=-0.5)
