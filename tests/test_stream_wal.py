"""Tests for the write-ahead log (stream/wal.py)."""

import os

import pytest

from repro.errors import WalError
from repro.stream.wal import KIND_BATCH, KIND_RERUN, WriteAheadLog


def _open(tmp_path, **kw):
    wal = WriteAheadLog(tmp_path / "wal", **kw)
    wal.recover()
    return wal


def _active_path(tmp_path):
    (candidate,) = list((tmp_path / "wal").glob("*.wal.open"))
    return candidate


class TestAppendAndScan:
    def test_round_trip_with_kinds(self, tmp_path):
        with _open(tmp_path) as wal:
            r1 = wal.append(b"alpha")
            r2 = wal.append(b"beta", kind=KIND_RERUN)
            assert (r1.seq, r2.seq) == (1, 2)
            recs = list(wal.records())
        assert [(r.seq, r.kind, r.payload) for r in recs] == [
            (1, KIND_BATCH, b"alpha"),
            (2, KIND_RERUN, b"beta"),
        ]

    def test_reopen_continues_sequence(self, tmp_path):
        with _open(tmp_path) as wal:
            wal.append(b"one")
        with _open(tmp_path) as wal:
            rec = wal.append(b"two")
            assert rec.seq == 2
            assert [r.payload for r in wal.records()] == [b"one", b"two"]

    def test_rotation_seals_segments(self, tmp_path):
        with _open(tmp_path, segment_max_bytes=4096) as wal:
            for k in range(6):
                wal.append(f"payload-{k}".encode() * 300)
            sealed = list((tmp_path / "wal").glob("seg_*.wal"))
            assert len(sealed) >= 2
            assert len(list((tmp_path / "wal").glob("*.wal.open"))) == 1
            assert [r.seq for r in wal.records()] == list(range(1, 7))

    def test_start_seq_filter(self, tmp_path):
        with _open(tmp_path) as wal:
            for k in range(5):
                wal.append(str(k).encode())
            assert [r.seq for r in wal.records(start_seq=4)] == [4, 5]


class TestTornTail:
    def test_truncated_tail_salvages_prefix(self, tmp_path):
        with _open(tmp_path) as wal:
            for k in range(3):
                wal.append(f"rec-{k}".encode())
        active = _active_path(tmp_path)
        data = active.read_bytes()
        active.write_bytes(data[:-5])  # tear the last frame mid-payload
        with _open(tmp_path) as wal:
            rec = wal.last_recovery
            assert rec.n_torn == 1
            assert rec.n_records == 2
            assert not rec.clean
            assert [r.payload for r in wal.records()] == [b"rec-0", b"rec-1"]
            # Torn bytes are preserved for forensics, then numbering
            # continues exactly where the salvaged prefix ends.
            assert list((tmp_path / "wal").glob("*.torn"))
            assert wal.append(b"after").seq == 3

    def test_bitflip_stops_scan_at_bad_frame(self, tmp_path):
        with _open(tmp_path) as wal:
            wal.append(b"good-record")
            wal.append(b"bad--record")
        active = _active_path(tmp_path)
        data = bytearray(active.read_bytes())
        data[-3] ^= 0xFF  # corrupt the second record's payload
        active.write_bytes(bytes(data))
        with _open(tmp_path) as wal:
            assert wal.last_recovery.n_torn == 1
            assert [r.payload for r in wal.records()] == [b"good-record"]

    def test_corrupt_sealed_segment_quarantines_later_ones(self, tmp_path):
        with _open(tmp_path, segment_max_bytes=4096) as wal:
            for k in range(6):
                wal.append(f"payload-{k}".encode() * 300)
        sealed = sorted((tmp_path / "wal").glob("seg_*.wal"))
        assert len(sealed) >= 2
        first = sealed[0]
        data = bytearray(first.read_bytes())
        data[-1] ^= 0xFF
        first.write_bytes(bytes(data))
        with _open(tmp_path, segment_max_bytes=4096) as wal:
            rec = wal.last_recovery
            assert rec.n_torn >= 1
            assert len(rec.quarantined) >= 1
            assert list((tmp_path / "wal").glob("*.corrupt"))
            # Only the first segment's good prefix survives.
            seqs = [r.seq for r in wal.records()]
            assert seqs == list(range(1, len(seqs) + 1))


class TestStructuralErrors:
    def test_two_open_segments_is_structural(self, tmp_path):
        with _open(tmp_path) as wal:
            wal.append(b"x")
        (tmp_path / "wal" / "seg_99999999.wal.open").write_bytes(b"")
        with pytest.raises(WalError, match="open"):
            WriteAheadLog(tmp_path / "wal").recover()

    def test_closed_log_rejects_appends(self, tmp_path):
        wal = _open(tmp_path)
        wal.close()
        with pytest.raises(WalError):
            wal.append(b"x")


class TestTruncation:
    def test_truncate_upto_drops_covered_segments(self, tmp_path):
        with _open(tmp_path, segment_max_bytes=4096) as wal:
            for k in range(6):
                wal.append(f"payload-{k}".encode() * 300)
            before = len(list((tmp_path / "wal").glob("seg_*")))
            wal.truncate_upto(6)
            after = len(list((tmp_path / "wal").glob("seg_*")))
            assert after < before
            assert list(wal.records()) == []
            # Sequence numbering survives the truncation.
            assert wal.append(b"next").seq == 7

    def test_sequence_survives_truncate_and_reopen(self, tmp_path):
        with _open(tmp_path) as wal:
            for k in range(4):
                wal.append(str(k).encode())
            wal.truncate_upto(4)
        with _open(tmp_path) as wal:
            assert wal.append(b"five").seq == 5

    def test_ensure_seq_floor_fast_forwards_empty_log(self, tmp_path):
        with _open(tmp_path) as wal:
            wal.ensure_seq_floor(41)
            assert wal.append(b"x").seq == 42
        with _open(tmp_path) as wal:  # the floor is durable
            assert wal.append(b"y").seq == 43

    def test_ensure_seq_floor_never_touches_live_records(self, tmp_path):
        with _open(tmp_path) as wal:
            wal.append(b"keep")
            wal.ensure_seq_floor(100)
            assert wal.append(b"next").seq == 2
