"""Tests for the streaming detection service (stream/service.py)."""

import numpy as np
import pytest

from repro.errors import StreamStateError
from repro.metrics import Partition
from repro.stream.service import (
    CRASH_POINTS,
    DetectionService,
    StreamConfig,
)
from repro.stream.wal import KIND_RERUN


def _cfg(**kw):
    kw.setdefault("snapshot_every", 4)
    return StreamConfig(**kw)


def _two_blocks(rng, n=12, m=20):
    """Random intra-block edges over two planted blocks of n//2."""
    half = n // 2
    i = rng.integers(0, half, size=m)
    j = rng.integers(0, half, size=m)
    block = rng.integers(0, 2, size=m) * half
    return i + block, j + block


def _feed(svc, n_batches=6, seed=0, n=12):
    rng = np.random.default_rng(seed)
    results = []
    for _ in range(n_batches):
        i, j = _two_blocks(rng, n=n)
        results.append(svc.ingest(i, j))
    return results


class TestIngest:
    def test_bootstrap_builds_partition(self, tmp_path):
        with DetectionService(tmp_path, _cfg()) as svc:
            svc.open()
            res = _feed(svc, n_batches=1)[0]
            assert res.applied and res.seq == 1
            assert svc.labels is not None
            assert len(svc.labels) == svc.n_vertices
            Partition(svc.labels)  # dense

    def test_exactly_once_redelivery_is_noop(self, tmp_path):
        with DetectionService(tmp_path, _cfg()) as svc:
            svc.open()
            _feed(svc, n_batches=2)
            before = svc.labels.copy()
            res = svc.ingest(
                np.array([0]), np.array([1]), seq=1  # already applied
            )
            assert not res.applied
            np.testing.assert_array_equal(svc.labels, before)

    def test_sequence_gap_rejected(self, tmp_path):
        with DetectionService(tmp_path, _cfg()) as svc:
            svc.open()
            _feed(svc, n_batches=1)
            with pytest.raises(ValueError, match="gap"):
                svc.ingest(np.array([0]), np.array([1]), seq=5)

    def test_ingest_requires_open(self, tmp_path):
        svc = DetectionService(tmp_path, _cfg())
        with pytest.raises(StreamStateError, match="open"):
            svc.ingest(np.array([0]), np.array([1]))

    def test_timeline_records_every_batch(self, tmp_path):
        with DetectionService(tmp_path, _cfg()) as svc:
            svc.open()
            _feed(svc, n_batches=3)
            assert svc.timeline.n_batches == 3
            assert [s.seq for s in svc.timeline.batches] == [1, 2, 3]
            assert all(np.isfinite(s.modularity) for s in svc.timeline.batches)


class TestRecovery:
    def test_clean_reopen_restores_identical_state(self, tmp_path):
        with DetectionService(tmp_path, _cfg()) as svc:
            svc.open()
            _feed(svc, n_batches=5)
            labels = svc.labels.copy()
            store = svc.store.copy()
        with DetectionService(tmp_path, _cfg()) as svc2:
            svc2.open()
            np.testing.assert_array_equal(svc2.labels, labels)
            assert svc2.store.equals(store)
            assert svc2.batch_seq == 5

    def test_crash_replay_is_bit_identical(self, tmp_path):
        # Reference: uninterrupted run.
        ref = DetectionService(tmp_path / "ref", _cfg())
        ref.open()
        _feed(ref, n_batches=6)
        ref_labels = ref.labels.copy()
        ref.close()

        # Crashed run: same batches, but the process "dies" before any
        # close()-time snapshot — recovery must replay the WAL tail.
        svc = DetectionService(tmp_path / "crash", _cfg())
        svc.open()
        _feed(svc, n_batches=6)
        svc.wal.close()  # simulate losing the process, not the disk

        svc2 = DetectionService(tmp_path / "crash", _cfg())
        svc2.open()
        assert svc2.report.wal_replayed > 0
        np.testing.assert_array_equal(svc2.labels, ref_labels)
        assert svc2.batch_seq == 6
        svc2.close()

    def test_recovery_gap_is_typed_error(self, tmp_path):
        # Snapshots at batch 2 and 4 truncate the journal's prefix; if
        # the snapshots are then lost, the surviving tail starts past
        # sequence one and no consistent state can be rebuilt.
        svc = DetectionService(tmp_path, _cfg(snapshot_every=2))
        svc.open()
        _feed(svc, n_batches=5)
        svc.wal.close()
        for p in (tmp_path / "snapshots").glob("snap_*.npz"):
            p.unlink()
        svc2 = DetectionService(tmp_path, _cfg(snapshot_every=2))
        with pytest.raises(StreamStateError, match="gap"):
            svc2.open()


class TestDegradation:
    def test_drift_triggers_journaled_rerun(self, tmp_path):
        cfg = _cfg(drift_threshold=0.02, snapshot_every=100)
        with DetectionService(tmp_path, cfg) as svc:
            svc.open()
            rng = np.random.default_rng(0)
            i, j = _two_blocks(rng, n=12, m=40)
            svc.ingest(i, j)
            # Destroy the planted structure: dense random cross edges.
            i2 = rng.integers(0, 12, size=80)
            j2 = rng.integers(0, 12, size=80)
            res = svc.ingest(i2, j2)
            assert res.rerun == "drift"
            assert svc.report.stream_reruns >= 1
            assert any("drift" in rung for rung in svc.report.ladder)
            kinds = [r.kind for r in svc.wal.records()]
            assert KIND_RERUN in kinds  # the decision was journaled

    def test_deadline_triggers_rerun(self, tmp_path):
        cfg = _cfg(repair_deadline_s=1e-9, snapshot_every=100)
        with DetectionService(tmp_path, cfg) as svc:
            svc.open()
            _feed(svc, n_batches=1)  # bootstrap never drifts
            res = _feed(svc, n_batches=1, seed=1)[0]
            assert res.rerun == "deadline"
            assert any("deadline" in rung for rung in svc.report.ladder)

    def test_rerun_decisions_replay_identically(self, tmp_path):
        # The deadline trigger is wall-clock — the control record, not
        # the clock, must drive replay.
        cfg = _cfg(repair_deadline_s=1e-9, snapshot_every=100)
        svc = DetectionService(tmp_path / "a", cfg)
        svc.open()
        _feed(svc, n_batches=4)
        labels = svc.labels.copy()
        svc.wal.close()

        # Recover with the deadline *disabled*: only journaled control
        # records can reproduce the reruns.
        svc2 = DetectionService(tmp_path / "a", _cfg(snapshot_every=100))
        svc2.open()
        np.testing.assert_array_equal(svc2.labels, labels)
        assert svc2.report.stream_reruns > 0
        svc2.close()


class TestVerifyAndFaults:
    def test_verify_passes_on_healthy_state(self, tmp_path):
        with DetectionService(tmp_path, _cfg()) as svc:
            svc.open()
            _feed(svc, n_batches=3)
            outcome = svc.verify()
            assert outcome["ok"], outcome["checks"]

    def test_crash_points_are_registered_fault_points(self):
        from repro.resilience.faults import FaultPlan

        for point in CRASH_POINTS:
            plan = FaultPlan.sigkill_at(point, [0])
            assert plan.decide_service(point, 0) is not None
            assert plan.decide_service(point, 1) is None
