"""Unit tests for JSONL trace export/import and the profile renderer."""

import json

import pytest

from repro.errors import ReproError
from repro.obs.sinks import (
    UnknownTraceRecordWarning,
    phase_totals,
    read_trace,
    render_profile,
    write_trace,
)
from repro.obs.trace import SCHEMA_VERSION, NullTracer, Tracer


def make_tracer(n_levels: int = 2) -> Tracer:
    tr = Tracer()
    with tr.span("run", graph="toy"):
        for lvl in range(n_levels):
            with tr.span(
                "level", level=lvl, n_vertices=100 >> lvl, n_edges=400 >> lvl
            ):
                with tr.span("score", level=lvl) as sp:
                    sp.set(items=400 >> lvl)
                with tr.span("match", level=lvl):
                    pass
                with tr.span("contract", level=lvl):
                    pass
    tr.counter("levels").inc(n_levels)
    tr.gauge("match.worklist_edges").set(37)
    tr.histogram("h", edges=[1, 2]).observe(1.5)
    return tr


class TestRoundTrip:
    def test_spans_survive(self, tmp_path):
        tr = make_tracer()
        path = tmp_path / "t.jsonl"
        n = write_trace(tr, path, meta={"who": "test"})
        data = read_trace(path)
        assert data.complete
        assert data.version == SCHEMA_VERSION
        assert data.meta == {"who": "test"}
        assert len(data.spans) == n == len(tr.spans)
        for orig, loaded in zip(tr.spans, data.spans):
            assert loaded.name == orig.name
            assert loaded.span_id == orig.span_id
            assert loaded.parent_id == orig.parent_id
            assert loaded.level == orig.level
            assert loaded.start_ns == orig.start_ns
            assert loaded.end_ns == orig.end_ns
            assert loaded.items == orig.items
            assert loaded.attrs == orig.attrs

    def test_metrics_survive(self, tmp_path):
        tr = make_tracer()
        path = tmp_path / "t.jsonl"
        write_trace(tr, path)
        data = read_trace(path)
        assert data.counters == {"levels": 2}
        assert data.gauges["match.worklist_edges"]["value"] == 37
        assert data.histograms["h"]["edges"] == [1, 2]
        assert data.histograms["h"]["counts"] == [0, 1, 0]

    def test_jsonl_one_object_per_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_trace(make_tracer(), path)
        lines = path.read_text().strip().splitlines()
        events = [json.loads(ln) for ln in lines]
        assert events[0]["event"] == "header"
        assert events[0]["schema"] == "repro-run-trace"
        assert events[-1]["event"] == "end"

    def test_null_tracer_writes_valid_empty_trace(self, tmp_path):
        path = tmp_path / "t.jsonl"
        assert write_trace(NullTracer(), path) == 0
        data = read_trace(path)
        assert data.complete
        assert data.spans == []

    def test_find(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_trace(make_tracer(3), path)
        data = read_trace(path)
        assert len(data.find("contract")) == 3

    def test_counter_samples_survive(self, tmp_path):
        tr = make_tracer()
        tr.record_counter("rss_anon_mb", 12.5, ts_ns=100, unit="MiB")
        tr.record_counter("rss_anon_mb", 13.0, ts_ns=200, unit="MiB")
        path = tmp_path / "t.jsonl"
        write_trace(tr, path)
        data = read_trace(path)
        series = data.sample_series("rss_anon_mb")
        assert [(s.ts_ns, s.value) for s in series] == [
            (100, 12.5),
            (200, 13.0),
        ]
        assert all(s.unit == "MiB" for s in series)

    def test_unknown_record_kinds_skipped_with_warning(self, tmp_path):
        # Forward compatibility within a known version: record kinds
        # this reader has never heard of are skipped and counted, and
        # the file still loads.
        tr = make_tracer(1)
        path = tmp_path / "t.jsonl"
        write_trace(tr, path)
        lines = path.read_text().splitlines()
        lines.insert(1, json.dumps({"event": "wibble", "x": 1}))
        lines.insert(2, json.dumps({"event": "wibble", "x": 2}))
        lines.insert(
            3,
            json.dumps(
                {
                    "event": "counter_sample",
                    "type": "flamegraph",  # unknown inner type
                    "name": "n",
                    "ts_ns": 1,
                    "value": 0,
                }
            ),
        )
        path.write_text("\n".join(lines) + "\n")
        with pytest.warns(UnknownTraceRecordWarning, match="wibble"):
            data = read_trace(path)
        assert data.complete
        assert data.skipped_records == 3
        assert len(data.spans) == len(tr.spans)
        assert data.samples == []


class TestReadErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ReproError, match="cannot read"):
            read_trace(tmp_path / "nope.jsonl")

    def test_empty_file(self, tmp_path):
        p = tmp_path / "t.jsonl"
        p.write_text("")
        with pytest.raises(ReproError, match="empty"):
            read_trace(p)

    def test_not_jsonl(self, tmp_path):
        p = tmp_path / "t.jsonl"
        p.write_text("this is not json\n")
        with pytest.raises(ReproError, match="not valid JSONL"):
            read_trace(p)

    def test_wrong_schema(self, tmp_path):
        p = tmp_path / "t.jsonl"
        p.write_text(json.dumps({"event": "header", "schema": "other"}) + "\n")
        with pytest.raises(ReproError, match="not a repro-run-trace"):
            read_trace(p)

    def test_newer_version_loads_best_effort(self, tmp_path):
        # Forward compatibility: a v99 header warns but does not refuse.
        p = tmp_path / "t.jsonl"
        p.write_text(
            json.dumps(
                {"event": "header", "schema": "repro-run-trace", "version": 99}
            )
            + "\n"
        )
        with pytest.warns(UnknownTraceRecordWarning, match="newer than"):
            data = read_trace(p)
        assert data.version == 99
        assert data.spans == []

    def test_non_integer_version_rejected(self, tmp_path):
        p = tmp_path / "t.jsonl"
        p.write_text(
            json.dumps(
                {
                    "event": "header",
                    "schema": "repro-run-trace",
                    "version": "zzz",
                }
            )
            + "\n"
        )
        with pytest.raises(ReproError, match="unsupported trace version"):
            read_trace(p)

    def test_truncated_trace_not_complete(self, tmp_path):
        full = tmp_path / "full.jsonl"
        write_trace(make_tracer(), full)
        lines = full.read_text().strip().splitlines()
        cut = tmp_path / "cut.jsonl"
        cut.write_text("\n".join(lines[:-1]) + "\n")  # drop the trailer
        assert not read_trace(cut).complete

    def test_span_count_mismatch(self, tmp_path):
        p = tmp_path / "t.jsonl"
        p.write_text(
            json.dumps(
                {"event": "header", "schema": "repro-run-trace", "version": 1}
            )
            + "\n"
            + json.dumps({"event": "end", "n_spans": 7})
            + "\n"
        )
        with pytest.raises(ReproError, match="trailer"):
            read_trace(p)


class TestPhaseTotals:
    def test_sums_and_share(self):
        tr = make_tracer()
        totals = phase_totals(list(tr.spans))
        assert set(totals) == {
            "score",
            "match",
            "contract",
            "total",
            "contract_share",
        }
        assert totals["total"] == pytest.approx(
            totals["score"] + totals["match"] + totals["contract"]
        )
        assert 0.0 <= totals["contract_share"] <= 1.0

    def test_empty(self):
        totals = phase_totals([])
        assert totals["total"] == 0.0
        assert totals["contract_share"] == 0.0


class TestRenderProfile:
    def test_table_contents(self):
        tr = make_tracer(2)
        out = render_profile(list(tr.spans))
        assert "phase profile — toy" in out
        assert "score ms" in out
        assert "contract %" in out
        assert "contraction share of phase time:" in out
        # one row per level plus the totals row
        assert out.count("\n") >= 5

    def test_level_attrs_rendered(self):
        tr = make_tracer(1)
        out = render_profile(list(tr.spans))
        assert "100" in out  # n_vertices of level 0
        assert "400" in out  # n_edges of level 0

    def test_no_spans(self):
        assert "no spans" in render_profile([])

    def test_spans_without_phases(self):
        tr = Tracer()
        with tr.span("something_else"):
            pass
        assert "no phase spans" in render_profile(list(tr.spans))

    def test_multiple_runs_get_separate_tables(self):
        tr = Tracer()
        for gname in ("g1", "g2"):
            with tr.span("run", graph=gname):
                with tr.span("level", level=0):
                    with tr.span("score", level=0):
                        pass
                    with tr.span("match", level=0):
                        pass
                    with tr.span("contract", level=0):
                        pass
        out = render_profile(list(tr.spans))
        assert "phase profile — g1" in out
        assert "phase profile — g2" in out


class TestAtomicWrite:
    def test_no_tmp_residue(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_trace(make_tracer(), path)
        assert [p.name for p in tmp_path.iterdir()] == ["t.jsonl"]

    def test_failed_export_leaves_previous_trace_intact(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_trace(make_tracer(n_levels=1), path)
        bad = Tracer()
        with bad.span("run", blob=object()):  # not JSON-serializable
            pass
        with pytest.raises(TypeError):
            write_trace(bad, path)
        # the old file survived the failed overwrite, still complete
        data = read_trace(path, require_complete=True)
        assert data.complete
        assert [p.name for p in tmp_path.iterdir()] == ["t.jsonl"]


class TestEmptyAndTruncated:
    def test_null_tracer_round_trips_empty(self, tmp_path):
        path = tmp_path / "t.jsonl"
        n = write_trace(NullTracer(), path)
        assert n == 0
        data = read_trace(path, require_complete=True)
        assert data.spans == []
        assert data.counters == {}
        # zero-span summaries degrade gracefully
        totals = phase_totals(data.spans)
        assert totals["total"] == 0.0
        assert totals["contract_share"] == 0.0
        assert "no spans" in render_profile(data.spans)

    def test_require_complete_rejects_trailerless_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_trace(make_tracer(), path)
        lines = path.read_text().splitlines()
        assert json.loads(lines[-1])["event"] == "end"
        path.write_text("\n".join(lines[:-1]) + "\n")
        # the default is lenient: truncated traces still load...
        assert not read_trace(path).complete
        # ...but an explicit completeness demand rejects them.
        with pytest.raises(ReproError, match="no end trailer"):
            read_trace(path, require_complete=True)


class TestSchemaV2:
    """v2 traces carry pid/tid/epoch_ns; v1 files still load."""

    def test_round_trip_preserves_identity_fields(self, tmp_path):
        tr = Tracer()
        with tr.span("pool_run"):
            tr.record_span(
                "worker_chunk", start_ns=1, end_ns=2, pid=4242,
                queue_wait_s=0.1,
            )
        path = tmp_path / "t.jsonl"
        write_trace(tr, path)
        loaded = read_trace(path).spans
        by_name = {s.name: s for s in loaded}
        lane = by_name["worker_chunk"]
        assert lane.pid == 4242 and lane.tid == 4242
        root = by_name["pool_run"]
        assert root.pid == tr.spans[-1].pid
        assert root.tid == tr.spans[-1].tid
        assert root.epoch_ns == tr.epoch_ns

    def test_v1_file_loads_with_defaults(self, tmp_path):
        path = tmp_path / "v1.jsonl"
        lines = [
            json.dumps(
                {
                    "event": "header",
                    "schema": "repro-run-trace",
                    "version": 1,
                    "meta": {"command": "old"},
                }
            ),
            json.dumps(
                {
                    "event": "span",
                    "id": 0,
                    "parent": None,
                    "name": "run",
                    "level": None,
                    "start_ns": 0,
                    "end_ns": 100,
                    "duration_s": 1e-7,
                    "items": 0,
                    "attrs": {},
                }
            ),
            json.dumps({"event": "end", "n_spans": 1}),
        ]
        path.write_text("\n".join(lines) + "\n")
        data = read_trace(path)
        span = data.spans[0]
        assert span.pid is None
        assert span.tid is None
        assert span.epoch_ns == 0

    def test_written_meta_declares_v3(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_trace(make_tracer(1), path)
        meta = json.loads(path.read_text().splitlines()[0])
        assert meta["version"] == SCHEMA_VERSION == 3
