"""Unit tests for graph file I/O."""

import numpy as np
import pytest

from repro.errors import GraphFormatError, GraphFormatWarning
from repro.graph import (
    from_edges,
    load_npz,
    read_edgelist,
    read_metis,
    save_npz,
    write_edgelist,
    write_metis,
)


@pytest.fixture
def weighted_graph():
    return from_edges(
        np.array([0, 1, 2, 2]),
        np.array([1, 2, 3, 2]),
        np.array([1.0, 2.0, 3.0, 4.0]),
    )


class TestEdgeList:
    def test_roundtrip_weighted(self, tmp_path, weighted_graph):
        path = tmp_path / "g.txt"
        write_edgelist(weighted_graph, path)
        g = read_edgelist(path)
        assert g.n_vertices == weighted_graph.n_vertices
        assert g.n_edges == weighted_graph.n_edges
        assert g.total_weight() == pytest.approx(weighted_graph.total_weight())

    def test_roundtrip_unweighted(self, tmp_path, karate):
        path = tmp_path / "k.txt"
        write_edgelist(karate, path, weights=False)
        g = read_edgelist(path)
        assert g.n_edges == karate.n_edges

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# header\n\n% other comment\n0 1\n1 2\n")
        g = read_edgelist(path)
        assert g.n_edges == 2

    def test_auto_weight_detection(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 2.5\n1 2 1.5\n")
        g = read_edgelist(path)
        assert g.total_weight() == pytest.approx(4.0)

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0\n")
        with pytest.raises(GraphFormatError):
            read_edgelist(path)

    def test_non_numeric(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("a b\n")
        with pytest.raises(GraphFormatError):
            read_edgelist(path)

    def test_negative_id(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("-1 2\n")
        with pytest.raises(GraphFormatError):
            read_edgelist(path)


class TestEdgeListErrorLocation:
    def test_error_names_file_line_and_token(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n0 x\n")
        with pytest.raises(GraphFormatError, match=r"g\.txt:2: .*'x'"):
            read_edgelist(path)

    def test_negative_id_reports_line(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# comment\n0 1\n-3 2\n")
        with pytest.raises(
            GraphFormatError, match=r":3: negative vertex id '-3'"
        ):
            read_edgelist(path)

    def test_non_finite_weight_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 nan\n")
        with pytest.raises(
            GraphFormatError, match=r":1: non-finite edge weight"
        ):
            read_edgelist(path)


class TestEdgeListNonStrict:
    def test_skips_bad_lines_with_counted_warning(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\nbroken line here\n1 2\n0\n2 3\n")
        with pytest.warns(GraphFormatWarning, match="2 malformed"):
            g = read_edgelist(path, strict=False)
        assert g.n_edges == 3

    def test_clean_file_emits_no_warning(self, tmp_path, recwarn):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n")
        g = read_edgelist(path, strict=False)
        assert g.n_edges == 2
        assert not any(
            isinstance(w.message, GraphFormatWarning) for w in recwarn.list
        )

    def test_skips_non_finite_weights(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 1.0\n1 2 inf\n2 3 2.0\n")
        with pytest.warns(GraphFormatWarning):
            g = read_edgelist(path, strict=False)
        assert g.n_edges == 2
        assert np.isfinite(g.edges.w).all()

    def test_strict_is_the_default(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("junk\n")
        with pytest.raises(GraphFormatError):
            read_edgelist(path)


class TestMetis:
    def test_roundtrip(self, tmp_path, weighted_graph):
        path = tmp_path / "g.metis"
        write_metis(weighted_graph, path)
        g = read_metis(path)
        assert g.n_vertices == weighted_graph.n_vertices
        assert g.n_edges == weighted_graph.n_edges
        # Self loops are not representable in METIS adjacency; compare
        # only the cross-edge weights.
        assert g.edges.total_weight() == pytest.approx(
            weighted_graph.edges.total_weight()
        )

    def test_roundtrip_karate(self, tmp_path, karate):
        path = tmp_path / "k.metis"
        write_metis(karate, path)
        g = read_metis(path)
        assert g.n_edges == karate.n_edges
        g.validate()

    def test_unweighted_format(self, tmp_path):
        path = tmp_path / "g.metis"
        path.write_text("3 2\n2\n1 3\n2\n")
        g = read_metis(path)
        assert g.n_edges == 2
        np.testing.assert_array_equal(g.edges.w, [1.0, 1.0])

    def test_vertex_weights_rejected(self, tmp_path):
        path = tmp_path / "g.metis"
        path.write_text("2 1 11\n1 2 1\n1 1 1\n")
        with pytest.raises(GraphFormatError, match="vertex weights"):
            read_metis(path)

    def test_wrong_line_count(self, tmp_path):
        path = tmp_path / "g.metis"
        path.write_text("3 1\n2\n1\n")
        with pytest.raises(GraphFormatError, match="adjacency lines"):
            read_metis(path)

    def test_neighbor_out_of_range(self, tmp_path):
        path = tmp_path / "g.metis"
        path.write_text("2 1\n5\n1\n")
        with pytest.raises(GraphFormatError, match="out of range"):
            read_metis(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "g.metis"
        path.write_text("")
        with pytest.raises(GraphFormatError, match="empty"):
            read_metis(path)

    def test_edge_count_mismatch(self, tmp_path):
        path = tmp_path / "g.metis"
        path.write_text("3 9\n2\n1 3\n2\n")
        with pytest.raises(GraphFormatError, match="declares"):
            read_metis(path)

    def test_bad_neighbor_token_names_line(self, tmp_path):
        path = tmp_path / "g.metis"
        path.write_text("% comment\n2 1\n2\nbogus\n")
        with pytest.raises(
            GraphFormatError, match=r":4: bad neighbor id 'bogus'"
        ):
            read_metis(path)

    def test_non_numeric_header_names_line(self, tmp_path):
        path = tmp_path / "g.metis"
        path.write_text("three two\n")
        with pytest.raises(GraphFormatError, match=r":1: non-numeric"):
            read_metis(path)

    def test_bad_weight_token_names_line(self, tmp_path):
        path = tmp_path / "g.metis"
        path.write_text("2 1 1\n2 w\n1 w\n")
        with pytest.raises(GraphFormatError, match=r":2: bad edge weight"):
            read_metis(path)


class TestNpz:
    def test_roundtrip_exact(self, tmp_path, weighted_graph):
        path = tmp_path / "g.npz"
        save_npz(weighted_graph, path)
        g = load_npz(str(path) if not str(path).endswith(".npz") else path)
        np.testing.assert_array_equal(g.edges.ei, weighted_graph.edges.ei)
        np.testing.assert_array_equal(g.edges.ej, weighted_graph.edges.ej)
        np.testing.assert_array_equal(g.edges.w, weighted_graph.edges.w)
        np.testing.assert_array_equal(
            g.self_weights, weighted_graph.self_weights
        )

    def test_load_validates(self, tmp_path, karate):
        path = tmp_path / "k.npz"
        save_npz(karate, path)
        g = load_npz(path)
        assert g.n_edges == 78
