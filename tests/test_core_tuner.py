"""Unit coverage for the per-level kernel tuner (repro.core.tuner):
shape features, cost-table validation/load/fit, selection policies and
the KernelTuner seam the engine drives."""

import json

import numpy as np
import pytest

from repro.core.registry import kernel_info, kernel_names
from repro.core.tuner import (
    AUTO_KERNEL,
    COST_FEATURES,
    DEFAULT_COST_TABLE,
    CostModelPolicy,
    KernelTuner,
    LevelShape,
    StaticPolicy,
    TunerDecision,
    fit_cost_table,
    level_shape,
    load_cost_table,
)
from repro.generators import planted_partition_graph


@pytest.fixture(scope="module")
def sbm():
    return planted_partition_graph(300, seed=5)


def make_shape(n=1000, m=8000, cv=1.5):
    density = 2.0 * m / (n * (n - 1))
    return LevelShape(
        n_vertices=n, n_edges=m, density=density, degree_cv=cv
    )


class TestLevelShape:
    def test_features_align_with_cost_features(self):
        shape = make_shape()
        feats = shape.features()
        assert set(feats) == set(COST_FEATURES)
        assert feats["const"] == 1.0
        assert feats["edges"] == shape.n_edges
        assert feats["vertices"] == shape.n_vertices
        assert feats["edges_x_cv"] == pytest.approx(
            shape.n_edges * shape.degree_cv
        )

    def test_level_shape_from_graph(self, sbm):
        shape = level_shape(sbm)
        assert shape.n_vertices == sbm.n_vertices
        assert shape.n_edges == sbm.n_edges
        expected = 2.0 * sbm.n_edges / (sbm.n_vertices * (sbm.n_vertices - 1))
        assert shape.density == pytest.approx(expected)
        deg = sbm.edges.degrees().astype(float)
        assert shape.degree_cv == pytest.approx(deg.std() / deg.mean())

    def test_as_dict_round_trips(self):
        shape = make_shape()
        d = shape.as_dict()
        assert d["n_vertices"] == shape.n_vertices
        assert d["degree_cv"] == shape.degree_cv


class TestCostTable:
    def test_default_table_is_valid(self):
        table = load_cost_table(DEFAULT_COST_TABLE)
        assert table["version"] == 1
        # The shipped table prices every registered matcher/contractor.
        for kind in ("matcher", "contractor"):
            assert set(table["coefficients"][kind]) == set(kernel_names(kind))

    def test_load_from_file_and_from_ledger_wrapper(self, tmp_path):
        bare = tmp_path / "table.json"
        bare.write_text(json.dumps(DEFAULT_COST_TABLE))
        assert load_cost_table(bare)["version"] == 1

        ledger = tmp_path / "ledger.json"
        ledger.write_text(
            json.dumps({"config": {"cost_table": DEFAULT_COST_TABLE}})
        )
        assert load_cost_table(ledger)["coefficients"]

    @pytest.mark.parametrize(
        "broken",
        [
            {"version": 2, "features": [], "coefficients": {}},
            {"version": 1, "features": ["bogus"], "coefficients": {}},
            {"version": 1, "features": ["const"], "coefficients": "nope"},
            {
                "version": 1,
                "features": ["const"],
                "coefficients": {"matcher": {"worklist": {"bogus": 1.0}}},
            },
            {
                "version": 1,
                "features": ["const"],
                "coefficients": {"matcher": {"worklist": {"const": float("nan")}}},
            },
        ],
    )
    def test_invalid_tables_rejected(self, broken):
        with pytest.raises(ValueError):
            load_cost_table(broken)

    def test_invalid_json_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_cost_table(path)

    def test_fit_recovers_linear_model(self):
        # Synthetic kernel whose cost is exactly linear in its declared
        # features: the fit must recover the coefficients.
        rng = np.random.default_rng(3)
        true = {"const": 1e-3, "edges": 2e-7, "vertices": 5e-7}
        pairs = []
        for _ in range(24):
            n = int(rng.integers(100, 5000))
            m = int(rng.integers(n, 20 * n))
            shape = make_shape(n=n, m=m, cv=float(rng.uniform(0.2, 3.0)))
            secs = sum(true[f] * shape.features()[f] for f in true)
            pairs.append((shape, secs))
        table = fit_cost_table(
            {("contractor", "bucket"): pairs}, source="unit-test"
        )
        got = table["coefficients"]["contractor"]["bucket"]
        # bucket declares (const, edges, vertices) — exactly our model.
        assert set(got) == set(true)
        for f, c in true.items():
            assert got[f] == pytest.approx(c, rel=1e-6)
        assert table["source"] == "unit-test"

    def test_fit_respects_registry_declared_features(self):
        pairs = [(make_shape(cv=cv), 0.01 * cv) for cv in (0.5, 1.0, 2.0)]
        table = fit_cost_table({("matcher", "worklist"): pairs})
        feats = set(table["coefficients"]["matcher"]["worklist"])
        assert feats == set(kernel_info("matcher", "worklist").cost_features)

    def test_fit_skips_empty_sample_lists(self):
        table = fit_cost_table({("matcher", "worklist"): []})
        assert table["coefficients"] == {}


class TestPolicies:
    def test_cost_model_picks_cheapest(self):
        policy = CostModelPolicy(
            {
                "version": 1,
                "features": list(COST_FEATURES),
                "coefficients": {
                    "matcher": {
                        "fast": {"const": 1e-4},
                        "slow": {"const": 1e-1},
                    }
                },
            }
        )
        chosen, predicted = policy.select(
            "matcher", make_shape(), ["slow", "fast"]
        )
        assert chosen == "fast"
        assert predicted["fast"] < predicted["slow"]

    def test_cost_model_untabulated_candidates_predict_none(self):
        policy = CostModelPolicy()
        chosen, predicted = policy.select(
            "matcher", make_shape(), ["worklist", "mystery"]
        )
        assert predicted["mystery"] is None
        assert chosen == "worklist"

    def test_cost_model_all_untabulated_falls_back_to_name_order(self):
        policy = CostModelPolicy()
        chosen, _ = policy.select("matcher", make_shape(), ["zz", "aa"])
        assert chosen == "aa"

    def test_cost_model_empty_candidates_raise(self):
        with pytest.raises(ValueError, match="no matcher candidates"):
            CostModelPolicy().select("matcher", make_shape(), [])

    def test_static_policy_pins_and_falls_back(self):
        policy = StaticPolicy({"matcher": "sweep"})
        chosen, _ = policy.select(
            "matcher", make_shape(), ["worklist", "sweep"]
        )
        assert chosen == "sweep"
        # Pin filtered out (e.g. sharded constraint): deterministic
        # name-order fallback, not an error.
        chosen, _ = policy.select("matcher", make_shape(), ["worklist", "gmm"])
        assert chosen == "gmm"


class TestKernelTuner:
    def test_candidates_filter_on_sharded_capability(self):
        tuner = KernelTuner()
        unconstrained = tuner.candidates("contractor")
        constrained = tuner.candidates("contractor", sharded=True)
        assert set(constrained) < set(unconstrained)
        for name in constrained:
            assert kernel_info("contractor", name).supports_sharded
        for name in set(unconstrained) - set(constrained):
            assert not kernel_info("contractor", name).supports_sharded

    def test_decide_records_full_rationale(self):
        tuner = KernelTuner()
        shape = make_shape()
        decision = tuner.decide("matcher", shape, 3, sharded=True)
        assert isinstance(decision, TunerDecision)
        assert decision.level == 3
        assert decision.constrained_sharded
        assert decision.chosen in decision.candidates
        assert kernel_info("matcher", decision.chosen).supports_sharded
        assert tuner.decisions == [decision]

    def test_kernel_for_caches_instances(self):
        tuner = KernelTuner(StaticPolicy({"contractor": "bucket"}))
        d1 = tuner.decide("contractor", make_shape(), 0)
        d2 = tuner.decide("contractor", make_shape(), 1)
        assert tuner.kernel_for(d1) is tuner.kernel_for(d2)

    def test_ledger_block_shape(self):
        tuner = KernelTuner(StaticPolicy({"matcher": "worklist"}))
        tuner.decide("matcher", make_shape(), 0)
        tuner.decide("matcher", make_shape(), 1)
        block = tuner.as_dict()
        assert block["policy"] == "static"
        assert block["n_decisions"] == 2
        assert block["selected"] == {"matcher": {"worklist": 2}}
        assert len(block["decisions"]) == 2
        assert json.dumps(block)  # ledger-serializable

    def test_auto_sentinel_is_not_a_registered_kernel(self):
        assert AUTO_KERNEL == "auto"
        assert AUTO_KERNEL not in kernel_names("matcher")
        assert AUTO_KERNEL not in kernel_names("contractor")
