"""Unit tests for the benchmark harness (datasets, sweeps, reporting)."""

import numpy as np
import pytest

from repro.bench import (
    DATASETS,
    ScalingResult,
    format_scaling,
    format_table,
    format_table1,
    format_table2,
    format_table3,
    load_dataset,
    peak_rate,
    run_with_trace,
    scaling_experiment,
)
from repro.generators import ring_of_cliques
from repro.platform import CRAY_XMT2, INTEL_X5570


@pytest.fixture(scope="module")
def small_run():
    g = ring_of_cliques(30, 6)
    return run_with_trace(g, graph_name="cliques")


class TestDatasets:
    def test_registry_matches_table2(self):
        assert set(DATASETS) == {"rmat-24-16", "soc-LiveJournal1", "uk-2007-05"}
        assert DATASETS["uk-2007-05"].paper_edges == 3_301_876_564
        assert DATASETS["soc-LiveJournal1"].paper_vertices == 4_847_571

    def test_load_small_scale(self):
        g = load_dataset("soc-LiveJournal1", scale=0.2, seed=0)
        assert g.n_vertices == 300
        g.validate()

    def test_relative_sizes_preserved(self):
        # uk > rmat > soc-LJ by edge count, as in the paper.
        sizes = {
            name: load_dataset(name, scale=0.25, seed=0).n_edges
            for name in DATASETS
        }
        assert sizes["uk-2007-05"] > sizes["rmat-24-16"] > sizes["soc-LiveJournal1"]

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_dataset("facebook")

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            load_dataset("rmat-24-16", scale=0.0)


class TestHarness:
    def test_run_with_trace(self, small_run):
        assert small_run.result.n_levels >= 1
        assert len(small_run.recorder.records) > 0
        assert small_run.n_edges > 0

    def test_scaling_experiment(self, small_run):
        sweeps = scaling_experiment(
            small_run, [INTEL_X5570, CRAY_XMT2], parallelism=[1, 2, 8], seed=0
        )
        assert set(sweeps) == {"X5570", "XMT2"}
        sr = sweeps["X5570"]
        assert set(sr.times) == {1, 2, 8}
        assert all(len(ts) == 3 for ts in sr.times.values())

    def test_parallelism_clamped_to_platform(self, small_run):
        sweeps = scaling_experiment(
            small_run, [INTEL_X5570], parallelism=[1, 8, 999], seed=0
        )
        assert max(sweeps["X5570"].times) <= 16

    def test_parallelism_one_added(self, small_run):
        sweeps = scaling_experiment(
            small_run, [INTEL_X5570], parallelism=[4], seed=0
        )
        assert 1 in sweeps["X5570"].times

    def test_scaling_result_stats(self, small_run):
        sweeps = scaling_experiment(
            small_run, [INTEL_X5570], parallelism=[1, 2, 4, 8, 16], seed=0
        )
        sr = sweeps["X5570"]
        assert sr.best_time() <= sr.best_single_unit_time()
        assert sr.best_speedup() >= 1.0
        assert sr.best_parallelism() in sr.times
        su = sr.speedups()
        assert su[1] == pytest.approx(
            sr.best_single_unit_time() / float(np.median(sr.times[1]))
        )

    def test_peak_rate(self, small_run):
        sweeps = scaling_experiment(
            small_run, [INTEL_X5570], parallelism=[1, 8], seed=0
        )
        rate = peak_rate(sweeps["X5570"])
        assert rate == pytest.approx(
            small_run.n_edges / sweeps["X5570"].best_time()
        )

    def test_missing_single_unit(self, small_run):
        sr = ScalingResult(
            machine=INTEL_X5570,
            graph_name="x",
            n_edges=10,
            times={2: [1.0]},
        )
        with pytest.raises(ValueError):
            sr.best_single_unit_time()


class TestReporting:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]

    def test_table1_contains_all_platforms(self):
        out = format_table1()
        for name in ("XMT", "XMT2", "E7-8870", "X5650", "X5570"):
            assert name in out
        assert "500MHz" in out and "2.40GHz" in out

    def test_table2_contains_paper_sizes(self):
        out = format_table2({"rmat-24-16": (100, 200)})
        assert "105,896,555" in out  # uk vertices
        assert "100" in out

    def test_table3_format(self, small_run):
        sweeps = scaling_experiment(
            small_run, [INTEL_X5570], parallelism=[1, 4], seed=0
        )
        out = format_table3({"rmat-24-16": sweeps})
        assert "X5570" in out
        assert "e6" in out

    def test_format_scaling_time_and_speedup(self, small_run):
        sweeps = scaling_experiment(
            small_run, [CRAY_XMT2], parallelism=[1, 4], seed=0
        )
        t = format_scaling(sweeps["XMT2"])
        s = format_scaling(sweeps["XMT2"], speedup=True)
        assert "processors" in t
        assert "speed-up" in s
