"""Unit tests for modularity (validated against networkx)."""

import networkx as nx
import numpy as np
import pytest

from repro.graph import from_edges, to_networkx
from repro.metrics import (
    Partition,
    community_graph_modularity,
    modularity,
)


def nx_modularity(graph, partition):
    g = to_networkx(graph)
    comms = [
        set(partition.members(c).tolist())
        for c in range(partition.n_communities)
    ]
    return nx.algorithms.community.modularity(g, comms, weight="weight")


class TestModularity:
    def test_all_in_one_is_zero(self, karate):
        p = Partition(np.zeros(34, dtype=np.int64))
        assert modularity(karate, p) == pytest.approx(0.0)

    def test_singletons_negative(self, karate):
        p = Partition.singletons(34)
        q = modularity(karate, p)
        assert q < 0

    def test_two_triangles_ideal_split(self, triangles):
        p = Partition(np.array([0, 0, 0, 1, 1, 1]))
        # W=7: Q = 6/7 - 2*(7/14)^2 = 5/14
        assert modularity(triangles, p) == pytest.approx(5 / 14)

    def test_against_networkx_karate(self, karate):
        p = Partition.from_labels(
            np.array([0] * 17 + [1] * 17, dtype=np.int64)
        )
        assert modularity(karate, p) == pytest.approx(nx_modularity(karate, p))

    def test_against_networkx_weighted(self, random_graph_factory):
        g = random_graph_factory(n=20, m=60, seed=11)
        rng = np.random.default_rng(0)
        p = Partition.from_labels(rng.integers(0, 4, g.n_vertices))
        assert modularity(g, p) == pytest.approx(nx_modularity(g, p))

    def test_size_mismatch(self, karate):
        with pytest.raises(ValueError):
            modularity(karate, Partition.singletons(3))

    def test_zero_weight_graph(self):
        g = from_edges(np.empty(0, int), np.empty(0, int), n_vertices=3)
        assert modularity(g, Partition.singletons(3)) == 0.0

    def test_self_weights_count_internal(self):
        g = from_edges(np.array([0, 1]), np.array([1, 1]))  # loop at 1
        p = Partition(np.array([0, 1]))
        q = modularity(g, p)
        # W=2, internal: c0=0, c1=1 (loop); vol: c0=1, c1=3.
        expected = (0 / 2 - (1 / 4) ** 2) + (1 / 2 - (3 / 4) ** 2)
        assert q == pytest.approx(expected)


class TestCommunityGraphModularity:
    def test_matches_partition_modularity(self, karate):
        """Contract a partition and check the O(|V|) closed form agrees."""
        from repro.core.contraction import _build_contracted

        labels = np.array([0] * 17 + [1] * 17, dtype=np.int64)
        p = Partition.from_labels(labels)
        contracted = _build_contracted(karate, p.labels, 2)
        assert community_graph_modularity(contracted) == pytest.approx(
            modularity(karate, p)
        )

    def test_zero_weight(self):
        g = from_edges(np.empty(0, int), np.empty(0, int), n_vertices=2)
        assert community_graph_modularity(g) == 0.0
