"""Integration tests for community quality: parallel algorithm vs the
sequential baselines and planted ground truth (the paper's §V sanity
check, extended)."""

import numpy as np
import pytest

from repro import (
    TerminationCriteria,
    detect_communities,
    modularity,
    refine_partition,
)
from repro.baselines import cnm_communities, louvain_communities
from repro.generators import planted_partition_graph, ring_of_cliques
from repro.metrics import (
    Partition,
    adjusted_rand_index,
    normalized_mutual_information,
)


@pytest.fixture(scope="module")
def planted():
    g, labels = planted_partition_graph(
        1200,
        mean_community_size=25.0,
        p_in=0.4,
        background_degree=2.0,
        seed=3,
        return_labels=True,
    )
    return g, Partition.from_labels(labels)


class TestPlantedRecovery:
    def test_parallel_recovers_planted_structure(self, planted):
        g, truth = planted
        res = detect_communities(
            g, termination=TerminationCriteria.local_maximum()
        )
        nmi = normalized_mutual_information(res.partition, truth)
        assert nmi > 0.55

    def test_parallel_vs_louvain_agreement(self, planted):
        g, _ = planted
        par = detect_communities(
            g, termination=TerminationCriteria.local_maximum()
        ).partition
        lou, _ = louvain_communities(g, seed=0)
        assert normalized_mutual_information(par, lou) > 0.5

    def test_ari_positive(self, planted):
        g, truth = planted
        res = detect_communities(
            g, termination=TerminationCriteria.local_maximum()
        )
        assert adjusted_rand_index(res.partition, truth) > 0.2


class TestModularityComparison:
    """The paper: 'smaller graphs' resulting modularities appear reasonable
    compared with results from a different, sequential implementation'."""

    @pytest.mark.parametrize("n_cliques,size", [(8, 5), (12, 4), (30, 5)])
    def test_ring_matches_baselines(self, n_cliques, size):
        """Parallel modularity within 15% of CNM's; cliques never split.

        Exact clique counts are not asserted: modularity's resolution
        limit makes pairwise clique merges optimal on this family, and
        both algorithms legitimately find such optima.
        """
        g = ring_of_cliques(n_cliques, size)
        par = detect_communities(
            g, termination=TerminationCriteria.local_maximum()
        )
        cnm_p, cnm_q = cnm_communities(g)
        q_par = modularity(g, par.partition)
        # Matching-based agglomeration trades some quality for
        # parallelism; stay within a quarter of CNM's modularity and
        # close most of the remaining gap with one refinement pass.
        assert q_par == pytest.approx(cnm_q, rel=0.25)
        refined, _ = refine_partition(g, par.partition, max_sweeps=3)
        assert modularity(g, refined) == pytest.approx(cnm_q, rel=0.18)
        # The found clustering closely agrees with the clique structure
        # (individual boundary vertices may defect, exactly as the greedy
        # pairwise merging allows).
        truth = Partition.from_labels(
            np.repeat(np.arange(n_cliques), size)
        )
        assert normalized_mutual_information(par.partition, truth) > 0.7

    def test_planted_modularity_within_band(self, planted):
        g, _ = planted
        res = detect_communities(
            g, termination=TerminationCriteria.local_maximum()
        )
        q_par = modularity(g, res.partition)
        _, q_lou = louvain_communities(g, seed=0)
        assert q_par > 0.55 * q_lou

    def test_refinement_closes_quality_gap(self, planted):
        from repro import refine_partition

        g, _ = planted
        res = detect_communities(
            g, termination=TerminationCriteria.local_maximum()
        )
        q_before = modularity(g, res.partition)
        refined, moves = refine_partition(g, res.partition, max_sweeps=5)
        q_after = modularity(g, refined)
        _, q_lou = louvain_communities(g, seed=0)
        assert q_after >= q_before
        # Refined parallel result should approach Louvain.
        assert q_after > 0.7 * q_lou
