"""Unit tests for CommunityGraph."""

import numpy as np
import pytest

from repro.errors import InvariantViolation
from repro.graph import CommunityGraph, from_edges
from repro.graph.edgelist import EdgeList


def make(i, j, w=None, n=None, selfw=None):
    g = from_edges(np.asarray(i), np.asarray(j), w, n_vertices=n)
    if selfw is not None:
        g.self_weights[:] = selfw
    return g


class TestConstruction:
    def test_default_self_weights_zero(self):
        g = make([0, 1], [1, 2])
        np.testing.assert_array_equal(g.self_weights, [0.0, 0.0, 0.0])

    def test_self_weights_length_checked(self):
        e = EdgeList.from_raw(np.array([0]), np.array([1]), None, 2)
        with pytest.raises(ValueError):
            CommunityGraph(e, np.zeros(3))

    def test_counts(self):
        g = make([0, 1, 2], [1, 2, 3])
        assert g.n_vertices == 4
        assert g.n_edges == 3


class TestWeights:
    def test_total_weight_includes_self(self):
        g = make([0, 1], [1, 2], w=[2.0, 3.0], selfw=[1.0, 0.0, 1.0])
        assert g.total_weight() == 7.0

    def test_internal_weight(self):
        g = make([0, 1], [1, 2], selfw=[1.0, 2.0, 0.0])
        assert g.internal_weight() == 3.0

    def test_coverage(self):
        g = make([0, 1], [1, 2], selfw=[1.0, 1.0, 0.0])
        assert g.coverage() == pytest.approx(0.5)

    def test_coverage_empty_graph(self):
        g = from_edges(np.empty(0, int), np.empty(0, int), n_vertices=3)
        assert g.coverage() == 1.0

    def test_strengths_convention(self):
        # strength = 2*self + incident: an internal edge counts twice.
        g = make([0], [1], w=[3.0], selfw=[2.0, 0.0])
        np.testing.assert_allclose(g.strengths(), [7.0, 3.0])

    def test_strength_sum_is_2w(self):
        g = make([0, 1, 0], [1, 2, 2], w=[1.0, 2.0, 4.0], selfw=[1.0, 0, 0])
        assert g.strengths().sum() == pytest.approx(2 * g.total_weight())


class TestMisc:
    def test_memory_words(self):
        g = make([0, 1], [1, 2])
        assert g.memory_words() == 3 * 2 + 2 * 3 + 3

    def test_copy_independent(self):
        g = make([0], [1])
        c = g.copy()
        c.self_weights[0] = 5.0
        assert g.self_weights[0] == 0.0

    def test_validate_negative_self_weight(self):
        g = make([0], [1])
        g.self_weights[0] = -1.0
        with pytest.raises(InvariantViolation):
            g.validate()

    def test_validate_nan_edge_weight(self):
        g = make([0], [1])
        g.edges.w[0] = np.nan
        with pytest.raises(InvariantViolation):
            g.validate()

    def test_validate_ok(self, karate):
        karate.validate()
