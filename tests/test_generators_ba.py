"""Unit tests for the Barabási–Albert generator."""

import numpy as np
import pytest

from repro.generators import barabasi_albert_graph
from repro.graph.components import connected_components


class TestBA:
    def test_basic(self):
        g = barabasi_albert_graph(200, 3, seed=0)
        assert g.n_vertices == 200
        g.validate()

    def test_connected(self):
        g = barabasi_albert_graph(300, 2, seed=1)
        _, k = connected_components(g.n_vertices, g.edges.ei, g.edges.ej)
        assert k == 1

    def test_edge_count_bound(self):
        # Seed clique + at most m per new vertex (dedup may lose a few).
        n, m = 150, 4
        g = barabasi_albert_graph(n, m, seed=2)
        seed_edges = (m + 1) * m // 2
        assert g.n_edges <= seed_edges + (n - m - 1) * m
        assert g.n_edges >= seed_edges + (n - m - 1) * 1

    def test_scale_free_skew(self):
        g = barabasi_albert_graph(800, 3, seed=3)
        deg = g.edges.degrees()
        assert deg.max() > 6 * np.median(deg)

    def test_simple_graph(self):
        g = barabasi_albert_graph(100, 3, seed=4)
        assert np.all(g.edges.w == 1.0)
        assert np.all(g.self_weights == 0.0)

    def test_deterministic(self):
        a = barabasi_albert_graph(100, 2, seed=7)
        b = barabasi_albert_graph(100, 2, seed=7)
        np.testing.assert_array_equal(a.edges.ei, b.edges.ei)

    def test_validation(self):
        with pytest.raises(ValueError):
            barabasi_albert_graph(5, 0)
        with pytest.raises(ValueError):
            barabasi_albert_graph(3, 3)

    def test_hub_stress_for_matching(self):
        """BA's hubs exercise the matching's claim-collision path."""
        from repro.core import WeightScorer, match_locally_dominant
        from repro.core.matching import is_maximal_matching

        g = barabasi_albert_graph(400, 3, seed=5)
        scores = WeightScorer().score(g)
        res = match_locally_dominant(g, scores)
        assert is_maximal_matching(g, scores, res)
