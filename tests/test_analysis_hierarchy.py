"""Unit tests for hierarchical recursive detection."""

import numpy as np
import pytest

from repro.analysis.hierarchy import HierarchyNode, hierarchical_communities
from repro.core import TerminationCriteria
from repro.generators import planted_partition_graph, ring_of_cliques
from repro.graph import from_edges


class TestHierarchy:
    def test_leaves_partition_vertices(self):
        g = ring_of_cliques(8, 6)
        root = hierarchical_communities(g, max_size=12)
        leaf_vertices = np.concatenate(
            [leaf.vertices for leaf in root.leaves()]
        )
        assert sorted(leaf_vertices.tolist()) == list(range(g.n_vertices))

    def test_max_size_respected_or_indivisible(self):
        g = ring_of_cliques(8, 6)
        root = hierarchical_communities(g, max_size=12)
        for leaf in root.leaves():
            # A leaf is either small enough or could not be split further.
            assert leaf.size <= 12 or leaf.is_leaf

    def test_flat_partition_valid(self):
        g = planted_partition_graph(600, seed=2)
        root = hierarchical_communities(g, max_size=50)
        p = root.flat_partition(g.n_vertices)
        assert p.n_vertices == g.n_vertices
        assert p.n_communities == len(root.leaves())

    def test_depth_limit(self):
        g = planted_partition_graph(500, seed=3)
        root = hierarchical_communities(g, max_size=2, max_depth=1)
        assert root.max_depth() <= 1

    def test_small_graph_single_leaf(self):
        g = from_edges(np.array([0]), np.array([1]))
        root = hierarchical_communities(g, max_size=10)
        assert root.is_leaf
        assert root.size == 2

    def test_indivisible_stays_leaf(self):
        # A clique run to the all-in-one local maximum is indivisible.
        from repro.generators import complete_graph

        g = complete_graph(6)
        root = hierarchical_communities(
            g,
            max_size=2,
            termination=TerminationCriteria(
                coverage=None, min_communities=1
            ),
        )
        # Either split somehow or remained one leaf — never lost vertices.
        assert sum(l.size for l in root.leaves()) == 6

    def test_validation(self, karate):
        with pytest.raises(ValueError):
            hierarchical_communities(karate, max_size=0)
        with pytest.raises(ValueError):
            hierarchical_communities(karate, max_size=5, max_depth=-1)

    def test_deeper_levels_refine(self):
        g = planted_partition_graph(800, seed=5)
        coarse = hierarchical_communities(g, max_size=400, max_depth=1)
        fine = hierarchical_communities(g, max_size=30, max_depth=4)
        assert len(fine.leaves()) >= len(coarse.leaves())

    def test_flat_partition_incomplete_raises(self):
        node = HierarchyNode(vertices=np.array([0, 1]), depth=0)
        with pytest.raises(ValueError):
            node.flat_partition(4)
