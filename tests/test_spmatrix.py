"""Unit tests for the from-scratch CSR kernels and the §VI sparse
formulation (validated against dense NumPy and the core contraction)."""

import numpy as np
import pytest

from repro.core import ModularityScorer, contract, match_locally_dominant
from repro.graph import from_edges
from repro.metrics import Partition, modularity
from repro.spmatrix import (
    CSRMatrix,
    adjacency_matrix,
    contract_via_spgemm,
    matrix_modularity,
    selector_matrix,
    spgemm,
)


def random_csr(rng, m, n, density=0.2):
    mask = rng.random((m, n)) < density
    dense = np.where(mask, rng.integers(1, 5, (m, n)).astype(float), 0.0)
    rows, cols = np.nonzero(dense)
    return (
        CSRMatrix.from_triplets(rows, cols, dense[rows, cols], (m, n)),
        dense,
    )


class TestCSRMatrix:
    def test_from_triplets_coalesces(self):
        m = CSRMatrix.from_triplets(
            np.array([0, 0, 1]), np.array([1, 1, 0]), np.array([2.0, 3.0, 1.0]),
            (2, 2),
        )
        assert m.nnz == 2
        np.testing.assert_array_equal(m.to_dense(), [[0, 5], [1, 0]])

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            CSRMatrix.from_triplets(
                np.array([5]), np.array([0]), np.array([1.0]), (2, 2)
            )

    def test_identity(self):
        eye = CSRMatrix.identity(3)
        np.testing.assert_array_equal(eye.to_dense(), np.eye(3))

    def test_row_access(self):
        m = CSRMatrix.from_triplets(
            np.array([1, 1]), np.array([0, 2]), np.array([4.0, 5.0]), (2, 3)
        )
        cols, vals = m.row(1)
        np.testing.assert_array_equal(cols, [0, 2])
        np.testing.assert_array_equal(vals, [4.0, 5.0])
        assert len(m.row(0)[0]) == 0

    def test_diagonal(self):
        m = CSRMatrix.from_triplets(
            np.array([0, 1, 1]), np.array([0, 1, 0]),
            np.array([7.0, 8.0, 1.0]), (2, 2),
        )
        np.testing.assert_array_equal(m.diagonal(), [7.0, 8.0])

    def test_diagonal_rectangular(self):
        m = CSRMatrix.from_triplets(
            np.array([0, 2]), np.array([0, 1]), np.array([3.0, 9.0]), (3, 2)
        )
        np.testing.assert_array_equal(m.diagonal(), [3.0, 0.0])

    def test_transpose(self):
        rng = np.random.default_rng(0)
        m, dense = random_csr(rng, 5, 7)
        np.testing.assert_array_equal(m.transpose().to_dense(), dense.T)

    def test_matvec(self):
        rng = np.random.default_rng(1)
        m, dense = random_csr(rng, 6, 4)
        x = rng.random(4)
        np.testing.assert_allclose(m.matvec(x), dense @ x)

    def test_matvec_dim_check(self):
        m = CSRMatrix.identity(3)
        with pytest.raises(ValueError):
            m.matvec(np.ones(4))

    def test_scale_rows(self):
        rng = np.random.default_rng(2)
        m, dense = random_csr(rng, 4, 4)
        s = rng.random(4)
        np.testing.assert_allclose(
            m.scale_rows(s).to_dense(), np.diag(s) @ dense
        )

    def test_triplet_length_check(self):
        with pytest.raises(ValueError):
            CSRMatrix.from_triplets(
                np.array([0]), np.array([0, 1]), np.array([1.0]), (2, 2)
            )


class TestSpGEMM:
    @pytest.mark.parametrize("seed", range(5))
    def test_against_dense(self, seed):
        rng = np.random.default_rng(seed)
        a, da = random_csr(rng, 6, 5)
        b, db = random_csr(rng, 5, 7)
        c = spgemm(a, b)
        np.testing.assert_allclose(c.to_dense(), da @ db)

    def test_identity_neutral(self):
        rng = np.random.default_rng(9)
        a, da = random_csr(rng, 4, 4)
        c = spgemm(a, CSRMatrix.identity(4))
        np.testing.assert_allclose(c.to_dense(), da)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            spgemm(CSRMatrix.identity(3), CSRMatrix.identity(4))

    def test_empty_operands(self):
        empty = CSRMatrix.from_triplets(
            np.empty(0, int), np.empty(0, int), np.empty(0), (3, 3)
        )
        c = spgemm(empty, CSRMatrix.identity(3))
        assert c.nnz == 0
        assert c.shape == (3, 3)


class TestAdjacencyAndSelector:
    def test_adjacency_row_sums_are_strengths(self, karate):
        a = adjacency_matrix(karate)
        np.testing.assert_allclose(
            a.matvec(np.ones(34)), karate.strengths()
        )

    def test_adjacency_total_is_2w(self, karate):
        a = adjacency_matrix(karate)
        assert a.data.sum() == pytest.approx(2 * karate.total_weight())

    def test_selector_shape(self):
        s = selector_matrix(np.array([0, 1, 0]), 2)
        np.testing.assert_array_equal(
            s.to_dense(), [[1, 0], [0, 1], [1, 0]]
        )

    def test_selector_range_check(self):
        with pytest.raises(ValueError):
            selector_matrix(np.array([3]), 2)


class TestSparseContraction:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_bucket_contraction(self, random_graph_factory, seed):
        g = random_graph_factory(n=25, m=80, seed=seed)
        matching = match_locally_dominant(g, ModularityScorer().score(g))
        expected, mapping = contract(g, matching)
        k = expected.n_vertices
        got = contract_via_spgemm(g, mapping, k)
        np.testing.assert_array_equal(got.edges.ei, expected.edges.ei)
        np.testing.assert_array_equal(got.edges.ej, expected.edges.ej)
        np.testing.assert_allclose(got.edges.w, expected.edges.w)
        np.testing.assert_allclose(got.self_weights, expected.self_weights)
        got.validate()

    def test_weight_conserved(self, karate):
        matching = match_locally_dominant(
            karate, ModularityScorer().score(karate)
        )
        _, mapping = contract(karate, matching)
        got = contract_via_spgemm(karate, mapping, int(mapping.max()) + 1)
        assert got.total_weight() == pytest.approx(karate.total_weight())


class TestMatrixModularity:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_metric(self, random_graph_factory, seed):
        g = random_graph_factory(n=20, m=60, seed=seed)
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 4, g.n_vertices)
        p = Partition.from_labels(labels)
        q_matrix = matrix_modularity(g, p.labels, p.n_communities)
        assert q_matrix == pytest.approx(modularity(g, p))

    def test_zero_graph(self):
        g = from_edges(np.empty(0, int), np.empty(0, int), n_vertices=3)
        assert matrix_modularity(g, np.zeros(3, dtype=np.int64), 1) == 0.0
