"""Chaos suite: injected faults must never change the answer.

Every test here drives the supervised pool (or the checkpointed driver)
under deterministic injected failures — killed workers, stalled workers,
NaN-corrupted output, truncated checkpoint files — and asserts the
recovered run is *identical* to a fault-free one.  Identity, not
similarity: chunks write disjoint slices and re-execution is idempotent,
so recovery is exact by construction and any drift is a bug.

Marked ``faultinject`` so CI runs these in a dedicated time-boxed job.
"""

import gc
import os
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.core import ModularityScorer, detect_communities
from repro.core.termination import TerminationCriteria
from repro.parallel import (
    ParallelModularityScorer,
    SharedOutput,
    parallel_edge_scores,
)
from repro.resilience import (
    CheckpointManager,
    FaultPlan,
    RecoveryReport,
    RetryPolicy,
    truncate_file,
)

pytestmark = [pytest.mark.faultinject, pytest.mark.timeout(120)]

N_WORKERS = 2  # two chunks: every scenario exercises both


def _fault_free(graph):
    return ModularityScorer().score(graph)


class TestWorkerDeathRecovery:
    def test_killed_first_attempts_recover_bit_identical(self, karate):
        report = RecoveryReport()
        scores = parallel_edge_scores(
            karate,
            n_workers=N_WORKERS,
            policy=RetryPolicy.fast(),
            faults=FaultPlan.kill_first_attempt(range(N_WORKERS)),
            report=report,
        )
        np.testing.assert_array_equal(scores, _fault_free(karate))
        assert report.worker_deaths == N_WORKERS
        assert report.retries == N_WORKERS
        assert report.degraded_chunks == 0

    def test_persistent_kills_degrade_to_in_process(self, karate):
        policy = RetryPolicy.fast()
        report = RecoveryReport()
        scores = parallel_edge_scores(
            karate,
            n_workers=N_WORKERS,
            policy=policy,
            faults=FaultPlan.kill_every_attempt(
                range(N_WORKERS), attempts=policy.max_retries + 1
            ),
            report=report,
        )
        np.testing.assert_array_equal(scores, _fault_free(karate))
        assert report.degraded_chunks == N_WORKERS
        assert report.worker_deaths == N_WORKERS * (policy.max_retries + 1)

    def test_recovery_is_deterministic_across_runs(self, karate):
        runs = []
        for _ in range(2):
            report = RecoveryReport()
            scores = parallel_edge_scores(
                karate,
                n_workers=N_WORKERS,
                policy=RetryPolicy.fast(),
                faults=FaultPlan.kill_first_attempt([0]),
                report=report,
            )
            runs.append((scores, report.as_dict()))
        np.testing.assert_array_equal(runs[0][0], runs[1][0])
        assert runs[0][1] == runs[1][1]


class TestCorruptionRecovery:
    def test_nan_corrupted_chunks_are_retried(self, karate):
        report = RecoveryReport()
        scores = parallel_edge_scores(
            karate,
            n_workers=N_WORKERS,
            policy=RetryPolicy.fast(),
            faults=FaultPlan.corrupt_first_attempt(range(N_WORKERS)),
            report=report,
        )
        np.testing.assert_array_equal(scores, _fault_free(karate))
        assert report.invalid_chunks == N_WORKERS
        assert report.retries == N_WORKERS
        assert np.isfinite(scores).all()


class TestTimeoutRecovery:
    def test_stalled_workers_hit_deadline_and_recover(self, karate):
        policy = RetryPolicy(
            max_retries=2,
            backoff_base_s=0.001,
            backoff_cap_s=0.01,
            chunk_timeout_s=0.25,
        )
        report = RecoveryReport()
        scores = parallel_edge_scores(
            karate,
            n_workers=N_WORKERS,
            policy=policy,
            faults=FaultPlan.delay_first_attempt(
                range(N_WORKERS), delay_s=30.0
            ),
            report=report,
        )
        np.testing.assert_array_equal(scores, _fault_free(karate))
        assert report.chunk_timeouts == N_WORKERS
        assert report.retries == N_WORKERS


class TestFullPipelineUnderFaults:
    def test_detection_with_faulty_pool_matches_serial(self, karate):
        baseline = detect_communities(karate)
        scorer = ParallelModularityScorer(
            N_WORKERS,
            policy=RetryPolicy.fast(),
            # Chunk indices restart at every level, so this kills the
            # first attempt of every chunk of every level's scoring.
            faults=FaultPlan.kill_first_attempt(range(N_WORKERS)),
        )
        result = detect_communities(karate, scorer)
        np.testing.assert_array_equal(
            result.partition.labels, baseline.partition.labels
        )
        assert result.levels == baseline.levels
        assert result.recovery.any_recovery()
        assert result.recovery.worker_deaths > 0

    def test_faulty_checkpointed_run_resumes_after_truncation(
        self, karate, tmp_path
    ):
        baseline = detect_communities(karate)
        scorer = ParallelModularityScorer(
            N_WORKERS,
            policy=RetryPolicy.fast(),
            faults=FaultPlan.corrupt_first_attempt(range(N_WORKERS)),
        )
        partial = detect_communities(
            karate,
            scorer,
            termination=TerminationCriteria(max_levels=2),
            checkpoint_dir=tmp_path,
        )
        assert partial.recovery.checkpoints_written == 2
        # Tear the newest checkpoint mid-byte: resume must fall back to
        # the previous level and still reproduce the fault-free answer.
        manager = CheckpointManager(tmp_path)
        truncate_file(
            manager.path_for(max(manager.levels_on_disk())),
            keep_fraction=0.4,
        )
        resumed = detect_communities(
            karate, checkpoint_dir=tmp_path, resume=True
        )
        assert resumed.recovery.checkpoints_invalid == 1
        assert resumed.recovery.resumed_from_level == 1
        np.testing.assert_array_equal(
            resumed.partition.labels, baseline.partition.labels
        )
        assert resumed.levels == baseline.levels


class TestNoLeakedSegments:
    def test_shared_output_released_on_exception(self):
        name = None
        with pytest.raises(RuntimeError):
            with SharedOutput(64, np.float64) as out:
                name = out.name
                raise RuntimeError("mid-run failure")
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_finalizer_releases_abandoned_segment(self):
        out = SharedOutput(64, np.float64)
        name = out.name
        del out
        gc.collect()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_release_is_idempotent(self):
        out = SharedOutput(8, np.float64)
        out.release()
        out.release()

    @pytest.mark.skipif(
        not os.path.isdir("/dev/shm"), reason="needs a /dev/shm tmpfs"
    )
    def test_chaos_run_leaves_dev_shm_clean(self, karate):
        gc.collect()
        before = set(os.listdir("/dev/shm"))
        parallel_edge_scores(
            karate,
            n_workers=N_WORKERS,
            policy=RetryPolicy.fast(),
            faults=FaultPlan.kill_first_attempt(range(N_WORKERS)),
        )
        gc.collect()
        leaked = set(os.listdir("/dev/shm")) - before
        assert leaked == set()
