"""Unit tests for the synthetic web-crawl (uk-2007-05 analogue) generator."""

import numpy as np
import pytest

from repro.generators import webgraph
from repro.graph.components import connected_components


class TestWebgraph:
    def test_basic(self):
        g = webgraph(2000, seed=0)
        assert 0 < g.n_vertices <= 2000
        assert g.n_edges > g.n_vertices  # dense-ish crawl
        g.validate()

    def test_connected_after_extraction(self):
        g = webgraph(1500, seed=1)
        _, k = connected_components(g.n_vertices, g.edges.ei, g.edges.ej)
        assert k == 1

    def test_deterministic(self):
        a = webgraph(800, seed=9)
        b = webgraph(800, seed=9)
        np.testing.assert_array_equal(a.edges.ei, b.edges.ei)

    def test_no_extraction_keeps_all_vertices(self):
        g = webgraph(500, seed=2, extract_largest_component=False)
        assert g.n_vertices == 500

    def test_edge_density_tracks_parameter(self):
        sparse = webgraph(1000, edges_per_vertex=4.0, seed=3,
                          extract_largest_component=False)
        dense = webgraph(1000, edges_per_vertex=16.0, seed=3,
                         extract_largest_component=False)
        assert dense.n_edges > 2 * sparse.n_edges

    def test_host_locality_creates_contractible_structure(self):
        # High on-host fraction must produce higher coverage under any
        # host-respecting partition than a shuffled control would get.
        from repro import detect_communities
        g = webgraph(1500, seed=4, on_host_fraction=0.9)
        res = detect_communities(g)
        assert res.partition.n_communities < g.n_vertices / 3

    def test_host_partition_matches_locality_parameter(self):
        """Most edges must stay on-host: the host partition's coverage
        tracks the on_host_fraction knob."""
        from repro.metrics import Partition, coverage

        g, hosts = webgraph(
            2000,
            seed=5,
            on_host_fraction=0.8,
            extract_largest_component=False,
            return_hosts=True,
        )
        cov = coverage(g, Partition.from_labels(hosts))
        assert cov > 0.6

    def test_host_sizes_geometric_spread(self):
        g, hosts = webgraph(
            4000,
            seed=6,
            mean_host_size=50.0,
            extract_largest_component=False,
            return_hosts=True,
        )
        sizes = np.bincount(hosts)
        sizes = sizes[sizes > 0]
        assert sizes.max() > 3 * np.median(sizes)

    def test_return_hosts_requires_no_extraction(self):
        with pytest.raises(ValueError, match="return_hosts"):
            webgraph(100, seed=0, return_hosts=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            webgraph(1)
        with pytest.raises(ValueError):
            webgraph(100, on_host_fraction=1.5)
        with pytest.raises(ValueError):
            webgraph(100, edges_per_vertex=0.0)
