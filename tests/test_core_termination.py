"""Unit tests for TerminationCriteria validation."""

import pytest

from repro.core import TerminationCriteria


class TestValidation:
    def test_defaults(self):
        t = TerminationCriteria()
        assert t.coverage == 0.5
        assert t.min_communities == 1

    def test_coverage_range(self):
        with pytest.raises(ValueError):
            TerminationCriteria(coverage=1.5)
        with pytest.raises(ValueError):
            TerminationCriteria(coverage=-0.1)

    def test_coverage_none_ok(self):
        TerminationCriteria(coverage=None)

    def test_min_communities(self):
        with pytest.raises(ValueError):
            TerminationCriteria(min_communities=0)

    def test_max_community_size(self):
        with pytest.raises(ValueError):
            TerminationCriteria(max_community_size=0)
        TerminationCriteria(max_community_size=1)

    def test_max_levels(self):
        with pytest.raises(ValueError):
            TerminationCriteria(max_levels=-1)
        TerminationCriteria(max_levels=0)

    def test_min_merge_fraction(self):
        with pytest.raises(ValueError):
            TerminationCriteria(min_merge_fraction=1.1)
        TerminationCriteria(min_merge_fraction=0.0)

    def test_frozen(self):
        t = TerminationCriteria()
        with pytest.raises(AttributeError):
            t.coverage = 0.9  # type: ignore[misc]


class TestPresets:
    def test_local_maximum(self):
        t = TerminationCriteria.local_maximum()
        assert t.coverage is None
        assert t.min_merge_fraction is None

    def test_paper_experiments(self):
        t = TerminationCriteria.paper_experiments()
        assert t.coverage == 0.5
        assert t.min_merge_fraction is not None
