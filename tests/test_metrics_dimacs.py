"""Unit tests for the DIMACS challenge objectives."""

import numpy as np
import pytest

from repro.generators import complete_graph, ring_of_cliques
from repro.graph import from_edges
from repro.metrics import (
    Partition,
    expansion,
    intercluster_conductance,
    min_intracluster_density,
    performance,
)


@pytest.fixture
def tri_partition():
    return Partition(np.array([0, 0, 0, 1, 1, 1]))


class TestPerformance:
    def test_perfect_cliques(self):
        g = complete_graph(4)
        p = Partition(np.zeros(4, dtype=np.int64))
        assert performance(g, p) == 1.0

    def test_two_triangles(self, triangles, tri_partition):
        # Pairs: 15.  Intra edges correct: 6.  Inter pairs: 9, of which 1
        # (the bridge) is an edge -> 8 correct.  (6 + 8) / 15.
        assert performance(triangles, tri_partition) == pytest.approx(14 / 15)

    def test_all_singletons(self, triangles):
        p = Partition.singletons(6)
        # All 7 edges misclassified: (15 - 7) / 15.
        assert performance(triangles, p) == pytest.approx(8 / 15)

    def test_single_vertex(self):
        g = from_edges(np.empty(0, int), np.empty(0, int), n_vertices=1)
        assert performance(g, Partition.singletons(1)) == 1.0

    def test_ring_of_cliques_high(self):
        g = ring_of_cliques(6, 4)
        p = Partition.from_labels(np.repeat(np.arange(6), 4))
        assert performance(g, p) > 0.95

    def test_size_mismatch(self, karate):
        with pytest.raises(ValueError):
            performance(karate, Partition.singletons(3))


class TestExpansion:
    def test_two_triangles(self, triangles, tri_partition):
        # Each side: cut 1, min(3, 3) = 3 -> 1/3.
        assert expansion(triangles, tri_partition) == pytest.approx(1 / 3)

    def test_whole_graph_zero(self, karate):
        p = Partition(np.zeros(34, dtype=np.int64))
        assert expansion(karate, p) == 0.0

    def test_monotone_with_cut(self):
        g = from_edges(np.array([0, 0]), np.array([1, 2]), np.array([1.0, 5.0]))
        p_light = Partition(np.array([0, 1, 0]))  # cuts weight-1 edge
        p_heavy = Partition(np.array([0, 0, 1]))  # cuts weight-5 edge
        assert expansion(g, p_heavy) > expansion(g, p_light)


class TestInterclusterConductance:
    def test_two_triangles(self, triangles, tri_partition):
        assert intercluster_conductance(
            triangles, tri_partition
        ) == pytest.approx(1 - 1 / 7)

    def test_range(self, karate):
        from repro import detect_communities

        res = detect_communities(karate)
        v = intercluster_conductance(karate, res.partition)
        assert 0.0 <= v <= 1.0


class TestMinIntraclusterDensity:
    def test_cliques_are_dense(self):
        g = ring_of_cliques(4, 4)
        p = Partition.from_labels(np.repeat(np.arange(4), 4))
        assert min_intracluster_density(g, p) == pytest.approx(1.0)

    def test_two_triangles(self, triangles, tri_partition):
        assert min_intracluster_density(
            triangles, tri_partition
        ) == pytest.approx(1.0)

    def test_sparse_cluster_low(self):
        g = from_edges(np.array([0]), np.array([1]), n_vertices=4)
        p = Partition(np.array([0, 0, 0, 0]))
        assert min_intracluster_density(g, p) == pytest.approx(1 / 6)

    def test_all_singletons_zero(self, karate):
        assert min_intracluster_density(karate, Partition.singletons(34)) == 0.0
