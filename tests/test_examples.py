"""Smoke tests for the example scripts.

The fast examples are executed end to end in-process; the slower ones
(full-size datasets, sequential baselines on thousands of vertices) are
compile-checked and their mains verified importable, keeping the unit
suite quick while still catching rot.
"""

import os
import py_compile
import runpy
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

ALL_EXAMPLES = [
    "quickstart.py",
    "social_network.py",
    "scaling_study.py",
    "web_crawl.py",
    "custom_scoring.py",
    "matrix_and_pregel.py",
    "analysis_pipeline.py",
    "hierarchical_clustering.py",
]

FAST_EXAMPLES = ["quickstart.py"]


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_example_compiles(name):
    py_compile.compile(os.path.join(EXAMPLES_DIR, name), doraise=True)


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_example_defines_main(name):
    source = open(os.path.join(EXAMPLES_DIR, name), encoding="utf-8").read()
    assert "def main()" in source
    assert '__name__ == "__main__"' in source
    assert source.startswith("#!/usr/bin/env python3")
    assert '"""' in source  # every example carries a docstring


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_fast_example_runs(name, capsys, monkeypatch):
    path = os.path.join(EXAMPLES_DIR, name)
    monkeypatch.setattr(sys, "argv", [path])
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert "communities" in out


def test_scaling_study_tiny(capsys, monkeypatch):
    """scaling_study accepts --scale; run it extremely small."""
    path = os.path.join(EXAMPLES_DIR, "scaling_study.py")
    monkeypatch.setattr(sys, "argv", [path, "--scale", "0.125"])
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert "rmat-24-16" in out
    assert "speed-up" in out
