"""Unit tests for the sequential baselines (CNM, Louvain, label propagation)."""

import numpy as np
import pytest

from repro.baselines import (
    cnm_communities,
    label_propagation_communities,
    louvain_communities,
)
from repro.generators import ring_of_cliques, two_triangles
from repro.graph import from_edges
from repro.metrics import Partition, modularity


class TestCNM:
    def test_two_triangles_optimal(self):
        g = two_triangles()
        part, q = cnm_communities(g)
        assert part.n_communities == 2
        assert q == pytest.approx(5 / 14)
        assert part.same_clustering(
            Partition(np.array([0, 0, 0, 1, 1, 1]))
        )

    def test_reported_q_matches_metric(self, karate):
        part, q = cnm_communities(karate)
        assert q == pytest.approx(modularity(karate, part))

    def test_karate_quality(self, karate):
        part, q = cnm_communities(karate)
        # CNM's published karate modularity is ~0.38.
        assert q > 0.35

    def test_ring_of_cliques(self):
        g = ring_of_cliques(5, 4)
        part, q = cnm_communities(g)
        assert part.n_communities == 5

    def test_min_communities(self, karate):
        part, q = cnm_communities(karate, min_communities=10)
        assert part.n_communities >= 10

    def test_empty(self):
        g = from_edges(np.empty(0, int), np.empty(0, int), n_vertices=0)
        part, q = cnm_communities(g)
        assert part.n_vertices == 0

    def test_no_edges(self):
        g = from_edges(np.empty(0, int), np.empty(0, int), n_vertices=3)
        part, q = cnm_communities(g)
        assert part.n_communities == 3
        assert q == 0.0

    def test_weighted(self):
        # Heavy edge should merge first and stay internal.
        g = from_edges(np.array([0, 1]), np.array([1, 2]), np.array([10.0, 1.0]))
        part, q = cnm_communities(g)
        assert part.labels[0] == part.labels[1]


class TestLouvain:
    def test_two_triangles(self):
        g = two_triangles()
        part, q = louvain_communities(g, seed=0)
        assert part.n_communities == 2
        assert q == pytest.approx(5 / 14)

    def test_karate_quality(self, karate):
        part, q = louvain_communities(karate, seed=0)
        assert q > 0.38  # Louvain typically reaches ~0.40-0.42

    def test_ring_of_cliques_exact(self):
        g = ring_of_cliques(6, 5)
        part, q = louvain_communities(g, seed=1)
        assert part.n_communities == 6

    def test_reported_q_matches_metric(self, karate):
        part, q = louvain_communities(karate, seed=3)
        assert q == pytest.approx(modularity(karate, part))

    def test_deterministic_given_seed(self, karate):
        a, qa = louvain_communities(karate, seed=5)
        b, qb = louvain_communities(karate, seed=5)
        assert a == b and qa == qb

    def test_no_edges(self):
        g = from_edges(np.empty(0, int), np.empty(0, int), n_vertices=4)
        part, q = louvain_communities(g)
        assert part.n_communities == 4


class TestLabelPropagation:
    def test_ring_of_cliques(self):
        g = ring_of_cliques(5, 5)
        part = label_propagation_communities(g, seed=0)
        # LP should find roughly the cliques (it may merge neighbors).
        assert 2 <= part.n_communities <= 10

    def test_clique_members_together(self):
        g = ring_of_cliques(4, 6)
        part = label_propagation_communities(g, seed=1)
        labels = part.labels
        for c in range(4):
            block = labels[c * 6 : (c + 1) * 6]
            assert len(set(block.tolist())) == 1

    def test_no_edges_all_singletons(self):
        g = from_edges(np.empty(0, int), np.empty(0, int), n_vertices=5)
        part = label_propagation_communities(g)
        assert part.n_communities == 5

    def test_deterministic_given_seed(self, karate):
        a = label_propagation_communities(karate, seed=2)
        b = label_propagation_communities(karate, seed=2)
        assert a == b

    def test_empty(self):
        g = from_edges(np.empty(0, int), np.empty(0, int), n_vertices=0)
        part = label_propagation_communities(g)
        assert part.n_vertices == 0


class TestCrossValidation:
    def test_parallel_algorithm_comparable_to_baselines(self, karate):
        """The paper's §V sanity check: modularities 'appear reasonable
        compared with a different, sequential implementation'."""
        from repro import TerminationCriteria, detect_communities

        res = detect_communities(
            karate, termination=TerminationCriteria.local_maximum()
        )
        q_par = modularity(karate, res.partition)
        _, q_cnm = cnm_communities(karate)
        _, q_louvain = louvain_communities(karate, seed=0)
        # Parallel agglomeration gives up some quality for parallelism,
        # but must stay in the same regime.
        assert q_par > 0.6 * max(q_cnm, q_louvain)
