"""Unit tests for the LFR-style benchmark generator."""

import numpy as np
import pytest

from repro.generators import lfr_graph
from repro.metrics import Partition, coverage


class TestLFR:
    def test_basic(self):
        g = lfr_graph(500, seed=0)
        assert g.n_vertices == 500
        g.validate()

    def test_simple_graph(self):
        g = lfr_graph(400, seed=1)
        assert np.all(g.edges.w == 1.0)
        assert np.all(g.self_weights == 0.0)

    def test_deterministic(self):
        a = lfr_graph(300, seed=9)
        b = lfr_graph(300, seed=9)
        np.testing.assert_array_equal(a.edges.ei, b.edges.ei)

    def test_mean_degree_near_target(self):
        g = lfr_graph(2000, avg_degree=12.0, seed=2)
        mean_deg = 2 * g.n_edges / g.n_vertices
        # Stub rejection loses a little; stay within 25 %.
        assert mean_deg == pytest.approx(12.0, rel=0.25)

    def test_mixing_controls_truth_coverage(self):
        for mu in (0.1, 0.5):
            g, labels = lfr_graph(1500, mu=mu, seed=3, return_labels=True)
            cov = coverage(g, Partition.from_labels(labels))
            assert cov == pytest.approx(1.0 - mu, abs=0.08)

    def test_recovery_difficulty_increases_with_mu(self):
        from repro import TerminationCriteria, detect_communities
        from repro.metrics import normalized_mutual_information

        nmis = []
        for mu in (0.1, 0.6):
            g, labels = lfr_graph(1200, mu=mu, seed=4, return_labels=True)
            res = detect_communities(
                g, termination=TerminationCriteria.local_maximum()
            )
            nmis.append(
                normalized_mutual_information(
                    res.partition, Partition.from_labels(labels)
                )
            )
        assert nmis[0] > 2 * nmis[1]

    def test_community_size_bounds(self):
        g, labels = lfr_graph(
            1000, min_community=25, max_community=100, seed=5, return_labels=True
        )
        sizes = np.bincount(labels)
        assert sizes.min() >= 25
        assert sizes.max() <= 100

    def test_heavy_tailed_degrees(self):
        g = lfr_graph(3000, degree_exponent=2.2, avg_degree=10.0, seed=6)
        deg = g.edges.degrees()
        assert deg.max() > 3 * np.median(deg[deg > 0])

    def test_validation(self):
        with pytest.raises(ValueError):
            lfr_graph(10, min_community=20)
        with pytest.raises(ValueError):
            lfr_graph(500, mu=1.5)
        with pytest.raises(ValueError):
            lfr_graph(500, degree_exponent=1.0)
