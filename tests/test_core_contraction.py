"""Unit tests for graph contraction."""

import numpy as np
import pytest

from repro.core import (
    ModularityScorer,
    WeightScorer,
    contract,
    contract_hash_chains,
    match_locally_dominant,
)
from repro.graph import from_edges
from repro.platform import TraceRecorder


def run_matching(g, scorer=None):
    scorer = scorer or WeightScorer()
    return match_locally_dominant(g, scorer.score(g))


class TestContract:
    def test_single_edge_collapses_to_self_weight(self):
        g = from_edges(np.array([0]), np.array([1]), np.array([3.0]))
        m = run_matching(g)
        new, mapping = contract(g, m)
        assert new.n_vertices == 1
        assert new.n_edges == 0
        assert new.self_weights[0] == 3.0
        np.testing.assert_array_equal(mapping, [0, 0])

    def test_total_weight_invariant(self, karate):
        m = run_matching(karate, ModularityScorer())
        new, _ = contract(karate, m)
        assert new.total_weight() == pytest.approx(karate.total_weight())

    def test_vertex_count_shrinks_by_pairs(self, karate):
        m = run_matching(karate, ModularityScorer())
        new, _ = contract(karate, m)
        assert new.n_vertices == karate.n_vertices - m.n_pairs

    def test_mapping_dense_and_consistent(self, karate):
        m = run_matching(karate, ModularityScorer())
        new, mapping = contract(karate, m)
        assert mapping.min() == 0
        assert mapping.max() == new.n_vertices - 1
        # Matched pairs map together; unmatched alone.
        from repro.types import NO_VERTEX

        for v in range(karate.n_vertices):
            p = m.partner[v]
            if p != NO_VERTEX:
                assert mapping[v] == mapping[p]

    def test_parallel_edges_accumulate(self):
        # Square 0-1-2-3: match {0,1} and {2,3}; the two cross edges
        # (1,2) and (0,3) merge into one weight-2 edge.
        g = from_edges(
            np.array([0, 1, 2, 0]), np.array([1, 2, 3, 3]),
            np.array([5.0, 1.0, 5.0, 1.0]),
        )
        m = run_matching(g)
        assert m.n_pairs == 2
        new, _ = contract(g, m)
        assert new.n_vertices == 2
        assert new.n_edges == 1
        assert new.edges.w[0] == 2.0

    def test_output_validates(self, random_graph_factory):
        for seed in range(4):
            g = random_graph_factory(n=40, m=150, seed=seed)
            m = run_matching(g)
            new, _ = contract(g, m)
            new.validate()

    def test_empty_matching_still_compacts(self):
        g = from_edges(np.array([0]), np.array([1]))
        m = run_matching(g)
        # Make all scores negative: nothing matches.
        res = match_locally_dominant(g, np.array([-1.0]))
        new, mapping = contract(g, res)
        assert new.n_vertices == 2
        assert new.n_edges == 1

    def test_self_weights_carried_through(self):
        g = from_edges(np.array([0, 1, 1]), np.array([1, 2, 1]))  # loop at 1
        m = run_matching(g)
        new, mapping = contract(g, m)
        assert new.total_weight() == pytest.approx(g.total_weight())
        assert new.self_weights.sum() >= g.self_weights.sum()

    def test_recorder_kernels(self, karate):
        m = run_matching(karate, ModularityScorer())
        rec = TraceRecorder()
        contract(karate, m, rec)
        names = {r.name for r in rec.records}
        assert names == {
            "contract_relabel",
            "contract_bucket",
            "contract_sort",
            "contract_copy",
        }

    def test_wrong_matching_size_rejected(self, karate, triangles):
        m = run_matching(triangles)
        with pytest.raises(ValueError):
            contract(karate, m)


class TestHashChainEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    def test_identical_output(self, random_graph_factory, seed):
        g = random_graph_factory(n=30, m=100, seed=seed)
        m = run_matching(g)
        a, map_a = contract(g, m)
        b, map_b = contract_hash_chains(g, m)
        np.testing.assert_array_equal(map_a, map_b)
        np.testing.assert_array_equal(a.edges.ei, b.edges.ei)
        np.testing.assert_array_equal(a.edges.ej, b.edges.ej)
        np.testing.assert_array_equal(a.edges.w, b.edges.w)
        np.testing.assert_array_equal(a.self_weights, b.self_weights)

    def test_chain_ops_recorded(self, karate):
        m = run_matching(karate, ModularityScorer())
        rec = TraceRecorder()
        contract_hash_chains(karate, m, rec)
        chase = rec.by_name("contract_chase")
        assert len(chase) == 1
        # Every edge walks at least its own terminal node.
        assert chase[0].chain_ops >= karate.n_edges - m.n_pairs

    def test_bucket_method_has_no_chains(self, karate):
        m = run_matching(karate, ModularityScorer())
        rec = TraceRecorder()
        contract(karate, m, rec)
        assert all(r.chain_ops == 0 for r in rec.records)


class TestChainWalkModel:
    def test_distinct_keys_one_chain(self):
        from repro.core.contraction import _chain_walk_lengths

        # 3 distinct keys all hashing to one chain: walks 1 + 2 + 3.
        keys = np.array([0, 7, 14], dtype=np.int64)
        assert _chain_walk_lengths(keys, 7) == 1 + 2 + 3

    def test_duplicate_keys_accumulate_in_place(self):
        from repro.core.contraction import _chain_walk_lengths

        # Same key twice: second insertion finds it after 1 distinct walk.
        keys = np.array([3, 3], dtype=np.int64)
        assert _chain_walk_lengths(keys, 8) == 1 + 1

    def test_spread_keys_short_chains(self):
        from repro.core.contraction import _chain_walk_lengths

        keys = np.arange(100, dtype=np.int64)
        # Perfect hashing: every walk is a single terminal inspection.
        assert _chain_walk_lengths(keys, 128) == 100

    def test_empty(self):
        from repro.core.contraction import _chain_walk_lengths

        assert _chain_walk_lengths(np.empty(0, dtype=np.int64), 8) == 0


def _reference_chain_ops(keys, table_size):
    """Straight-line model of the legacy insert: walk every distinct key
    already in the chain, append (one more write) when new."""
    chains = {}
    ops = 0
    for key in keys:
        chain = chains.setdefault(int(key) % table_size, [])
        ops += len(chain)
        if int(key) not in chain:
            ops += 1
            chain.append(int(key))
    return ops


class TestChainWalkAdversarial:
    """The legacy method must degrade gracefully — correct output,
    finite accounting, contention capped — even when every key lands in
    one chain (the distribution the paper's §IV-C ablation punishes)."""

    def test_all_keys_one_chain_is_quadratic(self):
        from repro.core.contraction import _chain_walk_lengths

        # n distinct keys, all ≡ 0 mod table: one chain of length n.
        n = 500
        keys = np.arange(n, dtype=np.int64) * 64
        ops = _chain_walk_lengths(keys, 64)
        assert ops == n * (n - 1) // 2 + n
        assert ops == _reference_chain_ops(keys, 64)

    def test_all_duplicate_keys_stay_linear(self):
        from repro.core.contraction import _chain_walk_lengths

        # One key repeated n times: chain never grows past one node.
        n = 500
        keys = np.full(n, 42, dtype=np.int64)
        ops = _chain_walk_lengths(keys, 64)
        assert ops == n
        assert ops == _reference_chain_ops(keys, 64)

    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("table_size", [1, 3, 64, 10_000])
    def test_matches_reference_on_random_keys(self, seed, table_size):
        from repro.core.contraction import _chain_walk_lengths

        rng = np.random.default_rng(seed)
        keys = rng.integers(0, 200, size=300).astype(np.int64)
        assert _chain_walk_lengths(keys, table_size) == _reference_chain_ops(
            keys, table_size
        )

    def test_long_chain_walk_no_overflow(self):
        from repro.core.contraction import _chain_walk_lengths

        # 200k distinct keys in one chain: ~2e10 inspections — must come
        # back as an exact python int, not an overflowed int32.
        n = 200_000
        keys = np.arange(n, dtype=np.int64) * 7
        ops = _chain_walk_lengths(keys, 7)
        assert ops == n * (n - 1) // 2 + n

    def test_high_collision_graph_identical_output(self, random_graph_factory):
        # m >> n: after relabeling, most contracted keys are duplicates
        # (high-collision community ids). Output must stay bit-identical
        # to the bucket method and the chase profile well-formed.
        g = random_graph_factory(n=20, m=400, seed=2)
        m = run_matching(g)
        a, map_a = contract(g, m)
        rec = TraceRecorder()
        b, map_b = contract_hash_chains(g, m, rec)
        np.testing.assert_array_equal(map_a, map_b)
        np.testing.assert_array_equal(a.edges.ei, b.edges.ei)
        np.testing.assert_array_equal(a.edges.ej, b.edges.ej)
        np.testing.assert_array_equal(a.edges.w, b.edges.w)
        np.testing.assert_array_equal(a.self_weights, b.self_weights)

        (chase,) = rec.by_name("contract_chase")
        assert chase.chain_ops >= 0
        assert 0.0 <= chase.contention <= 1.0
        # Duplicate-heavy keys mean real collisions: contention registers.
        assert chase.contention > 0.0

    def test_contention_grows_with_collisions(self, random_graph_factory):
        m_sparse = 40
        sparse = random_graph_factory(n=30, m=m_sparse, seed=4)
        dense = random_graph_factory(n=10, m=500, seed=4)

        def contention_of(g):
            rec = TraceRecorder()
            contract_hash_chains(g, run_matching(g), rec)
            (chase,) = rec.by_name("contract_chase")
            return chase.contention

        assert contention_of(dense) > contention_of(sparse)
