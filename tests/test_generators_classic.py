"""Unit tests for the deterministic fixture graphs."""

import numpy as np
import pytest

from repro.generators import (
    complete_graph,
    grid_graph,
    karate_club,
    path_graph,
    ring_of_cliques,
    star_graph,
    two_triangles,
)


class TestKarate:
    def test_canonical_size(self):
        g = karate_club()
        assert g.n_vertices == 34
        assert g.n_edges == 78
        g.validate()

    def test_known_degrees(self):
        g = karate_club()
        deg = g.edges.degrees()
        assert deg[33] == 17  # instructor
        assert deg[0] == 16  # president


class TestRingOfCliques:
    def test_counts(self):
        g = ring_of_cliques(4, 5)
        assert g.n_vertices == 20
        assert g.n_edges == 4 * 10 + 4
        g.validate()

    def test_minimum_sizes(self):
        with pytest.raises(ValueError):
            ring_of_cliques(2, 5)
        with pytest.raises(ValueError):
            ring_of_cliques(3, 1)

    def test_clique_degrees(self):
        g = ring_of_cliques(3, 4)
        deg = g.edges.degrees()
        # All clique members have degree >= clique_size - 1.
        assert deg.min() >= 3


class TestStar:
    def test_counts(self):
        g = star_graph(6)
        assert g.n_vertices == 7
        assert g.n_edges == 6
        assert g.edges.degrees()[0] == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            star_graph(0)


class TestPathAndGrid:
    def test_path(self):
        g = path_graph(5)
        assert g.n_edges == 4
        deg = g.edges.degrees()
        assert deg[0] == 1 and deg[4] == 1 and deg[2] == 2

    def test_path_single_vertex(self):
        g = path_graph(1)
        assert g.n_vertices == 1
        assert g.n_edges == 0

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.n_vertices == 12
        assert g.n_edges == 3 * 3 + 2 * 4
        g.validate()

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            grid_graph(0, 3)


class TestComplete:
    def test_k5(self):
        g = complete_graph(5)
        assert g.n_edges == 10
        assert np.all(g.edges.degrees() == 4)

    def test_k1(self):
        g = complete_graph(1)
        assert g.n_edges == 0


class TestTwoTriangles:
    def test_structure(self):
        g = two_triangles()
        assert g.n_vertices == 6
        assert g.n_edges == 7
        deg = g.edges.degrees()
        assert deg[2] == 3 and deg[3] == 3  # bridge endpoints
