"""Unit tests for the phase-pipeline engine: RunContext, the kernel
registry, phase-kernel adapters, and the run-level span contract."""

import numpy as np
import pytest

from repro.core import (
    KERNEL_KINDS,
    AgglomerationEngine,
    RunContext,
    ScoreKernel,
    TerminationCriteria,
    create_kernel,
    detect_communities,
    kernel_names,
    register_kernel,
    unregister_kernel,
)
from repro.core.engine import _limit_matching
from repro.core.matching import MatchingResult, match_locally_dominant
from repro.errors import ScoreValidationError
from repro.obs.trace import NullTracer, Tracer
from repro.parallel.backends import SerialBackend
from repro.types import NO_VERTEX, SCORE_DTYPE


class TestRegistry:
    def test_builtins_discoverable(self):
        assert kernel_names("scorer") == ("conductance", "modularity", "weight")
        assert kernel_names("matcher") == ("gmm", "sweep", "worklist")
        assert kernel_names("contractor") == (
            "bucket",
            "chains",
            "shard",
            "spmatrix",
        )

    def test_kernel_kinds(self):
        assert KERNEL_KINDS == ("scorer", "matcher", "contractor")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kernel kind"):
            kernel_names("optimizer")
        with pytest.raises(ValueError, match="kernel kind"):
            register_kernel("optimizer", "adam", lambda: None)

    def test_unknown_name_lists_available(self):
        with pytest.raises(ValueError, match="unknown matcher 'nope'"):
            create_kernel("matcher", "nope")
        with pytest.raises(ValueError, match="sweep, worklist"):
            create_kernel("matcher", "nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_kernel("scorer", "modularity", lambda: None)

    def test_register_replace_and_unregister(self):
        sentinel = object()
        register_kernel("matcher", "test-matcher", lambda: sentinel)
        try:
            assert create_kernel("matcher", "test-matcher") is sentinel
            other = object()
            register_kernel(
                "matcher", "test-matcher", lambda: other, replace=True
            )
            assert create_kernel("matcher", "test-matcher") is other
        finally:
            unregister_kernel("matcher", "test-matcher")
        assert "test-matcher" not in kernel_names("matcher")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            register_kernel("scorer", "", lambda: None)

    def test_custom_scorer_usable_by_name(self, karate):
        class HalfWeight:
            name = "half-weight"

            def score(self, graph, recorder=None):
                return (graph.edges.w / 2).astype(SCORE_DTYPE)

        register_kernel("scorer", "half-weight", HalfWeight)
        try:
            res = detect_communities(karate, "half-weight")
            assert res.scorer_name == "half-weight"
            assert res.n_levels >= 1
        finally:
            unregister_kernel("scorer", "half-weight")


class TestRunContext:
    def test_create_defaults(self):
        ctx = RunContext.create()
        assert isinstance(ctx.tracer, NullTracer)
        assert ctx.backend.name == "serial"
        assert ctx.backend.n_workers == 1
        assert ctx.checkpoints is None
        assert ctx.recovery.retries == 0

    def test_create_normalizes_backend_name(self):
        ctx = RunContext.create(backend="serial")
        assert isinstance(ctx.backend, SerialBackend)

    def test_checkpoint_every_validation(self):
        with pytest.raises(ValueError, match="checkpoint_every"):
            RunContext.create(checkpoint_every=0)

    def test_resume_requires_checkpoints(self, karate):
        with pytest.raises(ValueError, match="checkpoint_dir"):
            AgglomerationEngine().run(karate, resume=True)


class TestScoreKernel:
    def test_builtin_skips_engine_side_validation(self):
        kernel = ScoreKernel(create_kernel("scorer", "modularity"))
        assert kernel._needs_validation is False

    def test_external_scorer_validated_once_by_engine(self, karate):
        class NaNScorer:
            name = "nan-scorer"

            def score(self, graph, recorder=None):
                out = np.zeros(graph.n_edges, dtype=SCORE_DTYPE)
                out[0] = np.nan
                return out

        kernel = ScoreKernel(NaNScorer())
        assert kernel._needs_validation is True
        with pytest.raises(ScoreValidationError, match="nan-scorer"):
            kernel.run(RunContext.create(), karate)

    def test_self_validating_external_scorer_trusted(self, karate):
        calls = []

        class TrustedScorer:
            name = "trusted"
            validates_output = True

            def score(self, graph, recorder=None):
                calls.append("score")
                return np.ones(graph.n_edges, dtype=SCORE_DTYPE)

        kernel = ScoreKernel(TrustedScorer())
        assert kernel._needs_validation is False
        scores = kernel.run(RunContext.create(), karate)
        assert calls == ["score"]
        assert scores.shape == (karate.n_edges,)


class TestCustomKernelCallables:
    def test_callable_matcher_and_contractor(self, karate):
        from repro.core.contraction import contract

        base = detect_communities(karate)
        res = detect_communities(
            karate, matcher=match_locally_dominant, contractor=contract
        )
        np.testing.assert_array_equal(
            base.partition.labels, res.partition.labels
        )


class TestRunSpan:
    def test_run_span_records_outcome(self, karate):
        tracer = Tracer()
        res = detect_communities(karate, tracer=tracer, matcher="sweep")
        (span,) = tracer.find("agglomeration")
        assert span.attrs["scorer"] == "modularity"
        assert span.attrs["matcher"] == "sweep"
        assert span.attrs["contractor"] == "bucket"
        assert span.attrs["backend"] == "serial"
        assert span.attrs["terminated_by"] == res.terminated_by
        assert span.attrs["n_levels"] == res.n_levels
        assert span.items == karate.n_edges

    def test_level_spans_nest_under_run_span(self, karate):
        tracer = Tracer()
        detect_communities(karate, tracer=tracer)
        (run_span,) = tracer.find("agglomeration")
        for level_span in tracer.find("level"):
            assert level_span.parent_id == run_span.span_id

    def test_seed_stamped_on_run_span(self, karate):
        tracer = Tracer()
        ctx = RunContext.create(tracer=tracer, seed=42)
        AgglomerationEngine().run(karate, ctx)
        (span,) = tracer.find("agglomeration")
        assert span.attrs["seed"] == 42


class TestLimitMatching:
    def test_partner_array_rebuilt_consistently(self, karate):
        scores = np.ones(karate.n_edges, dtype=SCORE_DTYPE)
        matching = match_locally_dominant(karate, scores)
        assert matching.n_pairs > 2
        limited = _limit_matching(matching, scores, 2, karate.edges)
        assert limited.n_pairs == 2
        # Partner must be involutive and agree exactly with matched_edges.
        e = karate.edges
        expected = np.full_like(matching.partner, NO_VERTEX)
        for k in limited.matched_edges:
            expected[e.ei[k]] = e.ej[k]
            expected[e.ej[k]] = e.ei[k]
        np.testing.assert_array_equal(limited.partner, expected)
        matched = limited.partner != NO_VERTEX
        np.testing.assert_array_equal(
            limited.partner[limited.partner[matched]],
            np.flatnonzero(matched),
        )

    def test_noop_below_cap(self, karate):
        scores = np.ones(karate.n_edges, dtype=SCORE_DTYPE)
        matching = match_locally_dominant(karate, scores)
        assert _limit_matching(
            matching, scores, matching.n_pairs, karate.edges
        ) is matching

    def test_keeps_highest_scored_pairs(self):
        # Path 0-1-2-3 with edge scores 3, 1, 2: cap at 1 keeps edge (0,1).
        from repro.graph import from_edges

        g = from_edges([0, 1, 2], [1, 2, 3], [1.0, 1.0, 1.0], n_vertices=4)
        scores = np.array([3.0, 1.0, 2.0], dtype=SCORE_DTYPE)
        partner = np.array([1, 0, 3, 2])
        matching = MatchingResult(
            partner=partner,
            matched_edges=np.array([0, 2]),
            passes=1,
            failed_claims=0,
        )
        limited = _limit_matching(matching, scores, 1, g.edges)
        np.testing.assert_array_equal(limited.matched_edges, [0])
        assert limited.partner[0] == 1 and limited.partner[1] == 0
        assert limited.partner[2] == NO_VERTEX
        assert limited.partner[3] == NO_VERTEX


class TestTerminatedByOnSpan:
    @pytest.mark.parametrize(
        "termination, expected",
        [
            (TerminationCriteria(coverage=None, max_levels=1), "max_levels"),
            (TerminationCriteria(coverage=0.0), "coverage"),
        ],
    )
    def test_reasons_surface_on_span(self, karate, termination, expected):
        tracer = Tracer()
        res = detect_communities(
            karate, termination=termination, tracer=tracer
        )
        assert res.terminated_by == expected
        (span,) = tracer.find("agglomeration")
        assert span.attrs["terminated_by"] == expected
