"""Property-based tests for the graph substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.graph import CSRAdjacency, from_edges
from repro.graph.edgelist import parity_canonical


@st.composite
def edge_arrays(draw, max_n=40, max_m=120, weighted=True):
    n = draw(st.integers(2, max_n))
    m = draw(st.integers(0, max_m))
    i = draw(hnp.arrays(np.int64, m, elements=st.integers(0, n - 1)))
    j = draw(hnp.arrays(np.int64, m, elements=st.integers(0, n - 1)))
    if weighted:
        w = draw(
            hnp.arrays(
                np.float64,
                m,
                elements=st.floats(0.25, 100.0, allow_nan=False),
            )
        )
    else:
        w = None
    return n, i, j, w


class TestBuilderProperties:
    @given(edge_arrays())
    @settings(max_examples=60, deadline=None)
    def test_representation_invariants_always_hold(self, args):
        n, i, j, w = args
        g = from_edges(i, j, w, n_vertices=n)
        g.validate()

    @given(edge_arrays())
    @settings(max_examples=60, deadline=None)
    def test_total_weight_conserved(self, args):
        n, i, j, w = args
        g = from_edges(i, j, w, n_vertices=n)
        expected = w.sum() if w is not None else len(i)
        assert abs(g.total_weight() - expected) < 1e-6 * max(1.0, abs(expected))

    @given(edge_arrays(weighted=False))
    @settings(max_examples=60, deadline=None)
    def test_orientation_invariance(self, args):
        n, i, j, _ = args
        a = from_edges(i, j, None, n_vertices=n)
        b = from_edges(j, i, None, n_vertices=n)
        np.testing.assert_array_equal(a.edges.ei, b.edges.ei)
        np.testing.assert_array_equal(a.edges.ej, b.edges.ej)
        np.testing.assert_array_equal(a.edges.w, b.edges.w)

    @given(edge_arrays())
    @settings(max_examples=40, deadline=None)
    def test_strengths_sum_to_twice_total_weight(self, args):
        n, i, j, w = args
        g = from_edges(i, j, w, n_vertices=n)
        assert abs(g.strengths().sum() - 2 * g.total_weight()) < 1e-6 * max(
            1.0, g.total_weight()
        )

    @given(edge_arrays(weighted=False))
    @settings(max_examples=40, deadline=None)
    def test_csr_degree_sum(self, args):
        n, i, j, _ = args
        g = from_edges(i, j, None, n_vertices=n)
        csr = CSRAdjacency.from_edgelist(g.edges)
        assert csr.degrees().sum() == 2 * g.n_edges


class TestParityProperties:
    @given(
        hnp.arrays(np.int64, 50, elements=st.integers(0, 1000)),
        hnp.arrays(np.int64, 50, elements=st.integers(0, 1000)),
    )
    @settings(max_examples=50, deadline=None)
    def test_parity_rule(self, i, j):
        first, second = parity_canonical(i, j)
        # The endpoint pair of every edge is preserved (possibly swapped).
        np.testing.assert_array_equal(
            np.sort(np.stack([first, second]), axis=0),
            np.sort(np.stack([i, j]), axis=0),
        )
        same = ((i ^ j) & 1) == 0
        non_loop = i != j
        assert np.all(first[same & non_loop] < second[same & non_loop])
        assert np.all(first[~same] > second[~same])
