"""Integration tests: the full paper pipeline end to end —
generate → detect (traced) → simulate platforms → report."""

import numpy as np
import pytest

from repro import TerminationCriteria, detect_communities, modularity
from repro.bench import (
    load_dataset,
    peak_rate,
    run_with_trace,
    scaling_experiment,
)
from repro.bench.experiments import ALL_PLATFORMS
from repro.metrics import coverage
from repro.platform import simulate_time


@pytest.fixture(scope="module")
def lj_run():
    g = load_dataset("soc-LiveJournal1", scale=0.5, seed=0)
    return g, run_with_trace(g, graph_name="soc-LiveJournal1")


class TestFullPipeline:
    def test_detection_terminates_sensibly(self, lj_run):
        g, run = lj_run
        res = run.result
        assert res.terminated_by in ("coverage", "local_maximum", "stalled")
        if res.terminated_by == "coverage":
            assert coverage(g, res.partition) >= 0.5

    def test_communities_nontrivial(self, lj_run):
        g, run = lj_run
        res = run.result
        assert 1 < res.n_communities < g.n_vertices
        assert modularity(g, res.partition) > 0.1

    def test_trace_covers_all_levels(self, lj_run):
        _, run = lj_run
        assert run.recorder.n_levels == run.result.n_levels
        names = {r.name for r in run.recorder.records}
        assert {"score", "match_pass", "contract_relabel"} <= names

    def test_all_platforms_simulate(self, lj_run):
        _, run = lj_run
        for machine in ALL_PLATFORMS:
            t1 = simulate_time(run.recorder.records, machine, 1).total
            assert t1 > 0
            best = min(
                simulate_time(run.recorder.records, machine, p).total
                for p in (2, 4, 8, 16)
            )
            if machine.kind == "openmp":
                # Intel threads always gain on this graph.
                assert best < t1
            else:
                # A half-scale soc-LiveJournal1 cannot even fill one XMT
                # processor's thread contexts — the paper's "insufficient
                # parallelism" case.  Adding processors must not explode,
                # but need not help.
                assert best < 1.25 * t1

    def test_sweep_speedups_sane(self, lj_run):
        _, run = lj_run
        sweeps = scaling_experiment(run, ALL_PLATFORMS, seed=0)
        for name, sr in sweeps.items():
            su = sr.best_speedup()
            assert 1.0 <= su <= sr.machine.max_parallelism
            assert peak_rate(sr) > 0

    def test_contraction_dominates_like_paper(self, lj_run):
        """§IV-C: contraction takes 40-80% of execution time (we accept a
        slightly wider band: it must at least be the largest single phase
        group or close to the matching)."""
        _, run = lj_run
        bd = simulate_time(run.recorder.records, ALL_PLATFORMS[2], 1)
        share = bd.fraction_prefix("contract")
        assert 0.25 <= share <= 0.85


class TestScorerPipelines:
    def test_conductance_pipeline(self):
        from repro import ConductanceScorer

        g = load_dataset("soc-LiveJournal1", scale=0.3, seed=1)
        res = detect_communities(
            g,
            ConductanceScorer(),
            termination=TerminationCriteria(coverage=0.5),
        )
        assert res.n_communities < g.n_vertices

    def test_custom_scorer_plugs_in(self, karate):
        class InverseDegreeScorer:
            name = "inverse-degree"

            def score(self, graph, recorder=None):
                deg = graph.edges.degrees().astype(float)
                e = graph.edges
                return 1.0 / (1.0 + deg[e.ei] * deg[e.ej])

        res = detect_communities(
            karate,
            InverseDegreeScorer(),
            termination=TerminationCriteria(coverage=None, max_levels=2),
        )
        assert res.n_levels == 2


class TestRefinementIntegration:
    def test_refine_after_detect_improves_or_keeps(self):
        from repro import refine_partition

        g = load_dataset("soc-LiveJournal1", scale=0.3, seed=2)
        res = detect_communities(g)
        q0 = modularity(g, res.partition)
        refined, _ = refine_partition(g, res.partition, max_sweeps=3)
        assert modularity(g, refined) >= q0 - 1e-12
