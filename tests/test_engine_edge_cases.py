"""Degenerate inputs at the engine boundary: well-formed results, never
an exception or a NaN.

Empty graphs, single vertices, all-self-loop inputs, and fully
disconnected vertex sets all short-circuit somewhere in the driver loop;
each must still produce a complete :class:`AgglomerationResult` — valid
partition, sensible ``terminated_by``, finite quality numbers — with or
without a guardian attached.
"""

import warnings

import numpy as np
import pytest

from repro.core import detect_communities
from repro.graph import from_edges
from repro.metrics import average_conductance, coverage, modularity
from repro.obs import QualityTimeline, Tracer
from repro.resilience import RunGuardian


def _vertexless():
    empty = np.array([], dtype=np.int64)
    return from_edges(empty, empty, n_vertices=0)


def _edgeless(n):
    empty = np.array([], dtype=np.int64)
    return from_edges(empty, empty, n_vertices=n)


def _all_self_loops(n):
    idx = np.arange(n, dtype=np.int64)
    return from_edges(idx, idx, w=np.full(n, 2.0))


def _assert_well_formed(graph, result):
    """The contract every degenerate run must honor."""
    assert result.terminated_by in (
        "min_communities",
        "local_maximum",
        "coverage",
        "max_levels",
        "max_community_size",
    )
    labels = result.partition.labels
    assert len(labels) == graph.n_vertices
    assert result.partition.n_communities <= max(1, graph.n_vertices)
    for value in (
        modularity(graph, result.partition),
        coverage(graph, result.partition),
        average_conductance(graph, result.partition),
    ):
        assert np.isfinite(value)
    for stats in result.levels:
        assert np.isfinite(stats.modularity_after)
        assert np.isfinite(stats.coverage_after)


class TestVertexlessGraph:
    def test_runs_to_completion(self):
        graph = _vertexless()
        result = detect_communities(graph)
        _assert_well_formed(graph, result)
        assert result.terminated_by == "min_communities"
        assert result.partition.n_communities == 0
        assert result.n_levels == 0
        assert modularity(graph, result.partition) == 0.0
        assert coverage(graph, result.partition) == 1.0

    def test_with_guardian_and_tracer(self):
        graph = _vertexless()
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # no GuardianBreach, no NaN noise
            result = detect_communities(
                graph,
                guardian=RunGuardian("full"),
                tracer=Tracer(),
                timeline=QualityTimeline(),
            )
        _assert_well_formed(graph, result)
        assert result.recovery.ladder == []


class TestSingleVertex:
    def test_runs_to_completion(self):
        graph = _edgeless(1)
        result = detect_communities(graph)
        _assert_well_formed(graph, result)
        assert result.terminated_by == "min_communities"
        assert result.partition.n_communities == 1

    def test_with_guardian(self):
        graph = _edgeless(1)
        result = detect_communities(graph, guardian=RunGuardian("full"))
        _assert_well_formed(graph, result)


class TestAllSelfLoops:
    def test_runs_to_completion(self):
        graph = _all_self_loops(5)
        assert graph.n_edges == 0  # loops fold into self weights
        assert graph.internal_weight() == pytest.approx(10.0)
        result = detect_communities(graph)
        _assert_well_formed(graph, result)
        # no cross edges: every vertex stays its own community
        assert result.partition.n_communities == 5
        assert coverage(graph, result.partition) == pytest.approx(1.0)

    def test_with_guardian_no_breach(self):
        graph = _all_self_loops(5)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            result = detect_communities(
                graph, guardian=RunGuardian("full")
            )
        _assert_well_formed(graph, result)
        assert result.recovery.guardian_breaches == 0


class TestFullyDisconnected:
    @pytest.mark.parametrize("n", [2, 50])
    def test_runs_to_completion(self, n):
        graph = _edgeless(n)
        result = detect_communities(graph)
        _assert_well_formed(graph, result)
        assert result.terminated_by == "local_maximum"
        assert result.partition.n_communities == n

    def test_with_guardian_and_timeline(self):
        graph = _edgeless(50)
        timeline = QualityTimeline()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            result = detect_communities(
                graph,
                guardian=RunGuardian("full"),
                timeline=timeline,
                tracer=Tracer(),
            )
        _assert_well_formed(graph, result)
        for sample in timeline.levels:
            assert np.isfinite(sample.modularity)
            assert np.isfinite(sample.coverage)


class TestIsolatedPlusComponent:
    def test_isolated_vertices_survive_agglomeration(self):
        # a triangle plus three isolated vertices: the isolates must ride
        # through every contraction level untouched
        i = np.array([0, 1, 2], dtype=np.int64)
        j = np.array([1, 2, 0], dtype=np.int64)
        graph = from_edges(i, j, n_vertices=6)
        result = detect_communities(graph, guardian=RunGuardian("full"))
        _assert_well_formed(graph, result)
        labels = result.partition.labels
        # triangle merges, isolates stay distinct singletons
        assert labels[0] == labels[1] == labels[2]
        assert len({int(labels[v]) for v in (3, 4, 5)}) == 3
