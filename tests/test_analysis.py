"""Unit tests for the community analysis toolkit."""

import numpy as np
import pytest

from repro import TerminationCriteria, detect_communities, modularity
from repro.analysis import (
    best_modularity_level,
    community_subgraph,
    community_summary,
    level_profile,
    quotient_graph,
)
from repro.generators import ring_of_cliques, two_triangles
from repro.graph import from_edges
from repro.metrics import Partition, conductances, coverage


@pytest.fixture
def tri_partition():
    return Partition(np.array([0, 0, 0, 1, 1, 1]))


class TestCommunitySummary:
    def test_two_triangles(self, triangles, tri_partition):
        stats = community_summary(triangles, tri_partition)
        np.testing.assert_array_equal(stats.sizes, [3, 3])
        np.testing.assert_allclose(stats.internal_weight, [3.0, 3.0])
        np.testing.assert_allclose(stats.cut_weight, [1.0, 1.0])
        np.testing.assert_allclose(stats.volume, [7.0, 7.0])
        np.testing.assert_allclose(stats.internal_density, [1.0, 1.0])
        np.testing.assert_allclose(stats.conductance, [1 / 7, 1 / 7])

    def test_matches_scalar_metrics(self, karate):
        res = detect_communities(karate)
        stats = community_summary(karate, res.partition)
        # Aggregates must agree with the scalar metrics.
        total = karate.total_weight()
        assert stats.internal_weight.sum() / total == pytest.approx(
            coverage(karate, res.partition)
        )
        np.testing.assert_allclose(
            stats.conductance, conductances(karate, res.partition)
        )
        assert stats.volume.sum() == pytest.approx(2 * total)

    def test_singleton_density_zero(self):
        g = from_edges(np.array([0]), np.array([1]), n_vertices=3)
        stats = community_summary(g, Partition(np.array([0, 0, 1])))
        assert stats.internal_density[1] == 0.0

    def test_as_rows_sorted_by_size(self, karate):
        res = detect_communities(karate)
        stats = community_summary(karate, res.partition)
        rows = stats.as_rows()
        sizes = [r[1] for r in rows]
        assert sizes == sorted(sizes, reverse=True)
        top = stats.as_rows(top=2)
        assert len(top) == 2

    def test_size_mismatch(self, karate):
        with pytest.raises(ValueError):
            community_summary(karate, Partition.singletons(2))


class TestExtraction:
    def test_community_subgraph(self, triangles, tri_partition):
        sub, ids = community_subgraph(triangles, tri_partition, 0)
        assert sub.n_vertices == 3
        assert sub.n_edges == 3  # the triangle, bridge dropped
        np.testing.assert_array_equal(ids, [0, 1, 2])

    def test_subgraph_size_mismatch(self, karate):
        with pytest.raises(ValueError):
            community_subgraph(karate, Partition.singletons(3), 0)

    def test_quotient_graph(self, triangles, tri_partition):
        q = quotient_graph(triangles, tri_partition)
        assert q.n_vertices == 2
        assert q.n_edges == 1
        assert q.edges.w[0] == 1.0
        np.testing.assert_allclose(q.self_weights, [3.0, 3.0])
        assert q.total_weight() == pytest.approx(triangles.total_weight())

    def test_quotient_coverage_identity(self, karate):
        res = detect_communities(karate)
        q = quotient_graph(karate, res.partition)
        assert q.coverage() == pytest.approx(coverage(karate, res.partition))


class TestLevels:
    def test_profile_spans_all_levels(self, karate):
        res = detect_communities(
            karate, termination=TerminationCriteria.local_maximum()
        )
        profile = level_profile(karate, res.dendrogram)
        assert len(profile) == res.n_levels + 1
        assert profile[0][1] == 34  # singletons
        assert profile[-1][1] == res.n_communities

    def test_best_level_at_least_final(self, karate):
        res = detect_communities(
            karate, termination=TerminationCriteria.local_maximum()
        )
        level, part = best_modularity_level(karate, res.dendrogram)
        assert modularity(karate, part) >= modularity(
            karate, res.partition
        ) - 1e-12

    def test_best_level_fixes_overshoot(self):
        """Run far past the modularity peak with weight scoring; the
        selector must recover a better intermediate level."""
        from repro.core import WeightScorer

        g = ring_of_cliques(6, 4)
        res = detect_communities(
            g,
            WeightScorer(),  # keeps merging as long as any edge remains
            termination=TerminationCriteria(coverage=None, min_communities=1),
        )
        q_final = modularity(g, res.partition)
        level, part = best_modularity_level(g, res.dendrogram)
        assert modularity(g, part) > q_final
        assert level < res.n_levels
