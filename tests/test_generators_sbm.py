"""Unit tests for the planted-partition (soc-LiveJournal1 analogue) generator."""

import numpy as np
import pytest

from repro.generators import planted_partition_graph
from repro.graph.components import connected_components
from repro.metrics import Partition, coverage


class TestPlantedPartition:
    def test_basic_shape(self):
        g = planted_partition_graph(500, seed=0)
        assert g.n_vertices == 500
        assert g.n_edges > 0
        g.validate()

    def test_unit_weights_no_self_loops(self):
        # The paper's LiveJournal snapshot has no self loops or multi-edges.
        g = planted_partition_graph(300, seed=1)
        assert np.all(g.edges.w == 1.0)
        assert np.all(g.self_weights == 0.0)

    def test_deterministic(self):
        a = planted_partition_graph(200, seed=7)
        b = planted_partition_graph(200, seed=7)
        np.testing.assert_array_equal(a.edges.ei, b.edges.ei)
        np.testing.assert_array_equal(a.edges.ej, b.edges.ej)

    def test_labels_partition_all_vertices(self):
        g, labels = planted_partition_graph(400, seed=2, return_labels=True)
        assert len(labels) == 400
        sizes = np.bincount(labels)
        assert sizes.min() >= 2  # no stranded singleton communities

    def test_planted_structure_has_high_coverage(self):
        g, labels = planted_partition_graph(
            600, seed=3, background_degree=1.0, return_labels=True
        )
        part = Partition.from_labels(labels)
        # Most edges should be internal to the planted communities.
        assert coverage(g, part) > 0.6

    def test_communities_internally_connected(self):
        g, labels = planted_partition_graph(
            300, seed=4, background_degree=0.0, return_labels=True
        )
        # With no background edges, components == planted communities.
        _, k = connected_components(g.n_vertices, g.edges.ei, g.edges.ej)
        assert k == len(np.unique(labels))

    def test_power_law_sizes_have_spread(self):
        g, labels = planted_partition_graph(
            3000, mean_community_size=20.0, seed=5, return_labels=True
        )
        sizes = np.bincount(labels)
        assert sizes.max() > 4 * np.median(sizes)

    def test_validation(self):
        with pytest.raises(ValueError):
            planted_partition_graph(1)
        with pytest.raises(ValueError):
            planted_partition_graph(100, p_in=0.0)
        with pytest.raises(ValueError):
            planted_partition_graph(100, background_degree=-1.0)
