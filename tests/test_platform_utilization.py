"""Unit tests for utilization profiling (§V-C's monitoring observation)."""

import pytest

from repro.bench import load_dataset, run_with_trace
from repro.errors import PlatformModelError
from repro.platform import (
    CRAY_XMT,
    INTEL_E7_8870,
    KernelRecord,
    mean_utilization,
    utilization_profile,
)


def rec(items, name="k"):
    return KernelRecord(name=name, items=items, mem_words=items)


class TestUtilizationProfile:
    def test_openmp_always_full(self):
        # Intel threads are explicitly scheduled: full utilization.
        profile = utilization_profile([rec(10), rec(10_000_000)], INTEL_E7_8870, 40)
        assert all(k.utilization == 1.0 for k in profile)

    def test_xmt_small_loop_poor_utilization(self):
        profile = utilization_profile([rec(1000)], CRAY_XMT, 64)
        assert profile[0].utilization < 0.05

    def test_xmt_big_loop_full_utilization(self):
        profile = utilization_profile([rec(100_000_000)], CRAY_XMT, 64)
        assert profile[0].utilization == 1.0

    def test_profile_fields(self):
        profile = utilization_profile([rec(5, name="score")], CRAY_XMT, 2)
        k = profile[0]
        assert k.name == "score"
        assert k.items == 5
        assert k.seconds > 0

    def test_allocation_validated(self):
        with pytest.raises(PlatformModelError):
            utilization_profile([rec(5)], CRAY_XMT, 500)


class TestMeanUtilization:
    def test_bounds(self):
        u = mean_utilization([rec(100), rec(10**8)], CRAY_XMT, 64)
        assert 0.0 < u <= 1.0

    def test_empty_trace(self):
        assert mean_utilization([], CRAY_XMT, 64) == 1.0

    def test_small_graph_underutilizes_xmt(self):
        """§V-C: small real graphs leave XMT processors starved while the
        big crawl keeps them busy."""
        lj = run_with_trace(
            load_dataset("soc-LiveJournal1", scale=0.5, seed=1),
            graph_name="lj",
        )
        uk = run_with_trace(
            load_dataset("uk-2007-05", scale=0.25, seed=1), graph_name="uk"
        )
        u_lj = mean_utilization(lj.recorder.records, CRAY_XMT, 64)
        u_uk = mean_utilization(uk.recorder.records, CRAY_XMT, 64)
        assert u_uk > 2 * u_lj

    def test_utilization_decreases_with_allocation(self):
        lj = run_with_trace(
            load_dataset("soc-LiveJournal1", scale=0.5, seed=1),
            graph_name="lj",
        )
        u8 = mean_utilization(lj.recorder.records, CRAY_XMT, 8)
        u64 = mean_utilization(lj.recorder.records, CRAY_XMT, 64)
        assert u64 < u8
