"""Guardian chaos suite: injected stalls and memory pressure must end in
a degraded-but-valid run, never a silent wrong answer.

The scenarios here drive the *real* engine (process-pool backend, real
kernels) under deterministic phase faults from
:attr:`FaultPlan.phase_faults`:

* an injected stall blows the phase deadline → the ladder swaps the
  pool for the serial backend and the run completes with a partition
  identical to an unguarded fault-free run;
* stalls on every level walk the full ladder — serial backend, chunk
  halving, audit lowering — and the final rung checkpoints and raises a
  typed :class:`RunAbortedError`, with every transition recorded in the
  :class:`RecoveryReport` and the trace;
* injected ballast breaches the memory budget while it is held.

Marked ``faultinject`` + ``guardian`` so CI runs these in the dedicated
time-boxed chaos job.
"""

import numpy as np
import pytest

from repro.core import detect_communities
from repro.errors import GuardianBreach, RunAbortedError
from repro.generators import planted_partition_graph
from repro.obs import Tracer
from repro.parallel.backends import ProcessPoolBackend, SerialBackend
from repro.resilience import FaultPlan, FaultSpec, RunGuardian
from repro.resilience.guardian import _rss_mb

pytestmark = [
    pytest.mark.faultinject,
    pytest.mark.guardian,
    pytest.mark.timeout(120),
]

N_WORKERS = 2  # the machine may have one core; force a real pool


@pytest.fixture(scope="module")
def graph():
    return planted_partition_graph(600, seed=7)


@pytest.fixture(scope="module")
def baseline(graph):
    """Unguarded, fault-free reference run."""
    return detect_communities(graph)


class TestStallDegradation:
    def test_stalled_phase_degrades_to_serial_and_completes(
        self, graph, baseline
    ):
        faults = FaultPlan.stall_phase("score", [0], delay_s=0.3)
        guardian = RunGuardian(
            "sample", phase_deadline_s=0.05, faults=faults
        )
        tracer = Tracer()
        with pytest.warns(GuardianBreach, match="deadline"):
            result = detect_communities(
                graph,
                backend=ProcessPoolBackend(N_WORKERS),
                guardian=guardian,
                tracer=tracer,
            )
        # degraded, not different: backend choice never changes results
        np.testing.assert_array_equal(
            result.partition.labels, baseline.partition.labels
        )
        assert result.terminated_by == baseline.terminated_by
        assert result.recovery.guardian_breaches == 1
        assert result.recovery.ladder == [
            "serial-backend(phase_deadline@level0)"
        ]
        assert len(tracer.find("guardian_breach")) == 1
        assert len(tracer.find("guardian_degrade")) == 1

    def test_every_rung_recorded_until_abort(self, graph, tmp_path):
        # stall every level: each completed phase breaches again and the
        # ladder must walk serial -> halve -> lower-audit -> abort
        faults = FaultPlan.stall_phase("score", range(10), delay_s=0.2)
        guardian = RunGuardian(
            "sample", phase_deadline_s=0.05, faults=faults
        )
        tracer = Tracer()
        ckpt = tmp_path / "ckpt"
        with pytest.warns(GuardianBreach), pytest.raises(
            RunAbortedError
        ) as ei:
            detect_communities(
                graph,
                backend=ProcessPoolBackend(N_WORKERS),
                guardian=guardian,
                tracer=tracer,
                checkpoint_dir=ckpt,
            )
        exc = ei.value
        assert exc.reason == "phase_deadline@level3"
        assert exc.report is not None
        assert exc.report.guardian_breaches == 4
        assert exc.report.ladder == [
            "serial-backend(phase_deadline@level0)",
            "halve-chunks(phase_deadline@level1)",
            "lower-audit(phase_deadline@level2)",
            "abort(phase_deadline@level3)",
        ]
        # the last checkpoint is written before the abort propagates
        assert exc.checkpoint_path is not None
        assert exc.checkpoint_path.exists()
        # forensics in the trace: one breach + one degrade span per rung
        assert len(tracer.find("guardian_breach")) == 4
        assert len(tracer.find("guardian_degrade")) == 4
        assert (
            tracer.metrics.counter("guardian.degradations").value == 4
        )

    def test_aborted_run_resumes_to_the_baseline_answer(
        self, graph, baseline, tmp_path
    ):
        faults = FaultPlan.stall_phase("score", range(10), delay_s=0.2)
        guardian = RunGuardian(
            "sample", phase_deadline_s=0.05, faults=faults
        )
        ckpt = tmp_path / "ckpt"
        with pytest.warns(GuardianBreach), pytest.raises(RunAbortedError):
            detect_communities(
                graph,
                backend=ProcessPoolBackend(N_WORKERS),
                guardian=guardian,
                checkpoint_dir=ckpt,
            )
        # fault-free resume from the abort checkpoint finishes the run
        # and lands on the exact fault-free answer
        resumed = detect_communities(
            graph, checkpoint_dir=ckpt, resume=True
        )
        np.testing.assert_array_equal(
            resumed.partition.labels, baseline.partition.labels
        )

    def test_stall_builder_rejects_chunk_kinds(self):
        with pytest.raises(ValueError):
            FaultPlan().add_phase("score", 0, FaultSpec("kill"))
        with pytest.raises(ValueError):
            FaultPlan().add(0, 0, FaultSpec("stall", delay_s=0.1))


class TestMemoryPressure:
    def test_injected_ballast_breaches_budget(self, graph, baseline):
        rss = _rss_mb()
        assert rss is not None
        # budget sits between the current footprint and footprint+ballast:
        # only the held ballast can push the sample over it
        faults = FaultPlan.pressure_phase("score", [0], alloc_mb=192.0)
        guardian = RunGuardian(
            "sample", memory_budget_mb=rss + 96.0, faults=faults
        )
        with pytest.warns(GuardianBreach, match="budget"):
            result = detect_communities(
                graph,
                backend=ProcessPoolBackend(N_WORKERS),
                guardian=guardian,
            )
        np.testing.assert_array_equal(
            result.partition.labels, baseline.partition.labels
        )
        assert result.recovery.guardian_breaches >= 1
        assert result.recovery.ladder[0] == (
            "serial-backend(memory_budget@level0)"
        )

    def test_no_ballast_no_breach(self, graph):
        rss = _rss_mb()
        guardian = RunGuardian("sample", memory_budget_mb=rss + 4096.0)
        result = detect_communities(graph, guardian=guardian)
        assert result.recovery.guardian_breaches == 0
        assert result.recovery.ladder == []


class TestGuardedRunQuality:
    def test_full_audit_run_matches_unguarded(self, graph, baseline):
        tracer = Tracer()
        result = detect_communities(
            graph, guardian=RunGuardian("full"), tracer=tracer
        )
        np.testing.assert_array_equal(
            result.partition.labels, baseline.partition.labels
        )
        assert result.recovery.ladder == []
        # the audits genuinely ran on every level
        audits = tracer.find("guardian_audit")
        assert len(audits) == result.n_levels
        assert tracer.metrics.counter("guardian.checks").value >= (
            4 * result.n_levels
        )

    def test_degraded_run_still_passes_audits(self, graph):
        # stall once with audits at full strictness: the degraded
        # (serial) continuation still satisfies every invariant
        faults = FaultPlan.stall_phase("contract", [1], delay_s=0.3)
        guardian = RunGuardian(
            "full", phase_deadline_s=0.05, faults=faults
        )
        with pytest.warns(GuardianBreach):
            result = detect_communities(
                graph,
                backend=ProcessPoolBackend(N_WORKERS),
                guardian=guardian,
            )
        assert result.recovery.ladder == [
            "serial-backend(phase_deadline@level1)"
        ]
        assert guardian.auditor.violations == 0
        assert guardian.auditor.checks_run > 0
