"""Tests for pluggable execution backends: the registry, normalization,
and the backend_map span/metric contract."""

import numpy as np
import pytest

from repro.core.scoring import ModularityScorer
from repro.obs.trace import Tracer
from repro.parallel import backends as backends_mod
from repro.parallel.backends import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    as_backend,
    backend_names,
    create_backend,
    register_backend,
)
from repro.parallel.pool import parallel_edge_scores


class TestRegistry:
    def test_builtins_discoverable(self):
        names = backend_names()
        assert "serial" in names
        assert "process-pool" in names
        assert names == tuple(sorted(names))

    def test_create_by_name(self):
        assert isinstance(create_backend("serial"), SerialBackend)
        pooled = create_backend("process-pool", n_workers=2)
        assert isinstance(pooled, ProcessPoolBackend)
        assert pooled.n_workers == 2

    def test_unknown_name_lists_available(self):
        with pytest.raises(ValueError, match="unknown backend 'gpu'"):
            create_backend("gpu")
        with pytest.raises(ValueError, match="serial"):
            create_backend("gpu")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("serial", SerialBackend)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            register_backend("", SerialBackend)

    def test_custom_backend_registration(self, monkeypatch):
        class Recording(SerialBackend):
            name = "recording"

        monkeypatch.setitem(
            backends_mod._BACKENDS, "recording", Recording
        )
        backend = create_backend("recording")
        assert backend.name == "recording"
        assert isinstance(backend, ExecutionBackend)

    def test_builtins_satisfy_protocol(self):
        assert isinstance(SerialBackend(), ExecutionBackend)
        assert isinstance(ProcessPoolBackend(1), ExecutionBackend)


class TestNormalization:
    def test_none_defaults_to_serial(self):
        backend = as_backend(None)
        assert isinstance(backend, SerialBackend)
        assert backend.n_workers == 1

    def test_none_with_workers_means_process_pool(self):
        backend = as_backend(None, n_workers=2)
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.n_workers == 2

    def test_string_resolves_through_registry(self):
        assert isinstance(as_backend("serial"), SerialBackend)

    def test_instance_passes_through(self):
        backend = SerialBackend()
        assert as_backend(backend) is backend

    def test_serial_ignores_requested_width(self):
        assert SerialBackend(n_workers=8).n_workers == 1
        assert create_backend("serial", n_workers=8).n_workers == 1


class TestMapChunksObservability:
    def test_backend_map_span_and_metrics(self, random_graph_factory):
        graph = random_graph_factory(n=60, m=200, seed=3)
        tracer = Tracer()
        backend = SerialBackend()
        scores = parallel_edge_scores(graph, backend=backend, tracer=tracer)
        (span,) = tracer.find("backend_map")
        assert span.attrs["backend"] == "serial"
        assert span.attrs["n_workers"] == 1
        assert span.items == graph.n_edges
        assert tracer.counter("backend.serial.maps").value == 1
        assert tracer.gauge("backend.serial.workers").value == 1
        np.testing.assert_array_equal(
            scores, ModularityScorer().score(graph)
        )

    def test_process_pool_identity_visible(self, random_graph_factory):
        graph = random_graph_factory(n=60, m=200, seed=3)
        tracer = Tracer()
        backend = ProcessPoolBackend(2)
        parallel_edge_scores(graph, backend=backend, tracer=tracer)
        (span,) = tracer.find("backend_map")
        assert span.attrs["backend"] == "process-pool"
        assert span.attrs["n_workers"] == 2
        assert tracer.counter("backend.process-pool.maps").value == 1
        assert tracer.gauge("backend.process-pool.workers").value == 2

    def test_backend_and_n_workers_mutually_exclusive(
        self, random_graph_factory
    ):
        graph = random_graph_factory(n=10, m=20, seed=0)
        with pytest.raises(ValueError, match="not both"):
            parallel_edge_scores(
                graph, backend=SerialBackend(), n_workers=2
            )

    def test_map_chunks_returns_recovery_report(self, random_graph_factory):
        graph = random_graph_factory(n=30, m=80, seed=1)
        from repro.parallel.pool import SharedOutput, _score_chunk, _WORK
        from repro.types import SCORE_DTYPE

        e = graph.edges
        _WORK["ei"] = e.ei
        _WORK["ej"] = e.ej
        _WORK["w"] = e.w
        _WORK["vol"] = graph.strengths()
        _WORK["w_total"] = graph.total_weight()
        try:
            with SharedOutput(graph.n_edges, SCORE_DTYPE) as out:
                rep = SerialBackend().map_chunks(
                    _score_chunk, out.name, graph.n_edges
                )
                assert rep.retries == 0
        finally:
            _WORK.clear()


class TestBackendScoringParity:
    def test_serial_and_pool_scores_bit_identical(self, random_graph_factory):
        graph = random_graph_factory(n=80, m=300, seed=5)
        serial = parallel_edge_scores(graph, backend=SerialBackend())
        pooled = parallel_edge_scores(graph, backend=ProcessPoolBackend(2))
        reference = ModularityScorer().score(graph)
        np.testing.assert_array_equal(serial, reference)
        np.testing.assert_array_equal(pooled, reference)
