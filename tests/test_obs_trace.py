"""Unit tests for the span tracer (repro.obs.trace)."""

import pytest

from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    as_tracer,
)


class TestSpanNesting:
    def test_parent_child_ids(self):
        tr = Tracer()
        with tr.span("outer") as outer:
            with tr.span("inner") as inner:
                pass
        assert inner.span.parent_id == outer.span.span_id
        assert outer.span.parent_id is None

    def test_completion_order_children_first(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        assert [s.name for s in tr.spans] == ["inner", "outer"]

    def test_sibling_spans_share_parent(self):
        tr = Tracer()
        with tr.span("level") as lvl:
            with tr.span("score") as a:
                pass
            with tr.span("match") as b:
                pass
        assert a.span.parent_id == lvl.span.span_id
        assert b.span.parent_id == lvl.span.span_id

    def test_current_tracks_stack(self):
        tr = Tracer()
        assert tr.current is None
        with tr.span("outer"):
            assert tr.current.name == "outer"
            with tr.span("inner"):
                assert tr.current.name == "inner"
            assert tr.current.name == "outer"
        assert tr.current is None

    def test_span_ids_unique_and_increasing(self):
        tr = Tracer()
        for _ in range(3):
            with tr.span("x"):
                pass
        ids = [s.span_id for s in tr.spans]
        assert ids == sorted(ids)
        assert len(set(ids)) == 3

    def test_timestamps_monotonic_and_nested(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner"):
                sum(range(1000))
        inner, outer = tr.spans
        assert outer.start_ns <= inner.start_ns
        assert inner.end_ns <= outer.end_ns
        assert inner.duration_ns >= 0
        assert outer.duration_s >= inner.duration_s


class TestAttributes:
    def test_set_items_and_attrs(self):
        tr = Tracer()
        with tr.span("score", level=3) as sp:
            sp.set(items=42, scorer="modularity")
        span = tr.spans[0]
        assert span.items == 42
        assert span.level == 3
        assert span.attrs["scorer"] == "modularity"

    def test_constructor_attrs(self):
        tr = Tracer()
        with tr.span("run", graph="karate"):
            pass
        assert tr.spans[0].attrs == {"graph": "karate"}

    def test_set_chains(self):
        tr = Tracer()
        with tr.span("x") as sp:
            assert sp.set(a=1) is sp

    def test_exception_closes_span_and_stamps_error(self):
        tr = Tracer()
        with pytest.raises(ValueError):
            with tr.span("boom"):
                raise ValueError("nope")
        assert len(tr.spans) == 1
        assert tr.spans[0].attrs["error"] == "ValueError"
        assert tr.current is None

    def test_find_by_name(self):
        tr = Tracer()
        for name in ("a", "b", "a"):
            with tr.span(name):
                pass
        assert len(tr.find("a")) == 2
        assert tr.find("missing") == []


class TestMetricsPassthrough:
    def test_counter_gauge_histogram(self):
        tr = Tracer()
        tr.counter("c").inc(5)
        tr.gauge("g").set(3.5)
        tr.histogram("h").observe(2)
        assert tr.metrics.counters["c"].value == 5
        assert tr.metrics.gauges["g"].value == 3.5
        assert tr.metrics.histograms["h"].total == 1


class TestNullTracer:
    def test_span_returns_shared_singleton(self):
        h1 = NULL_TRACER.span("a", level=1, foo="bar")
        h2 = NULL_TRACER.span("b")
        assert h1 is h2  # no allocation on the untraced path

    def test_noop_context_manager(self):
        with NULL_TRACER.span("x") as sp:
            assert sp.set(items=5) is sp
            assert sp.span is None
        assert NULL_TRACER.spans == ()
        assert NULL_TRACER.find("x") == []

    def test_metrics_are_shared_noops(self):
        c1 = NULL_TRACER.counter("a")
        c2 = NULL_TRACER.counter("b")
        assert c1 is c2
        c1.inc(10)
        assert c1.value == 0
        NULL_TRACER.gauge("g").set(9)
        NULL_TRACER.histogram("h").observe(1)
        assert NULL_TRACER.metrics.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_enabled_flags(self):
        assert Tracer().enabled is True
        assert NULL_TRACER.enabled is False

    def test_as_tracer(self):
        assert as_tracer(None) is NULL_TRACER
        tr = Tracer()
        assert as_tracer(tr) is tr
        nt = NullTracer()
        assert as_tracer(nt) is nt

    def test_current_is_none(self):
        assert NULL_TRACER.current is None


class TestSpanDataclass:
    def test_duration_properties(self):
        s = Span(name="x", span_id=0, start_ns=1_000, end_ns=3_500_000)
        assert s.duration_ns == 3_499_000
        assert s.duration_s == pytest.approx(3.499e-3)


class TestSpanIdentity:
    """v2 schema: every span knows its pid/tid and clock epoch."""

    def test_span_stamped_with_pid_tid_epoch(self):
        import os
        import threading

        tr = Tracer()
        with tr.span("work"):
            pass
        span = tr.spans[0]
        assert span.pid == os.getpid()
        assert span.tid == threading.get_native_id()
        assert span.epoch_ns == tr.epoch_ns
        assert tr.epoch_ns > 0

    def test_epoch_fixed_per_tracer(self):
        tr = Tracer()
        with tr.span("a"):
            pass
        with tr.span("b"):
            pass
        assert tr.spans[0].epoch_ns == tr.spans[1].epoch_ns

    def test_null_tracer_epoch_zero(self):
        assert NullTracer.epoch_ns == 0


class TestRecordSpan:
    """Externally-measured spans (worker flight records)."""

    def test_parents_onto_open_span(self):
        tr = Tracer()
        with tr.span("pool_run") as handle:
            lane = tr.record_span(
                "worker_chunk", start_ns=10, end_ns=20, pid=4242
            )
        assert lane.parent_id == handle.span.span_id
        assert lane.start_ns == 10 and lane.end_ns == 20

    def test_worker_pid_kept_tid_defaults_to_pid(self):
        tr = Tracer()
        lane = tr.record_span("worker_chunk", start_ns=0, end_ns=1, pid=4242)
        assert lane.pid == 4242
        assert lane.tid == 4242

    def test_pid_defaults_to_current_process(self):
        import os

        tr = Tracer()
        lane = tr.record_span("x", start_ns=0, end_ns=1)
        assert lane.pid == os.getpid()

    def test_items_and_attrs(self):
        tr = Tracer()
        lane = tr.record_span(
            "worker_chunk", start_ns=0, end_ns=1, items=5, lo=0, hi=5,
            queue_wait_s=0.25,
        )
        assert lane.items == 5
        assert lane.attrs == {"lo": 0, "hi": 5, "queue_wait_s": 0.25}

    def test_appended_in_call_order_with_unique_ids(self):
        tr = Tracer()
        a = tr.record_span("a", start_ns=0, end_ns=1)
        b = tr.record_span("b", start_ns=1, end_ns=2)
        assert [s.name for s in tr.spans] == ["a", "b"]
        assert a.span_id != b.span_id

    def test_null_tracer_noop(self):
        assert NULL_TRACER.record_span("x", start_ns=0, end_ns=1) is None
        assert NULL_TRACER.spans == ()
