"""Unit tests for the Pregel-style BSP substrate and its vertex programs."""

import numpy as np
import pytest

from repro.errors import ConvergenceError
from repro.core import match_locally_dominant
from repro.generators import path_graph, ring_of_cliques, star_graph, two_triangles
from repro.graph import from_edges
from repro.metrics import Partition
from repro.pregel import (
    ComponentsProgram,
    LabelPropagationProgram,
    MatchingProgram,
    PregelEngine,
)
from repro.types import NO_VERTEX


class TestEngine:
    def test_quiesces_immediately_on_silent_program(self):
        class Noop:
            def init(self, vertex, graph):
                return None

            def compute(self, ctx, messages):
                ctx.vote_to_halt()

        g = path_graph(4)
        engine = PregelEngine(g)
        engine.run(Noop())
        assert engine.n_supersteps <= 2
        assert engine.total_messages() == 0

    def test_superstep_budget_enforced(self):
        class Chatter:
            def init(self, vertex, graph):
                return None

            def compute(self, ctx, messages):
                ctx.send_to_neighbors("hi")  # never stops talking

        with pytest.raises(ConvergenceError):
            PregelEngine(path_graph(3)).run(Chatter(), max_supersteps=5)

    def test_stats_recorded(self):
        g = path_graph(5)
        engine = PregelEngine(g)
        engine.run(ComponentsProgram())
        assert engine.stats[0].active_vertices == 5
        assert engine.total_messages() > 0
        assert all(s.superstep == k for k, s in enumerate(engine.stats))

    def test_message_delivery_next_superstep(self):
        log = []

        class Probe:
            def init(self, vertex, graph):
                return None

            def compute(self, ctx, messages):
                log.append((ctx.superstep, ctx.vertex, sorted(messages)))
                if ctx.superstep == 0 and ctx.vertex == 0:
                    ctx.send(1, "x")
                ctx.vote_to_halt()

        PregelEngine(path_graph(2)).run(Probe())
        assert (0, 1, []) in log
        assert (1, 1, ["x"]) in log


class TestComponents:
    def test_path(self):
        engine = PregelEngine(path_graph(6))
        labels = engine.run(ComponentsProgram())
        assert set(labels) == {0}

    def test_disconnected(self):
        g = from_edges(np.array([0, 2]), np.array([1, 3]), n_vertices=5)
        labels = PregelEngine(g).run(ComponentsProgram())
        assert labels[0] == labels[1] == 0
        assert labels[2] == labels[3] == 2
        assert labels[4] == 4

    def test_matches_array_kernel(self, random_graph_factory):
        from repro.graph import connected_components

        g = random_graph_factory(n=30, m=40, seed=5)
        pregel_labels = PregelEngine(g).run(ComponentsProgram())
        ref, k = connected_components(g.n_vertices, g.edges.ei, g.edges.ej)
        # Same partition up to renaming.
        pairs = set(zip(pregel_labels, ref.tolist()))
        assert len(pairs) == k

    def test_supersteps_bounded_by_diameter(self):
        g = path_graph(20)
        engine = PregelEngine(g)
        engine.run(ComponentsProgram())
        assert engine.n_supersteps <= 25


class TestLabelPropagation:
    def test_cliques_converge_to_one_label_each(self):
        g = ring_of_cliques(4, 5)
        engine = PregelEngine(g)
        states = engine.run(LabelPropagationProgram(g), max_supersteps=100)
        labels = [s["label"] for s in states]
        for c in range(4):
            block = labels[c * 5 : (c + 1) * 5]
            assert len(set(block)) == 1

    def test_single_edge_no_oscillation(self):
        g = path_graph(2)
        engine = PregelEngine(g)
        states = engine.run(LabelPropagationProgram(g), max_supersteps=50)
        labels = [s["label"] for s in states]
        assert labels[0] == labels[1]

    def test_two_triangles(self):
        g = two_triangles()
        states = PregelEngine(g).run(
            LabelPropagationProgram(g), max_supersteps=100
        )
        labels = [s["label"] for s in states]
        assert len(set(labels[:3])) == 1
        assert len(set(labels[3:])) == 1


class TestMatching:
    def _run(self, g):
        states = PregelEngine(g).run(MatchingProgram(), max_supersteps=400)
        partner = np.full(g.n_vertices, NO_VERTEX, dtype=np.int64)
        for v, s in enumerate(states):
            if s["status"] == "matched":
                partner[v] = s["partner"]
        return partner

    def test_single_edge(self):
        g = path_graph(2)
        partner = self._run(g)
        assert partner[0] == 1 and partner[1] == 0

    def test_valid_involution(self, random_graph_factory):
        g = random_graph_factory(n=25, m=60, seed=2)
        partner = self._run(g)
        matched = np.flatnonzero(partner != NO_VERTEX)
        np.testing.assert_array_equal(partner[partner[matched]], matched)

    def test_maximal(self, random_graph_factory):
        for seed in range(4):
            g = random_graph_factory(n=20, m=50, seed=seed)
            partner = self._run(g)
            e = g.edges
            free_i = partner[e.ei] == NO_VERTEX
            free_j = partner[e.ej] == NO_VERTEX
            assert not np.any(free_i & free_j)

    def test_star_matches_one_pair(self):
        g = star_graph(8)
        partner = self._run(g)
        assert np.count_nonzero(partner != NO_VERTEX) == 2
        assert partner[0] != NO_VERTEX  # hub always matched

    def test_heavy_edge_preferred(self):
        # Path 0-1-2 with weights 1, 9: the heavy edge must win.
        g = from_edges(np.array([0, 1]), np.array([1, 2]), np.array([1.0, 9.0]))
        partner = self._run(g)
        assert partner[1] == 2 and partner[2] == 1
        assert partner[0] == NO_VERTEX

    def test_same_weight_as_array_kernel_on_path(self):
        # Deterministic total orders differ, but the matching weight of
        # locally-dominant matchings on a uniform path is the same class.
        g = path_graph(10)
        partner = self._run(g)
        n_pregel = np.count_nonzero(partner != NO_VERTEX) // 2
        res = match_locally_dominant(g, g.edges.w.astype(float))
        assert n_pregel >= res.n_pairs // 2 > 0
