"""Unit tests for the merge dendrogram."""

import numpy as np
import pytest

from repro import TerminationCriteria, detect_communities
from repro.core import Dendrogram


class TestDendrogram:
    def test_empty(self):
        d = Dendrogram(5)
        assert d.n_levels == 0
        np.testing.assert_array_equal(d.labels_at(0), np.arange(5))
        assert d.communities_at(0) == 5

    def test_push_and_compose(self):
        d = Dendrogram(4)
        d.push(np.array([0, 0, 1, 1]))  # 4 -> 2
        d.push(np.array([0, 0]))  # 2 -> 1
        assert d.n_levels == 2
        np.testing.assert_array_equal(d.labels_at(1), [0, 0, 1, 1])
        np.testing.assert_array_equal(d.labels_at(2), [0, 0, 0, 0])
        assert d.communities_at(2) == 1

    def test_wrong_length_rejected(self):
        d = Dendrogram(4)
        with pytest.raises(ValueError, match="covers"):
            d.push(np.array([0, 0, 1]))

    def test_non_shrinking_rejected(self):
        d = Dendrogram(2)
        with pytest.raises(ValueError, match="shrink"):
            d.push(np.array([0, 2]))

    def test_level_out_of_range(self):
        d = Dendrogram(3)
        with pytest.raises(IndexError):
            d.labels_at(1)
        with pytest.raises(IndexError):
            d.communities_at(-1)

    def test_partition_at(self):
        d = Dendrogram(3)
        d.push(np.array([0, 1, 0]))
        p = d.partition_at(1)
        assert p.n_communities == 2

    def test_from_driver_levels_consistent(self, karate):
        res = detect_communities(
            karate, termination=TerminationCriteria.local_maximum()
        )
        d = res.dendrogram
        assert d.n_levels == res.n_levels
        # Community counts along the dendrogram match the level stats.
        for k, stats in enumerate(res.levels):
            assert d.communities_at(k) == stats.n_vertices
        assert d.final_partition() == res.partition

    def test_intermediate_partitions_valid(self, cliques):
        res = detect_communities(
            cliques, termination=TerminationCriteria.local_maximum()
        )
        for lvl in range(res.n_levels + 1):
            p = res.dendrogram.partition_at(lvl)
            assert p.n_vertices == cliques.n_vertices
