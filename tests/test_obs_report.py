"""Tests for the run report renderer (`repro.obs.report`)."""

from __future__ import annotations

import pytest

from repro.bench.ledger import Repetition, RunRecord
from repro.obs import (
    Tracer,
    markdown_to_html,
    read_trace,
    render_report,
    write_report,
    write_trace,
)
from repro.obs.sinks import TraceData


def traced_run():
    tr = Tracer()
    with tr.span("run", graph="toy"):
        with tr.span("level", level=0):
            with tr.span("score", level=0):
                pass
            with tr.span("match", level=0):
                with tr.span("match_pass", level=0):
                    pass
            with tr.span("contract", level=0):
                pass
    return tr


def toy_ledger():
    return RunRecord(
        name="toy",
        graph={"name": "toy", "n_vertices": 34, "n_edges": 78},
        host={"hostname": "box", "cpu_count": 4, "python": "3.12.0"},
        repetitions=[
            Repetition(
                total_s=0.5,
                phases={
                    "score": 0.1,
                    "match": 0.2,
                    "contract": 0.15,
                    "total": 0.45,
                },
                quality={
                    "version": 1,
                    "levels": [
                        {
                            "level": 0,
                            "n_communities": 4,
                            "modularity": 0.41,
                            "coverage": 0.7,
                            "mirror_coverage": 0.3,
                            "merge_fraction": 0.5,
                            "matching_passes": 3,
                            "community_sizes": {"max": 12},
                        }
                    ],
                },
            )
        ],
        created_unix=1.0,
    )


def trace_data(tr):
    return TraceData(meta={"command": "test"}, spans=list(tr.spans))


class TestRenderReport:
    def test_sections_present(self):
        md = render_report(trace_data(traced_run()))
        for heading in (
            "# repro run report",
            "## Run context",
            "## Phase breakdown",
            "## Per-level timeline",
            "## Hotspots (by self-time)",
            "## Parallel efficiency",
            "## Trace consistency",
        ):
            assert heading in md

    def test_ledger_fuses_quality_and_repetitions(self):
        md = render_report(trace_data(traced_run()), ledger=toy_ledger())
        assert "## Benchmark ledger" in md
        assert "0.41" in md  # modularity column
        assert "modularity" in md
        assert "repetitions" in md

    def test_clean_trace_reports_consistent(self):
        md = render_report(trace_data(traced_run()))
        assert "satisfy the timing invariants" in md

    def test_violations_surface_in_report(self):
        from repro.obs.trace import Span

        spans = [
            Span(name="child", span_id=1, parent_id=0, start_ns=0, end_ns=int(5e9)),
            Span(name="parent", span_id=0, start_ns=0, end_ns=int(1e9)),
        ]
        md = render_report(TraceData(spans=spans))
        assert "invariant violation(s)" in md

    def test_custom_title(self):
        md = render_report(trace_data(traced_run()), title="my run")
        assert md.startswith("# my run")

    def test_empty_trace(self):
        md = render_report(TraceData())
        assert "## Trace consistency" in md


class TestMarkdownToHtml:
    def test_structure(self):
        md = render_report(trace_data(traced_run()), ledger=toy_ledger())
        html = markdown_to_html(md, title="t")
        assert html.startswith("<!DOCTYPE html>")
        assert "<table>" in html and "<th>" in html and "<td>" in html
        assert "<h1>" in html and "<h2>" in html

    def test_self_contained(self):
        html = markdown_to_html(render_report(TraceData()), title="t")
        assert "<script" not in html
        assert "http://" not in html and "https://" not in html

    def test_escapes_html(self):
        html = markdown_to_html("plain <b>not bold</b> text", title="t")
        assert "<b>not bold</b>" not in html
        assert "&lt;b&gt;" in html

    def test_inline_code_and_bold(self):
        html = markdown_to_html("use `repro` and **this**", title="t")
        assert "<code>repro</code>" in html
        assert "<strong>this</strong>" in html

    def test_bullets(self):
        html = markdown_to_html("- one\n- two", title="t")
        assert "<ul><li>one</li><li>two</li></ul>" in html


class TestWriteReport:
    def test_markdown_file(self, tmp_path):
        out = tmp_path / "r.md"
        md = write_report(trace_data(traced_run()), out)
        assert out.read_text() == md

    def test_html_file(self, tmp_path):
        out = tmp_path / "r.html"
        write_report(trace_data(traced_run()), out, as_html=True)
        assert out.read_text().startswith("<!DOCTYPE html>")

    def test_no_tmp_residue(self, tmp_path):
        out = tmp_path / "r.md"
        write_report(TraceData(), out)
        assert [p.name for p in tmp_path.iterdir()] == ["r.md"]

    def test_round_trip_from_disk(self, tmp_path):
        tr = traced_run()
        trace_path = tmp_path / "t.jsonl"
        write_trace(tr, trace_path, meta={"command": "test"})
        md = render_report(read_trace(trace_path))
        assert "## Phase breakdown" in md
        assert "match_pass" in md

    def test_failed_write_leaves_no_final_file(self, tmp_path):
        target = tmp_path / "missing" / "r.md"
        with pytest.raises(OSError):
            write_report(TraceData(), target)
        assert not target.exists()


class TestTunerSection:
    def _tuner_block(self):
        return {
            "policy": "cost-model",
            "kinds": ["matcher", "contractor"],
            "n_decisions": 2,
            "selected": {"matcher": {"gmm": 1}, "contractor": {"bucket": 1}},
            "decisions": [
                {
                    "level": 0,
                    "kind": "matcher",
                    "chosen": "gmm",
                    "policy": "cost-model",
                    "constrained_sharded": True,
                    "shape": {
                        "n_vertices": 10,
                        "n_edges": 20,
                        "density": 0.4,
                        "degree_cv": 1.25,
                    },
                    "candidates": ["gmm", "worklist"],
                    "predicted_s": {"gmm": 0.001, "worklist": 0.002},
                },
                {
                    "level": 0,
                    "kind": "contractor",
                    "chosen": "bucket",
                    "policy": "cost-model",
                    "constrained_sharded": False,
                    "shape": {
                        "n_vertices": 10,
                        "n_edges": 20,
                        "density": 0.4,
                        "degree_cv": 1.25,
                    },
                    "candidates": ["bucket"],
                    "predicted_s": {"bucket": 0.001},
                },
            ],
        }

    def test_ledger_tuner_block_renders(self):
        ledger = toy_ledger()
        ledger.repetitions[0].tuner = self._tuner_block()
        md = render_report(trace_data(traced_run()), ledger=ledger)
        assert "## Kernel selection (tuner)" in md
        assert "cost-model" in md
        assert "`gmm`×1" in md
        assert "1.25" in md  # degree CV column
        assert "yes" in md  # constrained_sharded flag

    def test_no_tuner_no_section(self):
        md = render_report(trace_data(traced_run()), ledger=toy_ledger())
        assert "## Kernel selection (tuner)" not in md

    def test_trace_spans_fallback(self):
        tr = Tracer()
        with tr.span("run", graph="toy"):
            with tr.span("level", level=0):
                with tr.span(
                    "tuner_select",
                    level=0,
                    policy="cost-model",
                    matcher="sweep",
                    contractor="spmatrix",
                    degree_cv=0.75,
                    constrained_sharded=False,
                ):
                    pass
        md = render_report(trace_data(tr))
        assert "## Kernel selection (tuner)" in md
        assert "tuner_select" in md
        assert "`sweep`" in md and "`spmatrix`" in md
