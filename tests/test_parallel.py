"""Unit tests for the real-parallel helpers (chunks, primitives, pool)."""

import numpy as np
import pytest

from repro.core import ModularityScorer
from repro.parallel import (
    SharedArrayPool,
    balanced_chunks,
    chunk_ranges,
    parallel_edge_scores,
    prefix_sum,
    segmented_max_at,
    segmented_min_at,
)


class TestChunkRanges:
    def test_even_split(self):
        assert chunk_ranges(10, 2) == [(0, 5), (5, 10)]

    def test_uneven_split_sizes_differ_by_at_most_one(self):
        ranges = chunk_ranges(10, 3)
        sizes = [hi - lo for lo, hi in ranges]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1

    def test_covers_everything_in_order(self):
        ranges = chunk_ranges(17, 5)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == 17
        for (a, b), (c, d) in zip(ranges, ranges[1:]):
            assert b == c

    def test_more_chunks_than_items(self):
        ranges = chunk_ranges(2, 5)
        assert len(ranges) == 5
        assert sum(hi - lo for lo, hi in ranges) == 2

    def test_zero_items(self):
        assert chunk_ranges(0, 3) == [(0, 0)] * 3

    def test_validation(self):
        with pytest.raises(ValueError):
            chunk_ranges(5, 0)
        with pytest.raises(ValueError):
            chunk_ranges(-1, 2)


class TestBalancedChunks:
    def test_balances_skewed_weights(self):
        w = np.array([100.0] + [1.0] * 99)
        ranges = balanced_chunks(w, 2)
        loads = [w[lo:hi].sum() for lo, hi in ranges]
        assert loads[0] <= 110  # the hub is isolated in its own chunk

    def test_uniform_weights_like_chunk_ranges(self):
        w = np.ones(12)
        ranges = balanced_chunks(w, 3)
        sizes = [hi - lo for lo, hi in ranges]
        assert sizes == [4, 4, 4]

    def test_covers_everything(self):
        rng = np.random.default_rng(0)
        w = rng.random(50)
        ranges = balanced_chunks(w, 7)
        assert ranges[0][0] == 0 and ranges[-1][1] == 50
        assert sum(hi - lo for lo, hi in ranges) == 50

    def test_empty(self):
        assert balanced_chunks(np.empty(0), 3) == [(0, 0)] * 3

    def test_validation(self):
        with pytest.raises(ValueError):
            balanced_chunks(np.ones(3), 0)
        with pytest.raises(ValueError):
            balanced_chunks(-np.ones(3), 2)


class TestPrimitives:
    def test_segmented_max(self):
        out = np.full(3, -np.inf)
        segmented_max_at(out, np.array([0, 1, 0]), np.array([1.0, 2.0, 5.0]))
        np.testing.assert_array_equal(out, [5.0, 2.0, -np.inf])

    def test_segmented_min(self):
        out = np.full(2, np.inf)
        segmented_min_at(out, np.array([0, 0, 1]), np.array([3.0, 1.0, 7.0]))
        np.testing.assert_array_equal(out, [1.0, 7.0])

    def test_prefix_sum(self):
        np.testing.assert_array_equal(
            prefix_sum(np.array([2, 0, 3])), [0, 2, 2, 5]
        )

    def test_prefix_sum_empty(self):
        np.testing.assert_array_equal(prefix_sum(np.empty(0, int)), [0])


class TestPool:
    def test_matches_sequential_scorer(self, karate):
        expected = ModularityScorer().score(karate)
        got = parallel_edge_scores(karate, n_workers=1)
        np.testing.assert_allclose(got, expected)

    def test_two_workers(self, karate):
        expected = ModularityScorer().score(karate)
        got = parallel_edge_scores(karate, n_workers=2)
        np.testing.assert_allclose(got, expected)

    def test_empty_graph(self):
        from repro.graph import from_edges

        g = from_edges(np.empty(0, int), np.empty(0, int), n_vertices=3)
        assert len(parallel_edge_scores(g, n_workers=2)) == 0

    def test_pool_validation(self):
        with pytest.raises(ValueError):
            SharedArrayPool(0)

    def test_pool_fallback_serial(self):
        pool = SharedArrayPool(1)
        assert not pool.uses_processes


class TestPoolMetrics:
    """Worker-side metrics must aggregate into the parent registry."""

    def test_inline_worker_metrics_merge(self, karate):
        from repro.obs import Tracer

        tr = Tracer()
        parallel_edge_scores(karate, n_workers=1, tracer=tr)
        snap = tr.metrics.snapshot()
        assert snap["counters"]["pool.edges_scored"] == karate.n_edges
        assert snap["histograms"]["pool.chunk_items"]["total"] >= 1

    def test_process_worker_metrics_merge(self, karate):
        from repro.obs import Tracer

        tr = Tracer()
        parallel_edge_scores(karate, n_workers=2, tracer=tr)
        snap = tr.metrics.snapshot()
        # every edge scored exactly once, across all forked workers
        assert snap["counters"]["pool.edges_scored"] == karate.n_edges
        hist = snap["histograms"]["pool.chunk_items"]
        assert hist["total"] >= 2  # at least one chunk per worker
        assert hist["sum"] == karate.n_edges

    def test_untraced_run_records_nothing(self, karate):
        from repro.parallel.pool import worker_metrics

        parallel_edge_scores(karate, n_workers=2)
        # outside a traced run the module-level registry is the null one
        assert worker_metrics().snapshot()["counters"] == {}


class TestFlightRecorder:
    """Process workers flight-record each chunk as a worker_chunk lane."""

    @pytest.mark.timeout(120)
    def test_process_run_records_worker_chunk_lanes(self, karate):
        import os

        from repro.obs import Tracer

        tr = Tracer()
        parallel_edge_scores(karate, n_workers=2, tracer=tr)
        lanes = [s for s in tr.spans if s.name == "worker_chunk"]
        assert lanes
        pool_run = next(s for s in tr.spans if s.name == "pool_run")
        for lane in lanes:
            assert lane.parent_id == pool_run.span_id
            assert lane.pid != os.getpid()  # stamped in the forked worker
            assert lane.end_ns > lane.start_ns
            assert lane.attrs["queue_wait_s"] >= 0.0
            assert lane.attrs["hi"] > lane.attrs["lo"]
        # lanes cover every edge exactly once
        assert sum(s.items for s in lanes) == karate.n_edges

    @pytest.mark.timeout(120)
    def test_queue_wait_histogram_recorded(self, karate):
        from repro.obs import Tracer

        tr = Tracer()
        parallel_edge_scores(karate, n_workers=2, tracer=tr)
        snap = tr.metrics.snapshot()
        hist = snap["histograms"]["pool.queue_wait_ms"]
        lanes = [s for s in tr.spans if s.name == "worker_chunk"]
        assert hist["total"] == len(lanes)

    def test_inline_run_has_no_lanes(self, karate):
        from repro.obs import Tracer

        tr = Tracer()
        parallel_edge_scores(karate, n_workers=1, tracer=tr)
        assert not [s for s in tr.spans if s.name == "worker_chunk"]
        assert "pool.queue_wait_ms" not in tr.metrics.snapshot()["histograms"]

    @pytest.mark.timeout(120)
    def test_untraced_process_run_ships_no_flight_payloads(self, karate):
        # NullTracer → no metrics queue is even created; the run still works
        scores = parallel_edge_scores(karate, n_workers=2)
        assert len(scores) == karate.n_edges
