"""Unit tests for trace serialization."""

import json

import pytest

from repro.errors import ReproError
from repro.platform import (
    INTEL_E7_8870,
    KernelRecord,
    TraceRecorder,
    load_trace,
    save_trace,
    simulate_time,
)


@pytest.fixture
def recorder():
    rec = TraceRecorder()
    rec.record(KernelRecord(name="score", items=100, mem_words=700, atomics=3))
    rec.record(
        KernelRecord(
            name="match_pass",
            items=50,
            mem_words=250,
            locks=4,
            contention=0.25,
            chain_ops=7,
        )
    )
    rec.next_level()
    rec.record(KernelRecord(name="score", items=40, mem_words=280))
    return rec


class TestRoundtrip:
    def test_records_identical(self, tmp_path, recorder):
        path = tmp_path / "trace.json"
        save_trace(recorder, path)
        loaded = load_trace(path)
        assert loaded.records == recorder.records
        assert loaded.n_levels == recorder.n_levels

    def test_simulation_identical(self, tmp_path, recorder):
        path = tmp_path / "trace.json"
        save_trace(recorder, path)
        loaded = load_trace(path)
        a = simulate_time(recorder.records, INTEL_E7_8870, 8).total
        b = simulate_time(loaded.records, INTEL_E7_8870, 8).total
        assert a == b

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.json"
        save_trace(TraceRecorder(), path)
        loaded = load_trace(path)
        assert loaded.records == []

    def test_real_algorithm_trace(self, tmp_path, karate):
        from repro import detect_communities

        rec = TraceRecorder()
        detect_communities(karate, recorder=rec)
        path = tmp_path / "karate.json"
        save_trace(rec, path)
        assert load_trace(path).records == rec.records


class TestErrors:
    def test_not_a_trace(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"foo": 1}))
        with pytest.raises(ReproError, match="not a repro trace"):
            load_trace(path)

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(
            json.dumps({"format": "repro-trace", "version": 99, "records": []})
        )
        with pytest.raises(ReproError, match="version"):
            load_trace(path)

    def test_malformed_record(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(
            json.dumps(
                {
                    "format": "repro-trace",
                    "version": 1,
                    "records": [{"name": "k"}],  # missing items
                }
            )
        )
        with pytest.raises(ReproError, match="malformed"):
            load_trace(path)
