"""Guards around scorer output and matching pass budgets."""

import numpy as np
import pytest

from repro.core import detect_communities
from repro.core.matching import match_full_sweep, match_locally_dominant
from repro.core.scoring import ModularityScorer, WeightScorer, validate_scores
from repro.errors import (
    ConvergenceError,
    InvariantViolation,
    ScoreValidationError,
)


class TestValidateScores:
    def test_clean_scores_pass_through_unchanged(self):
        scores = np.array([0.5, -0.25, 0.0])
        assert validate_scores(scores) is scores

    def test_nan_raises(self):
        with pytest.raises(ScoreValidationError, match="non-finite"):
            validate_scores(np.array([0.1, np.nan, 0.2]))

    def test_inf_raises(self):
        with pytest.raises(ScoreValidationError):
            validate_scores(np.array([np.inf]))

    def test_error_names_scorer_count_and_first_index(self):
        with pytest.raises(
            ScoreValidationError, match=r"broken: 2 non-finite.*edge 1"
        ):
            validate_scores(
                np.array([0.0, np.nan, np.inf]), scorer="broken"
            )

    def test_is_an_invariant_violation(self):
        assert issubclass(ScoreValidationError, InvariantViolation)

    def test_builtin_scorers_are_clean(self, karate):
        # The wrapped return paths of the stock scorers must not trip.
        for scorer in (ModularityScorer(), WeightScorer()):
            assert np.isfinite(scorer.score(karate)).all()


class TestDriverScoreGuard:
    def test_nan_producing_scorer_fails_fast_in_detection(self, karate):
        class BrokenScorer:
            name = "broken"

            def score(self, graph, recorder=None):
                scores = np.zeros(graph.n_edges)
                scores[0] = np.nan
                return scores

        with pytest.raises(ScoreValidationError, match="broken"):
            detect_communities(karate, BrokenScorer())


class TestPassBudget:
    @pytest.mark.parametrize(
        "matcher", [match_locally_dominant, match_full_sweep]
    )
    def test_zero_budget_exhausts_immediately(self, karate, matcher):
        scores = WeightScorer().score(karate)
        with pytest.raises(ConvergenceError, match="pass budget"):
            matcher(karate, scores, max_passes=0)

    @pytest.mark.parametrize(
        "matcher", [match_locally_dominant, match_full_sweep]
    )
    def test_default_budget_suffices(self, karate, matcher):
        scores = WeightScorer().score(karate)
        result = matcher(karate, scores)
        assert result.passes <= 2 * karate.n_vertices + 4

    @pytest.mark.parametrize(
        "matcher", [match_locally_dominant, match_full_sweep]
    )
    def test_negative_budget_rejected(self, karate, matcher):
        scores = WeightScorer().score(karate)
        with pytest.raises(ValueError):
            matcher(karate, scores, max_passes=-1)
