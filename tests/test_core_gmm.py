"""The GMM-style cap-respecting matcher and its streaming siblings.

:func:`repro.core.outofcore.match_gmm_capped` replays the worklist
matcher shard-window-at-a-time; these tests pin its bit-identity to
:func:`~repro.core.matching.match_locally_dominant` on in-memory graphs
across shard caps, plus the registry exposure of the out-of-core
kernels (``gmm`` matcher, ``shard`` contractor) and the streaming
scorer/contractor parity on plain graphs.
"""

import numpy as np
import pytest

from repro.core.contraction import contract
from repro.core.matching import match_locally_dominant
from repro.core.outofcore import (
    contract_sharded,
    match_gmm_capped,
    score_sharded,
)
from repro.core.registry import create_kernel, kernel_names
from repro.core.scoring import ModularityScorer
from repro.generators import planted_partition_graph, rmat_graph


@pytest.fixture(scope="module")
def sbm():
    return planted_partition_graph(500, seed=5)


@pytest.fixture(scope="module")
def rmat():
    return rmat_graph(7, 8, seed=13)


def scored(graph):
    return ModularityScorer().score(graph)


def assert_matchings_identical(a, b):
    np.testing.assert_array_equal(a.partner, b.partner)
    np.testing.assert_array_equal(a.matched_edges, b.matched_edges)
    assert a.passes == b.passes
    assert a.failed_claims == b.failed_claims


class TestGmmMatcherParity:
    @pytest.mark.parametrize("fixture", ["sbm", "rmat"])
    def test_matches_worklist_bitwise(self, fixture, request):
        graph = request.getfixturevalue(fixture)
        scores = scored(graph)
        base = match_locally_dominant(graph, scores)
        gmm = match_gmm_capped(graph, scores)
        assert_matchings_identical(base, gmm)

    @pytest.mark.parametrize("shard_edges", [1, 7, 64, 10_000])
    def test_cap_never_changes_the_matching(self, sbm, shard_edges):
        scores = scored(sbm)
        base = match_locally_dominant(sbm, scores)
        capped = match_gmm_capped(sbm, scores, shard_edges=shard_edges)
        assert_matchings_identical(base, capped)

    def test_negative_scores_yield_empty_matching(self, sbm):
        scores = np.full(sbm.n_edges, -1.0)
        result = match_gmm_capped(sbm, scores)
        assert len(result.matched_edges) == 0

    def test_max_passes_guard(self, sbm):
        scores = scored(sbm)
        with pytest.raises(Exception):
            match_gmm_capped(sbm, scores, max_passes=0)


class TestStreamingKernelParity:
    def test_score_sharded_matches_scorer(self, sbm):
        base = scored(sbm)
        streamed = score_sharded(ModularityScorer(), sbm)
        np.testing.assert_array_equal(base, np.asarray(streamed))

    def test_contract_sharded_matches_bucket(self, sbm):
        scores = scored(sbm)
        matching = match_locally_dominant(sbm, scores)
        base_g, base_map = contract(sbm, matching)
        shard_g, shard_map = contract_sharded(sbm, matching)
        np.testing.assert_array_equal(base_map, shard_map)
        np.testing.assert_array_equal(base_g.edges.ei, shard_g.edges.ei)
        np.testing.assert_array_equal(base_g.edges.ej, shard_g.edges.ej)
        np.testing.assert_array_equal(base_g.edges.w, shard_g.edges.w)
        np.testing.assert_array_equal(
            base_g.self_weights, shard_g.self_weights
        )


class TestRegistry:
    def test_out_of_core_kernels_registered(self):
        assert "gmm" in kernel_names("matcher")
        assert "shard" in kernel_names("contractor")

    def test_created_kernels_are_the_streaming_functions(self):
        assert create_kernel("matcher", "gmm") is match_gmm_capped
        assert create_kernel("contractor", "shard") is contract_sharded
