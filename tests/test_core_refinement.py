"""Unit tests for local vertex-move refinement."""

import numpy as np
import pytest

from repro import detect_communities, modularity, refine_partition
from repro.generators import ring_of_cliques
from repro.graph import from_edges
from repro.metrics import Partition


class TestRefinement:
    def test_never_decreases_modularity(self, karate):
        res = detect_communities(karate)
        q0 = modularity(karate, res.partition)
        refined, moves = refine_partition(karate, res.partition)
        q1 = modularity(karate, refined)
        assert q1 >= q0 - 1e-12

    def test_fixes_a_misassigned_vertex(self):
        g = ring_of_cliques(3, 5)
        labels = np.repeat(np.arange(3), 5)
        labels[0] = 1  # misassign one clique member
        p = Partition.from_labels(labels)
        refined, moves = refine_partition(g, p)
        assert moves >= 1
        # Vertex 0 should return to its clique.
        assert refined.labels[0] == refined.labels[1]

    def test_stable_partition_untouched(self):
        g = ring_of_cliques(4, 5)
        p = Partition.from_labels(np.repeat(np.arange(4), 5))
        refined, moves = refine_partition(g, p)
        assert moves == 0
        assert refined is p

    def test_zero_sweeps(self, karate):
        p = Partition.singletons(34)
        refined, moves = refine_partition(karate, p, max_sweeps=0)
        assert moves == 0

    def test_negative_sweeps_rejected(self, karate):
        with pytest.raises(ValueError):
            refine_partition(karate, Partition.singletons(34), max_sweeps=-1)

    def test_size_mismatch(self, karate):
        with pytest.raises(ValueError):
            refine_partition(karate, Partition.singletons(3))

    def test_empty_graph(self):
        g = from_edges(np.empty(0, int), np.empty(0, int), n_vertices=2)
        p = Partition.singletons(2)
        refined, moves = refine_partition(g, p)
        assert moves == 0

    def test_labels_stay_dense(self, karate):
        res = detect_communities(karate)
        refined, _ = refine_partition(karate, res.partition)
        k = refined.n_communities
        assert set(np.unique(refined.labels)) == set(range(k))

    def test_converges_before_sweep_budget(self, karate):
        res = detect_communities(karate)
        a, _ = refine_partition(karate, res.partition, max_sweeps=50)
        b, _ = refine_partition(karate, a, max_sweeps=50)
        # Idempotent at the fixed point.
        assert a == b or modularity(karate, b) >= modularity(karate, a)
