"""Unit tests for the per-figure experiment definitions (tiny scale)."""

import pytest

from repro.bench.experiments import (
    ALL_PLATFORMS,
    FIG12_GRAPHS,
    figure1,
    figure2,
    figure3,
    table3,
)


@pytest.fixture(scope="module")
def fig1():
    return figure1(scale=0.25, seed=2)


class TestFigure1:
    def test_covers_graphs_and_platforms(self, fig1):
        assert set(fig1.sweeps) == set(FIG12_GRAPHS)
        for g in FIG12_GRAPHS:
            assert set(fig1.sweeps[g]) == {m.name for m in ALL_PLATFORMS}

    def test_three_runs_per_point(self, fig1):
        sr = fig1.sweeps["rmat-24-16"]["E7-8870"]
        assert all(len(ts) == 3 for ts in sr.times.values())
        assert 1 in sr.times
        assert 80 in sr.times

    def test_runs_attached(self, fig1):
        assert set(fig1.runs) == set(FIG12_GRAPHS)
        for run in fig1.runs.values():
            assert run.result.n_levels >= 1

    def test_figure2_same_shape(self):
        data = figure2(scale=0.25, seed=2)
        assert set(data.sweeps) == set(FIG12_GRAPHS)


class TestFigure3:
    def test_uk_two_platforms(self):
        data = figure3(scale=0.125, seed=2)
        sweeps = data.sweeps["uk-2007-05"]
        assert set(sweeps) == {"E7-8870", "XMT2"}
        assert sweeps["XMT2"].machine.max_parallelism == 64


class TestTable3:
    def test_all_cells_present(self):
        results = table3(scale=0.125, seed=2)
        assert set(results) == {
            "rmat-24-16",
            "soc-LiveJournal1",
            "uk-2007-05",
        }
        for sweeps in results.values():
            assert len(sweeps) >= 2
