"""Live-telemetry suite: sampler, status heartbeat, watch, memprof,
and the guardian's predictive (ramp-rate) spill.

Covers the four contracts the live tier makes:

* **Zero overhead off.**  The default ``NULL_TELEMETRY`` path adds no
  thread, no counter samples, and no new record kinds to the trace —
  the JSONL byte-output carries exactly the record kinds it carried
  before the live tier existed.
* **Samples are well-formed on.**  Counter series carry monotonically
  non-decreasing timestamps, land in ``read_trace().samples`` and the
  Perfetto counter tracks, and the status.json heartbeat round-trips
  through ``read_status`` / ``render_status`` (what ``repro watch``
  shows).
* **The thread never outlives the run.**  ``stop()`` is idempotent and
  joins on success, abort, and exception paths.
* **Prediction beats the hard breach.**  A synthetic RSS ramp through
  the sampler's ring buffer makes the guardian take the spill rung
  while actual RSS is still under budget.
"""

import json

import pytest

from repro.core import detect_communities
from repro.errors import GuardianBreach, ReproError
from repro.obs import Tracer, read_trace, write_trace
from repro.obs.memprof import (
    NULL_MEMPROF,
    NullMemoryProfiler,
    PhaseMemoryProfiler,
    as_memprof,
)
from repro.obs.perfetto import to_chrome_trace
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    PHASE_IDS,
    NullTelemetry,
    TelemetrySampler,
    _reset_worker_heartbeats,
    as_telemetry,
    read_status,
    record_worker_heartbeat,
    render_status,
    workers_alive,
)
from repro.resilience.guardian import RunGuardian


@pytest.fixture(autouse=True)
def fresh_heartbeats():
    _reset_worker_heartbeats()
    yield
    _reset_worker_heartbeats()


# ----------------------------------------------------------- null path
class TestNullPath:
    def test_defaults_are_null(self):
        assert as_telemetry(None) is NULL_TELEMETRY
        assert as_memprof(None) is NULL_MEMPROF
        assert not NULL_TELEMETRY.enabled
        assert not NULL_MEMPROF.enabled

    def test_null_hooks_are_noops(self):
        t = NullTelemetry()
        t.bind_run(None)
        t.publish_phase("score", 0)
        t.publish_progress(3, 100)
        assert t.start() is t
        t.stop(state="failed")
        assert t.sample_once() == {}
        assert t.stats() == {}
        assert t.ramp_mb_s() is None
        with t:
            pass

    def test_untelemetered_run_records_no_samples(self, karate):
        tracer = Tracer()
        detect_communities(karate, tracer=tracer)
        assert list(tracer.counter_samples) == []

    def test_untelemetered_trace_bytes_carry_no_new_kinds(
        self, karate, tmp_path
    ):
        # The zero-overhead contract: with telemetry off, the JSONL
        # output contains exactly the pre-live-tier record kinds — no
        # counter_sample lines, nothing else new.
        tracer = Tracer()
        detect_communities(karate, tracer=tracer)
        path = tmp_path / "t.jsonl"
        write_trace(tracer, path)
        kinds = {
            json.loads(line)["event"]
            for line in path.read_text().splitlines()
        }
        assert "counter_sample" not in kinds
        assert kinds <= {
            "header", "span", "counter", "gauge", "histogram", "end"
        }
        data = read_trace(path)
        assert data.samples == []
        assert data.skipped_records == 0


# ------------------------------------------------------------- sampler
class TestSampler:
    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="interval_s"):
            TelemetrySampler(interval_s=0.0)
        with pytest.raises(ValueError, match="ring_size"):
            TelemetrySampler(ring_size=1)

    def test_sample_once_records_expected_series(self):
        tracer = Tracer()
        sampler = TelemetrySampler(tracer, interval_s=0.01)
        sampler.publish_phase("match", 2)
        status = sampler.sample_once()
        names = {s.name for s in tracer.counter_samples}
        assert {"gc_collections", "workers_alive", "phase_id"} <= names
        # the Linux CI box always has an RSS probe; tolerate its absence
        if status["rss_mb"] is not None:
            assert "rss_anon_mb" in names
        by_name = {s.name: s for s in tracer.counter_samples}
        assert by_name["phase_id"].value == PHASE_IDS["match"]
        assert by_name["level"].value == 2
        assert status["phase"] == "match"
        assert status["level"] == 2
        assert status["n_samples"] == sampler.n_samples == 1

    def test_timestamps_are_monotonic_per_series(self):
        tracer = Tracer()
        sampler = TelemetrySampler(tracer, interval_s=0.01)
        for _ in range(5):
            sampler.sample_once()
        series: dict = {}
        for s in tracer.counter_samples:
            series.setdefault(s.name, []).append(s.ts_ns)
        assert series
        for name, stamps in series.items():
            assert stamps == sorted(stamps), name

    def test_explicit_now_ns_is_honoured(self):
        tracer = Tracer()
        sampler = TelemetrySampler(tracer, interval_s=0.01)
        sampler.sample_once(now_ns=12345)
        assert all(s.ts_ns == 12345 for s in tracer.counter_samples)

    def test_ring_and_peak_track_rss(self):
        sampler = TelemetrySampler(Tracer(), interval_s=0.01, ring_size=3)
        for i in range(5):
            sampler.sample_once(now_ns=i * 10**9)
        if sampler.peak_rss_mb is None:  # pragma: no cover - no probe
            pytest.skip("no RSS probe on this platform")
        assert len(sampler.ring) == 3  # bounded
        assert sampler.peak_rss_mb >= max(r for _, r in sampler.ring) - 1e-9

    def test_ramp_over_synthetic_ring(self):
        sampler = TelemetrySampler(Tracer(), interval_s=0.1)
        # 100 MiB over 2 s → 50 MiB/s
        sampler.ring.append((0, 100.0))
        sampler.ring.append((2 * 10**9, 200.0))
        assert sampler.ramp_mb_s() == pytest.approx(50.0)
        # shrinking is negative, never clamped
        sampler.ring.clear()
        sampler.ring.append((0, 200.0))
        sampler.ring.append((10**9, 150.0))
        assert sampler.ramp_mb_s() == pytest.approx(-50.0)

    def test_ramp_needs_two_samples(self):
        sampler = TelemetrySampler(Tracer(), interval_s=0.1)
        assert sampler.ramp_mb_s() is None
        sampler.ring.append((0, 100.0))
        assert sampler.ramp_mb_s() is None

    def test_stats_block(self):
        sampler = TelemetrySampler(Tracer(), interval_s=0.05)
        sampler.sample_once()
        stats = sampler.stats()
        assert stats["n_samples"] == 1
        assert stats["interval_s"] == 0.05
        assert "peak_rss_mb" in stats and "max_ramp_mb_s" in stats

    def test_null_tracer_still_updates_status(self, tmp_path):
        status_path = tmp_path / "status.json"
        sampler = TelemetrySampler(
            None, interval_s=0.01, status_path=status_path
        )
        sampler.sample_once()
        assert status_path.exists()
        assert read_status(status_path)["n_samples"] == 1


# ----------------------------------------------------------- lifecycle
class TestLifecycle:
    def test_start_stop_joins_thread(self):
        sampler = TelemetrySampler(Tracer(), interval_s=0.005)
        sampler.start()
        assert sampler.running
        sampler.stop()
        assert not sampler.running
        # final stop snapshot guarantees at least one sample
        assert sampler.n_samples >= 1

    def test_stop_is_idempotent_and_safe_unstarted(self):
        sampler = TelemetrySampler(Tracer(), interval_s=0.005)
        sampler.stop()
        sampler.stop()
        assert not sampler.running

    def test_start_is_idempotent(self):
        sampler = TelemetrySampler(Tracer(), interval_s=0.005)
        try:
            sampler.start()
            first = sampler._thread
            sampler.start()
            assert sampler._thread is first
        finally:
            sampler.stop()

    def test_thread_joins_on_exception(self, tmp_path):
        # Satellite contract: the sampler thread always joins when the
        # run it instruments dies, and the heartbeat says "failed".
        status_path = tmp_path / "status.json"
        sampler = TelemetrySampler(
            Tracer(), interval_s=0.005, status_path=status_path
        )
        with pytest.raises(RuntimeError, match="boom"):
            with sampler:
                assert sampler.running
                raise RuntimeError("boom")
        assert not sampler.running
        assert read_status(status_path)["state"] == "failed"

    def test_stop_state_override(self, tmp_path):
        status_path = tmp_path / "s.json"
        sampler = TelemetrySampler(
            Tracer(), interval_s=0.005, status_path=status_path
        ).start()
        sampler.stop(state="failed")
        assert read_status(status_path)["state"] == "failed"


# --------------------------------------------------- worker heartbeats
class TestWorkerHeartbeats:
    def test_liveness_window(self):
        record_worker_heartbeat(111)
        record_worker_heartbeat(222)
        assert workers_alive() == 2
        # shrink the window to zero-ish: everything is stale
        assert workers_alive(window_s=0.0) in (0, 1, 2)  # racy lower bound
        assert workers_alive(window_s=1e-9, now_ns=2**62) == 0

    def test_rerecord_refreshes(self):
        record_worker_heartbeat(333)
        record_worker_heartbeat(333)
        assert workers_alive() == 1


# ------------------------------------------------------ status + watch
class TestStatusAndWatch:
    def make_status(self, tmp_path, **overrides):
        sampler = TelemetrySampler(
            Tracer(),
            interval_s=0.05,
            status_path=tmp_path,  # directory form
            meta={"graph": "toy"},
        )
        sampler.publish_phase("contract", 3)
        sampler.publish_progress(3, 1234)
        status = sampler.sample_once()
        path = tmp_path / "status.json"
        if overrides:
            status.update(overrides)
            path.write_text(json.dumps(status))
        return path, status

    def test_directory_status_path(self, tmp_path):
        path, _ = self.make_status(tmp_path)
        assert path.exists()
        assert read_status(tmp_path)["phase"] == "contract"

    def test_read_status_rejects_junk(self, tmp_path):
        missing = tmp_path / "nope.json"
        with pytest.raises(ReproError, match="cannot read"):
            read_status(missing)
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ReproError, match="not valid JSON"):
            read_status(bad)
        other = tmp_path / "other.json"
        other.write_text(json.dumps({"schema": "something-else"}))
        with pytest.raises(ReproError, match="not a repro-status"):
            read_status(other)

    def test_render_contains_key_fields(self, tmp_path):
        _, status = self.make_status(tmp_path)
        view = render_status(status, now_unix=status["updated_unix"])
        assert "contract (level 3)" in view
        assert "3 level(s) done, 1234 communities" in view
        assert "graph=toy" in view
        assert "samples" in view

    def test_stale_heartbeat_flagged(self, tmp_path):
        _, status = self.make_status(tmp_path)
        status["state"] = "running"
        view = render_status(
            status, now_unix=status["updated_unix"] + 600.0
        )
        assert "STALE" in view

    def test_fresh_running_not_stale(self, tmp_path):
        _, status = self.make_status(tmp_path)
        status["state"] = "running"
        view = render_status(status, now_unix=status["updated_unix"])
        assert "STALE" not in view
        assert "[RUNNING]" in view

    def test_watch_once_renders_fixture(self, tmp_path, capsys):
        from repro.cli import main

        path, _ = self.make_status(tmp_path)
        assert main(["watch", str(path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro run" in out
        assert "contract (level 3)" in out

    def test_watch_once_accepts_directory(self, tmp_path, capsys):
        from repro.cli import main

        self.make_status(tmp_path)
        assert main(["watch", str(tmp_path), "--once"]) == 0
        assert "repro run" in capsys.readouterr().out

    def test_watch_once_missing_status_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["watch", str(tmp_path / "gone"), "--once"]) == 2
        assert "error:" in capsys.readouterr().err


# --------------------------------------------------- engine integration
class TestEngineIntegration:
    def test_run_publishes_phases_and_samples(self, karate, tmp_path):
        tracer = Tracer()
        sampler = TelemetrySampler(
            tracer, interval_s=0.005, status_path=tmp_path / "status.json"
        )
        with sampler:
            result = detect_communities(
                karate, tracer=tracer, telemetry=sampler
            )
        assert result.n_levels >= 1
        # the engine published terminal state before the final snapshot
        status = read_status(tmp_path / "status.json")
        assert status["phase"] == "done"
        assert status["state"] == "stopped"
        assert status["levels_done"] == result.n_levels
        assert sampler.n_samples >= 1
        names = {s.name for s in tracer.counter_samples}
        assert "gc_collections" in names

    def test_samples_round_trip_through_trace(self, karate, tmp_path):
        tracer = Tracer()
        sampler = TelemetrySampler(tracer, interval_s=0.005)
        with sampler:
            detect_communities(karate, tracer=tracer, telemetry=sampler)
        path = tmp_path / "t.jsonl"
        write_trace(tracer, path)
        data = read_trace(path)
        assert len(data.samples) == len(tracer.counter_samples) > 0
        gc_series = data.sample_series("gc_collections")
        assert gc_series
        assert [s.ts_ns for s in gc_series] == sorted(
            s.ts_ns for s in gc_series
        )

    def test_perfetto_counter_tracks(self, karate):
        tracer = Tracer()
        sampler = TelemetrySampler(tracer, interval_s=0.005)
        with sampler:
            detect_communities(karate, tracer=tracer, telemetry=sampler)
        doc = to_chrome_trace(
            list(tracer.spans), samples=list(tracer.counter_samples)
        )
        counters = [e for e in doc["traceEvents"] if e.get("ph") == "C"]
        assert counters
        assert any("gc_collections" in e["name"] for e in counters)
        assert all(e["cat"] == "telemetry" for e in counters)
        assert all(e["ts"] >= 0 for e in counters)
        assert all("value" in e["args"] for e in counters)


# ------------------------------------------------------ predictive spill
@pytest.mark.guardian
class TestPredictiveSpill:
    def test_ramp_spills_before_budget_crossed(self, tmp_path):
        # Stuff the sampler's ring with a steep synthetic ramp while
        # actual RSS sits far below the budget: only the ramp-rate
        # extrapolation can fire, and it must land on the spill rung.
        from repro.generators import planted_partition_graph
        from repro.resilience.guardian import _rss_mb

        graph = planted_partition_graph(400, seed=3)
        baseline = detect_communities(graph)
        rss = _rss_mb()
        if rss is None:  # pragma: no cover - no probe on this platform
            pytest.skip("no RSS probe on this platform")
        budget = rss + 10_000.0  # unreachable by the hard check
        sampler = TelemetrySampler(Tracer(), interval_s=0.1)
        # +2000 MiB/s over the window: predicted crossing in < 10 s
        sampler.ring.append((0, rss))
        sampler.ring.append((10**9, rss + 2000.0))
        guardian = RunGuardian(
            "sample",
            memory_budget_mb=budget,
            spill_dir=tmp_path,
            ramp_horizon_s=10.0,
        )
        with pytest.warns(GuardianBreach, match="climbing"):
            result = detect_communities(
                graph, guardian=guardian, telemetry=sampler
            )
        assert result.recovery.spills == 1
        assert any(
            "memory_ramp" in entry for entry in result.recovery.ladder
        )
        # degradation, not corruption: identical dendrogram
        assert result.partition.n_communities == (
            baseline.partition.n_communities
        )
        assert (
            result.partition.labels == baseline.partition.labels
        ).all()
        # the hard breach never fired — RSS stayed under budget
        assert not any(
            "memory_budget" in entry for entry in result.recovery.ladder
        )

    def test_flat_ramp_never_breaches(self, tmp_path):
        from repro.generators import planted_partition_graph
        from repro.resilience.guardian import _rss_mb

        graph = planted_partition_graph(300, seed=4)
        rss = _rss_mb()
        if rss is None:  # pragma: no cover - no probe on this platform
            pytest.skip("no RSS probe on this platform")
        sampler = TelemetrySampler(Tracer(), interval_s=0.1)
        sampler.ring.append((0, rss))
        sampler.ring.append((10**9, rss))  # flat
        guardian = RunGuardian(
            "sample",
            memory_budget_mb=rss + 10_000.0,
            spill_dir=tmp_path,
        )
        result = detect_communities(
            graph, guardian=guardian, telemetry=sampler
        )
        assert result.recovery.spills == 0
        assert result.recovery.guardian_breaches == 0

    def test_no_telemetry_means_no_ramp_breach(self, tmp_path):
        # Without a sampler the predictive check is inert even with a
        # ludicrous horizon — the ring is the only data source.
        from repro.generators import planted_partition_graph
        from repro.resilience.guardian import _rss_mb

        graph = planted_partition_graph(300, seed=5)
        rss = _rss_mb()
        if rss is None:  # pragma: no cover - no probe on this platform
            pytest.skip("no RSS probe on this platform")
        guardian = RunGuardian(
            "sample",
            memory_budget_mb=rss + 10_000.0,
            spill_dir=tmp_path,
            ramp_horizon_s=1e9,
        )
        result = detect_communities(graph, guardian=guardian)
        assert result.recovery.guardian_breaches == 0

    def test_ramp_horizon_validation(self):
        with pytest.raises(ValueError, match="ramp_horizon_s"):
            RunGuardian("off", ramp_horizon_s=0.0)


# -------------------------------------------------------------- memprof
class TestMemprof:
    def test_phases_record_net_and_peak(self):
        prof = PhaseMemoryProfiler(top_sites=3)
        with prof:
            with prof.phase("score", 0):
                keep = [bytearray(256 * 1024) for _ in range(8)]
            with prof.phase("score", 1):
                del keep
        report = prof.report()
        assert report["tool"] == "tracemalloc"
        score = report["phases"]["score"]
        assert score["calls"] == 2
        assert score["peak_bytes"] > 0
        assert isinstance(score["top_sites"], list)
        for site in score["top_sites"]:
            assert ":" in site["site"]

    def test_top_sites_zero_disables_snapshots(self):
        prof = PhaseMemoryProfiler(top_sites=0)
        with prof:
            with prof.phase("match"):
                _ = bytearray(64 * 1024)
        report = prof.report()
        assert report["phases"]["match"]["top_sites"] == []

    def test_stop_returns_report_and_releases_tracemalloc(self):
        import tracemalloc

        assert not tracemalloc.is_tracing()
        prof = PhaseMemoryProfiler().start()
        assert tracemalloc.is_tracing()
        report = prof.stop()
        assert not tracemalloc.is_tracing()
        assert report["tool"] == "tracemalloc"

    def test_respects_foreign_tracing(self):
        import tracemalloc

        tracemalloc.start()
        try:
            prof = PhaseMemoryProfiler().start()
            prof.stop()
            assert tracemalloc.is_tracing()  # not ours to stop
        finally:
            tracemalloc.stop()

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="top_sites"):
            PhaseMemoryProfiler(top_sites=-1)
        with pytest.raises(ValueError, match="frames"):
            PhaseMemoryProfiler(frames=0)

    def test_null_profiler_shares_probe(self):
        null = NullMemoryProfiler()
        assert null.phase("a") is null.phase("b")
        assert null.stop() == {}

    def test_engine_attribution_flow(self, karate):
        from repro.obs.attribution import attribute_run

        tracer = Tracer()
        prof = PhaseMemoryProfiler(top_sites=2)
        with prof:
            detect_communities(karate, tracer=tracer, memprof=prof)
        report = prof.report()
        assert {"score", "match", "contract"} <= set(report["phases"])
        attr = attribute_run(list(tracer.spans), memory=report)
        assert attr["memory"] is report
        # memory=None keeps the block out entirely
        assert "memory" not in attribute_run(list(tracer.spans))


# --------------------------------------------------- ledger trend feed
class TestDatedLedgers:
    def make_ledger(self, tmp_path, name="smoke"):
        from repro.bench.ledger import Repetition, RunRecord, write_ledger

        record = RunRecord(
            name=name,
            created_unix=1.0,
            repetitions=[
                Repetition(
                    total_s=0.5,
                    telemetry={"n_samples": 3, "peak_rss_mb": 10.0},
                )
            ],
        )
        return write_ledger(record, tmp_path / f"BENCH_{name}.json")

    def test_repetition_telemetry_round_trips(self, tmp_path):
        from repro.bench.ledger import read_ledger

        path = self.make_ledger(tmp_path)
        rep = read_ledger(path).repetitions[0]
        assert rep.telemetry == {"n_samples": 3, "peak_rss_mb": 10.0}

    def test_append_and_prune(self, tmp_path):
        from repro.bench.smoke import append_dated_ledger

        src = self.make_ledger(tmp_path)
        feed = tmp_path / "ledgers"
        for day in ("2026-01-01", "2026-01-02", "2026-01-03"):
            append_dated_ledger(src, feed, keep=2, date=day)
        names = sorted(p.name for p in feed.glob("*.json"))
        assert names == [
            "BENCH_smoke-2026-01-02.json",
            "BENCH_smoke-2026-01-03.json",
        ]

    def test_same_day_overwrites(self, tmp_path):
        from repro.bench.smoke import append_dated_ledger

        src = self.make_ledger(tmp_path)
        feed = tmp_path / "ledgers"
        a = append_dated_ledger(src, feed, date="2026-02-02")
        b = append_dated_ledger(src, feed, date="2026-02-02")
        assert a == b
        assert len(list(feed.glob("*.json"))) == 1

    def test_keep_validation(self, tmp_path):
        from repro.bench.smoke import append_dated_ledger

        src = self.make_ledger(tmp_path)
        with pytest.raises(ValueError, match="keep"):
            append_dated_ledger(src, tmp_path / "feed", keep=0)
