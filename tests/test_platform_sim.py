"""Unit tests for the execution-time simulator: monotonicity, the paper's
qualitative platform contrasts, and the sweep API."""

import numpy as np
import pytest

from repro.errors import PlatformModelError
from repro.platform import (
    CRAY_XMT,
    CRAY_XMT2,
    INTEL_E7_8870,
    INTEL_X5570,
    KernelRecord,
    simulate_sweep,
    simulate_time,
)


def big_loop(items=1_000_000, **kw):
    defaults = dict(name="k", items=items, mem_words=5 * items)
    defaults.update(kw)
    return KernelRecord(**defaults)


class TestBasics:
    def test_positive_time(self):
        bd = simulate_time([big_loop()], INTEL_E7_8870, 1)
        assert bd.total > 0

    def test_kernel_breakdown_sums(self):
        recs = [big_loop(name="a"), big_loop(name="b")]
        bd = simulate_time(recs, INTEL_E7_8870, 4)
        assert bd.total == pytest.approx(sum(bd.by_kernel.values()))
        assert bd.fraction("a") + bd.fraction("b") == pytest.approx(1.0)

    def test_fraction_prefix(self):
        recs = [big_loop(name="contract_sort"), big_loop(name="score")]
        bd = simulate_time(recs, INTEL_E7_8870, 4)
        assert bd.fraction_prefix("contract") == pytest.approx(
            bd.fraction("contract_sort")
        )

    def test_parallelism_validated(self):
        with pytest.raises(PlatformModelError):
            simulate_time([big_loop()], INTEL_X5570, 17)

    def test_empty_trace(self):
        bd = simulate_time([], INTEL_E7_8870, 4)
        assert bd.total == 0.0


class TestScalingShape:
    def test_intel_time_decreases_with_threads(self):
        recs = [big_loop()]
        times = [
            simulate_time(recs, INTEL_E7_8870, p).total for p in (1, 2, 4, 8)
        ]
        assert all(b < a for a, b in zip(times, times[1:]))

    def test_intel_hyperthreads_help_less_than_physical(self):
        recs = [big_loop(items=10_000_000, mem_words=0)]
        t20 = simulate_time(recs, INTEL_E7_8870, 20).total
        t40 = simulate_time(recs, INTEL_E7_8870, 40).total
        t80 = simulate_time(recs, INTEL_E7_8870, 80).total
        gain_physical = t20 / t40
        gain_ht = t40 / t80
        assert gain_physical > gain_ht > 1.0

    def test_intel_bandwidth_ceiling(self):
        # A purely memory-bound loop saturates; compute-bound keeps scaling.
        mem = [KernelRecord(name="m", items=1, mem_words=10_000_000)]
        t40 = simulate_time(mem, INTEL_E7_8870, 40).total
        t80 = simulate_time(mem, INTEL_E7_8870, 80).total
        assert t80 >= t40 * 0.99

    def test_xmt_small_loop_stops_scaling(self):
        # Fewer items than one processor's saturation point: no speedup.
        small = [KernelRecord(name="s", items=1000, mem_words=5000)]
        t1 = simulate_time(small, CRAY_XMT2, 1).total
        t64 = simulate_time(small, CRAY_XMT2, 64).total
        assert t64 >= t1 * 0.5  # little to no gain

    def test_xmt_large_loop_scales(self):
        large = [big_loop(items=20_000_000, mem_words=0)]
        t1 = simulate_time(large, CRAY_XMT2, 1).total
        t64 = simulate_time(large, CRAY_XMT2, 64).total
        assert t1 / t64 > 20

    def test_xmt2_faster_than_xmt(self):
        recs = [big_loop()]
        t_xmt = simulate_time(recs, CRAY_XMT, 64).total
        t_xmt2 = simulate_time(recs, CRAY_XMT2, 64).total
        assert t_xmt2 < t_xmt

    def test_intel_single_thread_beats_xmt_single_proc(self):
        recs = [big_loop()]
        assert (
            simulate_time(recs, INTEL_E7_8870, 1).total
            < simulate_time(recs, CRAY_XMT, 1).total
        )


class TestContentionModel:
    def test_hot_contention_cripples_openmp_not_xmt(self):
        hot = [
            big_loop(atomics=2_000_000, contention=0.95),
        ]
        cold = [big_loop(atomics=2_000_000, contention=0.05)]
        e7_hot = simulate_time(hot, INTEL_E7_8870, 40).total
        e7_cold = simulate_time(cold, INTEL_E7_8870, 40).total
        xmt_hot = simulate_time(hot, CRAY_XMT, 64).total
        xmt_cold = simulate_time(cold, CRAY_XMT, 64).total
        assert e7_hot / e7_cold > 5 * (xmt_hot / xmt_cold)

    def test_openmp_hot_contention_worsens_with_cores(self):
        hot = [big_loop(atomics=2_000_000, contention=0.95, mem_words=0)]
        t4 = simulate_time(hot, INTEL_E7_8870, 4).total
        t40 = simulate_time(hot, INTEL_E7_8870, 40).total
        assert t40 > t4  # adding cores makes it slower

    def test_chain_ops_hurt_openmp_only(self):
        chains = [big_loop(mem_words=0, chain_ops=1_000_000)]
        plain = [big_loop(mem_words=0)]
        e7_ratio = (
            simulate_time(chains, INTEL_E7_8870, 40).total
            / simulate_time(plain, INTEL_E7_8870, 40).total
        )
        xmt_ratio = (
            simulate_time(chains, CRAY_XMT, 64).total
            / simulate_time(plain, CRAY_XMT, 64).total
        )
        assert e7_ratio > 5.0
        assert xmt_ratio < 2.5


class TestSweep:
    def test_default_points(self):
        sweep = simulate_sweep([big_loop()], CRAY_XMT2, n_runs=3, seed=0)
        assert 1 in sweep and 64 in sweep
        assert all(len(ts) == 3 for ts in sweep.values())

    def test_explicit_points(self):
        sweep = simulate_sweep(
            [big_loop()], INTEL_X5570, [1, 2, 16], n_runs=2, seed=0
        )
        assert set(sweep) == {1, 2, 16}

    def test_noise_reproducible(self):
        a = simulate_sweep([big_loop()], CRAY_XMT2, [1, 8], seed=5)
        b = simulate_sweep([big_loop()], CRAY_XMT2, [1, 8], seed=5)
        assert a == b

    def test_noise_varies_runs(self):
        sweep = simulate_sweep([big_loop()], CRAY_XMT2, [8], n_runs=3, seed=1)
        assert len(set(sweep[8])) > 1

    def test_n_runs_validated(self):
        with pytest.raises(ValueError):
            simulate_sweep([big_loop()], CRAY_XMT2, [1], n_runs=0)
