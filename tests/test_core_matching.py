"""Unit tests for the matching kernels."""

import numpy as np
import pytest

from repro.core import (
    ModularityScorer,
    WeightScorer,
    is_maximal_matching,
    match_full_sweep,
    match_locally_dominant,
    matching_weight,
)
from repro.graph import from_edges
from repro.platform import TraceRecorder
from repro.types import NO_VERTEX


def weights_of(graph):
    return graph.edges.w.astype(float)


class TestBasics:
    def test_single_edge(self):
        g = from_edges(np.array([0]), np.array([1]))
        res = match_locally_dominant(g, np.array([1.0]))
        assert res.n_pairs == 1
        assert res.partner[0] == 1 and res.partner[1] == 0

    def test_triangle_matches_one_pair(self):
        g = from_edges(np.array([0, 0, 1]), np.array([1, 2, 2]))
        # Score edges by endpoints: {0,1} highest (edge order in the store
        # is parity-canonical, not input order).
        score_of = {frozenset((0, 1)): 3.0, frozenset((0, 2)): 2.0,
                    frozenset((1, 2)): 1.0}
        e = g.edges
        scores = np.array([
            score_of[frozenset((int(e.ei[k]), int(e.ej[k])))]
            for k in range(e.n_edges)
        ])
        res = match_locally_dominant(g, scores)
        assert res.n_pairs == 1
        # Highest-scored edge {0,1} wins.
        assert res.partner[0] == 1
        assert res.partner[2] == NO_VERTEX

    def test_path_picks_heavy_middle(self):
        # 0-1 (1), 1-2 (5), 2-3 (1): the heavy middle edge dominates.
        g = from_edges(np.array([0, 1, 2]), np.array([1, 2, 3]),
                       np.array([1.0, 5.0, 1.0]))
        scores = weights_of(g)
        res = match_locally_dominant(g, scores)
        assert res.n_pairs == 1
        assert res.partner[1] == 2

    def test_nonpositive_scores_excluded(self):
        g = from_edges(np.array([0, 1]), np.array([1, 2]))
        res = match_locally_dominant(g, np.array([-1.0, 0.0]))
        assert res.n_pairs == 0
        assert np.all(res.partner == NO_VERTEX)

    def test_empty_graph(self):
        g = from_edges(np.empty(0, int), np.empty(0, int), n_vertices=3)
        res = match_locally_dominant(g, np.empty(0))
        assert res.n_pairs == 0
        assert res.passes == 0

    def test_score_length_checked(self):
        g = from_edges(np.array([0]), np.array([1]))
        with pytest.raises(ValueError):
            match_locally_dominant(g, np.array([1.0, 2.0]))


class TestMaximality:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_graphs_maximal(self, random_graph_factory, seed):
        g = random_graph_factory(n=40, m=120, seed=seed)
        scores = ModularityScorer().score(g)
        res = match_locally_dominant(g, scores)
        assert is_maximal_matching(g, scores, res)

    def test_weight_scorer_maximal(self, karate):
        scores = WeightScorer().score(karate)
        res = match_locally_dominant(karate, scores)
        assert is_maximal_matching(karate, scores, res)

    def test_half_approximation(self, random_graph_factory):
        """Greedy matching weight >= 1/2 of max weight matching."""
        import networkx as nx

        g = random_graph_factory(n=16, m=40, seed=3)
        scores = weights_of(g)
        res = match_locally_dominant(g, scores)
        nxg = nx.Graph()
        e = g.edges
        for k in range(e.n_edges):
            nxg.add_edge(int(e.ei[k]), int(e.ej[k]), weight=float(e.w[k]))
        opt = nx.max_weight_matching(nxg)
        opt_weight = sum(nxg[u][v]["weight"] for u, v in opt)
        assert matching_weight(scores, res) >= 0.5 * opt_weight - 1e-9


class TestInvolution:
    @pytest.mark.parametrize("seed", range(4))
    def test_partner_is_symmetric_involution(self, random_graph_factory, seed):
        g = random_graph_factory(n=30, m=90, seed=seed)
        res = match_locally_dominant(g, weights_of(g))
        matched = np.flatnonzero(res.partner != NO_VERTEX)
        np.testing.assert_array_equal(res.partner[res.partner[matched]], matched)
        assert np.all(res.partner[matched] != matched)

    def test_matched_edges_consistent(self, karate):
        scores = ModularityScorer().score(karate)
        res = match_locally_dominant(karate, scores)
        e = karate.edges
        for k in res.matched_edges.tolist():
            assert res.partner[e.ei[k]] == e.ej[k]
            assert res.partner[e.ej[k]] == e.ei[k]


class TestLegacyEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    def test_same_matching(self, random_graph_factory, seed):
        g = random_graph_factory(n=35, m=100, seed=seed)
        scores = ModularityScorer().score(g)
        new = match_locally_dominant(g, scores)
        old = match_full_sweep(g, scores)
        np.testing.assert_array_equal(new.partner, old.partner)
        np.testing.assert_array_equal(new.matched_edges, old.matched_edges)

    def test_legacy_records_more_scan_items(self, karate):
        scores = ModularityScorer().score(karate)
        rec_new, rec_old = TraceRecorder(), TraceRecorder()
        match_locally_dominant(karate, scores, rec_new)
        match_full_sweep(karate, scores, rec_old)
        assert rec_old.total_items("match_pass") >= rec_new.total_items(
            "match_pass"
        )

    def test_legacy_records_higher_contention(self, random_graph_factory):
        g = random_graph_factory(n=60, m=300, seed=1)
        scores = WeightScorer().score(g)
        rec_new, rec_old = TraceRecorder(), TraceRecorder()
        match_locally_dominant(g, scores, rec_new)
        match_full_sweep(g, scores, rec_old)
        mean = lambda rc: np.mean([r.contention for r in rc.by_name("match_pass")])
        assert mean(rec_old) > mean(rec_new)


class TestTies:
    def test_equal_scores_still_maximal(self):
        # A path of identical scores: priorities must break ties.
        n = 50
        i = np.arange(n - 1)
        g = from_edges(i, i + 1)
        scores = np.ones(n - 1)
        res = match_locally_dominant(g, scores)
        assert is_maximal_matching(g, scores, res)
        assert res.n_pairs >= (n - 1) // 3

    def test_tie_chain_passes_logarithmic(self):
        # The hashed tie-break must avoid O(n) passes on tie chains.
        n = 1000
        i = np.arange(n - 1)
        g = from_edges(i, i + 1)
        res = match_locally_dominant(g, np.ones(n - 1))
        assert res.passes <= 40

    def test_deterministic(self, karate):
        scores = ModularityScorer().score(karate)
        a = match_locally_dominant(karate, scores)
        b = match_locally_dominant(karate, scores)
        np.testing.assert_array_equal(a.partner, b.partner)


class TestStarGraph:
    def test_star_one_pair(self, star):
        scores = WeightScorer().score(star)
        res = match_locally_dominant(star, scores)
        assert res.n_pairs == 1  # hub can match only one leaf
        assert is_maximal_matching(star, scores, res)

    def test_star_passes_small(self, star):
        res = match_locally_dominant(star, WeightScorer().score(star))
        assert res.passes <= 2


class TestApproximationCertificate:
    def test_upper_bounds_achieved(self, karate):
        from repro.core import approximation_certificate

        scores = ModularityScorer().score(karate)
        res = match_locally_dominant(karate, scores)
        achieved, upper = approximation_certificate(karate, scores, res)
        assert 0 < achieved <= upper

    def test_half_guarantee_holds(self, random_graph_factory):
        from repro.core import approximation_certificate

        for seed in range(5):
            g = random_graph_factory(n=30, m=90, seed=seed)
            scores = weights_of(g)
            res = match_locally_dominant(g, scores)
            achieved, upper = approximation_certificate(g, scores, res)
            # achieved >= optimum/2 >= ... but also certificate vs true
            # optimum: achieved must be at least half of ANY upper bound
            # that is itself >= optimum only when bound is tight; check
            # the provable relation achieved >= upper/2 - epsilon fails
            # only if the bound were loose, so assert the guaranteed
            # relation against the true optimum instead.
            import networkx as nx

            nxg = nx.Graph()
            e = g.edges
            for k in range(e.n_edges):
                if scores[k] > 0:
                    nxg.add_edge(int(e.ei[k]), int(e.ej[k]), weight=float(scores[k]))
            opt = sum(
                nxg[u][v]["weight"] for u, v in nx.max_weight_matching(nxg)
            )
            assert achieved >= 0.5 * opt - 1e-9
            assert upper >= opt - 1e-9  # the bound really bounds

    def test_perfect_on_disjoint_edges(self):
        from repro.core import approximation_certificate

        g = from_edges(np.array([0, 2]), np.array([1, 3]), np.array([2.0, 3.0]))
        scores = g.edges.w.astype(float)
        res = match_locally_dominant(g, scores)
        achieved, upper = approximation_certificate(g, scores, res)
        assert achieved == upper == 5.0

    def test_length_check(self, karate):
        from repro.core import approximation_certificate

        scores = ModularityScorer().score(karate)
        res = match_locally_dominant(karate, scores)
        with pytest.raises(ValueError):
            approximation_certificate(karate, scores[:-1], res)
