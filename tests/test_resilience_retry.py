"""Unit tests for the retry policy and recovery accounting."""

import pytest

from repro.resilience import RecoveryReport, RetryPolicy


class TestRetryPolicy:
    def test_defaults(self):
        pol = RetryPolicy()
        assert pol.max_retries == 3
        assert pol.chunk_timeout_s is None

    def test_backoff_schedule_is_capped_exponential(self):
        pol = RetryPolicy(
            max_retries=5,
            backoff_base_s=0.1,
            backoff_factor=2.0,
            backoff_cap_s=0.5,
        )
        assert pol.delays() == (0.1, 0.2, 0.4, 0.5, 0.5)

    def test_backoff_is_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff_s(0)

    def test_none_policy_has_no_retries(self):
        pol = RetryPolicy.none()
        assert pol.max_retries == 0
        assert pol.delays() == ()

    def test_fast_policy_stays_fast(self):
        assert sum(RetryPolicy.fast().delays()) < 0.1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"backoff_base_s": -0.1},
            {"backoff_factor": 0.5},
            {"backoff_base_s": 1.0, "backoff_cap_s": 0.5},
            {"chunk_timeout_s": 0.0},
            {"chunk_timeout_s": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_frozen(self):
        with pytest.raises(Exception):
            RetryPolicy().max_retries = 7


class TestDecorrelatedJitter:
    def test_off_by_default_bit_identical_to_legacy(self):
        plain = RetryPolicy(max_retries=4, backoff_base_s=0.1)
        assert not plain.jitter
        # The token is ignored without jitter: the historical schedule.
        assert plain.delays(token=7) == plain.delays(token=99)
        assert plain.delays() == (0.1, 0.2, 0.4, 0.8)

    def test_deterministic_for_fixed_seed_and_token(self):
        a = RetryPolicy(max_retries=4, jitter=True, jitter_seed=42)
        b = RetryPolicy(max_retries=4, jitter=True, jitter_seed=42)
        assert a.delays(token=3) == b.delays(token=3)
        assert a.backoff_s(2, token=3) == b.backoff_s(2, token=3)

    def test_different_tokens_decorrelate(self):
        pol = RetryPolicy(max_retries=4, jitter=True)
        schedules = {pol.delays(token=t) for t in range(8)}
        assert len(schedules) > 1  # the herd fans out

    def test_different_seeds_differ(self):
        a = RetryPolicy(max_retries=4, jitter=True, jitter_seed=1)
        b = RetryPolicy(max_retries=4, jitter=True, jitter_seed=2)
        assert a.delays(token=0) != b.delays(token=0)

    def test_jittered_delays_respect_base_and_cap(self):
        pol = RetryPolicy(
            max_retries=6,
            backoff_base_s=0.05,
            backoff_cap_s=0.3,
            jitter=True,
        )
        for token in range(16):
            for d in pol.delays(token=token):
                assert 0.05 <= d <= 0.3

    def test_schedule_is_call_order_independent(self):
        # Each delay is a pure function of (seed, token, retry) — asking
        # for retry 3 first must not change what retry 1 returns.
        pol = RetryPolicy(max_retries=3, jitter=True)
        late_first = pol.backoff_s(3, token=5)
        assert pol.backoff_s(1, token=5) == pol.backoff_s(1, token=5)
        assert pol.backoff_s(3, token=5) == late_first


class TestRecoveryReport:
    def test_fresh_report_reports_no_recovery(self):
        assert not RecoveryReport().any_recovery()

    @pytest.mark.parametrize(
        "field",
        [
            "retries",
            "worker_deaths",
            "chunk_timeouts",
            "invalid_chunks",
            "degraded_chunks",
            "checkpoints_invalid",
        ],
    )
    def test_any_fault_count_flags_recovery(self, field):
        rep = RecoveryReport(**{field: 1})
        assert rep.any_recovery()

    def test_checkpoint_writes_alone_are_not_recovery(self):
        assert not RecoveryReport(checkpoints_written=4).any_recovery()

    def test_resume_flags_recovery(self):
        assert RecoveryReport(resumed_from_level=2).any_recovery()

    def test_merge_sums_counts(self):
        a = RecoveryReport(retries=1, worker_deaths=2)
        b = RecoveryReport(retries=3, chunk_timeouts=1, resumed_from_level=4)
        a.merge(b)
        assert a.retries == 4
        assert a.worker_deaths == 2
        assert a.chunk_timeouts == 1
        assert a.resumed_from_level == 4

    def test_merge_keeps_own_resume_level_when_other_is_fresh(self):
        a = RecoveryReport(resumed_from_level=3)
        a.merge(RecoveryReport())
        assert a.resumed_from_level == 3

    def test_as_dict_round_trips_every_field(self):
        rep = RecoveryReport(retries=2, checkpoints_written=1)
        d = rep.as_dict()
        assert d["retries"] == 2
        assert d["checkpoints_written"] == 1
        assert RecoveryReport(**d) == rep

    def test_summary_mentions_faults(self):
        s = RecoveryReport(
            retries=2, checkpoints_invalid=1, resumed_from_level=3
        ).summary()
        assert "retries=2" in s
        assert "checkpoints_invalid=1" in s
        assert "resumed_from_level=3" in s

    def test_summary_hides_quiet_optional_fields(self):
        s = RecoveryReport().summary()
        assert "checkpoints_invalid" not in s
        assert "resumed_from_level" not in s
