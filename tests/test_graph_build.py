"""Unit tests for graph builders and NetworkX conversion."""

import numpy as np
import pytest

from repro.graph import from_edges, from_networkx, to_networkx


class TestFromEdges:
    def test_self_loops_become_self_weights(self):
        g = from_edges(np.array([0, 1, 1]), np.array([1, 1, 1]))
        assert g.n_edges == 1
        assert g.self_weights[1] == 2.0

    def test_duplicates_accumulate_across_orientations(self):
        g = from_edges(np.array([0, 1, 0]), np.array([1, 0, 1]))
        assert g.n_edges == 1
        assert g.edges.w[0] == 3.0

    def test_n_vertices_inferred(self):
        g = from_edges(np.array([0]), np.array([7]))
        assert g.n_vertices == 8

    def test_n_vertices_explicit(self):
        g = from_edges(np.array([0]), np.array([1]), n_vertices=10)
        assert g.n_vertices == 10

    def test_empty(self):
        g = from_edges(np.empty(0, int), np.empty(0, int))
        assert g.n_vertices == 0
        assert g.n_edges == 0

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError):
            from_edges(np.array([-1]), np.array([0]))

    def test_mismatched_rejected(self):
        with pytest.raises(ValueError):
            from_edges(np.array([0, 1]), np.array([1]))

    def test_weights_preserved(self):
        g = from_edges(np.array([0]), np.array([1]), np.array([2.5]))
        assert g.edges.w[0] == 2.5

    def test_total_weight_conserved(self):
        # Builder must not lose weight: loops + duplicates + edges.
        i = np.array([0, 0, 1, 2, 2])
        j = np.array([1, 1, 1, 0, 2])
        w = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        g = from_edges(i, j, w)
        assert g.total_weight() == pytest.approx(w.sum())


class TestNetworkX:
    def test_roundtrip(self, karate):
        nx_graph = to_networkx(karate)
        back, nodes = from_networkx(nx_graph)
        assert back.n_vertices == karate.n_vertices
        assert back.n_edges == karate.n_edges
        assert back.total_weight() == pytest.approx(karate.total_weight())

    def test_from_networkx_weights(self):
        import networkx as nx

        g = nx.Graph()
        g.add_edge("a", "b", weight=2.0)
        g.add_edge("b", "c")
        cg, nodes = from_networkx(g)
        assert cg.n_vertices == 3
        assert cg.total_weight() == pytest.approx(3.0)
        assert set(nodes) == {"a", "b", "c"}

    def test_to_networkx_self_loops(self):
        g = from_edges(np.array([0, 1]), np.array([0, 2]))
        nx_graph = to_networkx(g)
        assert nx_graph.has_edge(0, 0)
        assert nx_graph[0][0]["weight"] == 1.0
