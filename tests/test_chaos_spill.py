"""Out-of-core chaos suite: spills under pressure, disk faults, resume.

Three failure surfaces of the spill path, all driven through the real
engine with deterministic faults:

* **The spill rung.**  Injected ballast breaches the memory budget of a
  guardian armed with ``spill_dir`` — the run must migrate onto the
  sharded backend mid-run (recorded in the ladder, the
  ``guardian_spill`` span, and the ``spills`` counter), complete
  bit-identically, and only fall off the end of the ladder with a typed
  :class:`RunAbortedError` when the budget is impossible.
* **Disk faults.**  ``ENOSPC`` and torn spill writes from the fault
  plan: a failed spill degrades that level to in-memory execution —
  loudly, and never by reading torn data.
* **Resume after spill.**  A checkpoint written by a spilled run
  restores onto both the serial and the sharded backend with results
  identical to an uninterrupted run.

Marked ``faultinject`` + ``guardian`` so CI runs these in the dedicated
time-boxed chaos job.
"""

import numpy as np
import pytest

from repro.core import (
    AgglomerationEngine,
    RunContext,
    TerminationCriteria,
    detect_communities,
)
from repro.errors import GuardianBreach, RunAbortedError
from repro.generators import planted_partition_graph
from repro.obs import Tracer
from repro.parallel.backends import ShardedBackend
from repro.resilience import FaultPlan, FaultSpec, RunGuardian
from repro.resilience.guardian import _rss_mb

pytestmark = [
    pytest.mark.faultinject,
    pytest.mark.guardian,
    pytest.mark.timeout(120),
]


@pytest.fixture(scope="module")
def graph():
    return planted_partition_graph(600, seed=7)


@pytest.fixture(scope="module")
def baseline(graph):
    """Unguarded, fault-free reference run."""
    return detect_communities(graph)


def spill_guardian(tmp_path, budget_mb, **kwargs):
    return RunGuardian(
        "sample",
        memory_budget_mb=budget_mb,
        spill_dir=tmp_path,
        **kwargs,
    )


class TestSpillRung:
    def test_breach_migrates_run_onto_sharded_backend(
        self, graph, baseline, tmp_path
    ):
        rss = _rss_mb()
        assert rss is not None
        # budget sits between the current footprint and footprint+ballast:
        # only the held ballast can push the sample over it
        faults = FaultPlan.pressure_phase("score", [0], alloc_mb=192.0)
        guardian = spill_guardian(tmp_path, rss + 96.0, faults=faults)
        tracer = Tracer()
        with pytest.warns(GuardianBreach, match="budget"):
            result = detect_communities(
                graph, guardian=guardian, tracer=tracer
            )
        # spilled, not different: the sharded continuation is bit-identical
        np.testing.assert_array_equal(
            result.partition.labels, baseline.partition.labels
        )
        assert result.terminated_by == baseline.terminated_by
        assert result.recovery.spills == 1
        assert result.recovery.ladder == ["spill(memory_budget@level0)"]
        spans = tracer.find("guardian_spill")
        assert len(spans) == 1
        assert spans[0].attrs["rung"] == "spill"
        assert tracer.metrics.counter("guardian.spills").value == 1
        # the sharded backend actually streamed later levels from disk
        assert len(tracer.find("spill_level")) >= 1

    def test_spill_rung_fires_once_with_grace_window(
        self, graph, baseline, tmp_path
    ):
        # Ballast on two phases of level 0: the first breach spills, the
        # second lands in the same level — where the spill cannot have
        # taken effect yet — and must not burn a regular ladder rung.
        rss = _rss_mb()
        faults = FaultPlan(
            phase_faults={
                ("score", 0): FaultSpec("memory_pressure", alloc_mb=192.0),
                ("match", 0): FaultSpec("memory_pressure", alloc_mb=192.0),
            }
        )
        guardian = spill_guardian(tmp_path, rss + 96.0, faults=faults)
        with pytest.warns(GuardianBreach, match="budget"):
            result = detect_communities(graph, guardian=guardian)
        np.testing.assert_array_equal(
            result.partition.labels, baseline.partition.labels
        )
        assert result.recovery.spills == 1
        assert result.recovery.guardian_breaches == 2
        assert result.recovery.ladder == ["spill(memory_budget@level0)"]

    def test_impossible_budget_aborts_with_typed_error(
        self, graph, tmp_path
    ):
        # A budget below the process floor breaches at every phase: the
        # spill rung fires first, then the remaining ladder burns down
        # to a clean checkpoint-and-abort — never a crash or bad data.
        guardian = spill_guardian(tmp_path, 0.001)
        with pytest.warns(GuardianBreach, match="budget"):
            with pytest.raises(RunAbortedError) as excinfo:
                detect_communities(graph, guardian=guardian)
        report = excinfo.value.report
        assert report.spills == 1
        assert report.ladder[0] == "spill(memory_budget@level0)"
        assert report.ladder[-1].startswith("abort(")

    def test_no_breach_never_spills(self, graph, tmp_path):
        rss = _rss_mb()
        guardian = spill_guardian(tmp_path, rss + 4096.0)
        result = detect_communities(graph, guardian=guardian)
        assert result.recovery.spills == 0
        assert result.recovery.ladder == []


class TestAuditedSpilledRun:
    def test_full_audit_passes_on_sharded_run(self, graph, baseline):
        # Full-strictness invariant audits — including matching
        # maximality — hold on every level the streaming kernels
        # produce, so the GMM matcher's cap never costs validity.
        guardian = RunGuardian("full")
        backend = ShardedBackend()
        result = detect_communities(
            graph, backend=backend, guardian=guardian
        )
        backend.release()
        np.testing.assert_array_equal(
            result.partition.labels, baseline.partition.labels
        )
        assert guardian.auditor.violations == 0
        assert guardian.auditor.checks_run > 0


class TestDiskFaults:
    def test_enospc_on_every_spill_degrades_to_memory(
        self, graph, baseline
    ):
        faults = FaultPlan.enospc_on_spill("spill-graph", range(32))
        backend = ShardedBackend(faults=faults)
        tracer = Tracer()
        result = detect_communities(graph, backend=backend, tracer=tracer)
        np.testing.assert_array_equal(
            result.partition.labels, baseline.partition.labels
        )
        assert backend.spilled_levels == 0
        assert backend.spill_failures >= 1
        assert tracer.metrics.counter("spill.failures").value == (
            backend.spill_failures
        )
        backend.release()

    def test_torn_spill_is_detected_and_skipped(self, graph, baseline):
        # The torn write lands *after* the atomic rename (at-rest
        # corruption); the checksummed reopen classifies it and the
        # level runs in-memory instead of reading torn data.
        faults = FaultPlan.tear_spill("spill-graph", [0])
        backend = ShardedBackend(faults=faults)
        result = detect_communities(graph, backend=backend)
        np.testing.assert_array_equal(
            result.partition.labels, baseline.partition.labels
        )
        assert backend.spill_failures == 1
        assert backend.spilled_levels >= 1  # later levels spilled fine
        backend.release()

    def test_single_enospc_level_recovers(self, graph, baseline):
        faults = FaultPlan.enospc_on_spill("spill-graph", [1])
        backend = ShardedBackend(faults=faults)
        result = detect_communities(graph, backend=backend)
        np.testing.assert_array_equal(
            result.partition.labels, baseline.partition.labels
        )
        assert backend.spill_failures == 1
        assert backend.spilled_levels >= 2
        backend.release()

    def test_failed_spill_leaves_no_partial_store(self, graph, tmp_path):
        faults = FaultPlan.enospc_on_spill("spill-graph", [0])
        backend = ShardedBackend(spill_dir=tmp_path, faults=faults)
        detect_communities(graph, backend=backend)
        # level 0's store failed before any byte landed; its directory
        # must not linger as a half-written store
        assert not (tmp_path / "level_00000").exists()
        backend.release()


class TestResumeAfterSpill:
    def test_checkpoint_from_spilled_run_resumes_on_serial(
        self, graph, tmp_path
    ):
        full = AgglomerationEngine().run(graph)
        backend = ShardedBackend(spill_dir=tmp_path / "spill")
        interrupted = AgglomerationEngine(
            termination=TerminationCriteria(max_levels=1)
        )
        ctx = RunContext.create(
            backend=backend, checkpoint_dir=tmp_path / "ckpt"
        )
        interrupted.run(graph, ctx)
        assert backend.spilled_levels >= 1
        backend.release()

        resume_ctx = RunContext.create(checkpoint_dir=tmp_path / "ckpt")
        resumed = AgglomerationEngine().run(graph, resume_ctx, resume=True)
        assert resumed.recovery.resumed_from_level == 1
        np.testing.assert_array_equal(
            resumed.partition.labels, full.partition.labels
        )
        assert resumed.terminated_by == full.terminated_by

    def test_checkpoint_from_spilled_run_resumes_on_sharded(
        self, graph, tmp_path
    ):
        full = AgglomerationEngine().run(graph)
        backend = ShardedBackend(spill_dir=tmp_path / "spill")
        interrupted = AgglomerationEngine(
            termination=TerminationCriteria(max_levels=1)
        )
        interrupted.run(
            graph,
            RunContext.create(
                backend=backend, checkpoint_dir=tmp_path / "ckpt"
            ),
        )
        backend.release()

        fresh = ShardedBackend(spill_dir=tmp_path / "spill2")
        resume_ctx = RunContext.create(
            backend=fresh, checkpoint_dir=tmp_path / "ckpt"
        )
        resumed = AgglomerationEngine().run(graph, resume_ctx, resume=True)
        assert resumed.recovery.resumed_from_level == 1
        assert fresh.spilled_levels >= 1
        fresh.release()
        np.testing.assert_array_equal(
            resumed.partition.labels, full.partition.labels
        )
        assert resumed.terminated_by == full.terminated_by
