"""Tests for level-granular checkpoint/resume of the agglomeration loop."""

import numpy as np
import pytest

from repro.core import detect_communities
from repro.core.termination import TerminationCriteria
from repro.errors import CheckpointError
from repro.resilience import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointManager,
    CheckpointState,
    quarantine_file,
    truncate_file,
)
from repro.types import VERTEX_DTYPE


def _state_for(graph, level=0, maps=None):
    return CheckpointState(
        level=level,
        graph=graph,
        maps=maps or [],
        member_counts=np.ones(graph.n_vertices, dtype=VERTEX_DTYPE),
        level_stats=[{"level": k} for k in range(level)],
        scorer_name="modularity",
    )


class TestSaveLoad:
    def test_round_trip(self, karate, tmp_path):
        manager = CheckpointManager(tmp_path)
        path = manager.save(_state_for(karate))
        assert path.exists()
        state = manager.load_level(0)
        assert state.level == 0
        assert state.scorer_name == "modularity"
        assert state.graph.n_vertices == karate.n_vertices
        np.testing.assert_array_equal(state.graph.edges.w, karate.edges.w)

    def test_no_tmp_files_left_behind(self, karate, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(_state_for(karate))
        leftovers = [p for p in tmp_path.iterdir() if ".tmp" in p.name]
        assert leftovers == []

    def test_level_map_count_mismatch_rejected_at_save(self, karate, tmp_path):
        manager = CheckpointManager(tmp_path)
        with pytest.raises(ValueError):
            manager.save(_state_for(karate, level=2, maps=[]))

    def test_prune_keeps_newest(self, karate, tmp_path):
        manager = CheckpointManager(tmp_path, keep=2)
        n = karate.n_vertices
        for level in range(1, 5):
            manager.save(
                CheckpointState(
                    level=level,
                    graph=karate,
                    maps=[np.arange(n, dtype=VERTEX_DTYPE)] * level,
                    member_counts=np.ones(n, dtype=VERTEX_DTYPE),
                    level_stats=[{} for _ in range(level)],
                )
            )
        assert manager.levels_on_disk() == [3, 4]

    def test_missing_level_raises(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        with pytest.raises(CheckpointError):
            manager.load_level(7)

    def test_keep_validation(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointManager(tmp_path, keep=0)


class TestValidationOnLoad:
    def test_truncated_file_is_checkpoint_error(self, karate, tmp_path):
        manager = CheckpointManager(tmp_path)
        path = manager.save(_state_for(karate))
        truncate_file(path, keep_fraction=0.5)
        with pytest.raises(CheckpointError, match="truncated|unreadable"):
            manager.load_level(0)

    def test_garbage_file_is_checkpoint_error(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.path_for(1).write_bytes(b"not an npz at all")
        with pytest.raises(CheckpointError):
            manager.load_level(1)

    def test_schema_version_is_enforced(self, karate, tmp_path):
        manager = CheckpointManager(tmp_path)
        path = manager.save(_state_for(karate))
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["schema"] = np.int64(CHECKPOINT_SCHEMA_VERSION + 1)
        np.savez_compressed(path, **arrays)
        with pytest.raises(CheckpointError, match="schema"):
            manager.load_level(0)

    def test_corrupt_member_counts_rejected(self, karate, tmp_path):
        manager = CheckpointManager(tmp_path)
        path = manager.save(_state_for(karate))
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["member_counts"] = arrays["member_counts"] * 2
        np.savez_compressed(path, **arrays)
        with pytest.raises(CheckpointError, match="member_counts"):
            manager.load_level(0)

    def test_load_latest_skips_invalid_and_falls_back(self, karate, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(_state_for(karate))  # level 0, valid
        n = karate.n_vertices
        newest = manager.save(
            CheckpointState(
                level=1,
                graph=karate,
                maps=[np.arange(n)],
                member_counts=np.ones(n, dtype=VERTEX_DTYPE),
                level_stats=[{}],
            )
        )
        truncate_file(newest, keep_fraction=0.3)
        state, n_invalid = manager.load_latest()
        assert state is not None and state.level == 0
        assert n_invalid == 1

    def test_load_latest_empty_dir(self, tmp_path):
        state, n_invalid = CheckpointManager(tmp_path).load_latest()
        assert state is None and n_invalid == 0


class TestQuarantine:
    def _save_two_levels_and_break_newest(self, karate, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(_state_for(karate))
        n = karate.n_vertices
        newest = manager.save(
            CheckpointState(
                level=1,
                graph=karate,
                maps=[np.arange(n)],
                member_counts=np.ones(n, dtype=VERTEX_DTYPE),
                level_stats=[{}],
            )
        )
        truncate_file(newest, keep_fraction=0.3)
        return manager, newest

    def test_invalid_file_is_renamed_to_corrupt(self, karate, tmp_path):
        manager, newest = self._save_two_levels_and_break_newest(
            karate, tmp_path
        )
        state, n_invalid = manager.load_latest()
        assert n_invalid == 1 and state.level == 0
        assert not newest.exists()
        assert newest.with_name(newest.name + ".corrupt").exists()

    def test_known_bad_file_is_validated_at_most_once(self, karate, tmp_path):
        manager, _ = self._save_two_levels_and_break_newest(karate, tmp_path)
        _, first = manager.load_latest()
        state, second = manager.load_latest()
        assert first == 1
        assert second == 0  # quarantine removed it from discovery
        assert state is not None and state.level == 0

    def test_quarantine_is_logged_once_per_resume(
        self, karate, tmp_path, caplog
    ):
        manager, _ = self._save_two_levels_and_break_newest(karate, tmp_path)
        with caplog.at_level("WARNING", logger="repro.resilience.checkpoint"):
            manager.load_latest()
        warnings = [
            r for r in caplog.records if "quarantined" in r.getMessage()
        ]
        assert len(warnings) == 1

    def test_quarantine_file_never_overwrites_forensics(self, tmp_path):
        for k, expected in enumerate(
            ["x.npz.corrupt", "x.npz.corrupt.1", "x.npz.corrupt.2"]
        ):
            victim = tmp_path / "x.npz"
            victim.write_bytes(f"crash-{k}".encode())
            target = quarantine_file(victim)
            assert target.name == expected
            assert target.read_bytes() == f"crash-{k}".encode()
        assert not (tmp_path / "x.npz").exists()


class TestResume:
    def test_resume_requires_checkpoint_dir(self, karate):
        with pytest.raises(ValueError, match="checkpoint_dir"):
            detect_communities(karate, resume=True)

    def test_checkpoint_every_validation(self, karate, tmp_path):
        with pytest.raises(ValueError, match="checkpoint_every"):
            detect_communities(
                karate, checkpoint_dir=tmp_path, checkpoint_every=0
            )

    def test_interrupted_run_resumes_to_identical_partition(
        self, karate, tmp_path
    ):
        full = detect_communities(karate)
        # "Interrupt" after one level by capping max_levels, then resume.
        partial = detect_communities(
            karate,
            termination=TerminationCriteria(max_levels=1),
            checkpoint_dir=tmp_path,
        )
        assert partial.recovery.checkpoints_written == 1
        resumed = detect_communities(
            karate, checkpoint_dir=tmp_path, resume=True
        )
        assert resumed.recovery.resumed_from_level == 1
        np.testing.assert_array_equal(
            resumed.partition.labels, full.partition.labels
        )
        assert resumed.n_levels == full.n_levels
        # Restored per-level stats match the uninterrupted run's exactly.
        assert resumed.levels == full.levels

    def test_resume_from_empty_dir_runs_fresh(self, karate, tmp_path):
        full = detect_communities(karate)
        resumed = detect_communities(
            karate, checkpoint_dir=tmp_path, resume=True
        )
        assert resumed.recovery.resumed_from_level is None
        np.testing.assert_array_equal(
            resumed.partition.labels, full.partition.labels
        )

    def test_resume_rejects_mismatched_graph(self, karate, cliques, tmp_path):
        detect_communities(
            karate,
            termination=TerminationCriteria(max_levels=1),
            checkpoint_dir=tmp_path,
        )
        with pytest.raises(CheckpointError, match="input"):
            detect_communities(cliques, checkpoint_dir=tmp_path, resume=True)

    def test_checkpoint_every_skips_levels(self, karate, tmp_path):
        result = detect_communities(
            karate, checkpoint_dir=tmp_path, checkpoint_every=2
        )
        manager = CheckpointManager(tmp_path)
        assert result.recovery.checkpoints_written == len(
            manager.levels_on_disk()
        )
        assert all(lvl % 2 == 0 for lvl in manager.levels_on_disk())
