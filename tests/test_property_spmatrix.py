"""Property-based tests for the CSR kernels and the sparse formulation."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.graph import from_edges
from repro.metrics import Partition, modularity
from repro.spmatrix import (
    CSRMatrix,
    adjacency_matrix,
    contract_via_spgemm,
    matrix_modularity,
    selector_matrix,
    spgemm,
)


@st.composite
def csr_pair(draw):
    """Two multiplicable sparse matrices plus their dense mirrors."""
    m = draw(st.integers(1, 8))
    k = draw(st.integers(1, 8))
    n = draw(st.integers(1, 8))

    def mat(rows, cols):
        nnz = draw(st.integers(0, rows * cols))
        r = draw(hnp.arrays(np.int64, nnz, elements=st.integers(0, rows - 1)))
        c = draw(hnp.arrays(np.int64, nnz, elements=st.integers(0, cols - 1)))
        v = draw(
            hnp.arrays(
                np.float64, nnz, elements=st.floats(-4, 4, allow_nan=False)
            )
        )
        csr = CSRMatrix.from_triplets(r, c, v, (rows, cols))
        return csr, csr.to_dense()

    a, da = mat(m, k)
    b, db = mat(k, n)
    return a, da, b, db


@st.composite
def graphs_with_mapping(draw):
    n = draw(st.integers(2, 20))
    m = draw(st.integers(1, 50))
    i = draw(hnp.arrays(np.int64, m, elements=st.integers(0, n - 1)))
    j = draw(hnp.arrays(np.int64, m, elements=st.integers(0, n - 1)))
    w = draw(
        hnp.arrays(np.float64, m, elements=st.floats(0.5, 5.0, allow_nan=False))
    )
    g = from_edges(i, j, w, n_vertices=n)
    labels = draw(hnp.arrays(np.int64, n, elements=st.integers(0, 4)))
    p = Partition.from_labels(labels)
    return g, p


class TestSpGEMMProperties:
    @given(csr_pair())
    @settings(max_examples=80, deadline=None)
    def test_matches_dense(self, args):
        a, da, b, db = args
        c = spgemm(a, b)
        np.testing.assert_allclose(c.to_dense(), da @ db, atol=1e-9)

    @given(csr_pair())
    @settings(max_examples=40, deadline=None)
    def test_transpose_identity(self, args):
        a, da, _, _ = args
        np.testing.assert_allclose(
            a.transpose().transpose().to_dense(), da
        )

    @given(csr_pair())
    @settings(max_examples=40, deadline=None)
    def test_matvec_consistent_with_spgemm(self, args):
        a, da, _, _ = args
        x = np.ones(a.n_cols)
        np.testing.assert_allclose(a.matvec(x), da @ x, atol=1e-9)


class TestSparseFormulationProperties:
    @given(graphs_with_mapping())
    @settings(max_examples=50, deadline=None)
    def test_contraction_weight_conserved(self, args):
        g, p = args
        coarse = contract_via_spgemm(g, p.labels, p.n_communities)
        coarse.validate()
        assert abs(coarse.total_weight() - g.total_weight()) < 1e-6 * max(
            1.0, g.total_weight()
        )

    @given(graphs_with_mapping())
    @settings(max_examples=50, deadline=None)
    def test_matrix_modularity_matches_metric(self, args):
        g, p = args
        q = matrix_modularity(g, p.labels, p.n_communities)
        assert abs(q - modularity(g, p)) < 1e-9

    @given(graphs_with_mapping())
    @settings(max_examples=30, deadline=None)
    def test_selector_preserves_vertex_mass(self, args):
        g, p = args
        s = selector_matrix(p.labels, p.n_communities)
        sizes = s.transpose().matvec(np.ones(g.n_vertices))
        np.testing.assert_array_equal(sizes, p.sizes())

    @given(graphs_with_mapping())
    @settings(max_examples=30, deadline=None)
    def test_adjacency_total_mass(self, args):
        g, _ = args
        a = adjacency_matrix(g)
        assert abs(a.data.sum() - 2 * g.total_weight()) < 1e-9 * max(
            1.0, g.total_weight()
        )
