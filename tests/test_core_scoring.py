"""Unit tests for edge scorers, including the exactness invariants."""

import numpy as np
import pytest

from repro.core import (
    ConductanceScorer,
    ModularityScorer,
    WeightScorer,
    contract,
    match_locally_dominant,
)
from repro.graph import from_edges
from repro.metrics import (
    Partition,
    average_conductance,
    community_graph_modularity,
    conductances,
    modularity,
)
from repro.platform import TraceRecorder


class TestModularityScorer:
    def test_two_triangles_bridge_scored_lowest(self, triangles):
        scores = ModularityScorer().score(triangles)
        e = triangles.edges
        bridge = [
            k
            for k in range(e.n_edges)
            if {int(e.ei[k]), int(e.ej[k])} == {2, 3}
        ][0]
        assert scores[bridge] == scores.min()

    def test_exact_formula(self):
        g = from_edges(np.array([0]), np.array([1]), np.array([2.0]))
        scores = ModularityScorer().score(g)
        # W=2, vol=[2,2]: ΔQ = 2/2 - 4/(2*4) = 0.5
        assert scores[0] == pytest.approx(0.5)

    def test_merge_gain_is_exact(self, karate):
        """Contracting a matching raises modularity by the matched score sum."""
        scorer = ModularityScorer()
        scores = scorer.score(karate)
        matching = match_locally_dominant(karate, scores)
        before = community_graph_modularity(karate)
        after_graph, _ = contract(karate, matching)
        after = community_graph_modularity(after_graph)
        gained = scores[matching.matched_edges].sum()
        assert after - before == pytest.approx(gained)

    def test_zero_weight_graph(self):
        g = from_edges(np.empty(0, int), np.empty(0, int), n_vertices=2)
        assert len(ModularityScorer().score(g)) == 0

    def test_recorder_gets_score_kernel(self, karate):
        rec = TraceRecorder()
        ModularityScorer().score(karate, rec)
        assert len(rec.by_name("score")) == 1
        assert rec.by_name("score")[0].items == karate.n_edges


class TestConductanceScorer:
    def test_merge_gain_is_exact(self, karate):
        """Contracting a matching lowers summed conductance by the score sum."""
        scorer = ConductanceScorer()
        scores = scorer.score(karate)
        matching = match_locally_dominant(karate, scores)
        phi_before = conductances(karate, Partition.singletons(34)).sum()
        after_graph, mapping = contract(karate, matching)
        phi_after = conductances(
            after_graph, Partition.singletons(after_graph.n_vertices)
        ).sum()
        gained = scores[matching.matched_edges].sum()
        assert phi_before - phi_after == pytest.approx(gained)

    def test_positive_for_leaf_merge(self):
        # Merging a leaf into its neighbor removes conductance-1 community.
        g = from_edges(np.array([0, 1]), np.array([1, 2]))
        scores = ConductanceScorer().score(g)
        assert np.all(scores > 0)

    def test_zero_weight_graph(self):
        g = from_edges(np.empty(0, int), np.empty(0, int), n_vertices=2)
        assert len(ConductanceScorer().score(g)) == 0

    def test_detects_communities_end_to_end(self, cliques):
        from repro import TerminationCriteria, detect_communities

        res = detect_communities(
            cliques,
            ConductanceScorer(),
            termination=TerminationCriteria.local_maximum(),
        )
        # Conductance merging should coarsen the ring-of-cliques heavily.
        assert res.n_communities < cliques.n_vertices / 2


class TestWeightScorer:
    def test_returns_weights(self, karate):
        scores = WeightScorer().score(karate)
        np.testing.assert_array_equal(scores, karate.edges.w)

    def test_protocol_conformance(self):
        from repro.core.scoring import EdgeScorer

        for scorer in (ModularityScorer(), ConductanceScorer(), WeightScorer()):
            assert isinstance(scorer, EdgeScorer)
            assert isinstance(scorer.name, str)
