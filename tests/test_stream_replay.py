"""Tests for the edge-log replay harness (stream/replay.py)."""

import json

import numpy as np
import pytest

from repro.errors import GraphFormatError, ReproError
from repro.stream.replay import (
    EDGE_LOG_HEADER,
    ReplayHarness,
    generate_edge_log,
    read_edge_log,
    read_stream_bench,
)
from repro.stream.service import DetectionService, StreamConfig


def _cfg(**kw):
    kw.setdefault("snapshot_every", 4)
    kw.setdefault("drift_threshold", 0.05)
    return StreamConfig(**kw)


class TestEdgeLog:
    def test_generation_is_deterministic(self, tmp_path):
        a = generate_edge_log(tmp_path / "a.log", n_batches=5, seed=3)
        b = generate_edge_log(tmp_path / "b.log", n_batches=5, seed=3)
        assert a.read_bytes() == b.read_bytes()
        c = generate_edge_log(tmp_path / "c.log", n_batches=5, seed=4)
        assert a.read_bytes() != c.read_bytes()

    def test_read_round_trip(self, tmp_path):
        path = generate_edge_log(
            tmp_path / "e.log", n_batches=4, batch_size=10
        )
        batches = list(read_edge_log(path))
        assert [t for t, *_ in batches] == [1, 2, 3, 4]
        for _, i, j, w, op in batches:
            assert len(i) == len(j) == len(w) == len(op) == 10
            assert set(np.unique(op)) <= {-1, 1}

    def test_drift_rotates_membership(self, tmp_path):
        frozen = generate_edge_log(
            tmp_path / "f.log", n_batches=6, drift_every=0, seed=0
        )
        drifting = generate_edge_log(
            tmp_path / "d.log", n_batches=6, drift_every=2, seed=0
        )
        assert frozen.read_bytes() != drifting.read_bytes()

    def test_missing_header_rejected(self, tmp_path):
        p = tmp_path / "bad.log"
        p.write_text("1 + 0 1 1.0\n")
        with pytest.raises(GraphFormatError, match="header"):
            list(read_edge_log(p))

    def test_malformed_line_rejected(self, tmp_path):
        p = tmp_path / "bad.log"
        p.write_text(f"{EDGE_LOG_HEADER}\n1 ? 0 1 1.0\n")
        with pytest.raises(GraphFormatError, match="malformed"):
            list(read_edge_log(p))

    def test_non_monotone_timestamps_rejected(self, tmp_path):
        p = tmp_path / "bad.log"
        p.write_text(f"{EDGE_LOG_HEADER}\n2 + 0 1 1.0\n1 + 1 2 1.0\n")
        with pytest.raises(GraphFormatError, match="non-decreasing"):
            list(read_edge_log(p))


class TestHarness:
    def test_run_ledgers_every_batch(self, tmp_path):
        log = generate_edge_log(
            tmp_path / "e.log", n_batches=6, batch_size=24, n_vertices=24
        )
        bench = tmp_path / "BENCH_stream.json"
        report = tmp_path / "recovery.json"
        svc = DetectionService(tmp_path / "svc", _cfg())
        summary = ReplayHarness(
            svc, bench_path=bench, report_path=report
        ).run(log)
        assert summary["n_batches_ingested"] == 6
        data = read_stream_bench(bench)
        assert [e["seq"] for e in data["entries"]] == [1, 2, 3, 4, 5, 6]
        assert all("latency_s" in e for e in data["entries"])
        assert data["timeline"]["batches"]
        assert json.loads(report.read_text())["batch_seq"] == 6

    def test_rerun_resumes_without_reapplying(self, tmp_path):
        log = generate_edge_log(
            tmp_path / "e.log", n_batches=5, batch_size=16, n_vertices=16
        )
        bench = tmp_path / "BENCH_stream.json"
        svc = DetectionService(tmp_path / "svc", _cfg())
        ReplayHarness(svc, bench_path=bench).run(log)
        labels = svc.labels.copy()

        svc2 = DetectionService(tmp_path / "svc", _cfg())
        summary = ReplayHarness(svc2, bench_path=bench).run(log)
        assert summary["n_batches_ingested"] == 0
        assert summary["n_batches_recovered_or_skipped"] == 5
        np.testing.assert_array_equal(svc2.labels, labels)
        data = read_stream_bench(bench)
        assert [e["seq"] for e in data["entries"]] == [1, 2, 3, 4, 5]

    def test_max_batches_stops_early(self, tmp_path):
        log = generate_edge_log(
            tmp_path / "e.log", n_batches=6, batch_size=16, n_vertices=16
        )
        svc = DetectionService(tmp_path / "svc", _cfg())
        summary = ReplayHarness(svc).run(log, max_batches=3)
        assert summary["batch_seq"] == 3

    def test_wrong_format_ledger_rejected(self, tmp_path):
        p = tmp_path / "BENCH_stream.json"
        p.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ReproError, match="ledger"):
            read_stream_bench(p)
