"""Unit tests for coverage."""

import numpy as np
import pytest

from repro.graph import from_edges
from repro.metrics import Partition, coverage, mirror_coverage


class TestCoverage:
    def test_all_in_one_full(self, karate):
        p = Partition(np.zeros(34, dtype=np.int64))
        assert coverage(karate, p) == 1.0

    def test_singletons_zero(self, karate):
        p = Partition.singletons(34)
        assert coverage(karate, p) == 0.0

    def test_two_triangles_split(self, triangles):
        p = Partition(np.array([0, 0, 0, 1, 1, 1]))
        assert coverage(triangles, p) == pytest.approx(6 / 7)

    def test_weighted(self):
        g = from_edges(np.array([0, 1]), np.array([1, 2]), np.array([3.0, 1.0]))
        p = Partition(np.array([0, 0, 1]))
        assert coverage(g, p) == pytest.approx(0.75)

    def test_self_weights_always_internal(self):
        g = from_edges(np.array([0, 1]), np.array([0, 2]))  # loop at 0
        p = Partition.singletons(3)
        assert coverage(g, p) == pytest.approx(0.5)

    def test_mirror(self, triangles):
        p = Partition(np.array([0, 0, 0, 1, 1, 1]))
        assert mirror_coverage(triangles, p) == pytest.approx(1 / 7)

    def test_empty_graph_conventions(self):
        g = from_edges(np.empty(0, int), np.empty(0, int), n_vertices=2)
        p = Partition.singletons(2)
        assert coverage(g, p) == 1.0

    def test_size_mismatch(self, karate):
        with pytest.raises(ValueError):
            coverage(karate, Partition.singletons(2))

    def test_matches_graph_coverage_after_contraction(self, karate):
        """graph.coverage() of the contracted graph equals metric coverage
        of the inducing partition — the identity the driver relies on."""
        from repro.core.contraction import _build_contracted

        labels = np.array([0] * 17 + [1] * 17, dtype=np.int64)
        p = Partition.from_labels(labels)
        contracted = _build_contracted(karate, p.labels, 2)
        assert contracted.coverage() == pytest.approx(coverage(karate, p))
