"""Unit tests for the consolidated atomic writer (util/atomicio.py)."""

import os

import pytest

from repro.util.atomicio import atomic_write, atomic_write_bytes, atomic_write_text


class TestAtomicWrite:
    def test_text_roundtrip(self, tmp_path):
        target = tmp_path / "out.txt"
        with atomic_write(target) as fh:
            fh.write("hello\n")
        assert target.read_text() == "hello\n"

    def test_bytes_roundtrip(self, tmp_path):
        target = tmp_path / "out.bin"
        with atomic_write(target, mode="wb") as fh:
            fh.write(b"\x00\x01\x02")
        assert target.read_bytes() == b"\x00\x01\x02"

    def test_invalid_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="mode"):
            with atomic_write(tmp_path / "x", mode="a"):
                pass  # pragma: no cover - context never entered

    def test_failure_leaves_previous_content(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("old")
        with pytest.raises(RuntimeError):
            with atomic_write(target) as fh:
                fh.write("partial new content")
                raise RuntimeError("writer died mid-body")
        assert target.read_text() == "old"

    def test_failure_removes_temporary(self, tmp_path):
        target = tmp_path / "out.txt"
        with pytest.raises(RuntimeError):
            with atomic_write(target) as fh:
                fh.write("x")
                raise RuntimeError("boom")
        assert list(tmp_path.iterdir()) == []

    def test_no_temporaries_after_success(self, tmp_path):
        target = tmp_path / "out.txt"
        with atomic_write(target) as fh:
            fh.write("ok")
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_temporary_name_carries_pid(self, tmp_path):
        # The in-flight temp name embeds the writer PID so concurrent
        # processes writing the same artifact never collide.
        target = tmp_path / "out.txt"
        seen = []
        with atomic_write(target) as fh:
            fh.write("x")
            seen = [p.name for p in tmp_path.iterdir()]
        assert seen == [f"out.txt.tmp.{os.getpid()}"]

    def test_overwrite_replaces_atomically(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "first")
        atomic_write_text(target, "second")
        assert target.read_text() == "second"


class TestHelpers:
    def test_atomic_write_bytes_returns_path(self, tmp_path):
        target = tmp_path / "b.bin"
        out = atomic_write_bytes(target, b"data")
        assert out == target
        assert target.read_bytes() == b"data"

    def test_atomic_write_text_encoding(self, tmp_path):
        target = tmp_path / "t.txt"
        atomic_write_text(target, "café", encoding="utf-8")
        assert target.read_bytes().decode("utf-8") == "café"
