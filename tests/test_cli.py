"""Unit tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.generators import karate_club
from repro.graph import write_edgelist, save_npz


@pytest.fixture
def karate_file(tmp_path):
    path = tmp_path / "karate.txt"
    write_edgelist(karate_club(), path)
    return str(path)


class TestDetect:
    def test_default_parallel(self, karate_file, tmp_path, capsys):
        out = tmp_path / "labels.txt"
        rc = main(["detect", karate_file, "-o", str(out)])
        assert rc == 0
        lines = out.read_text().strip().splitlines()
        assert len(lines) == 34
        v, c = lines[0].split("\t")
        assert v == "0"
        err = capsys.readouterr().err
        assert "modularity" in err

    def test_stdout_output(self, karate_file, capsys):
        rc = main(["detect", karate_file])
        assert rc == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == 34

    @pytest.mark.parametrize("algo", ["cnm", "louvain", "labelprop"])
    def test_baseline_algorithms(self, karate_file, tmp_path, algo):
        out = tmp_path / "labels.txt"
        rc = main(["detect", karate_file, "-o", str(out), "--algorithm", algo])
        assert rc == 0
        assert len(out.read_text().strip().splitlines()) == 34

    def test_conductance_scorer(self, karate_file, capsys):
        rc = main(["detect", karate_file, "--scorer", "conductance"])
        assert rc == 0

    def test_refine_flag(self, karate_file, capsys):
        rc = main(["detect", karate_file, "--refine"])
        assert rc == 0
        assert "refinement" in capsys.readouterr().err

    def test_coverage_and_limits(self, karate_file, capsys):
        rc = main(
            [
                "detect",
                karate_file,
                "--coverage",
                "0.5",
                "--min-communities",
                "2",
                "--max-levels",
                "3",
            ]
        )
        assert rc == 0

    def test_legacy_kernels(self, karate_file, capsys):
        rc = main(
            [
                "detect",
                karate_file,
                "--matcher",
                "sweep",
                "--contractor",
                "chains",
            ]
        )
        assert rc == 0

    def test_resume_requires_checkpoint_dir(self, karate_file, capsys):
        rc = main(["detect", karate_file, "--resume"])
        assert rc == 2
        assert "requires --checkpoint-dir" in capsys.readouterr().err

    def test_checkpoint_and_resume_reproduce_full_run(
        self, karate_file, tmp_path, capsys
    ):
        full = main(["detect", karate_file])
        full_out = capsys.readouterr().out
        assert full == 0
        ck = str(tmp_path / "ck")
        rc = main(
            ["detect", karate_file, "--checkpoint-dir", ck, "--max-levels", "1"]
        )
        assert rc == 0
        assert "resilience:" in capsys.readouterr().err
        rc = main(["detect", karate_file, "--checkpoint-dir", ck, "--resume"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "resumed_from_level=1" in captured.err
        assert captured.out == full_out

    def test_workers_pool_matches_serial(self, karate_file, capsys):
        assert main(["detect", karate_file]) == 0
        serial_out = capsys.readouterr().out
        assert main(["detect", karate_file, "--workers", "2"]) == 0
        assert capsys.readouterr().out == serial_out

    def test_backend_selectable_by_name(self, karate_file, capsys):
        assert main(["detect", karate_file]) == 0
        default_out = capsys.readouterr().out
        for backend in ["serial", "process-pool"]:
            assert (
                main(["detect", karate_file, "--backend", backend]) == 0
            )
            assert capsys.readouterr().out == default_out

    def test_backend_identity_in_trace(self, karate_file, tmp_path):
        import json

        trace = tmp_path / "trace.jsonl"
        rc = main(
            [
                "detect",
                karate_file,
                "--backend",
                "serial",
                "--trace-out",
                str(trace),
            ]
        )
        assert rc == 0
        events = [
            json.loads(line) for line in trace.read_text().splitlines()
        ]
        spans = [e for e in events if e.get("event") == "span"]
        (engine_span,) = [
            e for e in spans if e["name"] == "agglomeration"
        ]
        assert engine_span["attrs"]["backend"] == "serial"
        assert "terminated_by" in engine_span["attrs"]

    def test_npz_input(self, tmp_path, capsys):
        path = tmp_path / "k.npz"
        save_npz(karate_club(), path)
        rc = main(["detect", str(path)])
        assert rc == 0


class TestGenerate:
    def test_rmat(self, tmp_path, capsys):
        out = tmp_path / "g.txt"
        rc = main(
            ["generate", "rmat", "-o", str(out), "--scale", "6", "--seed", "1"]
        )
        assert rc == 0
        assert out.exists()
        assert "edges" in capsys.readouterr().err

    def test_planted(self, tmp_path, capsys):
        out = tmp_path / "g.npz"
        rc = main(
            ["generate", "planted", "-o", str(out), "--vertices", "200"]
        )
        assert rc == 0
        from repro.graph import load_npz

        g = load_npz(out)
        assert g.n_vertices == 200

    def test_webgraph_metis(self, tmp_path):
        out = tmp_path / "g.metis"
        rc = main(
            ["generate", "webgraph", "-o", str(out), "--vertices", "300"]
        )
        assert rc == 0
        from repro.graph import read_metis

        assert read_metis(out).n_edges > 0


class TestInfoAndBench:
    def test_info(self, karate_file, capsys):
        rc = main(["info", karate_file])
        assert rc == 0
        out = capsys.readouterr().out
        assert "vertices      : 34" in out
        assert "components    : 1" in out

    def test_bench_table1(self, capsys):
        rc = main(["bench", "table1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "XMT2" in out and "E7-8870" in out

    def test_bench_table2(self, capsys):
        rc = main(["bench", "table2", "--scale", "0.125", "--seed", "0"])
        assert rc == 0
        assert "uk-2007-05" in capsys.readouterr().out

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0

    def test_roundtrip_detect_generated(self, tmp_path, capsys):
        graph_file = tmp_path / "g.txt"
        main(["generate", "planted", "-o", str(graph_file), "--vertices", "150"])
        labels_file = tmp_path / "labels.txt"
        rc = main(["detect", str(graph_file), "-o", str(labels_file)])
        assert rc == 0
        assert len(labels_file.read_text().strip().splitlines()) == 150


class TestAnalyze:
    def test_analyze_roundtrip(self, karate_file, tmp_path, capsys):
        labels = tmp_path / "labels.txt"
        main(["detect", karate_file, "-o", str(labels)])
        capsys.readouterr()
        rc = main(["analyze", karate_file, str(labels), "--top", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "modularity" in out
        assert "DIMACS performance" in out
        assert "largest 3 communities" in out

    def test_analyze_length_mismatch(self, karate_file, tmp_path, capsys):
        labels = tmp_path / "labels.txt"
        labels.write_text("0\t0\n1\t0\n")
        rc = main(["analyze", karate_file, str(labels)])
        assert rc == 1
        assert "error" in capsys.readouterr().err


class TestTraceAndProfile:
    def test_trace_out_writes_valid_jsonl(self, tmp_path, capsys):
        graph_file = tmp_path / "g.txt"
        main(
            [
                "generate",
                "rmat",
                "-o",
                str(graph_file),
                "--scale",
                "7",
                "--seed",
                "2",
            ]
        )
        trace_file = tmp_path / "trace.jsonl"
        labels = tmp_path / "labels.txt"
        rc = main(
            [
                "detect",
                str(graph_file),
                "-o",
                str(labels),
                "--trace-out",
                str(trace_file),
            ]
        )
        assert rc == 0
        assert "trace:" in capsys.readouterr().err

        from repro.obs import read_trace

        data = read_trace(trace_file)
        assert data.complete
        assert data.meta["command"] == "detect"
        assert data.meta["n_vertices"] > 0
        levels = data.find("level")
        assert levels
        # every completed level carries its three phase spans
        completed = {s.level for s in levels if "n_pairs" in s.attrs}
        for phase in ("score", "match", "contract"):
            have = {s.level for s in data.find(phase)}
            assert completed <= have

    def test_profile_prints_phase_table(self, karate_file, capsys):
        rc = main(["detect", karate_file, "--profile"])
        assert rc == 0
        err = capsys.readouterr().err
        assert "phase profile" in err
        assert "contract %" in err
        assert "contraction share of phase time:" in err

    def test_trace_out_and_profile_together(self, karate_file, tmp_path, capsys):
        trace_file = tmp_path / "t.jsonl"
        rc = main(
            ["detect", karate_file, "--trace-out", str(trace_file), "--profile"]
        )
        assert rc == 0
        err = capsys.readouterr().err
        assert trace_file.exists()
        assert "phase profile" in err

    def test_untraced_detect_has_no_trace_output(self, karate_file, capsys):
        rc = main(["detect", karate_file])
        assert rc == 0
        err = capsys.readouterr().err
        assert "phase profile" not in err
        assert "trace:" not in err

    def test_bench_profile(self, tmp_path, capsys):
        trace_file = tmp_path / "bench.jsonl"
        rc = main(
            [
                "bench",
                "figure1",
                "--scale",
                "0.02",
                "--trace-out",
                str(trace_file),
                "--profile",
            ]
        )
        assert rc == 0
        err = capsys.readouterr().err
        assert "phase profile — rmat-24-16" in err

        from repro.obs import read_trace

        data = read_trace(trace_file)
        assert data.meta["command"] == "bench"
        runs = data.find("run")
        assert {s.attrs["graph"] for s in runs} == {
            "rmat-24-16",
            "soc-LiveJournal1",
        }


class TestVerbose:
    def test_verbose_logs_levels(self, karate_file, capsys):
        rc = main(["--verbose", "detect", karate_file])
        assert rc == 0
        # (log handler writes to stderr via logging; presence of the
        # normal summary suffices — the flag must not break anything)
        assert "communities" in capsys.readouterr().err


class TestMetricsOut:
    def test_detect_writes_prometheus_text(self, karate_file, tmp_path, capsys):
        out = tmp_path / "metrics.prom"
        rc = main(["detect", karate_file, "--metrics-out", str(out)])
        assert rc == 0
        assert "metrics:" in capsys.readouterr().err
        text = out.read_text()
        assert "# TYPE " in text
        assert "repro_match_worklist_edges" in text
        assert "repro_contract_bucket_occupancy_bucket" in text

    def test_bench_accepts_metrics_out(self, tmp_path, capsys):
        out = tmp_path / "metrics.prom"
        rc = main(
            ["bench", "figure1", "--scale", "0.02",
             "--metrics-out", str(out)]
        )
        assert rc == 0
        assert "# TYPE " in out.read_text()


class TestCompare:
    @pytest.fixture()
    def ledgers(self, tmp_path):
        from repro.bench.ledger import write_ledger
        from tests.test_bench_ledger import make_record

        base = write_ledger(make_record(name="base"), directory=tmp_path)
        same = write_ledger(make_record(name="same"), directory=tmp_path)
        slow = write_ledger(
            make_record(name="slow", match=2.0, totals=(2.5, 2.9)),
            directory=tmp_path,
        )
        return base, same, slow

    def test_no_regression_exits_zero(self, ledgers, capsys):
        base, same, _ = ledgers
        rc = main(["compare", str(base), str(same)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "no regression" in out
        assert "phase.match" in out

    def test_regression_exits_one(self, ledgers, capsys):
        base, _, slow = ledgers
        rc = main(["compare", str(base), str(slow)])
        assert rc == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_tolerance_flag_suppresses_regression(self, ledgers):
        base, _, slow = ledgers
        rc = main(
            ["compare", str(base), str(slow),
             "--tolerance", "100", "--quality-tolerance", "1"]
        )
        assert rc == 0

    def test_unreadable_ledger_exits_two(self, tmp_path, capsys, ledgers):
        rc = main(["compare", str(ledgers[0]), str(tmp_path / "missing.json")])
        assert rc == 2
        assert "error" in capsys.readouterr().err


class TestPerfettoOut:
    def test_detect_perfetto_out_writes_trace_events(
        self, karate_file, tmp_path, capsys
    ):
        import json

        out = tmp_path / "trace.perfetto.json"
        rc = main(
            ["detect", karate_file, "--perfetto-out", str(out)]
        )
        assert rc == 0
        assert "perfetto:" in capsys.readouterr().err
        doc = json.loads(out.read_text())
        events = doc["traceEvents"]
        assert any(e["ph"] == "X" and e["name"] == "score" for e in events)
        assert any(e["ph"] == "M" for e in events)

    def test_perfetto_out_alone_enables_tracing(self, karate_file, tmp_path):
        # no --trace-out needed: --perfetto-out must switch the tracer on
        out = tmp_path / "t.json"
        rc = main(["detect", karate_file, "--perfetto-out", str(out)])
        assert rc == 0
        assert out.exists()


class TestReport:
    @pytest.fixture()
    def trace_file(self, karate_file, tmp_path):
        trace = tmp_path / "trace.jsonl"
        labels = tmp_path / "labels.txt"
        assert (
            main(
                [
                    "detect",
                    karate_file,
                    "-o",
                    str(labels),
                    "--trace-out",
                    str(trace),
                ]
            )
            == 0
        )
        return trace

    def test_report_to_stdout(self, trace_file, capsys):
        rc = main(["report", str(trace_file)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "## Phase breakdown" in out
        assert "## Trace consistency" in out

    def test_report_to_file(self, trace_file, tmp_path):
        out = tmp_path / "report.md"
        rc = main(["report", str(trace_file), "-o", str(out)])
        assert rc == 0
        assert "## Hotspots" in out.read_text()

    def test_report_html(self, trace_file, tmp_path):
        out = tmp_path / "report.html"
        rc = main(["report", str(trace_file), "-o", str(out), "--html"])
        assert rc == 0
        assert out.read_text().startswith("<!DOCTYPE html>")

    def test_report_with_ledger(self, trace_file, tmp_path, capsys):
        from repro.bench.ledger import write_ledger
        from tests.test_bench_ledger import make_record

        ledger = write_ledger(make_record(name="run"), directory=tmp_path)
        rc = main(["report", str(trace_file), "--ledger", str(ledger)])
        assert rc == 0
        assert "## Benchmark ledger" in capsys.readouterr().out

    def test_unreadable_trace_exits_two(self, tmp_path, capsys):
        rc = main(["report", str(tmp_path / "missing.jsonl")])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestTrend:
    @pytest.fixture()
    def ledger_series(self, tmp_path):
        from repro.bench.ledger import write_ledger
        from tests.test_bench_ledger import make_record

        paths = []
        for k, match in enumerate((0.5, 0.5, 2.0)):
            record = make_record(
                name=f"run{k}", match=match,
                totals=(1.0 + match, 1.2 + match),
            )
            record.created_unix = float(k)
            paths.append(
                str(write_ledger(record, tmp_path / f"BENCH_run{k}.json"))
            )
        return paths

    def test_trend_tabulates_and_plots(self, ledger_series, capsys):
        rc = main(["trend", *ledger_series])
        assert rc == 0
        out = capsys.readouterr().out
        assert "run0" in out and "run2" in out
        assert "end_to_end" in out

    def test_trend_flags_regression_without_strict(self, ledger_series, capsys):
        rc = main(["trend", *ledger_series])
        assert rc == 0  # informational by default
        assert "regressions between consecutive runs" in capsys.readouterr().out
        # run0 -> run2 doubles end-to-end time

    def test_trend_strict_exits_one_on_regression(self, ledger_series):
        assert main(["trend", *ledger_series, "--strict"]) == 1

    def test_trend_strict_clean_exits_zero(self, ledger_series):
        assert main(["trend", *ledger_series[:2], "--strict"]) == 0

    def test_trend_metric_selection(self, ledger_series, capsys):
        rc = main(["trend", *ledger_series, "--metric", "score"])
        assert rc == 0
        assert "score" in capsys.readouterr().out

    def test_trend_unreadable_ledger_exits_two(self, tmp_path, capsys):
        rc = main(["trend", str(tmp_path / "nope.json")])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestKernels:
    def test_lists_all_kinds(self, capsys):
        rc = main(["kernels"])
        assert rc == 0
        out = capsys.readouterr().out
        for kind in ("scorer", "matcher", "contractor"):
            assert kind in out
        for name in ("worklist", "sweep", "gmm", "bucket", "spmatrix"):
            assert name in out
        assert "sharded" in out  # capability column

    def test_kind_filter(self, capsys):
        rc = main(["kernels", "--kind", "contractor"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "bucket" in out and "spmatrix" in out
        assert "worklist" not in out


class TestCompareConfigDrift:
    @pytest.fixture()
    def drifted(self, tmp_path):
        import json

        from repro.bench.ledger import write_ledger
        from tests.test_bench_ledger import make_record

        base = write_ledger(make_record(name="base"), directory=tmp_path)
        new = tmp_path / "BENCH_new.json"
        doc = json.loads(base.read_text())
        doc["name"] = "new"
        doc["config"]["matcher"] = "auto"
        doc["config"]["tuner"] = {"policy": "cost-model"}
        new.write_text(json.dumps(doc))
        return base, new

    def test_drift_exits_two_with_diagnostic(self, drifted, capsys):
        base, new = drifted
        rc = main(["compare", str(base), str(new)])
        assert rc == 2
        err = capsys.readouterr().err
        assert "different" in err
        assert "config.matcher" in err
        assert "config.tuner" in err
        assert "--ignore-config" in err

    def test_ignore_config_warns_and_proceeds(self, drifted, capsys):
        base, new = drifted
        rc = main(["compare", str(base), str(new), "--ignore-config"])
        assert rc == 0  # identical numbers: no regression
        captured = capsys.readouterr()
        assert "warning" in captured.err
        assert "config.matcher" in captured.err
        assert "no regression" in captured.out

    def test_matching_configs_do_not_trip_the_gate(self, tmp_path, capsys):
        from repro.bench.ledger import write_ledger
        from tests.test_bench_ledger import make_record

        a = write_ledger(make_record(name="a"), directory=tmp_path)
        b = write_ledger(make_record(name="b"), directory=tmp_path)
        assert main(["compare", str(a), str(b)]) == 0
        assert "warning" not in capsys.readouterr().err


class TestDetectAuto:
    def test_auto_kernels_print_tuner_summary(self, karate_file, capsys):
        rc = main(
            ["detect", karate_file, "--matcher", "auto",
             "--contractor", "auto"]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert "tuner (cost-model):" in captured.err
        assert "matcher:" in captured.err
        assert len(captured.out.strip().splitlines()) == 34

    def test_fixed_kernels_print_no_tuner_line(self, karate_file, capsys):
        rc = main(["detect", karate_file])
        assert rc == 0
        assert "tuner (" not in capsys.readouterr().err

    def test_tuner_table_flag(self, karate_file, tmp_path, capsys):
        import json

        from repro.core.tuner import DEFAULT_COST_TABLE

        table = tmp_path / "table.json"
        table.write_text(json.dumps(DEFAULT_COST_TABLE))
        rc = main(
            ["detect", karate_file, "--matcher", "auto",
             "--contractor", "auto", "--tuner-table", str(table)]
        )
        assert rc == 0
        assert "tuner (cost-model):" in capsys.readouterr().err

    def test_bad_tuner_table_exits_two(self, karate_file, tmp_path, capsys):
        table = tmp_path / "bad.json"
        table.write_text("{not json")
        rc = main(
            ["detect", karate_file, "--matcher", "auto",
             "--contractor", "auto", "--tuner-table", str(table)]
        )
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_auto_matches_fixed_labels(self, karate_file, tmp_path):
        fixed_out = tmp_path / "fixed.txt"
        auto_out = tmp_path / "auto.txt"
        assert main(["detect", karate_file, "-o", str(fixed_out)]) == 0
        assert main(
            ["detect", karate_file, "-o", str(auto_out),
             "--matcher", "auto", "--contractor", "auto"]
        ) == 0
        assert auto_out.read_text() == fixed_out.read_text()
