"""The out-of-core storage layer: spill files and the sharded CSR store.

Covers the checksummed container format (:mod:`repro.spmatrix.spill`) —
roundtrip, alignment, corruption detection — and
:class:`repro.graph.csr.ShardedCSRStore`: spill/reopen value-identity,
shard tiling, crash-safety against torn files, and cleanup.
"""

import json

import numpy as np
import pytest

from repro.errors import SpillError
from repro.generators import planted_partition_graph
from repro.graph.csr import EdgeShard, ShardedCSRStore, _shard_ranges
from repro.spmatrix.spill import (
    SPILL_MAGIC,
    read_spill,
    scratch_memmap,
    spill_nbytes,
    write_spill,
)


@pytest.fixture(scope="module")
def sbm():
    return planted_partition_graph(400, seed=3)


class TestSpillFormat:
    def test_roundtrip_preserves_values_and_dtypes(self, tmp_path):
        arrays = {
            "a": np.arange(100, dtype=np.int64),
            "b": np.linspace(0.0, 1.0, 33, dtype=np.float64),
            "c": np.array([[1, 2], [3, 4]], dtype=np.uint32),
        }
        path = tmp_path / "x.spill"
        total = write_spill(path, arrays)
        assert path.stat().st_size == total
        out = read_spill(path)
        assert set(out) == set(arrays)
        for name, arr in arrays.items():
            assert out[name].dtype == arr.dtype
            np.testing.assert_array_equal(np.asarray(out[name]), arr)

    def test_magic_leads_the_file(self, tmp_path):
        path = tmp_path / "x.spill"
        write_spill(path, {"a": np.zeros(4)})
        assert path.read_bytes()[: len(SPILL_MAGIC)] == SPILL_MAGIC

    def test_payload_offsets_are_aligned(self, tmp_path):
        path = tmp_path / "x.spill"
        write_spill(
            path, {"a": np.zeros(7, np.uint8), "b": np.zeros(5, np.float64)}
        )
        header = json.loads(
            path.read_bytes()[12:].split(b"\0", 1)[0].decode("utf-8")
        )
        for entry in header["arrays"]:
            assert entry["offset"] % 64 == 0

    def test_empty_mapping_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_spill(tmp_path / "x.spill", {})

    def test_bitflip_detected_by_checksum(self, tmp_path):
        path = tmp_path / "x.spill"
        write_spill(path, {"a": np.arange(64, dtype=np.int64)})
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip a payload byte at rest
        path.write_bytes(bytes(data))
        with pytest.raises(SpillError, match="checksum"):
            read_spill(path)
        # verify=False trusts the header and hands out the view anyway
        assert "a" in read_spill(path, verify=False)

    def test_truncation_detected_before_mapping(self, tmp_path):
        path = tmp_path / "x.spill"
        total = write_spill(path, {"a": np.arange(1000, dtype=np.int64)})
        with open(path, "r+b") as fh:
            fh.truncate(total // 2)
        with pytest.raises(SpillError, match="torn"):
            read_spill(path, verify=False)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "x.spill"
        path.write_bytes(b"NOTSPILL" + b"\0" * 64)
        with pytest.raises(SpillError, match="magic"):
            read_spill(path)

    def test_copy_on_write_mutation_stays_private(self, tmp_path):
        path = tmp_path / "x.spill"
        write_spill(path, {"a": np.arange(10, dtype=np.int64)})
        view = read_spill(path)["a"]
        view[0] = 999  # mode="c": never dirties the file
        again = read_spill(path)["a"]
        assert again[0] == 0

    def test_spill_nbytes_sums_payload(self, tmp_path):
        path = tmp_path / "x.spill"
        arrays = {"a": np.zeros(10, np.int64), "b": np.zeros(3, np.float64)}
        write_spill(path, arrays)
        assert spill_nbytes(path) == sum(a.nbytes for a in arrays.values())

    def test_scratch_memmap_is_writable(self, tmp_path):
        arr = scratch_memmap(
            tmp_path / "scratch.npy", dtype=np.float64, shape=(16,)
        )
        arr[:] = 2.5
        assert float(arr.sum()) == 40.0


class TestShardRanges:
    def test_ranges_tile_edge_space(self):
        ranges = _shard_ranges(100, n_shards=7)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == 100
        assert all(a[1] == b[0] for a, b in zip(ranges, ranges[1:]))

    def test_shard_edges_cap_wins(self):
        ranges = _shard_ranges(10, n_shards=2, shard_edges=3)
        assert ranges == [(0, 3), (3, 6), (6, 9), (9, 10)]

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            _shard_ranges(10, n_shards=0)
        with pytest.raises(ValueError):
            _shard_ranges(10, shard_edges=0)

    def test_empty_graph_single_empty_shard(self):
        assert _shard_ranges(0) == [(0, 0)]


class TestShardedCSRStore:
    def test_as_graph_is_value_identical(self, sbm, tmp_path):
        store = ShardedCSRStore.spill(sbm, tmp_path / "s", n_shards=4)
        twin = store.as_graph()
        assert twin.n_vertices == sbm.n_vertices
        assert twin.n_edges == sbm.n_edges
        np.testing.assert_array_equal(twin.edges.ei, sbm.edges.ei)
        np.testing.assert_array_equal(twin.edges.ej, sbm.edges.ej)
        np.testing.assert_array_equal(twin.edges.w, sbm.edges.w)
        np.testing.assert_array_equal(twin.self_weights, sbm.self_weights)
        assert twin.spill_store is store

    def test_shards_cover_all_edges(self, sbm, tmp_path):
        store = ShardedCSRStore.spill(sbm, tmp_path / "s", n_shards=5)
        assert store.n_shards == 5
        seen = 0
        for shard in store.iter_shards():
            assert isinstance(shard, EdgeShard)
            np.testing.assert_array_equal(
                shard.ei, sbm.edges.ei[shard.lo : shard.hi]
            )
            seen += shard.n_edges
        assert seen == sbm.n_edges

    def test_reopen_verifies_checksums(self, sbm, tmp_path):
        ShardedCSRStore.spill(sbm, tmp_path / "s")
        reopened = ShardedCSRStore.open(tmp_path / "s")
        np.testing.assert_array_equal(
            reopened.as_graph().edges.w, sbm.edges.w
        )

    def test_torn_store_raises_spillerror(self, sbm, tmp_path):
        store = ShardedCSRStore.spill(sbm, tmp_path / "s")
        spill_file = store.directory / "graph.spill"
        with open(spill_file, "r+b") as fh:
            fh.truncate(spill_file.stat().st_size // 2)
        with pytest.raises(SpillError):
            ShardedCSRStore.open(tmp_path / "s")

    def test_missing_manifest_raises_spillerror(self, tmp_path):
        with pytest.raises(SpillError, match="manifest"):
            ShardedCSRStore.open(tmp_path / "nowhere")

    def test_nbytes_matches_arrays(self, sbm, tmp_path):
        store = ShardedCSRStore.spill(sbm, tmp_path / "s")
        e = sbm.edges
        expected = (
            e.ei.nbytes
            + e.ej.nbytes
            + e.w.nbytes
            + e.bucket_start.nbytes
            + e.bucket_end.nbytes
            + sbm.self_weights.nbytes
        )
        assert store.nbytes == expected

    def test_cleanup_removes_directory(self, sbm, tmp_path):
        store = ShardedCSRStore.spill(sbm, tmp_path / "s")
        store.cleanup()
        assert not (tmp_path / "s").exists()
