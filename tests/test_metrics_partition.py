"""Unit tests for Partition."""

import numpy as np
import pytest

from repro.metrics import Partition


class TestConstruction:
    def test_dense_labels_ok(self):
        p = Partition(np.array([0, 1, 0, 2]))
        assert p.n_communities == 3
        assert p.n_vertices == 4

    def test_sparse_labels_rejected(self):
        with pytest.raises(ValueError, match="dense"):
            Partition(np.array([0, 2]))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Partition(np.array([-1, 0]))

    def test_from_labels_renumbers(self):
        p = Partition.from_labels(np.array([5, 9, 5]))
        assert p.n_communities == 2
        np.testing.assert_array_equal(p.labels, [0, 1, 0])

    def test_singletons(self):
        p = Partition.singletons(4)
        assert p.n_communities == 4

    def test_empty(self):
        p = Partition(np.empty(0, dtype=np.int64))
        assert p.n_communities == 0
        assert p.n_vertices == 0


class TestQueries:
    def test_sizes(self):
        p = Partition(np.array([0, 0, 1, 1, 1]))
        np.testing.assert_array_equal(p.sizes(), [2, 3])

    def test_members(self):
        p = Partition(np.array([0, 1, 0]))
        np.testing.assert_array_equal(p.members(0), [0, 2])

    def test_members_out_of_range(self):
        p = Partition(np.array([0]))
        with pytest.raises(IndexError):
            p.members(1)

    def test_restrict_to(self):
        p = Partition(np.array([0, 1, 1, 2]))
        r = p.restrict_to(np.array([1, 2, 3]))
        assert r.n_communities == 2
        np.testing.assert_array_equal(r.labels, [0, 0, 1])


class TestEquality:
    def test_eq(self):
        assert Partition(np.array([0, 1])) == Partition(np.array([0, 1]))
        assert Partition(np.array([0, 1])) != Partition(np.array([0, 0]))

    def test_same_clustering_up_to_renaming(self):
        a = Partition(np.array([0, 0, 1, 1]))
        b = Partition(np.array([1, 1, 0, 0]))
        assert a.same_clustering(b)
        assert a != b

    def test_different_clustering(self):
        a = Partition(np.array([0, 0, 1, 1]))
        b = Partition(np.array([0, 1, 0, 1]))
        assert not a.same_clustering(b)

    def test_different_sizes(self):
        a = Partition(np.array([0, 0]))
        b = Partition(np.array([0, 0, 0]))
        assert not a.same_clustering(b)
