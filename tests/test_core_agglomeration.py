"""Unit tests for the agglomerative driver."""

import numpy as np
import pytest

from repro import (
    ModularityScorer,
    TerminationCriteria,
    detect_communities,
    modularity,
)
from repro.generators import ring_of_cliques, star_graph, two_triangles
from repro.graph import from_edges
from repro.metrics import coverage
from repro.platform import TraceRecorder


class TestBasicRuns:
    def test_ring_of_cliques_recovered(self):
        """Cliques must never be split.  Adjacent cliques may merge in
        pairs — modularity's resolution limit (Fortunato–Barthélemy)
        genuinely favors that, and CNM does the same on this family."""
        k, s = 6, 5
        g = ring_of_cliques(k, s)
        res = detect_communities(
            g, termination=TerminationCriteria.local_maximum()
        )
        assert k / 3 <= res.n_communities <= k
        labels = res.partition.labels
        for c in range(k):
            block = labels[c * s : (c + 1) * s]
            assert len(set(block.tolist())) == 1

    def test_karate_reasonable_modularity(self, karate):
        res = detect_communities(
            karate, termination=TerminationCriteria.local_maximum()
        )
        q = modularity(karate, res.partition)
        # The paper reports "reasonable" modularity vs sequential SNAP;
        # karate's optimum is ~0.42, and matching-based agglomeration
        # should land within reach of it.
        assert q > 0.25

    def test_empty_graph(self):
        g = from_edges(np.empty(0, int), np.empty(0, int), n_vertices=4)
        res = detect_communities(g)
        assert res.n_communities == 4
        assert res.terminated_by == "local_maximum"

    def test_single_vertex(self):
        g = from_edges(np.empty(0, int), np.empty(0, int), n_vertices=1)
        res = detect_communities(g)
        assert res.n_communities == 1
        assert res.terminated_by == "min_communities"

    def test_deterministic(self, karate):
        a = detect_communities(karate)
        b = detect_communities(karate)
        assert a.partition == b.partition


class TestTermination:
    def test_coverage_stop(self, cliques):
        res = detect_communities(
            cliques, termination=TerminationCriteria(coverage=0.5)
        )
        if res.terminated_by == "coverage":
            assert coverage(cliques, res.partition) >= 0.5

    def test_local_maximum_no_positive_scores_left(self, karate):
        res = detect_communities(
            karate, termination=TerminationCriteria.local_maximum()
        )
        assert res.terminated_by == "local_maximum"
        scores = ModularityScorer().score(res.final_graph)
        assert not np.any(scores > 0)

    def test_max_levels(self, karate):
        res = detect_communities(
            karate,
            termination=TerminationCriteria(coverage=None, max_levels=1),
        )
        assert res.terminated_by == "max_levels"
        assert res.n_levels == 1

    def test_min_communities(self, cliques):
        res = detect_communities(
            cliques,
            termination=TerminationCriteria(coverage=None, min_communities=3),
        )
        assert res.n_communities >= 3

    def test_min_communities_exact_limit(self):
        g = ring_of_cliques(4, 3)
        res = detect_communities(
            g,
            termination=TerminationCriteria(coverage=None, min_communities=2),
        )
        assert res.n_communities >= 2

    def test_max_community_size(self, cliques):
        res = detect_communities(
            cliques,
            termination=TerminationCriteria(
                coverage=None, max_community_size=4
            ),
        )
        assert res.partition.sizes().max() <= 4

    def test_stalled(self, star):
        res = detect_communities(
            star,
            termination=TerminationCriteria(
                coverage=None, min_merge_fraction=0.4
            ),
        )
        assert res.terminated_by in ("stalled", "local_maximum")


class TestLevels:
    def test_level_stats_consistent(self, karate):
        res = detect_communities(
            karate, termination=TerminationCriteria.local_maximum()
        )
        assert res.levels[0].n_vertices == 34
        assert res.levels[0].n_edges == 78
        for prev, cur in zip(res.levels, res.levels[1:]):
            assert cur.n_vertices == prev.n_vertices - prev.n_pairs
            assert cur.n_edges <= prev.n_edges

    def test_modularity_increases_monotonically(self, karate):
        res = detect_communities(
            karate, termination=TerminationCriteria.local_maximum()
        )
        qs = [s.modularity_after for s in res.levels]
        assert all(b >= a - 1e-12 for a, b in zip(qs, qs[1:]))

    def test_final_partition_matches_final_graph(self, karate):
        res = detect_communities(karate)
        assert res.n_communities == res.final_graph.n_vertices
        assert modularity(karate, res.partition) == pytest.approx(
            res.levels[-1].modularity_after
        )

    def test_total_edge_work_bounded(self, karate):
        res = detect_communities(
            karate, termination=TerminationCriteria.local_maximum()
        )
        # O(|E| * K) bound from §III.
        assert res.total_edge_work() <= 78 * res.n_levels


class TestVariants:
    def test_all_kernel_combinations_agree(self, cliques):
        results = [
            detect_communities(cliques, matcher=m, contractor=c)
            for m in ("worklist", "sweep")
            for c in ("bucket", "chains")
        ]
        for r in results[1:]:
            assert r.partition == results[0].partition

    def test_unknown_matcher(self, karate):
        with pytest.raises(ValueError, match="matcher"):
            detect_communities(karate, matcher="bogus")

    def test_unknown_contractor(self, karate):
        with pytest.raises(ValueError, match="contractor"):
            detect_communities(karate, contractor="bogus")

    def test_recorder_levels_advance(self, karate):
        rec = TraceRecorder()
        res = detect_communities(karate, recorder=rec)
        assert rec.n_levels == res.n_levels
        for lvl in range(res.n_levels):
            assert rec.by_level(lvl)

    def test_input_graph_unmodified(self, karate):
        w_before = karate.edges.w.copy()
        detect_communities(karate)
        np.testing.assert_array_equal(karate.edges.w, w_before)


class TestProgressCallback:
    def test_progress_called_per_level(self, karate):
        from repro import TerminationCriteria, detect_communities

        seen = []
        res = detect_communities(
            karate,
            termination=TerminationCriteria.local_maximum(),
            progress=seen.append,
        )
        assert len(seen) == res.n_levels
        assert [s.level for s in seen] == list(range(res.n_levels))
        assert seen == res.levels

    def test_logging_emits_level_lines(self, karate, caplog):
        import logging

        from repro import detect_communities

        with caplog.at_level(logging.INFO, logger="repro.core.agglomeration"):
            detect_communities(karate)
        assert any("level 0" in r.getMessage() for r in caplog.records)
