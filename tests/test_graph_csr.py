"""Unit tests for the CSR adjacency view."""

import numpy as np
import pytest

from repro.graph import CSRAdjacency, from_edges


class TestCSR:
    def test_symmetric_expansion(self):
        g = from_edges(np.array([0, 1]), np.array([1, 2]))
        csr = CSRAdjacency.from_edgelist(g.edges)
        assert sorted(csr.neighbors(1).tolist()) == [0, 2]
        assert csr.neighbors(0).tolist() == [1]

    def test_weights_aligned(self):
        g = from_edges(np.array([0, 1]), np.array([1, 2]), np.array([2.0, 3.0]))
        csr = CSRAdjacency.from_edgelist(g.edges)
        n1 = csr.neighbors(1)
        w1 = csr.neighbor_weights(1)
        lookup = dict(zip(n1.tolist(), w1.tolist()))
        assert lookup == {0: 2.0, 2: 3.0}

    def test_degrees_match_edgelist(self, karate):
        csr = CSRAdjacency.from_edgelist(karate.edges)
        np.testing.assert_array_equal(csr.degrees(), karate.edges.degrees())

    def test_total_arcs(self, karate):
        csr = CSRAdjacency.from_edgelist(karate.edges)
        assert csr.xadj[-1] == 2 * karate.n_edges

    def test_isolated_vertex(self):
        g = from_edges(np.array([0]), np.array([1]), n_vertices=3)
        csr = CSRAdjacency.from_edgelist(g.edges)
        assert csr.degree(2) == 0
        assert len(csr.neighbors(2)) == 0

    def test_empty_graph(self):
        g = from_edges(np.empty(0, int), np.empty(0, int), n_vertices=4)
        csr = CSRAdjacency.from_edgelist(g.edges)
        assert csr.xadj[-1] == 0
        assert all(csr.degree(v) == 0 for v in range(4))

    def test_neighbor_sets_consistent(self, random_graph_factory):
        g = random_graph_factory(n=25, m=80, seed=3)
        csr = CSRAdjacency.from_edgelist(g.edges)
        # u in N(v) iff v in N(u)
        for v in range(g.n_vertices):
            for u in csr.neighbors(v).tolist():
                assert v in csr.neighbors(u).tolist()
