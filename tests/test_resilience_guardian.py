"""Run-guardian unit tests: watchdog thresholds, ladder mechanics,
breach accounting, and the inert null guardian.

These tests drive :class:`RunGuardian` directly against a hand-built
:class:`RunContext` — no engine, no worker processes — so each rung and
threshold is exercised in isolation.  The end-to-end ladder walks (real
engine, injected faults, process pool) live in
``tests/test_chaos_guardian.py``.
"""

import time

import numpy as np
import pytest

from repro.core import ModularityScorer
from repro.core.contraction import contract
from repro.core.engine import RunContext
from repro.core.matching import MatchingResult, match_locally_dominant
from repro.errors import GuardianBreach, RunAbortedError
from repro.obs import Tracer
from repro.parallel.backends import ProcessPoolBackend, SerialBackend
from repro.resilience import RecoveryReport
from repro.resilience.guardian import (
    LADDER_RUNGS,
    NULL_GUARDIAN,
    NullGuardian,
    RunGuardian,
    _rss_mb,
    as_guardian,
)
from repro.types import NO_VERTEX, VERTEX_DTYPE


def _ctx(backend=None):
    return RunContext.create(tracer=Tracer(), backend=backend)


def _bound(guardian, karate, backend=None):
    ctx = _ctx(backend)
    guardian.bind(ctx, karate)
    return ctx


class TestConstruction:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RunGuardian(phase_deadline_s=0.0)
        with pytest.raises(ValueError):
            RunGuardian(memory_budget_mb=-1.0)
        with pytest.raises(ValueError):
            RunGuardian(stall_passes=0)
        with pytest.raises(ValueError):
            RunGuardian(stall_merge_fraction=1.5)
        with pytest.raises(ValueError):
            RunGuardian("everything")

    def test_as_guardian_normalization(self):
        assert as_guardian(None) is NULL_GUARDIAN
        g = RunGuardian()
        assert as_guardian(g) is g

    def test_enabled_flags(self):
        assert RunGuardian().enabled
        assert not NULL_GUARDIAN.enabled

    def test_use_before_bind_raises(self):
        g = RunGuardian()
        with pytest.raises(RuntimeError, match="bind"):
            g.phase("score", 0)

    def test_rss_sample_is_positive(self):
        rss = _rss_mb()
        assert rss is not None and rss > 0


class TestNullGuardian:
    def test_hooks_are_noops(self, karate):
        g = NullGuardian()
        g.bind(None, None)
        with g.phase("score", 0):
            pass
        g.observe_matching(0, None, 10)
        g.audit_contraction(0)
        g.audit_quality(0)

    def test_null_phase_guard_propagates_exceptions(self):
        with pytest.raises(ValueError):
            with NULL_GUARDIAN.phase("score", 0):
                raise ValueError("kernel failure")


class TestWatchdog:
    def test_deadline_breach_degrades(self, karate):
        g = RunGuardian("sample", phase_deadline_s=0.005)
        ctx = _bound(g, karate)  # serial: first rung inapplicable
        with pytest.warns(GuardianBreach, match="deadline"):
            with g.phase("score", 0):
                time.sleep(0.02)
        assert ctx.recovery.guardian_breaches == 1
        assert ctx.recovery.ladder == ["halve-chunks(phase_deadline@level0)"]
        assert ctx.backend.chunks_per_worker == 2

    def test_fast_phase_no_breach(self, karate):
        g = RunGuardian("sample", phase_deadline_s=5.0)
        ctx = _bound(g, karate)
        with g.phase("score", 0):
            pass
        assert ctx.recovery.guardian_breaches == 0
        assert ctx.recovery.ladder == []

    def test_memory_breach_degrades(self, karate):
        # any real process dwarfs a 0.5 MiB budget
        g = RunGuardian("sample", memory_budget_mb=0.5)
        ctx = _bound(g, karate)
        with pytest.warns(GuardianBreach, match="budget"):
            with g.phase("contract", 2):
                pass
        assert ctx.recovery.guardian_breaches == 1
        assert ctx.recovery.ladder == ["halve-chunks(memory_budget@level2)"]

    def test_propagating_exception_skips_checks(self, karate):
        g = RunGuardian("sample", phase_deadline_s=1e-9, memory_budget_mb=1e-9)
        ctx = _bound(g, karate)
        with pytest.raises(ValueError, match="kernel"):
            with g.phase("score", 0):
                raise ValueError("kernel failure")
        # the failure is already louder than any breach
        assert ctx.recovery.guardian_breaches == 0

    def test_breach_emits_span_and_counters(self, karate):
        g = RunGuardian("sample", phase_deadline_s=0.001)
        ctx = _bound(g, karate)
        with pytest.warns(GuardianBreach):
            with g.phase("match", 1):
                time.sleep(0.01)
        breach = ctx.tracer.find("guardian_breach")
        assert len(breach) == 1
        assert breach[0].attrs["kind"] == "phase_deadline"
        assert breach[0].attrs["phase"] == "match"
        assert breach[0].level == 1
        degrade = ctx.tracer.find("guardian_degrade")
        assert len(degrade) == 1
        assert ctx.tracer.metrics.counter("guardian.breaches").value == 1
        assert ctx.tracer.metrics.counter("guardian.degradations").value == 1


class TestStallDetector:
    @staticmethod
    def _matching(n, passes, n_pairs):
        partner = np.full(n, NO_VERTEX, dtype=VERTEX_DTYPE)
        for p in range(n_pairs):
            partner[2 * p] = 2 * p + 1
            partner[2 * p + 1] = 2 * p
        return MatchingResult(
            partner=partner,
            matched_edges=np.arange(n_pairs, dtype=np.int64),
            passes=passes,
            failed_claims=0,
        )

    def test_stall_breaches(self, karate):
        g = RunGuardian("sample", stall_passes=100, stall_merge_fraction=0.02)
        ctx = _bound(g, karate)
        stalled = self._matching(1000, passes=150, n_pairs=5)
        with pytest.warns(GuardianBreach, match="stall"):
            g.observe_matching(3, stalled, 1000)
        assert ctx.recovery.guardian_breaches == 1
        assert ctx.recovery.ladder == ["halve-chunks(matching_stall@level3)"]

    def test_fast_convergence_no_breach(self, karate):
        g = RunGuardian("sample", stall_passes=100)
        ctx = _bound(g, karate)
        g.observe_matching(0, self._matching(1000, passes=3, n_pairs=5), 1000)
        assert ctx.recovery.guardian_breaches == 0

    def test_good_progress_no_breach(self, karate):
        # many passes but real merge progress is not a stall
        g = RunGuardian("sample", stall_passes=100, stall_merge_fraction=0.02)
        ctx = _bound(g, karate)
        g.observe_matching(0, self._matching(1000, passes=150, n_pairs=400), 1000)
        assert ctx.recovery.guardian_breaches == 0


class TestLadder:
    def test_full_walk_from_process_pool(self, karate):
        g = RunGuardian("sample", phase_deadline_s=0.001)
        ctx = _bound(g, karate, backend=ProcessPoolBackend(2))
        rungs = []
        for level in range(3):
            with pytest.warns(GuardianBreach):
                with g.phase("score", level):
                    time.sleep(0.01)
            rungs.append(ctx.recovery.ladder[-1])
        assert rungs == [
            "serial-backend(phase_deadline@level0)",
            "halve-chunks(phase_deadline@level1)",
            "lower-audit(phase_deadline@level2)",
        ]
        assert isinstance(ctx.backend, SerialBackend)
        assert ctx.backend.chunks_per_worker == 2
        assert g.auditor.mode == "off"  # sample lowered once
        with pytest.warns(GuardianBreach), pytest.raises(RunAbortedError) as ei:
            with g.phase("score", 3):
                time.sleep(0.01)
        exc = ei.value
        assert exc.reason == "phase_deadline@level3"
        assert exc.report is ctx.recovery
        assert ctx.recovery.ladder[-1] == "abort(phase_deadline@level3)"
        assert ctx.recovery.guardian_breaches == 4
        assert len(ctx.recovery.ladder) == len(LADDER_RUNGS)

    def test_serial_backend_rung_skipped_when_already_serial(self, karate):
        g = RunGuardian("full", phase_deadline_s=0.001)
        ctx = _bound(g, karate)  # default serial backend
        with pytest.warns(GuardianBreach):
            with g.phase("score", 0):
                time.sleep(0.01)
        # serial-backend inapplicable: the ladder starts at halve-chunks
        assert ctx.recovery.ladder == ["halve-chunks(phase_deadline@level0)"]

    def test_audit_off_skips_lower_audit_rung(self, karate):
        g = RunGuardian("off", phase_deadline_s=0.001)
        ctx = _bound(g, karate)
        with pytest.warns(GuardianBreach):
            with g.phase("score", 0):
                time.sleep(0.01)
        assert ctx.recovery.ladder == ["halve-chunks(phase_deadline@level0)"]
        # next breach: lower-audit inapplicable (already off) -> abort
        with pytest.warns(GuardianBreach), pytest.raises(RunAbortedError):
            with g.phase("score", 1):
                time.sleep(0.01)
        assert ctx.recovery.ladder[-1] == "abort(phase_deadline@level1)"

    def test_serial_swap_preserves_chunking(self, karate):
        g = RunGuardian("sample", phase_deadline_s=0.001)
        ctx = _bound(
            g, karate, backend=ProcessPoolBackend(2, chunks_per_worker=4)
        )
        with pytest.warns(GuardianBreach):
            with g.phase("score", 0):
                time.sleep(0.01)
        assert isinstance(ctx.backend, SerialBackend)
        assert ctx.backend.chunks_per_worker == 4

    def test_bind_resets_ladder(self, karate):
        g = RunGuardian("sample", phase_deadline_s=0.001)
        ctx1 = _bound(g, karate)
        with pytest.warns(GuardianBreach):
            with g.phase("score", 0):
                time.sleep(0.01)
        assert ctx1.recovery.ladder
        ctx2 = _bound(g, karate)
        assert ctx2.recovery.ladder == []
        with pytest.warns(GuardianBreach):
            with g.phase("score", 0):
                time.sleep(0.01)
        # fresh run starts from the top of the ladder again
        assert ctx2.recovery.ladder == ["halve-chunks(phase_deadline@level0)"]


class TestAuditHooks:
    @pytest.fixture
    def level(self, karate):
        scores = ModularityScorer().score(karate)
        matching = match_locally_dominant(karate, scores)
        after, mapping = contract(karate, matching)
        return karate, scores, matching, mapping, after

    def test_audit_contraction_traced(self, level):
        karate, scores, matching, mapping, after = level
        g = RunGuardian("full")
        ctx = _bound(g, karate)
        g.audit_contraction(
            0,
            graph_before=karate,
            scores=scores,
            matching=matching,
            mapping=mapping,
            graph_after=after,
        )
        spans = ctx.tracer.find("guardian_audit")
        assert len(spans) == 1
        n = spans[0].attrs["checks"]
        assert n >= 5
        assert ctx.tracer.metrics.counter("guardian.checks").value == n

    def test_audit_quality_defers_partition_build(self, level):
        karate, scores, matching, mapping, after = level
        calls = []

        def build_partition():
            calls.append(1)
            from repro.metrics import Partition

            return Partition(np.asarray(mapping))

        g = RunGuardian("sample", sample_every=4)
        _bound(g, karate)
        from repro.metrics import coverage, modularity
        from repro.metrics.partition import Partition

        part = Partition(np.asarray(mapping))
        q, cov = modularity(karate, part), coverage(karate, part)
        # level 1 is unsampled: the expensive partition is never built
        g.audit_quality(
            1, partition=build_partition, tracked_modularity=q, tracked_coverage=cov
        )
        assert calls == []
        g.audit_quality(
            0, partition=build_partition, tracked_modularity=q, tracked_coverage=cov
        )
        assert calls == [1]

    def test_audits_noop_when_off(self, level):
        karate, scores, matching, mapping, after = level
        g = RunGuardian("off")
        ctx = _bound(g, karate)
        g.audit_contraction(
            0,
            graph_before=karate,
            scores=scores,
            matching=matching,
            mapping=mapping,
            graph_after=after,
        )
        assert ctx.tracer.find("guardian_audit") == []


class TestRecoveryReport:
    def test_ladder_in_report_dict_and_summary(self):
        rep = RecoveryReport()
        rep.guardian_breaches = 2
        rep.ladder.extend(["serial-backend(x)", "abort(y)"])
        d = rep.as_dict()
        assert d["guardian_breaches"] == 2
        assert d["ladder"] == ["serial-backend(x)", "abort(y)"]
        assert rep.any_recovery()
        assert "serial-backend(x)" in rep.summary()

    def test_merge_extends_ladder(self):
        a = RecoveryReport()
        a.ladder.append("serial-backend(x)")
        a.guardian_breaches = 1
        b = RecoveryReport()
        b.ladder.append("halve-chunks(y)")
        b.guardian_breaches = 2
        a.merge(b)
        assert a.ladder == ["serial-backend(x)", "halve-chunks(y)"]
        assert a.guardian_breaches == 3

    def test_run_aborted_error_attributes(self):
        rep = RecoveryReport()
        exc = RunAbortedError("nope", reason="r@level0", report=rep)
        assert exc.reason == "r@level0"
        assert exc.report is rep
        assert exc.checkpoint_path is None

    def test_guardian_breach_is_user_warning(self):
        assert issubclass(GuardianBreach, UserWarning)
