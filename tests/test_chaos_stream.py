"""Kill-chaos suite for the streaming service: SIGKILL anywhere, recover
bit-identical.

Each scenario replays the same drifting edge log twice: once
uninterrupted (the reference), once with a real ``SIGKILL`` delivered
at a deterministic crash point (``FaultPlan.sigkill_at`` inside a child
process — no atexit, no flush, exactly a power cut), followed by a
restart of the same command.  The recovered partition must be
**bit-identical** to the reference and the merged ``BENCH_stream.json``
must cover every batch exactly once.  This is the robustness contract
``docs/STREAMING.md`` documents and the CI kill-chaos job enforces.

Marked ``faultinject`` so CI runs these in a dedicated time-boxed job.
"""

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.stream.replay import generate_edge_log
from repro.stream.service import CRASH_POINTS

pytestmark = [pytest.mark.faultinject, pytest.mark.timeout(300)]

N_BATCHES = 10

_CHILD = r"""
import sys
sys.path.insert(0, {src!r})
import numpy as np
from repro.resilience.faults import FaultPlan
from repro.stream.replay import ReplayHarness
from repro.stream.service import DetectionService, StreamConfig

data_dir, log_path, bench_path, labels_out, kill = sys.argv[1:6]
faults = None
if kill:
    point, _, idx = kill.rpartition(":")
    faults = FaultPlan.sigkill_at(point, [int(idx)])
cfg = StreamConfig(snapshot_every=4, drift_threshold=0.05)
svc = DetectionService(data_dir, cfg, faults=faults)
ReplayHarness(svc, bench_path=bench_path).run(log_path)
np.save(labels_out, svc.labels)
"""


@pytest.fixture(scope="module")
def edge_log(tmp_path_factory):
    d = tmp_path_factory.mktemp("stream_chaos")
    log = generate_edge_log(
        d / "edges.log",
        n_batches=N_BATCHES,
        batch_size=48,
        n_vertices=64,
        n_blocks=4,
        drift_every=4,
        seed=7,
    )
    return log


@pytest.fixture(scope="module")
def reference_labels(edge_log, tmp_path_factory):
    d = tmp_path_factory.mktemp("stream_ref")
    r = _run(d / "state", edge_log, d / "bench.json", d / "labels.npy")
    assert r.returncode == 0, r.stderr
    return np.load(d / "labels.npy")


def _run(data_dir, log, bench, labels, kill=""):
    src = str(Path(__file__).resolve().parents[1] / "src")
    return subprocess.run(
        [
            sys.executable,
            "-c",
            _CHILD.format(src=src),
            str(data_dir),
            str(log),
            str(bench),
            str(labels),
            kill,
        ],
        capture_output=True,
        text=True,
        timeout=240,
    )


@pytest.mark.parametrize(
    "point,index",
    [
        ("wal-append", 2),
        ("apply", 5),
        ("snapshot", 1),
        ("post-snapshot", 1),
        ("wal-rerun", 0),
    ],
)
def test_sigkill_then_restart_is_bit_identical(
    point, index, edge_log, reference_labels, tmp_path
):
    bench = tmp_path / "bench.json"
    labels = tmp_path / "labels.npy"
    first = _run(tmp_path / "state", edge_log, bench, labels, f"{point}:{index}")
    assert first.returncode == -9, (
        f"expected SIGKILL at {point}:{index}, rc={first.returncode}\n"
        f"{first.stderr[-2000:]}"
    )
    second = _run(tmp_path / "state", edge_log, bench, labels)
    assert second.returncode == 0, second.stderr[-3000:]
    np.testing.assert_array_equal(np.load(labels), reference_labels)
    entries = json.loads(bench.read_text())["entries"]
    assert sorted(e["seq"] for e in entries) == list(range(1, N_BATCHES + 1))


def test_crash_point_names_cover_the_parametrization():
    # Guard: if CRASH_POINTS gains a point, this suite must grow a kill.
    covered = {"wal-append", "apply", "snapshot", "post-snapshot", "wal-rerun"}
    assert covered == set(CRASH_POINTS)


def test_double_kill_still_recovers(edge_log, reference_labels, tmp_path):
    """Two consecutive crashes (kill, restart, kill, restart) converge."""
    bench = tmp_path / "bench.json"
    labels = tmp_path / "labels.npy"
    first = _run(tmp_path / "state", edge_log, bench, labels, "apply:2")
    assert first.returncode == -9
    second = _run(tmp_path / "state", edge_log, bench, labels, "apply:3")
    assert second.returncode == -9
    final = _run(tmp_path / "state", edge_log, bench, labels)
    assert final.returncode == 0, final.stderr[-3000:]
    np.testing.assert_array_equal(np.load(labels), reference_labels)
    entries = json.loads(bench.read_text())["entries"]
    assert sorted(e["seq"] for e in entries) == list(range(1, N_BATCHES + 1))
