"""Golden parity: the engine, the legacy wrapper, and every backend
produce bit-identical partitions and dendrograms.

``detect_communities`` is a compatibility wrapper over
:class:`~repro.core.engine.AgglomerationEngine`; these tests pin that
the wrapper, a hand-built engine run, and runs across execution
backends and checkpoint resume all agree exactly — partitions,
dendrogram maps, per-level stats and termination reason — on seeded
RMAT and planted-partition (SBM) workloads across every
matcher × contractor × scorer combination.
"""

import numpy as np
import pytest

from repro.core import (
    AgglomerationEngine,
    RunContext,
    StaticPolicy,
    TerminationCriteria,
    detect_communities,
    kernel_info,
)
from repro.generators import planted_partition_graph, rmat_graph
from repro.parallel.backends import (
    ProcessPoolBackend,
    SerialBackend,
    ShardedBackend,
)

MATCHERS = ["worklist", "sweep"]
CONTRACTORS = ["bucket", "chains", "spmatrix"]
SCORERS = ["modularity", "conductance", "weight"]


@pytest.fixture(scope="module")
def rmat():
    return rmat_graph(7, 8, seed=11)


@pytest.fixture(scope="module")
def sbm():
    return planted_partition_graph(600, seed=7)


def assert_runs_identical(a, b):
    """Bit-identical outcomes: partition, dendrogram, stats, termination."""
    np.testing.assert_array_equal(a.partition.labels, b.partition.labels)
    assert len(a.dendrogram.maps) == len(b.dendrogram.maps)
    for ma, mb in zip(a.dendrogram.maps, b.dendrogram.maps):
        np.testing.assert_array_equal(ma, mb)
    assert a.levels == b.levels
    assert a.terminated_by == b.terminated_by
    assert a.scorer_name == b.scorer_name


class TestWrapperEngineParity:
    @pytest.mark.parametrize("scorer", SCORERS)
    @pytest.mark.parametrize("contractor", CONTRACTORS)
    @pytest.mark.parametrize("matcher", MATCHERS)
    def test_all_kernel_combos_rmat(self, rmat, matcher, contractor, scorer):
        legacy = detect_communities(
            rmat, scorer, matcher=matcher, contractor=contractor
        )
        engine = AgglomerationEngine(
            scorer, matcher=matcher, contractor=contractor
        )
        direct = engine.run(rmat)
        assert_runs_identical(legacy, direct)

    @pytest.mark.parametrize("scorer", SCORERS)
    @pytest.mark.parametrize("contractor", CONTRACTORS)
    @pytest.mark.parametrize("matcher", MATCHERS)
    def test_all_kernel_combos_sbm(self, sbm, matcher, contractor, scorer):
        legacy = detect_communities(
            sbm, scorer, matcher=matcher, contractor=contractor
        )
        engine = AgglomerationEngine(
            scorer, matcher=matcher, contractor=contractor
        )
        direct = engine.run(sbm)
        assert_runs_identical(legacy, direct)

    def test_termination_criteria_pass_through(self, rmat):
        crit = TerminationCriteria(min_communities=5, max_levels=2)
        legacy = detect_communities(rmat, termination=crit)
        direct = AgglomerationEngine(termination=crit).run(rmat)
        assert_runs_identical(legacy, direct)

    def test_engine_is_reusable_and_deterministic(self, sbm):
        engine = AgglomerationEngine(matcher="sweep", contractor="chains")
        first = engine.run(sbm)
        second = engine.run(sbm)
        assert_runs_identical(first, second)


class TestBackendParity:
    def test_serial_backend_matches_default(self, sbm):
        base = detect_communities(sbm)
        serial = detect_communities(sbm, backend=SerialBackend())
        assert_runs_identical(base, serial)

    def test_process_pool_matches_serial(self, sbm):
        base = detect_communities(sbm)
        pooled = detect_communities(sbm, backend=ProcessPoolBackend(2))
        assert_runs_identical(base, pooled)

    def test_backend_by_name(self, sbm):
        base = detect_communities(sbm)
        named = detect_communities(sbm, backend="serial")
        assert_runs_identical(base, named)


class TestShardedParity:
    """The out-of-core path never changes results, only residency."""

    @pytest.mark.parametrize("scorer", SCORERS)
    def test_sharded_backend_matches_serial(self, sbm, scorer, tmp_path):
        base = detect_communities(sbm, scorer)
        backend = ShardedBackend(spill_dir=tmp_path, n_shards=4)
        sharded = detect_communities(sbm, scorer, backend=backend)
        assert backend.spilled_levels > 0, "run must actually spill"
        backend.release()
        assert_runs_identical(base, sharded)

    def test_sharded_backend_matches_serial_rmat(self, rmat, tmp_path):
        base = detect_communities(rmat)
        backend = ShardedBackend(spill_dir=tmp_path, n_shards=3)
        sharded = detect_communities(rmat, backend=backend)
        backend.release()
        assert_runs_identical(base, sharded)

    @pytest.mark.parametrize("n_shards", [1, 2, 16])
    def test_shard_count_never_changes_results(self, sbm, n_shards, tmp_path):
        base = detect_communities(sbm)
        backend = ShardedBackend(spill_dir=tmp_path, n_shards=n_shards)
        sharded = detect_communities(sbm, backend=backend)
        backend.release()
        assert_runs_identical(base, sharded)

    def test_sharded_backend_by_name(self, sbm):
        base = detect_communities(sbm)
        named = detect_communities(sbm, backend="sharded")
        assert_runs_identical(base, named)

    def test_gmm_matcher_matches_worklist(self, sbm):
        base = detect_communities(sbm, matcher="worklist")
        gmm = detect_communities(sbm, matcher="gmm")
        assert_runs_identical(base, gmm)

    def test_shard_contractor_matches_bucket(self, sbm):
        base = detect_communities(sbm, contractor="bucket")
        shard = detect_communities(sbm, contractor="shard")
        assert_runs_identical(base, shard)

    def test_spmatrix_contractor_matches_bucket(self, sbm):
        base = detect_communities(sbm, contractor="bucket")
        spgemm = detect_communities(sbm, contractor="spmatrix")
        assert_runs_identical(base, spgemm)

    def test_keeps_at_most_two_level_stores(self, sbm, tmp_path):
        backend = ShardedBackend(spill_dir=tmp_path)
        result = detect_communities(sbm, backend=backend)
        assert result.n_levels > 2, "fixture must produce a multi-level run"
        remaining = sorted(p.name for p in tmp_path.iterdir())
        assert len(remaining) <= 2
        backend.release()
        assert list(tmp_path.iterdir()) == []


def assert_partitions_identical(a, b):
    """Partition-level parity only: matchers may legitimately differ in
    per-level ``matching_passes`` while producing identical matchings, so
    mixed-kernel (auto-tuned) runs are compared on partition, dendrogram
    and termination — not raw :class:`LevelStats` equality."""
    np.testing.assert_array_equal(a.partition.labels, b.partition.labels)
    assert len(a.dendrogram.maps) == len(b.dendrogram.maps)
    for ma, mb in zip(a.dendrogram.maps, b.dendrogram.maps):
        np.testing.assert_array_equal(ma, mb)
    assert a.terminated_by == b.terminated_by
    assert a.scorer_name == b.scorer_name


class TestAutoTunerParity:
    """``--matcher auto --contractor auto`` never changes the answer."""

    @pytest.mark.parametrize("graph_name", ["rmat", "sbm"])
    def test_auto_matches_fixed_partition(self, graph_name, request):
        graph = request.getfixturevalue(graph_name)
        fixed = detect_communities(graph, matcher="worklist", contractor="bucket")
        auto = detect_communities(graph, matcher="auto", contractor="auto")
        assert_partitions_identical(fixed, auto)

    def test_auto_records_per_level_decisions(self, sbm):
        auto = detect_communities(sbm, matcher="auto", contractor="auto")
        tuner = auto.tuner
        assert tuner is not None
        assert tuner["policy"] == "cost-model"
        assert tuner["n_decisions"] == 2 * auto.n_levels
        kinds = {d["kind"] for d in tuner["decisions"]}
        assert kinds == {"matcher", "contractor"}
        for d in tuner["decisions"]:
            assert d["chosen"] in d["candidates"]
            assert d["shape"]["n_vertices"] > 0

    def test_fixed_run_has_no_tuner_block(self, sbm):
        fixed = detect_communities(sbm)
        assert fixed.tuner is None

    def test_static_policy_pin_equals_fixed_run(self, sbm):
        pinned = StaticPolicy({"matcher": "sweep", "contractor": "chains"})
        fixed = detect_communities(sbm, matcher="sweep", contractor="chains")
        auto = detect_communities(
            sbm, matcher="auto", contractor="auto", selector=pinned
        )
        assert_runs_identical(fixed, auto)
        assert auto.tuner["policy"] == "static"
        assert auto.tuner["selected"] == {
            "matcher": {"sweep": auto.n_levels},
            "contractor": {"chains": auto.n_levels},
        }

    def test_spilled_levels_constrain_to_sharded_kernels(self, sbm, tmp_path):
        base = detect_communities(sbm)
        backend = ShardedBackend(spill_dir=tmp_path, n_shards=4)
        auto = detect_communities(
            sbm, matcher="auto", contractor="auto", backend=backend
        )
        assert backend.spilled_levels > 0, "run must actually spill"
        backend.release()
        assert_partitions_identical(base, auto)
        constrained = [
            d for d in auto.tuner["decisions"] if d["constrained_sharded"]
        ]
        assert constrained, "spilled run must constrain at least one level"
        for d in constrained:
            assert kernel_info(d["kind"], d["chosen"]).supports_sharded


class TestResumeParity:
    def test_mid_run_resume_matches_uninterrupted(self, rmat, tmp_path):
        full = AgglomerationEngine().run(rmat)
        assert full.n_levels > 1, "fixture must produce a multi-level run"

        interrupted = AgglomerationEngine(
            termination=TerminationCriteria(max_levels=1)
        )
        ctx = RunContext.create(checkpoint_dir=tmp_path)
        interrupted.run(rmat, ctx)

        resume_ctx = RunContext.create(checkpoint_dir=tmp_path)
        resumed = AgglomerationEngine().run(rmat, resume_ctx, resume=True)
        assert resumed.recovery.resumed_from_level == 1
        assert_runs_identical(full, resumed)

    def test_resume_through_wrapper_matches_engine(self, rmat, tmp_path):
        detect_communities(
            rmat,
            termination=TerminationCriteria(max_levels=1),
            checkpoint_dir=tmp_path,
        )
        via_wrapper = detect_communities(
            rmat, checkpoint_dir=tmp_path, resume=True
        )
        full = detect_communities(rmat)
        assert_runs_identical(full, via_wrapper)
