"""Invariant auditor: seeded corruption must be caught, loudly and located.

Each test runs one *real* level (score → match → contract on the karate
club), then corrupts a specific artifact — contracted edge weights, the
self-loop array, the relabel mapping, the matching — and asserts the
auditor raises :class:`InvariantViolation` carrying the right
level/phase/check context and array forensics.  Clean levels must pass
at every strictness.
"""

import numpy as np
import pytest

from repro.core import ModularityScorer
from repro.core.contraction import contract
from repro.core.matching import match_locally_dominant
from repro.errors import InvariantViolation
from repro.generators import karate_club
from repro.graph.graph import CommunityGraph
from repro.metrics import Partition, coverage, modularity
from repro.resilience.invariants import (
    AUDIT_MODES,
    InvariantAuditor,
    check_mapping_surjection,
    check_matching_maximality,
    check_matching_validity,
    check_self_loop_accounting,
    check_tracked_quality,
    check_weight_conservation,
    lower_audit_mode,
)
from repro.types import NO_VERTEX


@pytest.fixture
def level(karate):
    """One real contraction level: (graph, scores, matching, mapping, after)."""
    scores = ModularityScorer().score(karate)
    matching = match_locally_dominant(karate, scores)
    after, mapping = contract(karate, matching)
    return karate, scores, matching, mapping, after


def _copy_graph(graph):
    return CommunityGraph(graph.edges.copy(), graph.self_weights.copy())


def _audit(mode, level_data, level_idx=0, **overrides):
    graph, scores, matching, mapping, after = level_data
    kwargs = dict(
        graph_before=graph,
        scores=scores,
        matching=matching,
        mapping=mapping,
        graph_after=after,
    )
    kwargs.update(overrides)
    return InvariantAuditor(mode).audit_contraction(level_idx, **kwargs)


class TestCleanLevel:
    @pytest.mark.parametrize("mode", ["sample", "full"])
    def test_clean_level_passes(self, level, mode):
        n = _audit(mode, level)
        assert n >= 4  # all conservation checks actually executed

    def test_full_runs_more_checks_than_sample(self, level):
        assert _audit("full", level) > _audit("sample", level)

    def test_off_runs_nothing(self, level):
        assert _audit("off", level) == 0


class TestSeededCorruption:
    @pytest.mark.parametrize("mode", ["sample", "full"])
    def test_edge_weight_corruption_caught(self, level, mode):
        graph, scores, matching, mapping, after = level
        bad = _copy_graph(after)
        bad.edges.w[0] += 5.0  # silently inflate one contracted edge
        with pytest.raises(InvariantViolation) as ei:
            _audit(mode, level, graph_after=bad, level_idx=3)
        exc = ei.value
        assert exc.level == 3
        assert exc.phase == "contract"
        assert exc.check == "weight_conservation"
        # forensics: located context plus an array summary
        assert "level 3" in str(exc)
        assert "drift" in str(exc)
        assert "shape" in str(exc)

    @pytest.mark.parametrize("mode", ["sample", "full"])
    def test_self_loop_corruption_caught(self, level, mode):
        graph, scores, matching, mapping, after = level
        bad = _copy_graph(after)
        bad.self_weights[0] += 2.0
        with pytest.raises(InvariantViolation) as ei:
            _audit(mode, level, graph_after=bad)
        # total weight breaks first — either check is a correct catch,
        # but the context must always be stamped
        assert ei.value.phase == "contract"
        assert ei.value.check in (
            "weight_conservation",
            "self_loop_accounting",
        )

    def test_weight_shuffle_needs_full_strictness(self, level):
        """Moving self weight *between* communities preserves every
        aggregate; only full's per-community accounting sees it."""
        graph, scores, matching, mapping, after = level
        assert after.n_vertices >= 2
        bad = _copy_graph(after)
        bad.self_weights[0] += 1.0
        bad.self_weights[1] -= 1.0
        _audit("sample", level, graph_after=bad)  # aggregates all agree
        with pytest.raises(InvariantViolation) as ei:
            _audit("full", level, graph_after=bad)
        assert ei.value.check == "self_loop_accounting"
        assert "per-community" in str(ei.value)

    @pytest.mark.parametrize("mode", ["sample", "full"])
    def test_mapping_out_of_range_caught(self, level, mode):
        graph, scores, matching, mapping, after = level
        bad = mapping.copy()
        bad[0] = after.n_vertices  # escapes the contracted vertex set
        with pytest.raises(InvariantViolation) as ei:
            _audit(mode, level, mapping=bad)
        assert ei.value.check in ("self_loop_accounting", "mapping_surjection")

    @pytest.mark.parametrize("mode", ["sample", "full"])
    def test_mapping_not_surjective_caught(self, level, mode):
        graph, scores, matching, mapping, after = level
        bad = mapping.copy()
        # redirect every vertex of community 0 onto community 1: the
        # totals survive but community 0 is never hit
        bad[bad == 0] = 1
        with pytest.raises(InvariantViolation) as ei:
            _audit(mode, level, mapping=bad)
        assert ei.value.check in ("self_loop_accounting", "mapping_surjection")
        assert "level 0" in str(ei.value)

    @pytest.mark.parametrize("mode", ["sample", "full"])
    def test_overlapping_pairs_caught(self, level, mode):
        graph, scores, matching, mapping, after = level
        partner = matching.partner.copy()
        matched = np.flatnonzero(partner != NO_VERTEX)
        assert len(matched) >= 4
        # point a third vertex at an already-matched one: two pairs now
        # overlap and the involution breaks
        a, b = matched[0], matched[1]
        free = np.flatnonzero(partner == NO_VERTEX)
        victim = free[0] if len(free) else matched[2]
        partner[victim] = a
        bad = type(matching)(
            partner=partner,
            matched_edges=matching.matched_edges,
            passes=matching.passes,
            failed_claims=matching.failed_claims,
        )
        with pytest.raises(InvariantViolation) as ei:
            _audit(mode, level, matching=bad)
        assert ei.value.check == "matching_validity"


class TestIndividualChecks:
    def test_weight_conservation_direct(self, karate):
        bad = _copy_graph(karate)
        bad.edges.w[0] *= 2.0
        with pytest.raises(InvariantViolation):
            check_weight_conservation(karate, bad)

    def test_surjection_empty_mapping(self):
        check_mapping_surjection(np.array([], dtype=np.int64), 0, 0)
        with pytest.raises(InvariantViolation):
            check_mapping_surjection(np.array([], dtype=np.int64), 0, 1)

    def test_surjection_rejects_float_mapping(self):
        with pytest.raises(InvariantViolation, match="integral"):
            check_mapping_surjection(np.zeros(3, dtype=np.float64), 3, 1)

    def test_surjection_rejects_wrong_length(self):
        with pytest.raises(InvariantViolation, match="covers"):
            check_mapping_surjection(np.zeros(2, dtype=np.int64), 3, 1)

    def test_matching_self_match_caught(self, level):
        graph, scores, matching, mapping, after = level
        partner = matching.partner.copy()
        partner[0] = 0
        bad = type(matching)(
            partner=partner,
            matched_edges=matching.matched_edges,
            passes=matching.passes,
            failed_claims=matching.failed_claims,
        )
        with pytest.raises(InvariantViolation, match="self-matched"):
            check_matching_validity(graph, bad)

    def test_maximality_catches_unmatched_positive_edge(self, level):
        graph, scores, matching, mapping, after = level
        check_matching_maximality(graph, scores, matching)  # real one is maximal
        # un-match one pair: its positive edge now has both endpoints free
        idx = matching.matched_edges[0]
        partner = matching.partner.copy()
        i = graph.edges.ei[idx]
        j = graph.edges.ej[idx]
        partner[i] = NO_VERTEX
        partner[j] = NO_VERTEX
        bad = type(matching)(
            partner=partner,
            matched_edges=np.delete(matching.matched_edges, 0),
            passes=matching.passes,
            failed_claims=matching.failed_claims,
        )
        assert scores[idx] > 0
        with pytest.raises(InvariantViolation, match="not maximal"):
            check_matching_maximality(graph, scores, bad)

    def test_limited_matching_skips_maximality(self, level):
        graph, scores, matching, mapping, after = level
        idx = matching.matched_edges[0]
        partner = matching.partner.copy()
        partner[graph.edges.ei[idx]] = NO_VERTEX
        partner[graph.edges.ej[idx]] = NO_VERTEX
        bad = type(matching)(
            partner=partner,
            matched_edges=np.delete(matching.matched_edges, 0),
            passes=matching.passes,
            failed_claims=matching.failed_claims,
        )
        # truncation un-matches by design: a limited matching must not
        # be audited for maximality, the mapping no longer agrees though
        auditor = InvariantAuditor("full")
        after2, mapping2 = contract(graph, bad)
        auditor.audit_contraction(
            0,
            graph_before=graph,
            scores=scores,
            matching=bad,
            mapping=mapping2,
            graph_after=after2,
            limited=True,
        )

    def test_tracked_quality_agrees_and_drifts(self, karate):
        labels = np.zeros(karate.n_vertices, dtype=np.int64)
        labels[karate.n_vertices // 2 :] = 1
        part = Partition(labels)
        q = modularity(karate, part)
        cov = coverage(karate, part)
        check_tracked_quality(
            karate, part, tracked_modularity=q, tracked_coverage=cov
        )
        with pytest.raises(InvariantViolation, match="modularity"):
            check_tracked_quality(
                karate, part, tracked_modularity=q + 0.25, tracked_coverage=cov
            )
        with pytest.raises(InvariantViolation, match="coverage"):
            check_tracked_quality(
                karate, part, tracked_modularity=q, tracked_coverage=cov - 0.25
            )
        with pytest.raises(InvariantViolation):
            check_tracked_quality(
                karate,
                part,
                tracked_modularity=float("nan"),
                tracked_coverage=cov,
            )

    def test_self_loop_accounting_clean(self, level):
        graph, scores, matching, mapping, after = level
        check_self_loop_accounting(graph, mapping, after, per_community=True)


class TestAuditorMechanics:
    def test_mode_validation(self):
        with pytest.raises(ValueError):
            InvariantAuditor("everything")
        with pytest.raises(ValueError):
            InvariantAuditor("sample", sample_every=0)

    def test_lower_audit_mode_ladder(self):
        assert lower_audit_mode("full") == "sample"
        assert lower_audit_mode("sample") == "off"
        assert lower_audit_mode("off") == "off"
        assert AUDIT_MODES == ("off", "sample", "full")

    def test_lower_in_place(self):
        auditor = InvariantAuditor("full")
        assert auditor.lower() == "sample"
        assert auditor.lower() == "off"
        assert auditor.lower() == "off"
        assert auditor.mode == "off"

    def test_quality_sampling_schedule(self):
        auditor = InvariantAuditor("sample", sample_every=4)
        due = [lvl for lvl in range(9) if auditor._quality_due(lvl)]
        assert due == [0, 4, 8]
        assert all(InvariantAuditor("full")._quality_due(lvl) for lvl in range(9))

    def test_quality_audit_skipped_off_sample(self, karate):
        part = Partition(np.zeros(karate.n_vertices, dtype=np.int64))
        auditor = InvariantAuditor("sample", sample_every=4)
        n = auditor.audit_quality(
            1,  # not a sampled level
            input_graph=karate,
            partition=part,
            tracked_modularity=0.0,
            tracked_coverage=1.0,
        )
        assert n == 0

    def test_counters_track_checks_and_violations(self, level):
        graph, scores, matching, mapping, after = level
        auditor = InvariantAuditor("sample")
        auditor.audit_contraction(
            0,
            graph_before=graph,
            scores=scores,
            matching=matching,
            mapping=mapping,
            graph_after=after,
        )
        ran = auditor.checks_run
        assert ran >= 4
        assert auditor.violations == 0
        bad = _copy_graph(after)
        bad.edges.w[0] += 1.0
        with pytest.raises(InvariantViolation):
            auditor.audit_contraction(
                1,
                graph_before=graph,
                scores=scores,
                matching=matching,
                mapping=mapping,
                graph_after=bad,
            )
        assert auditor.checks_run > ran
        assert auditor.violations == 1
