"""Unit tests for the run-variation model."""

import numpy as np

from repro.platform import CRAY_XMT2, INTEL_E7_8870, run_variation


class TestRunVariation:
    def test_deterministic(self):
        assert run_variation(CRAY_XMT2, 8, 123) == run_variation(
            CRAY_XMT2, 8, 123
        )

    def test_varies_with_entropy(self):
        vals = {run_variation(CRAY_XMT2, 8, e) for e in range(20)}
        assert len(vals) > 10

    def test_varies_with_platform(self):
        assert run_variation(CRAY_XMT2, 8, 1) != run_variation(
            INTEL_E7_8870, 8, 1
        )

    def test_bounded(self):
        for e in range(200):
            v = run_variation(CRAY_XMT2, 64, e)
            assert 0.8 <= v <= 1.3

    def test_near_unity_mean(self):
        vals = [run_variation(INTEL_E7_8870, 4, e) for e in range(500)]
        assert abs(np.mean(vals) - 1.0) < 0.02

    def test_xmt2_spread_larger(self):
        """§V-C: the XMT2 shows visibly larger run-to-run variation."""
        xmt2 = np.std([run_variation(CRAY_XMT2, 32, e) for e in range(500)])
        e7 = np.std([run_variation(INTEL_E7_8870, 32, e) for e in range(500)])
        assert xmt2 > 2 * e7
