"""Property-based tests for the matching kernel: validity, maximality and
the 1/2-approximation guarantee on random graphs and scores."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import (
    is_maximal_matching,
    match_full_sweep,
    match_locally_dominant,
    matching_weight,
)
from repro.graph import from_edges
from repro.types import NO_VERTEX


@st.composite
def graph_with_scores(draw):
    n = draw(st.integers(2, 30))
    m = draw(st.integers(1, 90))
    i = draw(hnp.arrays(np.int64, m, elements=st.integers(0, n - 1)))
    j = draw(hnp.arrays(np.int64, m, elements=st.integers(0, n - 1)))
    g = from_edges(i, j, None, n_vertices=n)
    scores = draw(
        hnp.arrays(
            np.float64,
            g.n_edges,
            elements=st.floats(-2.0, 2.0, allow_nan=False),
        )
    )
    return g, scores


class TestMatchingProperties:
    @given(graph_with_scores())
    @settings(max_examples=80, deadline=None)
    def test_valid_and_maximal(self, args):
        g, scores = args
        res = match_locally_dominant(g, scores)
        assert is_maximal_matching(g, scores, res)

    @given(graph_with_scores())
    @settings(max_examples=60, deadline=None)
    def test_matched_scores_positive(self, args):
        g, scores = args
        res = match_locally_dominant(g, scores)
        assert np.all(scores[res.matched_edges] > 0)

    @given(graph_with_scores())
    @settings(max_examples=60, deadline=None)
    def test_partner_involution(self, args):
        g, scores = args
        res = match_locally_dominant(g, scores)
        matched = np.flatnonzero(res.partner != NO_VERTEX)
        np.testing.assert_array_equal(
            res.partner[res.partner[matched]], matched
        )

    @given(graph_with_scores())
    @settings(max_examples=40, deadline=None)
    def test_legacy_sweep_identical(self, args):
        g, scores = args
        a = match_locally_dominant(g, scores)
        b = match_full_sweep(g, scores)
        np.testing.assert_array_equal(a.partner, b.partner)

    @given(graph_with_scores())
    @settings(max_examples=30, deadline=None)
    def test_half_approximation_vs_networkx(self, args):
        import networkx as nx

        g, scores = args
        res = match_locally_dominant(g, scores)
        nxg = nx.Graph()
        nxg.add_nodes_from(range(g.n_vertices))
        e = g.edges
        for k in range(e.n_edges):
            if scores[k] > 0:
                nxg.add_edge(int(e.ei[k]), int(e.ej[k]), weight=float(scores[k]))
        opt = nx.max_weight_matching(nxg)
        opt_weight = sum(nxg[u][v]["weight"] for u, v in opt)
        assert matching_weight(scores, res) >= 0.5 * opt_weight - 1e-9

    @given(graph_with_scores())
    @settings(max_examples=40, deadline=None)
    def test_pass_budget_reasonable(self, args):
        g, scores = args
        res = match_locally_dominant(g, scores)
        # Hashed priorities keep passes near-logarithmic; allow slack.
        assert res.passes <= g.n_vertices
