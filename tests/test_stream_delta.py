"""Tests for the streaming edge-delta layer (stream/delta.py)."""

import numpy as np
import pytest

from repro.errors import WalError
from repro.stream.delta import (
    EdgeBatch,
    EdgeStore,
    decode_batch,
    encode_batch,
)
from repro.types import VERTEX_DTYPE


def _batch(seq, events, default_w=1.0):
    """events: list of (i, j [, w [, op]]) tuples."""
    i = np.array([e[0] for e in events], dtype=VERTEX_DTYPE)
    j = np.array([e[1] for e in events], dtype=VERTEX_DTYPE)
    w = np.array([e[2] if len(e) > 2 else default_w for e in events])
    op = np.array([e[3] if len(e) > 3 else 1 for e in events], dtype=np.int8)
    return EdgeBatch(seq=seq, i=i, j=j, w=w, op=op)


class TestEdgeBatch:
    def test_validation(self):
        with pytest.raises(ValueError, match="op"):
            _batch(1, [(0, 1, 1.0, 2)])
        with pytest.raises(ValueError):
            _batch(1, [(0, 1, -1.0)])  # non-positive weight
        with pytest.raises(ValueError):
            _batch(0, [(0, 1)])  # sequences are 1-based
        with pytest.raises(ValueError, match="length"):
            EdgeBatch(
                seq=1,
                i=np.array([0], dtype=VERTEX_DTYPE),
                j=np.array([1, 2], dtype=VERTEX_DTYPE),
                w=np.array([1.0]),
                op=np.array([1], dtype=np.int8),
            )

    def test_touched_vertices(self):
        b = _batch(1, [(0, 5), (5, 2)])
        assert sorted(b.touched_vertices().tolist()) == [0, 2, 5]

    def test_codec_round_trip(self):
        b = _batch(3, [(0, 1, 2.5), (4, 2, 1.0, -1)])
        out = decode_batch(encode_batch(b))
        assert out.seq == 3
        np.testing.assert_array_equal(out.i, b.i)
        np.testing.assert_array_equal(out.j, b.j)
        np.testing.assert_array_equal(out.w, b.w)
        np.testing.assert_array_equal(out.op, b.op)

    def test_decode_garbage_raises_wal_error(self):
        with pytest.raises(WalError):
            decode_batch(b"definitely not an npz payload")

    def test_decode_truncated_raises_wal_error(self):
        data = encode_batch(_batch(1, [(0, 1)]))
        with pytest.raises(WalError):
            decode_batch(data[: len(data) // 2])


class TestEdgeStore:
    def test_insert_merges_duplicates_canonically(self):
        store = EdgeStore.empty()
        store.apply(_batch(1, [(0, 1), (1, 0), (2, 0)]))
        assert store.n_vertices == 3
        assert store.n_edges == 2  # (0,1) folded with (1,0)
        np.testing.assert_array_equal(store.lo, [0, 0])
        np.testing.assert_array_equal(store.hi, [1, 2])
        np.testing.assert_allclose(store.w, [2.0, 1.0])
        store.validate()

    def test_delete_decrements_and_drops(self):
        store = EdgeStore.empty()
        store.apply(_batch(1, [(0, 1, 2.0), (1, 2, 1.0)]))
        stats = store.apply(_batch(2, [(1, 0, 1.0, -1), (2, 1, 1.0, -1)]))
        assert stats.n_unmatched_deletes == 0
        assert store.n_edges == 1
        np.testing.assert_allclose(store.w, [1.0])

    def test_unmatched_delete_clamps_and_counts(self):
        store = EdgeStore.empty()
        store.apply(_batch(1, [(0, 1, 1.0)]))
        stats = store.apply(_batch(2, [(0, 1, 5.0, -1), (2, 3, 1.0, -1)]))
        assert stats.n_unmatched_deletes == 2
        assert store.n_edges == 0
        store.validate()

    def test_vertex_universe_grows_monotonically(self):
        store = EdgeStore.empty()
        store.apply(_batch(1, [(0, 9)]))
        assert store.n_vertices == 10
        store.apply(_batch(2, [(0, 9, 1.0, -1)]))
        assert store.n_vertices == 10  # never shrinks

    def test_self_loops_kept(self):
        store = EdgeStore.empty()
        store.apply(_batch(1, [(2, 2, 3.0)]))
        assert store.n_edges == 1
        graph = store.as_graph()
        assert graph.internal_weight() > 0

    def test_as_graph_and_equals(self):
        a = EdgeStore.empty()
        a.apply(_batch(1, [(0, 1), (1, 2), (0, 2)]))
        b = a.copy()
        assert a.equals(b)
        b.apply(_batch(2, [(0, 3)]))
        assert not a.equals(b)
        g = a.as_graph()
        assert g.n_vertices == 3 and g.n_edges == 3

    def test_validate_rejects_broken_invariants(self):
        store = EdgeStore(
            2,
            np.array([1], dtype=VERTEX_DTYPE),
            np.array([0], dtype=VERTEX_DTYPE),  # lo > hi
            np.array([1.0]),
        )
        with pytest.raises(ValueError):
            store.validate()

    def test_apply_is_deterministic(self):
        events = [(0, 5), (3, 1), (5, 0), (2, 2), (3, 1, 1.0, -1)]
        a, b = EdgeStore.empty(), EdgeStore.empty()
        a.apply(_batch(1, events))
        b.apply(_batch(1, events))
        assert a.equals(b)
