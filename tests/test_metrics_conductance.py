"""Unit tests for conductance."""

import numpy as np
import pytest

from repro.graph import from_edges
from repro.metrics import Partition, average_conductance, conductances


class TestConductance:
    def test_two_triangles_split(self, triangles):
        p = Partition(np.array([0, 0, 0, 1, 1, 1]))
        phi = conductances(triangles, p)
        # Each side: cut=1, vol=7, 2W-vol=7 -> 1/7.
        np.testing.assert_allclose(phi, [1 / 7, 1 / 7])

    def test_whole_graph_zero(self, karate):
        p = Partition(np.zeros(34, dtype=np.int64))
        phi = conductances(karate, p)
        assert phi[0] == 0.0

    def test_isolated_vertex_zero(self):
        g = from_edges(np.array([0]), np.array([1]), n_vertices=3)
        p = Partition(np.array([0, 0, 1]))
        phi = conductances(g, p)
        assert phi[1] == 0.0  # community {2} has no volume

    def test_singleton_leaf(self):
        g = from_edges(np.array([0, 1]), np.array([1, 2]))
        p = Partition(np.array([0, 0, 1]))
        phi = conductances(g, p)
        # {2}: cut=1, vol=1, 2W-vol=3 -> 1.
        assert phi[1] == pytest.approx(1.0)

    def test_average(self, triangles):
        p = Partition(np.array([0, 0, 0, 1, 1, 1]))
        assert average_conductance(triangles, p) == pytest.approx(1 / 7)

    def test_symmetric_in_complement(self):
        # Two communities: both see the same cut; denominators mirror.
        g = from_edges(np.array([0, 0, 1]), np.array([1, 2, 2]), n_vertices=4)
        p = Partition(np.array([0, 0, 0, 1]))
        phi = conductances(g, p)
        assert phi[0] == 0.0  # vertex 3 is isolated: no cut anywhere
        assert phi[1] == 0.0

    def test_size_mismatch(self, karate):
        with pytest.raises(ValueError):
            conductances(karate, Partition.singletons(5))

    def test_empty_partition(self):
        g = from_edges(np.empty(0, int), np.empty(0, int), n_vertices=0)
        p = Partition(np.empty(0, dtype=np.int64))
        assert average_conductance(g, p) == 0.0
