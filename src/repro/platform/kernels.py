"""Kernel execution traces.

The core algorithm's parallel primitives cannot run on real Cray XMT or
80-thread Intel hardware from inside this library, but their *work* is
fully observable: how many items each flat parallel loop touches, how many
words it moves, how many atomic updates and lock acquisitions it would
issue, how contended the hot vertices are, and how much dependent
pointer-chasing a legacy kernel performs.  Every kernel records those
quantities into a :class:`TraceRecorder`; the cost model in
:mod:`repro.platform.sim` replays the trace against a machine description
to produce simulated wall-clock times for any processor count.

A ``recorder=None`` argument everywhere makes recording strictly optional
and free when disabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["KernelRecord", "TraceRecorder"]


@dataclass(frozen=True)
class KernelRecord:
    """One flat parallel loop (or one pass of an iterative kernel).

    Attributes
    ----------
    name:
        Kernel identity, e.g. ``"score"``, ``"match_pass"``,
        ``"contract_sort"``.  The cost model keys per-kernel constants on
        this.
    items:
        Number of independent work items the loop iterates over (its
        available parallelism).
    mem_words:
        64-bit words read + written across the loop (bandwidth demand).
    atomics:
        Atomic fetch-and-add / compare-and-swap operations issued.
    locks:
        Lock acquisitions (OpenMP locks or XMT full/empty transitions).
    contention:
        Hot-spot factor in ``[0, 1]``: fraction of atomic/lock operations
        that collide on popular words (e.g. failed matching claims, or
        duplicate proposals to one high-degree vertex).
    chain_ops:
        Serially *dependent* memory operations (linked-list walks in the
        legacy contraction).  These cannot be hidden by more threads on
        cache-based machines; the XMT tolerates them.
    level:
        Agglomeration level this record belongs to (filled by the
        recorder).
    """

    name: str
    items: int
    mem_words: int = 0
    atomics: int = 0
    locks: int = 0
    contention: float = 0.0
    chain_ops: int = 0
    level: int = 0

    def __post_init__(self) -> None:
        if self.items < 0 or self.mem_words < 0 or self.atomics < 0:
            raise ValueError("trace quantities must be non-negative")
        if not 0.0 <= self.contention <= 1.0:
            raise ValueError("contention must lie in [0, 1]")


@dataclass
class TraceRecorder:
    """Accumulates kernel records across the agglomeration levels."""

    records: list[KernelRecord] = field(default_factory=list)
    level: int = 0

    def record(self, rec: KernelRecord) -> None:
        """Append a record, stamping the current level."""
        if rec.level != self.level:
            rec = KernelRecord(
                name=rec.name,
                items=rec.items,
                mem_words=rec.mem_words,
                atomics=rec.atomics,
                locks=rec.locks,
                contention=rec.contention,
                chain_ops=rec.chain_ops,
                level=self.level,
            )
        self.records.append(rec)

    def next_level(self) -> None:
        """Advance the level stamp (called once per contraction phase)."""
        self.level += 1

    # Convenience queries used by tests and reporting -------------------
    def by_name(self, name: str) -> list[KernelRecord]:
        return [r for r in self.records if r.name == name]

    def by_level(self, level: int) -> list[KernelRecord]:
        return [r for r in self.records if r.level == level]

    def total_items(self, name: str | None = None) -> int:
        return sum(r.items for r in self.records if name is None or r.name == name)

    @property
    def n_levels(self) -> int:
        return max((r.level for r in self.records), default=-1) + 1
