"""Processor-utilization profiling of a simulated run.

§V-C: "Monitoring execution shows that the XMT compiler under-allocates
threads in portions of the code, leading to bursts of poor processor
utilization."  Given a trace and an allocation, these helpers compute the
per-kernel effective-parallelism fraction (achieved concurrency over
allocated units) and aggregate it time-weighted — making the paper's
monitoring observation a queryable quantity of the model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.platform.kernels import KernelRecord
from repro.platform.machine import MachineModel
from repro.platform.sim import _effective_parallelism, _kernel_time

__all__ = ["KernelUtilization", "utilization_profile", "mean_utilization"]


@dataclass(frozen=True)
class KernelUtilization:
    """Utilization of one kernel record at a fixed allocation."""

    name: str
    level: int
    items: int
    seconds: float
    utilization: float  # effective parallelism / allocated units, in (0, 1]


def utilization_profile(
    records: Iterable[KernelRecord], machine: MachineModel, p: int
) -> list[KernelUtilization]:
    """Per-record utilization at allocation ``p``."""
    machine.check_parallelism(p)
    out = []
    for rec in records:
        eff = _effective_parallelism(rec, machine, p)
        out.append(
            KernelUtilization(
                name=rec.name,
                level=rec.level,
                items=rec.items,
                seconds=_kernel_time(rec, machine, p),
                utilization=min(1.0, eff / p),
            )
        )
    return out


def mean_utilization(
    records: Iterable[KernelRecord], machine: MachineModel, p: int
) -> float:
    """Time-weighted mean utilization of the whole run at allocation ``p``.

    Low values reproduce the paper's "bursts of poor processor
    utilization" on graphs too small for the allocation.
    """
    profile = utilization_profile(records, machine, p)
    total = sum(k.seconds for k in profile)
    if total == 0:
        return 1.0
    return float(
        sum(k.seconds * k.utilization for k in profile) / total
    )
