"""Simulated threaded platforms: machine models for the paper's five test
systems and a cost model turning measured kernel traces into execution
times at any processor/thread count."""

from repro.platform.kernels import KernelRecord, TraceRecorder
from repro.platform.machine import (
    MachineModel,
    CRAY_XMT,
    CRAY_XMT2,
    INTEL_E7_8870,
    INTEL_X5650,
    INTEL_X5570,
    PLATFORMS,
    get_machine,
)
from repro.platform.sim import simulate_time, simulate_sweep, PhaseBreakdown
from repro.platform.noise import run_variation
from repro.platform.traceio import save_trace, load_trace
from repro.platform.whatif import single_socket, scale_bandwidth, scale_clock
from repro.platform.utilization import (
    KernelUtilization,
    mean_utilization,
    utilization_profile,
)

__all__ = [
    "KernelRecord",
    "TraceRecorder",
    "MachineModel",
    "CRAY_XMT",
    "CRAY_XMT2",
    "INTEL_E7_8870",
    "INTEL_X5650",
    "INTEL_X5570",
    "PLATFORMS",
    "get_machine",
    "simulate_time",
    "simulate_sweep",
    "PhaseBreakdown",
    "run_variation",
    "save_trace",
    "load_trace",
    "KernelUtilization",
    "mean_utilization",
    "utilization_profile",
    "single_socket",
    "scale_bandwidth",
    "scale_clock",
]
