"""Machine models for the paper's five evaluation platforms (Table I).

Two architecture kinds:

* ``"xmt"`` — Cray XMT / XMT2.  No caches; memory latency is tolerated by
  massive multithreading (≥100 hardware contexts per processor).  A
  processor only reaches full issue rate when the loop offers enough
  concurrent items to fill its thread contexts — the source of the paper's
  observation that the small soc-LiveJournal1 graph stops scaling at high
  processor counts.  Synchronization uses cheap full/empty bits; dependent
  pointer chases are latency-hidden like any other access.

* ``"openmp"`` — Intel Xeon servers.  Caches give low per-item costs, and
  hyper-threads add partial throughput beyond physical cores.  Aggregate
  memory bandwidth saturates (the paper's X5570 "fewer outstanding
  transactions" remark maps to a lower bandwidth ceiling), contended locks
  ping-pong cache lines at a cost that *grows* with thread count, and
  dependent chases pay full DRAM latency — the two effects that made the
  legacy kernels infeasible under OpenMP.

The numeric constants are calibrated so that simulated peak processing
rates land in the regime of the paper's Table III and the speed-up curves
reproduce Figures 1–3's shape; they are exposed as dataclass fields so the
ablation benchmarks and tests can probe their effects.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PlatformModelError

__all__ = [
    "MachineModel",
    "CRAY_XMT",
    "CRAY_XMT2",
    "INTEL_E7_8870",
    "INTEL_X5650",
    "INTEL_X5570",
    "PLATFORMS",
    "get_machine",
]


@dataclass(frozen=True)
class MachineModel:
    """Analytic cost model of one threaded platform.

    Attributes
    ----------
    name:
        Display name (matches the paper's plots).
    kind:
        ``"xmt"`` or ``"openmp"``.
    clock_hz:
        Processor clock.
    n_processors:
        Sockets (Intel) or processor boards (XMT).
    threads_per_processor:
        Table I's "max threads/proc": hardware contexts on the XMT,
        logical cores per socket on Intel.
    physical_cores:
        Total physical cores (Intel); equals ``n_processors`` on XMT where
        allocation is by whole processors.
    ht_yield:
        Marginal throughput of a hyper-thread relative to a physical core
        (Intel only; 0 on XMT).
    cpi:
        Average cycles per work item for cache-resident / latency-hidden
        execution.
    words_per_sec_per_thread:
        Achievable memory streaming rate of one thread (64-bit words/s).
    total_bandwidth_words:
        Aggregate memory bandwidth ceiling (words/s).
    atomic_cycles:
        Cost of an uncontended atomic (fetch-and-add / full-empty).
    contended_cycles:
        Cost of a *contended* synchronizing operation before the
        thread-count penalty is applied.
    chain_latency_s:
        Latency of one dependent pointer-chase memory operation
        (OpenMP pays DRAM latency; XMT hides it — see ``sim``).
    loop_overhead_s:
        Fixed cost of launching one parallel loop (OpenMP barrier /
        XMT loop spawn).
    items_per_thread:
        XMT only: loop iterations each hardware thread context needs
        before a processor reaches full issue rate (amortizing thread
        startup and keeping latency hidden).  A loop saturates
        ``items / (threads_per_processor * items_per_thread)``
        processors; small loops therefore stop scaling — the paper's
        "insufficient parallelism" effect on soc-LiveJournal1.
    ping_pong:
        Growth rate of the contended-synchronization unit cost per added
        core (cache-line ping-pong on Intel, hot-spot retry on XMT).
    """

    name: str
    kind: str
    clock_hz: float
    n_processors: int
    threads_per_processor: int
    physical_cores: int
    ht_yield: float
    cpi: float
    words_per_sec_per_thread: float
    total_bandwidth_words: float
    atomic_cycles: float
    contended_cycles: float
    chain_latency_s: float
    loop_overhead_s: float
    items_per_thread: float = 1.0
    ping_pong: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("xmt", "openmp"):
            raise PlatformModelError(f"unknown machine kind {self.kind!r}")
        if self.clock_hz <= 0 or self.n_processors <= 0:
            raise PlatformModelError("clock and processor count must be positive")
        if not 0.0 <= self.ht_yield <= 1.0:
            raise PlatformModelError("ht_yield must lie in [0, 1]")

    @property
    def max_parallelism(self) -> int:
        """Largest meaningful allocation unit count for a sweep.

        XMT allocates whole processors; Intel allocates threads up to the
        logical core count (physical × 2 with Hyper-Threading).
        """
        if self.kind == "xmt":
            return self.n_processors
        return self.n_processors * self.threads_per_processor

    @property
    def allocation_unit(self) -> str:
        """What a sweep step allocates: processors (XMT) or threads."""
        return "processors" if self.kind == "xmt" else "threads"

    def check_parallelism(self, p: int) -> None:
        """Validate a requested processor/thread count."""
        if not 1 <= p <= self.max_parallelism:
            raise PlatformModelError(
                f"{self.name} supports 1..{self.max_parallelism} "
                f"{self.allocation_unit}, got {p}"
            )

    def table1_row(self) -> tuple[str, int, int, str]:
        """(name, #proc, max threads/proc, speed) — the paper's Table I."""
        ghz = self.clock_hz / 1e9
        speed = f"{ghz * 1000:.0f}MHz" if ghz < 1 else f"{ghz:.2f}GHz"
        return (self.name, self.n_processors, self.threads_per_processor, speed)


# --------------------------------------------------------------------------
# Platform definitions.  Table I architectural facts are exact; the cost
# constants are this model's calibration (see module docstring).
# --------------------------------------------------------------------------

CRAY_XMT = MachineModel(
    name="XMT",
    kind="xmt",
    clock_hz=500e6,
    n_processors=128,
    threads_per_processor=100,
    physical_cores=128,
    ht_yield=0.0,
    cpi=9.0,
    words_per_sec_per_thread=8.0e6,
    # Aggregate network/memory ceiling: saturates around 22 processors of
    # streaming demand, matching the ~20x speed-up plateau of Figure 2.
    total_bandwidth_words=1.8e8,
    atomic_cycles=12.0,
    contended_cycles=40.0,
    chain_latency_s=0.0,  # latency-hidden; sim charges cpi instead
    loop_overhead_s=3.0e-5,
    # 4x the XMT2's: §V-C observes the gen-1 compiler "under-allocates
    # threads in portions of the code", so loops need more items per
    # context before a processor is productively saturated.
    items_per_thread=64.0,
    ping_pong=0.02,
)

CRAY_XMT2 = MachineModel(
    name="XMT2",
    kind="xmt",
    clock_hz=500e6,
    n_processors=64,
    threads_per_processor=102,
    physical_cores=64,
    ht_yield=0.0,
    cpi=6.0,
    # "additional memory bandwidth within a node" — the XMT2's headline
    # improvement: ~3x the per-processor rate and ~4x the ceiling.
    words_per_sec_per_thread=25.0e6,
    total_bandwidth_words=9.0e8,
    atomic_cycles=12.0,
    contended_cycles=40.0,
    chain_latency_s=0.0,
    loop_overhead_s=2.0e-5,
    items_per_thread=16.0,
    ping_pong=0.02,
)

INTEL_E7_8870 = MachineModel(
    name="E7-8870",
    kind="openmp",
    clock_hz=2.40e9,
    n_processors=4,
    threads_per_processor=20,  # 10 cores x 2 hyper-threads
    physical_cores=40,
    ht_yield=0.35,
    cpi=10.0,
    words_per_sec_per_thread=5.0e7,
    total_bandwidth_words=1.05e9,
    atomic_cycles=30.0,
    contended_cycles=600.0,
    chain_latency_s=9.0e-8,
    loop_overhead_s=2.0e-6,
    ping_pong=0.25,
)

INTEL_X5650 = MachineModel(
    name="X5650",
    kind="openmp",
    clock_hz=2.66e9,
    n_processors=2,
    threads_per_processor=12,  # 6 cores x 2 hyper-threads
    physical_cores=12,
    ht_yield=0.35,
    cpi=10.0,
    words_per_sec_per_thread=7.0e7,
    total_bandwidth_words=3.4e8,
    atomic_cycles=30.0,
    contended_cycles=600.0,
    chain_latency_s=8.5e-8,
    loop_overhead_s=1.5e-6,
    ping_pong=0.25,
)

INTEL_X5570 = MachineModel(
    name="X5570",
    kind="openmp",
    clock_hz=2.93e9,
    n_processors=2,
    threads_per_processor=8,  # 4 cores x 2 hyper-threads
    physical_cores=8,
    ht_yield=0.35,
    cpi=10.0,
    # Earlier-generation memory controller, fewer outstanding transactions:
    # lower per-thread and aggregate bandwidth than the X5650 (§V-C).
    words_per_sec_per_thread=4.5e7,
    total_bandwidth_words=2.6e8,
    atomic_cycles=30.0,
    contended_cycles=650.0,
    chain_latency_s=1.0e-7,
    loop_overhead_s=1.5e-6,
    ping_pong=0.3,
)

#: Registry keyed by the names used throughout the paper's plots.
PLATFORMS: dict[str, MachineModel] = {
    m.name: m
    for m in (CRAY_XMT, CRAY_XMT2, INTEL_E7_8870, INTEL_X5650, INTEL_X5570)
}


def get_machine(name: str) -> MachineModel:
    """Look up a platform by name (as spelled in the paper's figures)."""
    try:
        return PLATFORMS[name]
    except KeyError:
        raise PlatformModelError(
            f"unknown platform {name!r}; available: {sorted(PLATFORMS)}"
        ) from None
