"""Trace-driven execution-time simulation.

``simulate_time(records, machine, p)`` replays a measured kernel trace
(collected by running the *real* algorithm with a
:class:`~repro.platform.kernels.TraceRecorder`) against a
:class:`~repro.platform.machine.MachineModel` at a given processor or
thread count.  Per kernel record the model composes:

* **compute/stream time** — ``items`` at ``cpi`` cycles each over the
  effective parallelism, overlapped (max) with ``mem_words`` over the
  effective memory bandwidth;
* **effective parallelism** — Intel: physical cores at full rate plus
  hyper-threads at ``ht_yield``; XMT: a processor only counts fully when
  the loop supplies ``threads_per_processor`` concurrent items for it
  (latency hiding), so small loops flatten the scaling exactly as the
  paper's soc-LiveJournal1 curves do;
* **synchronization** — uncontended atomics scale with parallelism;
  contended operations serialize, and on cache-based machines their unit
  cost *grows* with thread count (cache-line ping-pong) — the effect that
  crippled the legacy matching under OpenMP;
* **dependent chases** — ``chain_ops`` pay DRAM latency on Intel
  (legacy contraction's linked lists) but are latency-hidden on the XMT;
* **loop launch overhead** per parallel region.

The model is intentionally analytic and monotone in its inputs; it is
calibrated (constants in :mod:`repro.platform.machine`) so that simulated
peak rates and speed-up shapes land where the paper's Table III and
Figures 1–3 put them, and the ablation contrasts (§IV-B, §IV-C) emerge
from the recorded contention/chain profiles rather than hard-coding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.platform.kernels import KernelRecord
from repro.platform.machine import MachineModel
from repro.platform.noise import run_variation
from repro.util.rng import SeedLike, spawn_seeds

__all__ = ["PhaseBreakdown", "simulate_time", "simulate_sweep"]


@dataclass
class PhaseBreakdown:
    """Simulated seconds per kernel name, plus the total."""

    total: float = 0.0
    by_kernel: dict[str, float] = field(default_factory=dict)

    def add(self, name: str, seconds: float) -> None:
        self.total += seconds
        self.by_kernel[name] = self.by_kernel.get(name, 0.0) + seconds

    def fraction(self, name: str) -> float:
        """Share of total time spent in kernels called ``name``."""
        if self.total == 0:
            return 0.0
        return self.by_kernel.get(name, 0.0) / self.total

    def fraction_prefix(self, prefix: str) -> float:
        """Share of total time in kernels whose name starts with ``prefix``
        (e.g. ``"contract"`` for the paper's 40–80 % claim)."""
        if self.total == 0:
            return 0.0
        part = sum(v for k, v in self.by_kernel.items() if k.startswith(prefix))
        return part / self.total


def _effective_parallelism(rec: KernelRecord, m: MachineModel, p: int) -> float:
    """Units of full-rate execution the loop actually achieves."""
    if m.kind == "openmp":
        full = min(p, m.physical_cores)
        extra = max(0, p - m.physical_cores)
        return full + m.ht_yield * extra
    # XMT: a processor only reaches issue rate when the loop supplies
    # enough concurrent items to fill its thread contexts (and amortize
    # their startup).  Below that, throughput degrades proportionally
    # (latency is no longer hidden).
    saturating = rec.items / (m.threads_per_processor * m.items_per_thread)
    return float(np.clip(saturating, min(p, 1.0), p))


def _kernel_time(rec: KernelRecord, m: MachineModel, p: int) -> float:
    eff = _effective_parallelism(rec, m, p)

    # Compute and streaming memory, overlapped.  Streaming rate is limited
    # by the same effective parallelism: an XMT processor starved of
    # concurrent items cannot generate memory traffic either.
    compute = rec.items * m.cpi / (m.clock_hz * eff)
    bw = min(m.words_per_sec_per_thread * eff, m.total_bandwidth_words)
    stream = rec.mem_words / bw if rec.mem_words else 0.0
    base = max(compute, stream)

    # Synchronization: contended share serializes; uncontended share
    # parallelizes.  Cache-line ping-pong makes each contended op costlier
    # as threads are added on cache-coherent machines.
    sync_ops = rec.atomics + rec.locks
    contended = sync_ops * rec.contention
    uncontended = sync_ops - contended
    sync = uncontended * m.atomic_cycles / (m.clock_hz * eff)
    if contended:
        # Contended operations serialize (no parallel speedup).  Moderate
        # contention — scattered pairwise claim collisions, as in the new
        # worklist matching — costs a flat contended-op price.  Only
        # *concentrated* contention (the legacy sweep's per-sweep hammering
        # of hub-vertex slots, contention → 1) additionally ping-pongs the
        # hot cache lines at a rate that grows with active cores; that term
        # is what cripples the legacy kernels under OpenMP (§IV-B).
        cores = min(p, m.physical_cores)
        hot = max(0.0, rec.contention - 0.5) * 2.0
        penalty = 1.0 + m.ping_pong * (cores - 1) * hot
        if m.kind == "openmp":
            # Lock-based collisions serialize on the owning cache line.
            sync += contended * m.contended_cycles * penalty / m.clock_hz
        else:
            # Full/empty bits retry in hardware while other threads run:
            # contended ops stay parallel, just costlier — the reason the
            # legacy matching "worked sufficiently well" on the XMT.
            sync += (
                contended * m.contended_cycles * penalty / (m.clock_hz * eff)
            )

    # Dependent chases: DRAM-latency bound on Intel, latency-hidden
    # (ordinary cpi work) on the XMT.
    chase = 0.0
    if rec.chain_ops:
        if m.kind == "openmp":
            chase = rec.chain_ops * m.chain_latency_s / eff
        else:
            chase = rec.chain_ops * m.cpi / (m.clock_hz * eff)

    overhead = m.loop_overhead_s * (1.0 + np.log2(p))
    return base + sync + chase + overhead


def simulate_time(
    records: Iterable[KernelRecord],
    machine: MachineModel,
    p: int,
) -> PhaseBreakdown:
    """Deterministic simulated execution time of a trace at parallelism ``p``.

    ``p`` counts processors on XMT machines and OpenMP threads on Intel
    machines, mirroring the paper's per-platform x-axes.
    """
    machine.check_parallelism(p)
    breakdown = PhaseBreakdown()
    for rec in records:
        breakdown.add(rec.name, _kernel_time(rec, machine, p))
    return breakdown


def simulate_sweep(
    records: Sequence[KernelRecord],
    machine: MachineModel,
    parallelism: Sequence[int] | None = None,
    *,
    n_runs: int = 3,
    seed: SeedLike = 0,
) -> dict[int, list[float]]:
    """Simulate a full scaling sweep with run-to-run variation.

    Returns ``{p: [t_run1, t_run2, ...]}``.  The paper runs every
    configuration three times "to capture some of the variability in
    platforms and in our non-deterministic algorithm"; seeded
    multiplicative noise (larger on the XMT2, per §V-C) models that here.
    """
    if parallelism is None:
        maxp = machine.max_parallelism
        parallelism = [p for p in (1, 2, 4, 8, 16, 32, 64, 128) if p <= maxp]
        if parallelism[-1] != maxp:
            parallelism = list(parallelism) + [maxp]
    if n_runs < 1:
        raise ValueError("n_runs must be at least 1")

    entropies = [int(ss.generate_state(1)[0]) for ss in spawn_seeds(seed, n_runs)]
    out: dict[int, list[float]] = {}
    for p in parallelism:
        base = simulate_time(records, machine, p).total
        out[p] = [base * run_variation(machine, p, ent) for ent in entropies]
    return out
