"""Run-to-run variation model.

The paper runs each configuration three times because both the platforms
and the algorithm are non-deterministic; §V-C singles out the XMT2's
variation ("appears related to finding different community structures")
and notes compiler thread under-allocation bursts.  Our algorithm is
deterministic, so the variability is reintroduced here as seeded
multiplicative noise: log-normal with a per-platform spread, slightly
larger at higher processor counts where scheduling variance grows.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.platform.machine import MachineModel

__all__ = ["run_variation"]

#: Baseline relative standard deviation per platform kind.
_BASE_SIGMA = {"openmp": 0.015, "xmt": 0.03}
#: The XMT2 shows visibly larger spread in the paper's Figure 1.
_XMT2_SIGMA = 0.08


def run_variation(machine: MachineModel, p: int, run_entropy: int) -> float:
    """A multiplicative time factor for one run (mean ≈ 1).

    Deterministic in ``(machine, p, run_entropy)`` and independent across
    those inputs: the machine name is folded into the stream via a stable
    CRC so different platforms at the same ``p`` draw different noise.
    """
    name_tag = zlib.crc32(machine.name.encode())
    rng = np.random.default_rng([int(run_entropy) & (2**63 - 1), int(p), name_tag])
    sigma = _XMT2_SIGMA if machine.name == "XMT2" else _BASE_SIGMA[machine.kind]
    sigma *= 1.0 + 0.3 * np.log2(max(p, 1)) / 7.0
    factor = float(np.exp(rng.normal(0.0, sigma)))
    # Clamp pathological draws so simulated points stay plot-plausible.
    return float(np.clip(factor, 0.8, 1.3))
