"""What-if machine variants.

§V leaves hardware questions open ("this data is insufficient to see if
a single, slower E7-8870's additional cores can outperform the faster
X5650's fewer cores"); the cost model can pose them directly.  These
helpers derive hypothetical machines from the calibrated ones without
touching the calibration itself.
"""

from __future__ import annotations

import dataclasses

from repro.errors import PlatformModelError
from repro.platform.machine import MachineModel

__all__ = ["single_socket", "scale_bandwidth", "scale_clock"]


def single_socket(machine: MachineModel, *, sockets: int = 1) -> MachineModel:
    """A ``sockets``-socket variant of an Intel machine.

    Physical cores and the aggregate bandwidth ceiling shrink
    proportionally; per-thread characteristics are unchanged.
    """
    if machine.kind != "openmp":
        raise PlatformModelError("single_socket applies to Intel machines")
    if not 1 <= sockets <= machine.n_processors:
        raise PlatformModelError(
            f"sockets must lie in 1..{machine.n_processors}"
        )
    frac = sockets / machine.n_processors
    return dataclasses.replace(
        machine,
        name=f"{machine.name}x{sockets}",
        n_processors=sockets,
        physical_cores=int(machine.physical_cores * frac),
        total_bandwidth_words=machine.total_bandwidth_words * frac,
    )


def scale_bandwidth(machine: MachineModel, factor: float) -> MachineModel:
    """Scale both per-thread and aggregate memory bandwidth.

    The XMT2-vs-XMT contrast in the paper is essentially this knob: the
    new generation's "additional memory bandwidth within a node".
    """
    if factor <= 0:
        raise PlatformModelError("factor must be positive")
    return dataclasses.replace(
        machine,
        name=f"{machine.name}(bw x{factor:g})",
        words_per_sec_per_thread=machine.words_per_sec_per_thread * factor,
        total_bandwidth_words=machine.total_bandwidth_words * factor,
    )


def scale_clock(machine: MachineModel, factor: float) -> MachineModel:
    """Scale the processor clock (compute-side speed only)."""
    if factor <= 0:
        raise PlatformModelError("factor must be positive")
    return dataclasses.replace(
        machine,
        name=f"{machine.name}(clk x{factor:g})",
        clock_hz=machine.clock_hz * factor,
    )
