"""Trace serialization.

A recorded execution trace is the expensive artifact (it required running
the full algorithm); persisting it lets sweeps, plots and what-if machine
studies run offline.  Plain JSON keeps the files inspectable.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict

from repro.errors import ReproError
from repro.platform.kernels import KernelRecord, TraceRecorder

__all__ = ["save_trace", "load_trace"]

_FORMAT_VERSION = 1


def save_trace(recorder: TraceRecorder, path: str | os.PathLike) -> None:
    """Write a trace to a JSON file."""
    payload = {
        "format": "repro-trace",
        "version": _FORMAT_VERSION,
        "records": [asdict(rec) for rec in recorder.records],
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1)


def load_trace(path: str | os.PathLike) -> TraceRecorder:
    """Read a trace written by :func:`save_trace`."""
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict) or payload.get("format") != "repro-trace":
        raise ReproError(f"{path}: not a repro trace file")
    if payload.get("version") != _FORMAT_VERSION:
        raise ReproError(
            f"{path}: unsupported trace version {payload.get('version')!r}"
        )
    recorder = TraceRecorder()
    try:
        records = [KernelRecord(**rec) for rec in payload["records"]]
    except (TypeError, KeyError, ValueError) as exc:
        raise ReproError(f"{path}: malformed trace record: {exc}") from exc
    recorder.records = records
    recorder.level = max((r.level for r in records), default=-1) + 1
    return recorder
