"""Shared dtype and typing conventions.

The paper stores vertices, edge endpoints and integer weights in 64-bit
words (3|V| + 3|E| words for the graph); we mirror that with ``int64``
index arrays and ``float64`` score arrays.  Edge weights are kept as
``float64`` so that weight-accumulating contraction and fractional input
weights share one code path (the paper's integer weights are exactly
representable).
"""

from __future__ import annotations

from typing import TypeAlias

import numpy as np
import numpy.typing as npt

__all__ = [
    "VERTEX_DTYPE",
    "WEIGHT_DTYPE",
    "SCORE_DTYPE",
    "VertexArray",
    "WeightArray",
    "ScoreArray",
    "NO_VERTEX",
]

#: dtype used for vertex identifiers and edge endpoints.
VERTEX_DTYPE = np.int64

#: dtype used for edge and self-loop weights.
WEIGHT_DTYPE = np.float64

#: dtype used for edge scores.
SCORE_DTYPE = np.float64

#: Sentinel for "no vertex" in match/partner arrays.
NO_VERTEX: int = -1

VertexArray: TypeAlias = npt.NDArray[np.int64]
WeightArray: TypeAlias = npt.NDArray[np.float64]
ScoreArray: TypeAlias = npt.NDArray[np.float64]
