"""LFR-style benchmark graphs (Lancichinetti, Fortunato, Radicchi 2008).

The community-detection literature's standard synthetic benchmark:
power-law degree distribution, power-law community sizes, and a *mixing
parameter* ``mu`` — the fraction of each vertex's edges that leave its
community.  At ``mu → 0`` communities are unmistakable; past ``mu ≈ 0.5``
they fade into the background, which makes the family ideal for mapping
where detectors break down.

This is a pragmatic "LFR-lite": degrees and community sizes follow the
prescribed power laws and the per-vertex mixing is honoured in
expectation via intra-/inter-community configuration models (stub
matching with duplicate/self-loop rejection), rather than LFR's exact
rewiring loop.  The properties tests and benchmarks rely on — planted
partition coverage ≈ ``1 - mu``, recovery difficulty increasing in
``mu`` — hold throughout.
"""

from __future__ import annotations

import numpy as np

from repro.graph.build import from_edges
from repro.graph.graph import CommunityGraph
from repro.metrics.partition import Partition
from repro.types import VERTEX_DTYPE
from repro.util.rng import SeedLike, as_generator

__all__ = ["lfr_graph"]


def _power_law_ints(
    rng: np.random.Generator,
    n: int,
    exponent: float,
    lo: int,
    hi: int,
) -> np.ndarray:
    """n integers in [lo, hi] with density ~ x^-exponent (inverse CDF)."""
    u = rng.random(n)
    a = 1.0 - exponent
    x = (lo**a + u * (hi**a - lo**a)) ** (1.0 / a)
    return np.clip(x.astype(np.int64), lo, hi)


def _community_sizes(
    rng: np.random.Generator,
    n_vertices: int,
    exponent: float,
    lo: int,
    hi: int,
) -> np.ndarray:
    sizes: list[int] = []
    remaining = n_vertices
    while remaining > 0:
        s = int(_power_law_ints(rng, 1, exponent, lo, hi)[0])
        s = min(s, remaining)
        if remaining - s and remaining - s < lo:
            s = remaining  # absorb the stranded remainder
        sizes.append(s)
        remaining -= s
    return np.asarray(sizes, dtype=VERTEX_DTYPE)


def _stub_pairs(
    rng: np.random.Generator, stubs: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Configuration model: shuffle stub endpoints and pair them up."""
    if len(stubs) < 2:
        return np.empty(0, dtype=VERTEX_DTYPE), np.empty(0, dtype=VERTEX_DTYPE)
    perm = rng.permutation(stubs)
    half = len(perm) // 2
    return perm[:half], perm[half : 2 * half]


def lfr_graph(
    n_vertices: int,
    *,
    mu: float = 0.3,
    avg_degree: float = 10.0,
    max_degree: int | None = None,
    degree_exponent: float = 2.5,
    min_community: int = 20,
    max_community: int | None = None,
    community_exponent: float = 1.5,
    seed: SeedLike = None,
    return_labels: bool = False,
) -> CommunityGraph | tuple[CommunityGraph, np.ndarray]:
    """Generate an LFR-style benchmark graph.

    Parameters
    ----------
    mu:
        Mixing parameter: expected fraction of each vertex's edges that
        cross its community boundary.
    avg_degree, max_degree, degree_exponent:
        Degree power law; ``max_degree`` defaults to ``min(n/4, 10·avg)``.
    min_community, max_community, community_exponent:
        Community-size power law; ``max_community`` defaults to
        ``max(2·min_community, n // 5)``.
    return_labels:
        Also return the planted community labels.
    """
    if n_vertices < 2 * min_community:
        raise ValueError("n_vertices must be at least 2 * min_community")
    if not 0.0 <= mu <= 1.0:
        raise ValueError("mu must lie in [0, 1]")
    if degree_exponent <= 1.0 or community_exponent <= 1.0:
        raise ValueError("power-law exponents must exceed 1")
    rng = as_generator(seed)
    if max_degree is None:
        max_degree = int(min(n_vertices / 4, 10 * avg_degree))
    if max_community is None:
        max_community = max(2 * min_community, n_vertices // 5)

    # Degrees: power law rescaled to the requested mean.
    deg = _power_law_ints(rng, n_vertices, degree_exponent, 2, max_degree)
    deg = np.maximum(
        2, (deg * (avg_degree / deg.mean())).astype(np.int64)
    )
    deg = np.minimum(deg, max_degree)

    sizes = _community_sizes(
        rng, n_vertices, community_exponent, min_community, max_community
    )
    labels = np.repeat(
        np.arange(len(sizes), dtype=VERTEX_DTYPE), sizes.astype(np.intp)
    )
    # Shuffle membership so degree and community are independent.
    order = rng.permutation(n_vertices)
    labels = labels[order]

    # Per-vertex intra degree, capped by community capacity.
    intra = np.round((1.0 - mu) * deg).astype(np.int64)
    cap = sizes[labels] - 1
    intra = np.minimum(intra, cap)
    inter = deg - intra

    src_parts: list[np.ndarray] = []
    dst_parts: list[np.ndarray] = []

    # Intra-community configuration model, one community at a time.
    for c in range(len(sizes)):
        members = np.flatnonzero(labels == c)
        stubs = np.repeat(members, intra[members].astype(np.intp))
        a, b = _stub_pairs(rng, stubs)
        keep = a != b
        src_parts.append(a[keep].astype(VERTEX_DTYPE))
        dst_parts.append(b[keep].astype(VERTEX_DTYPE))

    # Inter-community configuration model, rejecting same-community pairs.
    stubs = np.repeat(
        np.arange(n_vertices, dtype=VERTEX_DTYPE), inter.astype(np.intp)
    )
    a, b = _stub_pairs(rng, stubs)
    keep = (a != b) & (labels[a] != labels[b])
    src_parts.append(a[keep])
    dst_parts.append(b[keep])

    i = np.concatenate(src_parts) if src_parts else np.empty(0, dtype=VERTEX_DTYPE)
    j = np.concatenate(dst_parts) if dst_parts else np.empty(0, dtype=VERTEX_DTYPE)
    graph = from_edges(i, j, None, n_vertices=n_vertices)
    graph.edges.w[:] = 1.0  # simple graph: collapse stub-matching duplicates
    if return_labels:
        return graph, labels
    return graph
