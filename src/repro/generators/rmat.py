"""R-MAT recursive-matrix graph generator (Chakrabarti, Zhan, Faloutsos).

The paper's artificial workload is ``rmat-24-16``: scale 24, edge factor 16,
parameters ``a = 0.55, b = c = 0.1, d = 0.25`` with per-level parameter
perturbation as in the HPCS SSCA#2 benchmark, multiple edges accumulated
into weights, and the largest connected component extracted.  This module
reproduces that generator exactly, parameterized by scale so the benchmark
harness can run laptop-size instances.

The edge sampler is fully vectorized: all ``2^scale * edge_factor`` edges
draw their ``scale`` quadrant choices as one ``(m, scale)`` uniform block,
the Python analogue of the parallel per-edge loops in the C generator.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import CommunityGraph
from repro.graph.build import from_edges
from repro.graph.subgraph import largest_component
from repro.types import VERTEX_DTYPE
from repro.util.rng import SeedLike, as_generator

__all__ = ["rmat_edges", "rmat_graph"]


def rmat_edges(
    scale: int,
    edge_factor: int = 16,
    a: float = 0.55,
    b: float = 0.1,
    c: float = 0.1,
    d: float = 0.25,
    *,
    noise: float = 0.1,
    seed: SeedLike = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample a raw R-MAT edge stream of ``2^scale * edge_factor`` pairs.

    Self loops and duplicates are produced exactly as the reference
    generator emits them; callers accumulate them into weights.

    Parameters
    ----------
    scale:
        Log2 of the vertex count.
    edge_factor:
        Edges per vertex (the paper uses 16).
    a, b, c, d:
        Quadrant probabilities (must sum to 1).
    noise:
        SSCA#2-style multiplicative perturbation of the quadrant
        probabilities at every recursion level, re-normalized; ``0``
        disables perturbation.
    """
    if scale < 0:
        raise ValueError("scale must be non-negative")
    if edge_factor <= 0:
        raise ValueError("edge_factor must be positive")
    total = a + b + c + d
    if not np.isclose(total, 1.0):
        raise ValueError(f"R-MAT probabilities must sum to 1, got {total}")
    if not 0 <= noise < 1:
        raise ValueError("noise must be in [0, 1)")

    rng = as_generator(seed)
    m = (1 << scale) * edge_factor
    i = np.zeros(m, dtype=VERTEX_DTYPE)
    j = np.zeros(m, dtype=VERTEX_DTYPE)

    for level in range(scale):
        if noise:
            # Perturb each probability per level, then renormalize, as in
            # the SSCA#2 reference implementation.
            factors = 1.0 + noise * (2.0 * rng.random(4) - 1.0)
            pa, pb, pc, pd = np.array([a, b, c, d]) * factors
            s = pa + pb + pc + pd
            pa, pb, pc, pd = pa / s, pb / s, pc / s, pd / s
        else:
            pa, pb, pc, pd = a, b, c, d
        u = rng.random(m)
        # Quadrant choice: segments [A | B | C | D] laid out over [0, 1).
        # B and D set the column bit; C and D set the row bit.
        right = ((u >= pa) & (u < pa + pb)) | (u >= pa + pb + pc)
        down = u >= pa + pb
        bit = VERTEX_DTYPE(1 << (scale - 1 - level))
        i += np.where(down, bit, 0)
        j += np.where(right, bit, 0)
    return i, j


def rmat_graph(
    scale: int,
    edge_factor: int = 16,
    *,
    a: float = 0.55,
    b: float = 0.1,
    c: float = 0.1,
    d: float = 0.25,
    noise: float = 0.1,
    seed: SeedLike = None,
    extract_largest_component: bool = True,
) -> CommunityGraph:
    """Generate the paper's artificial workload at the given scale.

    Multi-edges are accumulated into weights and self loops folded into
    self weights by the graph builder; the largest connected component is
    extracted by default, matching the paper's preprocessing.
    """
    i, j = rmat_edges(
        scale, edge_factor, a, b, c, d, noise=noise, seed=seed
    )
    graph = from_edges(i, j, None, n_vertices=1 << scale)
    if extract_largest_component:
        graph, _ = largest_component(graph)
    return graph
