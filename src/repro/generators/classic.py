"""Deterministic fixture graphs with known community structure.

Small graphs whose optimal or expected clusterings are known in closed
form; the test suite leans on these, and the quality benchmarks use the
karate club and ring-of-cliques families (the standard sanity checks for
modularity maximizers).
"""

from __future__ import annotations

import numpy as np

from repro.graph.build import from_edges
from repro.graph.graph import CommunityGraph
from repro.types import VERTEX_DTYPE

__all__ = [
    "karate_club",
    "ring_of_cliques",
    "star_graph",
    "path_graph",
    "complete_graph",
    "grid_graph",
    "two_triangles",
]

# Zachary's karate club, 34 vertices / 78 edges (0-indexed edge list).
_KARATE_EDGES = [
    (0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (0, 6), (0, 7), (0, 8), (0, 10),
    (0, 11), (0, 12), (0, 13), (0, 17), (0, 19), (0, 21), (0, 31), (1, 2),
    (1, 3), (1, 7), (1, 13), (1, 17), (1, 19), (1, 21), (1, 30), (2, 3),
    (2, 7), (2, 8), (2, 9), (2, 13), (2, 27), (2, 28), (2, 32), (3, 7),
    (3, 12), (3, 13), (4, 6), (4, 10), (5, 6), (5, 10), (5, 16), (6, 16),
    (8, 30), (8, 32), (8, 33), (9, 33), (13, 33), (14, 32), (14, 33),
    (15, 32), (15, 33), (18, 32), (18, 33), (19, 33), (20, 32), (20, 33),
    (22, 32), (22, 33), (23, 25), (23, 27), (23, 29), (23, 32), (23, 33),
    (24, 25), (24, 27), (24, 31), (25, 31), (26, 29), (26, 33), (27, 33),
    (28, 31), (28, 33), (29, 32), (29, 33), (30, 32), (30, 33), (31, 32),
    (31, 33), (32, 33),
]


def karate_club() -> CommunityGraph:
    """Zachary's karate club (34 vertices, 78 edges, modularity ~0.41 opt)."""
    arr = np.asarray(_KARATE_EDGES, dtype=VERTEX_DTYPE)
    return from_edges(arr[:, 0], arr[:, 1], None, n_vertices=34)


def ring_of_cliques(n_cliques: int, clique_size: int) -> CommunityGraph:
    """``n_cliques`` cliques of ``clique_size`` joined in a ring by single
    edges — the canonical planted-community benchmark.  Any sensible
    community detector should recover the cliques."""
    if n_cliques < 3:
        raise ValueError("need at least 3 cliques for a ring")
    if clique_size < 2:
        raise ValueError("clique size must be at least 2")
    srcs: list[int] = []
    dsts: list[int] = []
    for c in range(n_cliques):
        base = c * clique_size
        for u in range(clique_size):
            for v in range(u + 1, clique_size):
                srcs.append(base + u)
                dsts.append(base + v)
        # Ring link from this clique's last vertex to the next's first.
        nxt = ((c + 1) % n_cliques) * clique_size
        srcs.append(base + clique_size - 1)
        dsts.append(nxt)
    return from_edges(
        np.asarray(srcs, dtype=VERTEX_DTYPE),
        np.asarray(dsts, dtype=VERTEX_DTYPE),
        None,
        n_vertices=n_cliques * clique_size,
    )


def star_graph(n_leaves: int) -> CommunityGraph:
    """Hub vertex 0 with ``n_leaves`` leaves — the paper's worst case for
    agglomeration (only one pair contracts per level: O(|E|·|V|) work)."""
    if n_leaves < 1:
        raise ValueError("need at least 1 leaf")
    leaves = np.arange(1, n_leaves + 1, dtype=VERTEX_DTYPE)
    hubs = np.zeros(n_leaves, dtype=VERTEX_DTYPE)
    return from_edges(hubs, leaves, None, n_vertices=n_leaves + 1)


def path_graph(n_vertices: int) -> CommunityGraph:
    """Simple path 0-1-...-(n-1)."""
    if n_vertices < 1:
        raise ValueError("need at least 1 vertex")
    i = np.arange(n_vertices - 1, dtype=VERTEX_DTYPE)
    return from_edges(i, i + 1, None, n_vertices=n_vertices)


def complete_graph(n_vertices: int) -> CommunityGraph:
    """K_n."""
    if n_vertices < 1:
        raise ValueError("need at least 1 vertex")
    iu = np.triu_indices(n_vertices, k=1)
    return from_edges(
        iu[0].astype(VERTEX_DTYPE), iu[1].astype(VERTEX_DTYPE), None, n_vertices
    )


def grid_graph(rows: int, cols: int) -> CommunityGraph:
    """2-D grid with 4-neighbor connectivity (no community structure)."""
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    idx = np.arange(rows * cols, dtype=VERTEX_DTYPE).reshape(rows, cols)
    srcs = [idx[:, :-1].ravel(), idx[:-1, :].ravel()]
    dsts = [idx[:, 1:].ravel(), idx[1:, :].ravel()]
    return from_edges(
        np.concatenate(srcs), np.concatenate(dsts), None, rows * cols
    )


def two_triangles() -> CommunityGraph:
    """Two triangles joined by one bridge edge — the smallest graph with an
    unambiguous two-community structure; handy for hand-checked tests."""
    edges = np.asarray(
        [(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5), (2, 3)],
        dtype=VERTEX_DTYPE,
    )
    return from_edges(edges[:, 0], edges[:, 1], None, n_vertices=6)
