"""Synthetic web-crawl generator: the uk-2007-05 analogue.

uk-2007-05 is a 105.9 M-vertex, 3.3 G-edge crawl of English .uk sites.  Its
role in the paper's evaluation is "a graph large enough to keep every
processor busy": unlike soc-LiveJournal1, it keeps scaling on 64 XMT2
processors and 80 Intel threads.  The structural properties that matter are

* host locality — pages cluster into hosts, most links stay on-host,
  giving strong contractible structure;
* a power-law in-link distribution produced by preferential copying;
* a vertex/edge ratio of ~1:31 (we default to a similar density).

We reproduce those with a copying model over a two-level host/page
hierarchy.  Pages arrive host by host; each page links to a few on-host
pages (uniform) and a few off-host pages chosen by degree-biased copying.
The generator is vectorized per host batch.
"""

from __future__ import annotations

import numpy as np

from repro.graph.build import from_edges
from repro.graph.graph import CommunityGraph
from repro.graph.subgraph import largest_component
from repro.types import VERTEX_DTYPE
from repro.util.rng import SeedLike, as_generator

__all__ = ["webgraph"]


def webgraph(
    n_vertices: int,
    *,
    edges_per_vertex: float = 16.0,
    mean_host_size: float = 60.0,
    on_host_fraction: float = 0.8,
    seed: SeedLike = None,
    extract_largest_component: bool = True,
    return_hosts: bool = False,
) -> CommunityGraph | tuple[CommunityGraph, np.ndarray]:
    """Generate a host-locality web-crawl-like graph.

    Parameters
    ----------
    n_vertices:
        Number of pages.
    edges_per_vertex:
        Mean number of (undirected) link edges per page.
    mean_host_size:
        Mean pages per host; host sizes are geometric, giving a mix of
        huge portals and tiny sites.
    on_host_fraction:
        Fraction of links staying within the host (host locality).
    return_hosts:
        Also return each page's host id — the generator's planted
        community structure.  Only allowed with
        ``extract_largest_component=False`` (component extraction
        renumbers pages).
    """
    if return_hosts and extract_largest_component:
        raise ValueError(
            "return_hosts requires extract_largest_component=False"
        )
    if n_vertices < 2:
        raise ValueError("need at least 2 vertices")
    if not 0 <= on_host_fraction <= 1:
        raise ValueError("on_host_fraction must be in [0, 1]")
    if edges_per_vertex <= 0:
        raise ValueError("edges_per_vertex must be positive")

    rng = as_generator(seed)

    # Host sizes: geometric with the given mean, truncated to >= 1.
    sizes: list[int] = []
    remaining = n_vertices
    p = 1.0 / mean_host_size
    while remaining > 0:
        size = int(min(rng.geometric(p), remaining))
        sizes.append(size)
        remaining -= size
    host_sizes = np.asarray(sizes, dtype=VERTEX_DTYPE)
    host_offset = np.concatenate([[0], np.cumsum(host_sizes)])

    m_total = int(edges_per_vertex * n_vertices)
    n_on = int(on_host_fraction * m_total)
    n_off = m_total - n_on

    # On-host links: pick a host proportional to its size, then a uniform
    # page pair within it.  Sampling hosts by size == sampling a uniform
    # page and using its host.
    page = rng.integers(0, n_vertices, size=n_on)
    host_of_page = (
        np.searchsorted(host_offset, page, side="right").astype(VERTEX_DTYPE) - 1
    )
    base = host_offset[host_of_page]
    span = host_sizes[host_of_page]
    other = base + (rng.random(n_on) * span).astype(VERTEX_DTYPE)
    on_i, on_j = page, other

    # Off-host links: source uniform, target by preferential copying — with
    # probability 1/2 copy the target of an earlier link (degree bias),
    # else uniform.  Vectorized approximation: draw targets from the
    # already-sampled on-host targets (which are size-biased toward large
    # hosts) or uniformly.
    src = rng.integers(0, n_vertices, size=n_off)
    copy_mask = rng.random(n_off) < 0.5
    uniform_targets = rng.integers(0, n_vertices, size=n_off)
    if n_on:
        copied_targets = other[rng.integers(0, n_on, size=n_off)]
    else:
        copied_targets = uniform_targets
    dst = np.where(copy_mask, copied_targets, uniform_targets)

    i = np.concatenate([on_i, src]).astype(VERTEX_DTYPE)
    j = np.concatenate([on_j, dst]).astype(VERTEX_DTYPE)
    keep = i != j
    graph = from_edges(i[keep], j[keep], None, n_vertices=n_vertices)
    if extract_largest_component:
        graph, _ = largest_component(graph)
    if return_hosts:
        host_of = (
            np.searchsorted(
                host_offset, np.arange(n_vertices), side="right"
            ).astype(VERTEX_DTYPE)
            - 1
        )
        return graph, host_of
    return graph
