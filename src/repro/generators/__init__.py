"""Workload generators for the paper's three evaluation graphs plus
deterministic fixtures for testing."""

from repro.generators.rmat import rmat_edges, rmat_graph
from repro.generators.sbm import planted_partition_graph
from repro.generators.webgraph import webgraph
from repro.generators.ba import barabasi_albert_graph
from repro.generators.lfr import lfr_graph
from repro.generators.classic import (
    karate_club,
    ring_of_cliques,
    star_graph,
    path_graph,
    complete_graph,
    grid_graph,
    two_triangles,
)

__all__ = [
    "rmat_edges",
    "rmat_graph",
    "planted_partition_graph",
    "webgraph",
    "barabasi_albert_graph",
    "lfr_graph",
    "karate_club",
    "ring_of_cliques",
    "star_graph",
    "path_graph",
    "complete_graph",
    "grid_graph",
    "two_triangles",
]
