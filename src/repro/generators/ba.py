"""Barabási–Albert preferential attachment.

A fourth social-network-like generator: scale-free degree distribution
via the repeated-endpoints trick (each new vertex attaches to ``m``
endpoints sampled uniformly from the existing edge-endpoint multiset,
which is exactly degree-proportional sampling).  Useful as a hub-heavy
stress workload for the matching kernel — BA graphs have no community
structure but extreme degree skew.
"""

from __future__ import annotations

import numpy as np

from repro.graph.build import from_edges
from repro.graph.graph import CommunityGraph
from repro.types import VERTEX_DTYPE
from repro.util.rng import SeedLike, as_generator

__all__ = ["barabasi_albert_graph"]


def barabasi_albert_graph(
    n_vertices: int, m: int = 3, *, seed: SeedLike = None
) -> CommunityGraph:
    """Generate a BA graph with ``m`` attachments per new vertex.

    The first ``m + 1`` vertices form a seed clique.  Duplicate picks
    within one vertex's attachment round are deduplicated by the graph
    builder (weights reset to 1, as BA graphs are simple).
    """
    if m < 1:
        raise ValueError("m must be at least 1")
    if n_vertices <= m:
        raise ValueError("need more vertices than attachments")
    rng = as_generator(seed)

    # Seed clique endpoints.
    seed_n = m + 1
    iu = np.triu_indices(seed_n, k=1)
    src = list(iu[0])
    dst = list(iu[1])
    # Endpoint multiset for degree-proportional sampling.
    endpoints = list(iu[0]) + list(iu[1])

    for v in range(seed_n, n_vertices):
        targets = [
            int(endpoints[rng.integers(0, len(endpoints))]) for _ in range(m)
        ]
        for t in targets:
            src.append(v)
            dst.append(t)
            endpoints.append(v)
            endpoints.append(t)

    graph = from_edges(
        np.array(src, dtype=VERTEX_DTYPE),
        np.array(dst, dtype=VERTEX_DTYPE),
        None,
        n_vertices=n_vertices,
    )
    graph.edges.w[:] = 1.0  # simple graph: collapse duplicate attachments
    return graph
