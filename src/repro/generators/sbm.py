"""Power-law planted-partition generator: the soc-LiveJournal1 analogue.

The paper's "real" workload, soc-LiveJournal1, matters for the evaluation
because it (a) is rich in community structure — the agglomeration contracts
fast and reaches coverage 0.5 in few levels — and (b) is *small* relative to
the machines, so it runs out of parallelism at high processor counts.  A
planted-partition graph with power-law distributed community sizes and
skewed intra-community degrees reproduces both properties without the
proprietary snapshot.

Generation is vectorized: community sizes come from a truncated Pareto
draw; intra-community edges are sampled per community as index pairs; the
inter-community background is one global pair sample filtered to cross
communities.  All weights are 1 and there are no self loops or multi-edges,
matching the description of the LiveJournal snapshot in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.graph.build import from_edges
from repro.graph.graph import CommunityGraph
from repro.types import VERTEX_DTYPE
from repro.util.rng import SeedLike, as_generator

__all__ = ["planted_partition_graph"]


def _community_sizes(
    n_vertices: int, mean_size: float, exponent: float, rng: np.random.Generator
) -> np.ndarray:
    """Draw power-law community sizes summing exactly to ``n_vertices``."""
    sizes: list[int] = []
    remaining = n_vertices
    # Pareto with given exponent, truncated to [2, remaining], mean scaled.
    min_size = max(2, int(mean_size / 4))
    while remaining > 0:
        raw = (rng.pareto(exponent) + 1.0) * min_size
        size = int(min(max(raw, 2), remaining, 50 * mean_size))
        if remaining - size == 1:  # never strand a single leftover vertex
            size += 1
        sizes.append(size)
        remaining -= size
    return np.asarray(sizes, dtype=VERTEX_DTYPE)


def planted_partition_graph(
    n_vertices: int,
    *,
    mean_community_size: float = 40.0,
    size_exponent: float = 2.0,
    p_in: float = 0.3,
    background_degree: float = 2.0,
    seed: SeedLike = None,
    return_labels: bool = False,
) -> CommunityGraph | tuple[CommunityGraph, np.ndarray]:
    """Generate a social-network-like graph with planted communities.

    Parameters
    ----------
    n_vertices:
        Total vertex count.
    mean_community_size:
        Target mean of the power-law community-size distribution.
    size_exponent:
        Pareto tail exponent of community sizes (2.0 gives the heavy tail
        seen in LiveJournal's declared groups).
    p_in:
        Intra-community edge probability (for a community of size ``s``,
        about ``p_in * s * (s-1) / 2`` internal edges are planted).
    background_degree:
        Expected number of random inter-community edges per vertex.
    return_labels:
        Also return the planted community label of every vertex.
    """
    if n_vertices < 2:
        raise ValueError("need at least 2 vertices")
    if not 0 < p_in <= 1:
        raise ValueError("p_in must be in (0, 1]")
    if background_degree < 0:
        raise ValueError("background_degree must be non-negative")

    rng = as_generator(seed)
    sizes = _community_sizes(n_vertices, mean_community_size, size_exponent, rng)
    offsets = np.concatenate([[0], np.cumsum(sizes)])
    labels = np.repeat(
        np.arange(len(sizes), dtype=VERTEX_DTYPE), sizes.astype(np.intp)
    )

    src_parts: list[np.ndarray] = []
    dst_parts: list[np.ndarray] = []

    # Intra-community edges: sample pairs with replacement (duplicates are
    # deduplicated by the builder; expected count corrected for that).
    for cid, size in enumerate(sizes.tolist()):
        if size < 2:
            continue
        possible = size * (size - 1) // 2
        base = offsets[cid]
        # Connectivity: plant a random recursive tree (each vertex attaches
        # to a uniform earlier one).  A tree keeps expected depth O(log s),
        # unlike a path, whose equal-weight edge chain would serialize the
        # matching into O(s) passes.
        child = np.arange(base + 1, base + size, dtype=VERTEX_DTYPE)
        parent = base + (rng.random(size - 1) * np.arange(1, size)).astype(
            VERTEX_DTYPE
        )
        src_parts.append(child)
        dst_parts.append(parent)
        n_target = int(rng.poisson(p_in * possible))
        if n_target:
            # Oversample to compensate for duplicate collisions, then rely
            # on builder dedup.
            n_sample = min(int(n_target * 1.3) + 1, 4 * possible)
            u = rng.integers(0, size, size=n_sample)
            v = rng.integers(0, size, size=n_sample)
            keep = u != v
            src_parts.append((base + u[keep]).astype(VERTEX_DTYPE))
            dst_parts.append((base + v[keep]).astype(VERTEX_DTYPE))

    # Inter-community background: preferential-ish uniform pairs filtered to
    # cross community boundaries.
    n_bg = int(background_degree * n_vertices / 2)
    if n_bg:
        u = rng.integers(0, n_vertices, size=int(n_bg * 1.2) + 1)
        v = rng.integers(0, n_vertices, size=len(u))
        keep = (u != v) & (labels[u] != labels[v])
        src_parts.append(u[keep].astype(VERTEX_DTYPE))
        dst_parts.append(v[keep].astype(VERTEX_DTYPE))

    i = np.concatenate(src_parts) if src_parts else np.empty(0, dtype=VERTEX_DTYPE)
    j = np.concatenate(dst_parts) if dst_parts else np.empty(0, dtype=VERTEX_DTYPE)
    graph = from_edges(i, j, None, n_vertices=n_vertices)
    # The paper's LiveJournal snapshot is unweighted: collapse accumulated
    # duplicate samples back to unit weight.
    graph.edges.w[:] = 1.0
    if return_labels:
        return graph, labels
    return graph
