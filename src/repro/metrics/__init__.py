"""Community quality metrics: modularity, conductance, coverage, and
partition-comparison measures (NMI/ARI)."""

from repro.metrics.partition import Partition
from repro.metrics.modularity import modularity, community_graph_modularity
from repro.metrics.conductance import conductances, average_conductance
from repro.metrics.coverage import coverage, mirror_coverage
from repro.metrics.comparison import (
    normalized_mutual_information,
    adjusted_rand_index,
)
from repro.metrics.dimacs import (
    performance,
    expansion,
    intercluster_conductance,
    min_intracluster_density,
)

__all__ = [
    "Partition",
    "modularity",
    "community_graph_modularity",
    "conductances",
    "average_conductance",
    "coverage",
    "mirror_coverage",
    "normalized_mutual_information",
    "adjusted_rand_index",
    "performance",
    "expansion",
    "intercluster_conductance",
    "min_intracluster_density",
]
