"""Coverage: the DIMACS-challenge measure driving the paper's termination.

Coverage of a partition is the fraction of total edge weight falling inside
communities.  The paper's performance experiments stop agglomerating once
coverage reaches 0.5 ("at least half the initial graph's edges are
contained within the communities").
"""

from __future__ import annotations

from repro.graph.graph import CommunityGraph
from repro.metrics.partition import Partition

__all__ = ["coverage", "mirror_coverage"]


def coverage(graph: CommunityGraph, partition: Partition) -> float:
    """Intra-community edge weight over total weight, in ``[0, 1]``.

    Zero-weight graphs have coverage 1 by convention (nothing is cut).
    """
    if partition.n_vertices != graph.n_vertices:
        raise ValueError("partition size does not match graph")
    w_total = graph.total_weight()
    if w_total == 0:
        return 1.0
    labels = partition.labels
    e = graph.edges
    internal = float(e.w[labels[e.ei] == labels[e.ej]].sum())
    internal += float(graph.self_weights.sum())
    return internal / w_total


def mirror_coverage(graph: CommunityGraph, partition: Partition) -> float:
    """1 - coverage: the fraction of weight cut by the partition."""
    return 1.0 - coverage(graph, partition)
