"""Disjoint vertex partitions (community assignments).

A :class:`Partition` is a dense labeling ``labels[v] -> community id`` with
ids in ``0..n_communities-1``.  The agglomerative driver, the baselines and
every metric exchange this type.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.types import VERTEX_DTYPE
from repro.util.arrays import renumber_dense

__all__ = ["Partition"]


@dataclass(frozen=True)
class Partition:
    """An immutable community assignment over ``n_vertices`` vertices."""

    labels: np.ndarray

    def __post_init__(self) -> None:
        labels = np.asarray(self.labels, dtype=VERTEX_DTYPE)
        if labels.ndim != 1:
            raise ValueError("labels must be 1-D")
        if len(labels):
            if labels.min() < 0:
                raise ValueError("negative community label")
            k = int(labels.max()) + 1
            present = np.zeros(k, dtype=bool)
            present[labels] = True
            if not present.all():
                raise ValueError(
                    "community labels must be dense 0..k-1 "
                    "(use Partition.from_labels to renumber)"
                )
        object.__setattr__(self, "labels", labels)

    @classmethod
    def from_labels(cls, labels: np.ndarray) -> "Partition":
        """Build from arbitrary integer labels, renumbering densely."""
        dense, _ = renumber_dense(np.asarray(labels))
        return cls(dense)

    @classmethod
    def singletons(cls, n_vertices: int) -> "Partition":
        """Every vertex in its own community (the agglomeration start)."""
        return cls(np.arange(n_vertices, dtype=VERTEX_DTYPE))

    @property
    def n_vertices(self) -> int:
        return len(self.labels)

    @property
    def n_communities(self) -> int:
        return int(self.labels.max()) + 1 if len(self.labels) else 0

    def sizes(self) -> np.ndarray:
        """Vertex count of every community."""
        return np.bincount(self.labels, minlength=self.n_communities).astype(
            VERTEX_DTYPE
        )

    def members(self, community: int) -> np.ndarray:
        """Vertex ids belonging to ``community``."""
        if not 0 <= community < self.n_communities:
            raise IndexError(f"community {community} out of range")
        return np.flatnonzero(self.labels == community)

    def restrict_to(self, vertices: np.ndarray) -> "Partition":
        """Partition induced on a vertex subset (labels renumbered)."""
        return Partition.from_labels(self.labels[np.asarray(vertices)])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Partition):
            return NotImplemented
        return np.array_equal(self.labels, other.labels)

    def same_clustering(self, other: "Partition") -> bool:
        """True if both partitions induce identical vertex groupings,
        regardless of how the community ids are numbered."""
        if self.n_vertices != other.n_vertices:
            return False
        if self.n_communities != other.n_communities:
            return False
        # Two labelings are equal up to renaming iff the pairing of
        # (self_label, other_label) is a bijection.
        pairs = self.labels * np.int64(other.n_communities + 1) + other.labels
        return len(np.unique(pairs)) == self.n_communities
