"""Partition-comparison measures: NMI and adjusted Rand index.

Used by the quality benchmarks to compare the parallel algorithm's
communities against the sequential baselines (the paper's SNAP sanity
check) and against planted ground truth.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.partition import Partition

__all__ = ["normalized_mutual_information", "adjusted_rand_index"]


def _contingency(a: Partition, b: Partition) -> np.ndarray:
    """Dense contingency table ``n_ab[i, j] = |A_i ∩ B_j|``."""
    if a.n_vertices != b.n_vertices:
        raise ValueError("partitions cover different vertex sets")
    ka, kb = a.n_communities, b.n_communities
    flat = a.labels * np.int64(kb) + b.labels
    counts = np.bincount(flat, minlength=ka * kb)
    return counts.reshape(ka, kb)


def normalized_mutual_information(a: Partition, b: Partition) -> float:
    """NMI with arithmetic-mean normalization, in ``[0, 1]``.

    Degenerate cases follow the usual convention: two all-in-one (or two
    all-singleton identical) partitions have NMI 1; comparing a zero-entropy
    partition against anything else yields 0.
    """
    n = a.n_vertices
    if n == 0:
        return 1.0
    table = _contingency(a, b).astype(np.float64)
    pa = table.sum(axis=1) / n
    pb = table.sum(axis=0) / n
    pab = table / n

    def entropy(p: np.ndarray) -> float:
        p = p[p > 0]
        return float(-(p * np.log(p)).sum())

    ha, hb = entropy(pa), entropy(pb)
    nz = pab > 0
    outer = np.outer(pa, pb)
    mi = float((pab[nz] * np.log(pab[nz] / outer[nz])).sum())
    if ha == 0.0 and hb == 0.0:
        return 1.0
    denom = 0.5 * (ha + hb)
    if denom == 0.0:
        return 0.0
    return mi / denom


def adjusted_rand_index(a: Partition, b: Partition) -> float:
    """ARI (chance-corrected Rand index); 1 for identical clusterings,
    ~0 for independent ones, can be negative for adversarial ones."""
    n = a.n_vertices
    if n == 0:
        return 1.0
    table = _contingency(a, b).astype(np.float64)

    def comb2(x: np.ndarray | float) -> np.ndarray | float:
        return x * (x - 1.0) / 2.0

    sum_ab = float(comb2(table).sum())
    sum_a = float(comb2(table.sum(axis=1)).sum())
    sum_b = float(comb2(table.sum(axis=0)).sum())
    total = float(comb2(float(n)))
    expected = sum_a * sum_b / total if total else 0.0
    max_index = 0.5 * (sum_a + sum_b)
    if max_index == expected:
        return 1.0
    return (sum_ab - expected) / (max_index - expected)
