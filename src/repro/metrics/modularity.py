"""Newman–Girvan modularity.

Convention: for total input edge weight ``W`` (every undirected edge
counted once, a self loop contributing its weight once),

.. math::  Q = \\sum_c \\left[ \\frac{in_c}{W}
              - \\left(\\frac{vol_c}{2W}\\right)^2 \\right]

where ``in_c`` is the weight inside community ``c`` and
``vol_c = 2 in_c + cut_c`` its volume.  This matches the community-graph
bookkeeping: after contracting an entire community into one vertex,
``in_c`` is its self weight and ``vol_c`` its strength — so modularity of
a partition of the input graph equals the closed-form modularity of the
contracted community graph, an identity the test suite checks.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import CommunityGraph
from repro.metrics.partition import Partition
from repro.util.arrays import group_reduce_sum

__all__ = ["modularity", "community_graph_modularity"]


def modularity(graph: CommunityGraph, partition: Partition) -> float:
    """Modularity of ``partition`` on ``graph``.

    ``graph`` is typically the *input* graph (all self weights zero), but
    any community graph works: its self weights count as internal to
    whatever community the vertex belongs to.
    """
    if partition.n_vertices != graph.n_vertices:
        raise ValueError("partition size does not match graph")
    w_total = graph.total_weight()
    if w_total == 0:
        return 0.0
    labels = partition.labels
    k = partition.n_communities
    e = graph.edges

    li = labels[e.ei]
    lj = labels[e.ej]
    internal_mask = li == lj
    internal = group_reduce_sum(
        li[internal_mask], e.w[internal_mask], k
    )
    internal += group_reduce_sum(labels, graph.self_weights, k)

    vol = group_reduce_sum(labels, graph.strengths(), k)
    return float((internal / w_total - (vol / (2.0 * w_total)) ** 2).sum())


def community_graph_modularity(graph: CommunityGraph) -> float:
    """Closed-form modularity when each vertex *is* a community.

    For the agglomerative driver this evaluates the current clustering in
    O(|V|) from the self-weight and strength arrays alone.
    """
    w_total = graph.total_weight()
    if w_total == 0:
        return 0.0
    vol = graph.strengths()
    return float(
        (graph.self_weights / w_total - (vol / (2.0 * w_total)) ** 2).sum()
    )
