"""The 10th DIMACS Implementation Challenge's clustering objectives.

The paper's termination rule follows the challenge rules [27]; the
challenge judged clusterings on several objectives beyond modularity and
coverage.  Implemented here:

* **performance** — the fraction of vertex pairs classified correctly
  (same-cluster pairs that are edges plus different-cluster pairs that
  are non-edges), computed in O(|E| + |C|) via complement counting;
* **expansion** — max over clusters of cut / min(|C|, n - |C|);
* **inter-cluster conductance** — ``1 - max_c φ(c)`` (higher is better);
* **minimum intra-cluster density**.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import CommunityGraph
from repro.metrics.conductance import conductances
from repro.metrics.partition import Partition
from repro.util.arrays import group_reduce_sum

__all__ = [
    "performance",
    "expansion",
    "intercluster_conductance",
    "min_intracluster_density",
]


def _check(graph: CommunityGraph, partition: Partition) -> None:
    if partition.n_vertices != graph.n_vertices:
        raise ValueError("partition size does not match graph")


def performance(graph: CommunityGraph, partition: Partition) -> float:
    """Correctly classified vertex pairs over all pairs (unweighted).

    A pair is correct if it is an intra-cluster edge or an inter-cluster
    non-edge.  Self loops and edge weights are ignored (the challenge
    definition is combinatorial).
    """
    _check(graph, partition)
    n = graph.n_vertices
    total_pairs = n * (n - 1) / 2.0
    if total_pairs == 0:
        return 1.0
    labels = partition.labels
    e = graph.edges
    intra_edges = int(np.count_nonzero(labels[e.ei] == labels[e.ej]))
    inter_edges = e.n_edges - intra_edges
    sizes = partition.sizes().astype(np.float64)
    intra_pairs = float((sizes * (sizes - 1) / 2.0).sum())
    inter_pairs = total_pairs - intra_pairs
    correct = intra_edges + (inter_pairs - inter_edges)
    return float(correct / total_pairs)


def expansion(graph: CommunityGraph, partition: Partition) -> float:
    """Max over clusters of cut weight / min(|C|, n - |C|) (lower better)."""
    _check(graph, partition)
    labels = partition.labels
    k = partition.n_communities
    if k == 0:
        return 0.0
    e = graph.edges
    li, lj = labels[e.ei], labels[e.ej]
    cross = li != lj
    cut = group_reduce_sum(li[cross], e.w[cross], k)
    cut += group_reduce_sum(lj[cross], e.w[cross], k)
    sizes = partition.sizes().astype(np.float64)
    denom = np.minimum(sizes, graph.n_vertices - sizes)
    vals = np.zeros(k)
    np.divide(cut, denom, out=vals, where=denom > 0)
    return float(vals.max()) if k else 0.0


def intercluster_conductance(
    graph: CommunityGraph, partition: Partition
) -> float:
    """``1 - max_c φ(c)``, in [0, 1]; higher is better."""
    _check(graph, partition)
    phi = conductances(graph, partition)
    return float(1.0 - phi.max()) if len(phi) else 1.0


def min_intracluster_density(
    graph: CommunityGraph, partition: Partition
) -> float:
    """Min over non-singleton clusters of internal weight / possible pairs."""
    _check(graph, partition)
    labels = partition.labels
    k = partition.n_communities
    e = graph.edges
    li, lj = labels[e.ei], labels[e.ej]
    internal_mask = li == lj
    internal = group_reduce_sum(li[internal_mask], e.w[internal_mask], k)
    internal += group_reduce_sum(labels, graph.self_weights, k)
    sizes = partition.sizes().astype(np.float64)
    possible = sizes * (sizes - 1) / 2.0
    mask = possible > 0
    if not mask.any():
        return 0.0
    return float((internal[mask] / possible[mask]).min())
