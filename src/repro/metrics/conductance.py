"""Community conductance (normalized cut).

For community ``c`` with volume ``vol_c`` and boundary weight ``cut_c``,

.. math::  \\phi(c) = \\frac{cut_c}{\\min(vol_c,\\ 2W - vol_c)}

The paper's second optimization criterion minimizes conductance; its edge
scorer negates the change so the same maximizing machinery applies.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import CommunityGraph
from repro.metrics.partition import Partition
from repro.util.arrays import group_reduce_sum

__all__ = ["conductances", "average_conductance"]


def conductances(graph: CommunityGraph, partition: Partition) -> np.ndarray:
    """Per-community conductance array.

    Communities spanning the whole graph (``cut = 0`` and the complement
    empty) get conductance 0 — they cut nothing.
    """
    if partition.n_vertices != graph.n_vertices:
        raise ValueError("partition size does not match graph")
    labels = partition.labels
    k = partition.n_communities
    e = graph.edges

    li = labels[e.ei]
    lj = labels[e.ej]
    cross = li != lj
    cut = group_reduce_sum(li[cross], e.w[cross], k)
    cut += group_reduce_sum(lj[cross], e.w[cross], k)

    vol = group_reduce_sum(labels, graph.strengths(), k)
    two_w = 2.0 * graph.total_weight()
    denom = np.minimum(vol, two_w - vol)
    out = np.zeros(k, dtype=np.float64)
    np.divide(cut, denom, out=out, where=denom > 0)
    return out


def average_conductance(graph: CommunityGraph, partition: Partition) -> float:
    """Mean conductance over communities (lower is better)."""
    phi = conductances(graph, partition)
    return float(phi.mean()) if len(phi) else 0.0
