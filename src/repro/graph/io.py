"""Graph file I/O.

Three formats cover the paper's data pipeline:

* **edge list** — the SNAP dataset collection format used for
  soc-LiveJournal1 (whitespace-separated ``src dst [weight]`` lines,
  ``#`` comments);
* **METIS / DIMACS-challenge adjacency** — the 10th DIMACS Implementation
  Challenge's exchange format (the paper follows the challenge rules);
* **npz** — a fast binary round-trip of the internal representation for
  benchmark caching.
"""

from __future__ import annotations

import math
import os
import warnings
from typing import Iterable

import numpy as np

from repro.errors import GraphFormatError, GraphFormatWarning
from repro.graph.build import from_edges
from repro.graph.csr import CSRAdjacency
from repro.graph.edgelist import EdgeList
from repro.graph.graph import CommunityGraph
from repro.types import VERTEX_DTYPE, WEIGHT_DTYPE

__all__ = [
    "read_edgelist",
    "write_edgelist",
    "read_metis",
    "write_metis",
    "save_npz",
    "load_npz",
]


# --------------------------------------------------------------- edge lists
def _parse_vertex(path: object, lineno: int, token: str) -> int:
    try:
        v = int(token)
    except ValueError:
        raise GraphFormatError(
            f"{path}:{lineno}: bad vertex id {token!r}"
        ) from None
    if v < 0:
        raise GraphFormatError(
            f"{path}:{lineno}: negative vertex id {token!r}"
        )
    return v


def _parse_weight(path: object, lineno: int, token: str) -> float:
    try:
        w = float(token)
    except ValueError:
        raise GraphFormatError(
            f"{path}:{lineno}: bad edge weight {token!r}"
        ) from None
    if not math.isfinite(w):
        raise GraphFormatError(
            f"{path}:{lineno}: non-finite edge weight {token!r}"
        )
    return w


def read_edgelist(
    path: str | os.PathLike,
    *,
    weighted: bool | None = None,
    strict: bool = True,
) -> CommunityGraph:
    """Read a SNAP-style whitespace edge list.

    ``weighted=None`` auto-detects a third column from the first data line.
    Vertex ids must be non-negative integers; they are used directly (the
    graph gets ``max_id + 1`` vertices).

    Malformed lines raise :class:`~repro.errors.GraphFormatError` naming
    the file, 1-based line number, and offending token.  With
    ``strict=False`` bad lines are skipped instead and a single
    :class:`~repro.errors.GraphFormatWarning` reports how many were
    dropped — scraped social-network dumps routinely carry a few
    truncated lines that shouldn't abort an hours-long benchmark load.
    """
    srcs: list[int] = []
    dsts: list[int] = []
    wgts: list[float] = []
    skipped = 0
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith(("#", "%")):
                continue
            parts = line.split()
            if weighted is None:
                weighted = len(parts) >= 3
            try:
                if len(parts) < 2 or (weighted and len(parts) < 3):
                    raise GraphFormatError(
                        f"{path}:{lineno}: malformed edge line {line!r}"
                    )
                src = _parse_vertex(path, lineno, parts[0])
                dst = _parse_vertex(path, lineno, parts[1])
                wgt = (
                    _parse_weight(path, lineno, parts[2]) if weighted else 1.0
                )
            except GraphFormatError:
                if strict:
                    raise
                skipped += 1
                continue
            srcs.append(src)
            dsts.append(dst)
            if weighted:
                wgts.append(wgt)
    if skipped:
        warnings.warn(
            f"{path}: skipped {skipped} malformed edge line(s)",
            GraphFormatWarning,
            stacklevel=2,
        )
    i = np.asarray(srcs, dtype=VERTEX_DTYPE)
    j = np.asarray(dsts, dtype=VERTEX_DTYPE)
    w = np.asarray(wgts, dtype=WEIGHT_DTYPE) if weighted else None
    return from_edges(i, j, w)


def write_edgelist(
    graph: CommunityGraph, path: str | os.PathLike, *, weights: bool = True
) -> None:
    """Write each edge once (stored orientation); self weights as loops."""
    e = graph.edges
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"# repro community graph: {graph.n_vertices} vertices, {graph.n_edges} edges\n")
        for i, j, w in zip(e.ei.tolist(), e.ej.tolist(), e.w.tolist()):
            fh.write(f"{i}\t{j}\t{w:g}\n" if weights else f"{i}\t{j}\n")
        for v in np.flatnonzero(graph.self_weights).tolist():
            sw = float(graph.self_weights[v])
            fh.write(f"{v}\t{v}\t{sw:g}\n" if weights else f"{v}\t{v}\n")


# -------------------------------------------------------------------- METIS
def read_metis(path: str | os.PathLike) -> CommunityGraph:
    """Read a METIS/DIMACS-challenge adjacency file (1-indexed).

    Supports the unweighted format (``fmt`` absent or ``0``) and edge
    weights (``fmt=1`` / ``001``).  Vertex weights are rejected (the
    community representation has no use for them).
    """
    with open(path, "r", encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    # Keep blank lines (an isolated vertex has an empty adjacency row);
    # drop only comments.  Original 1-based line numbers ride along so
    # format errors point at the real file location.
    rows = [
        (lineno, ln.strip())
        for lineno, ln in enumerate(lines, 1)
        if not ln.lstrip().startswith("%")
    ]
    while rows and not rows[0][1]:
        rows = rows[1:]
    if not rows:
        raise GraphFormatError(f"{path}: empty METIS file")
    # Trailing blank lines beyond the declared vertex count are tolerated.
    header_lineno, header_text = rows[0]
    header = header_text.split()
    if len(header) < 2:
        raise GraphFormatError(
            f"{path}:{header_lineno}: bad METIS header {header_text!r}"
        )
    try:
        n = int(header[0])
        m_declared = int(header[1])
    except ValueError:
        raise GraphFormatError(
            f"{path}:{header_lineno}: non-numeric METIS header "
            f"{header_text!r}"
        ) from None
    fmt = header[2] if len(header) > 2 else "0"
    has_edge_weights = fmt.endswith("1")
    if len(fmt) >= 2 and fmt[-2] == "1":
        raise GraphFormatError(f"{path}: vertex weights unsupported (fmt={fmt})")
    body = rows[1:]
    while len(body) > n and not body[-1][1]:
        body.pop()
    if len(body) != n:
        raise GraphFormatError(
            f"{path}: header declares {n} vertices but file has "
            f"{len(body)} adjacency lines"
        )

    srcs: list[int] = []
    dsts: list[int] = []
    wgts: list[float] = []
    for v, (lineno, row) in enumerate(body):
        fields = row.split()
        step = 2 if has_edge_weights else 1
        if has_edge_weights and len(fields) % 2:
            raise GraphFormatError(
                f"{path}:{lineno}: odd field count on weighted adjacency "
                f"line for vertex {v + 1}"
            )
        for k in range(0, len(fields), step):
            try:
                u = int(fields[k]) - 1
            except ValueError:
                raise GraphFormatError(
                    f"{path}:{lineno}: bad neighbor id {fields[k]!r}"
                ) from None
            if not 0 <= u < n:
                raise GraphFormatError(
                    f"{path}:{lineno}: neighbor {u + 1} out of range"
                )
            w = 1.0
            if has_edge_weights:
                w = _parse_weight(path, lineno, fields[k + 1])
            # Each undirected edge appears in both endpoint rows; keep one.
            if u > v or u == v:
                srcs.append(v)
                dsts.append(u)
                wgts.append(w)
    graph = from_edges(
        np.asarray(srcs, dtype=VERTEX_DTYPE),
        np.asarray(dsts, dtype=VERTEX_DTYPE),
        np.asarray(wgts, dtype=WEIGHT_DTYPE),
        n_vertices=n,
    )
    if graph.n_edges != m_declared and m_declared:
        # DIMACS counts undirected edges once; tolerate self-loop slack only.
        declared_loops = int(np.count_nonzero(graph.self_weights))
        if graph.n_edges + declared_loops != m_declared:
            raise GraphFormatError(
                f"{path}: header declares {m_declared} edges, parsed {graph.n_edges}"
            )
    return graph


def write_metis(graph: CommunityGraph, path: str | os.PathLike) -> None:
    """Write DIMACS-challenge adjacency with edge weights (fmt=1)."""
    csr = CSRAdjacency.from_edgelist(graph.edges)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"{graph.n_vertices} {graph.n_edges} 1\n")
        for v in range(graph.n_vertices):
            pairs: Iterable[str] = (
                f"{u + 1} {w:g}"
                for u, w in zip(
                    csr.neighbors(v).tolist(), csr.neighbor_weights(v).tolist()
                )
            )
            fh.write(" ".join(pairs) + "\n")


# ---------------------------------------------------------------------- npz
def save_npz(graph: CommunityGraph, path: str | os.PathLike) -> None:
    """Binary round-trip of the exact internal representation."""
    e = graph.edges
    np.savez_compressed(
        path,
        ei=e.ei,
        ej=e.ej,
        w=e.w,
        n_vertices=np.int64(e.n_vertices),
        bucket_start=e.bucket_start,
        bucket_end=e.bucket_end,
        self_weights=graph.self_weights,
    )


def load_npz(path: str | os.PathLike) -> CommunityGraph:
    """Load a graph stored by :func:`save_npz` (validates on load)."""
    with np.load(path) as data:
        edges = EdgeList(
            ei=data["ei"],
            ej=data["ej"],
            w=data["w"],
            n_vertices=int(data["n_vertices"]),
            bucket_start=data["bucket_start"],
            bucket_end=data["bucket_end"],
        )
        graph = CommunityGraph(edges, data["self_weights"])
    graph.validate()
    return graph
