"""Graph substrate: the paper's bucketed edge-array representation plus
builders, CSR views, connected components and file I/O."""

from repro.graph.edgelist import EdgeList, parity_canonical
from repro.graph.graph import CommunityGraph
from repro.graph.build import (
    from_edges,
    from_networkx,
    to_networkx,
)
from repro.graph.csr import CSRAdjacency, EdgeShard, ShardedCSRStore
from repro.graph.components import connected_components
from repro.graph.subgraph import induced_subgraph, largest_component
from repro.graph.io import (
    read_edgelist,
    write_edgelist,
    read_metis,
    write_metis,
    save_npz,
    load_npz,
)

__all__ = [
    "EdgeList",
    "parity_canonical",
    "CommunityGraph",
    "from_edges",
    "from_networkx",
    "to_networkx",
    "CSRAdjacency",
    "EdgeShard",
    "ShardedCSRStore",
    "connected_components",
    "induced_subgraph",
    "largest_component",
    "read_edgelist",
    "write_edgelist",
    "read_metis",
    "write_metis",
    "save_npz",
    "load_npz",
]
