"""The community graph: bucketed edges plus per-vertex self-loop weights.

In the agglomerative algorithm every vertex of this graph *is* a community.
Edge weights count input-graph edges collapsed onto a community-graph edge;
the ``self_weights`` array counts input edges contained wholly inside each
community vertex (the paper stores self-loop weight sums in a |V|-long
array).  The sum of all edge weights plus all self weights is invariant
under contraction — it always equals the input graph's total edge weight —
which gives both a cheap global invariant for testing and the *coverage*
termination measure for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import InvariantViolation
from repro.graph.edgelist import EdgeList
from repro.types import WEIGHT_DTYPE

__all__ = ["CommunityGraph"]


@dataclass
class CommunityGraph:
    """A weighted undirected graph in the paper's representation.

    Parameters
    ----------
    edges:
        Bucketed edge list (no self loops, each edge stored once).
    self_weights:
        ``|V|``-long array of intra-community edge weight.  For a freshly
        loaded input graph this is all zeros unless the input had self loops.
    """

    edges: EdgeList
    self_weights: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.self_weights is None:
            self.self_weights = np.zeros(self.edges.n_vertices, dtype=WEIGHT_DTYPE)
        else:
            self.self_weights = np.asarray(self.self_weights, dtype=WEIGHT_DTYPE)
            if len(self.self_weights) != self.edges.n_vertices:
                raise ValueError(
                    "self_weights length must equal number of vertices"
                )

    # ------------------------------------------------------------- properties
    @property
    def n_vertices(self) -> int:
        return self.edges.n_vertices

    @property
    def n_edges(self) -> int:
        return self.edges.n_edges

    def total_weight(self) -> float:
        """Total input edge weight: cross-community + intra-community."""
        return self.edges.total_weight() + float(self.self_weights.sum())

    def internal_weight(self) -> float:
        """Input edge weight contained inside communities."""
        return float(self.self_weights.sum())

    def coverage(self) -> float:
        """Fraction of input edge weight inside communities (DIMACS coverage).

        The performance experiments in the paper terminate once this reaches
        0.5.  Zero-weight graphs have coverage 1.0 by convention (everything
        — i.e. nothing — is covered).
        """
        total = self.total_weight()
        if total == 0:
            return 1.0
        return self.internal_weight() / total

    def strengths(self) -> np.ndarray:
        """Volume of every community: ``2 * self_weight + incident weight``.

        Matches the usual modularity convention where an internal edge
        contributes 2 to its community's degree sum.
        """
        return self.edges.strengths() + 2.0 * self.self_weights

    def memory_words(self) -> int:
        """64-bit words used: 3|E| + 2|V| (edges, buckets) + |V| self weights.

        This is the paper's ``3|V| + 3|E|`` accounting.
        """
        return self.edges.memory_words() + self.n_vertices

    def copy(self) -> "CommunityGraph":
        return CommunityGraph(self.edges.copy(), self.self_weights.copy())

    # ------------------------------------------------------------- validation
    def validate(self) -> None:
        """Check representation invariants (delegates to the edge list)."""
        self.edges.validate()
        if np.any(self.self_weights < 0):
            raise InvariantViolation("negative self weight")
        if np.any(~np.isfinite(self.self_weights)):
            raise InvariantViolation("non-finite self weight")
        if len(self.edges.w) and np.any(~np.isfinite(self.edges.w)):
            raise InvariantViolation("non-finite edge weight")
