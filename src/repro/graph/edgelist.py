"""The paper's core graph representation (§IV-A).

A weighted undirected graph is an array of triples ``(i, j, w)`` with each
edge stored exactly once.  Instead of keeping the strictly lower triangle,
the *order* of the two endpoints is hashed by parity:

* if ``i`` and ``j`` are both even or both odd, store ``i < j``;
* otherwise store ``i > j``.

This scatters the edges of high-degree vertices across different source
buckets — with a strict lower-triangle layout, a hub vertex ``0`` would own
every one of its edges in a single giant bucket, serializing the per-bucket
loops of the matching and contraction kernels.

Edges are grouped into *buckets* by the first stored endpoint; per-vertex
``bucket_start``/``bucket_end`` index arrays locate each bucket.  The paper
notes the buckets need not be contiguous (which removes a prefix-sum
synchronization from contraction); this implementation keeps them contiguous
in memory but preserves the two-array indexing so the accounting matches.

Space: ``3|E|`` words for the triples plus ``2|V|`` words of bucket offsets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvariantViolation
from repro.types import VERTEX_DTYPE, WEIGHT_DTYPE
from repro.util.arrays import segment_starts

__all__ = [
    "EdgeList",
    "parity_canonical",
    "lower_triangle_canonical",
    "bucket_sizes",
]


def parity_canonical(
    i: np.ndarray, j: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Apply the paper's parity hash to choose each edge's stored order.

    Returns ``(first, second)`` arrays: same-parity endpoints are returned as
    ``(min, max)``, mixed-parity as ``(max, min)``.  Self loops (``i == j``)
    are returned unchanged; callers are expected to have split them out.
    """
    i = np.asarray(i, dtype=VERTEX_DTYPE)
    j = np.asarray(j, dtype=VERTEX_DTYPE)
    same_parity = ((i ^ j) & 1) == 0
    lo = np.minimum(i, j)
    hi = np.maximum(i, j)
    first = np.where(same_parity, lo, hi)
    second = np.where(same_parity, hi, lo)
    return first, second


def lower_triangle_canonical(
    i: np.ndarray, j: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """The naive alternative to the parity hash: always store ``min, max``.

    Provided for the §IV-A ablation: under this ordering a low-id hub owns
    *all* of its edges in one bucket, serializing per-bucket loops; the
    parity hash scatters roughly half of them to the neighbors' buckets.
    """
    i = np.asarray(i, dtype=VERTEX_DTYPE)
    j = np.asarray(j, dtype=VERTEX_DTYPE)
    return np.minimum(i, j), np.maximum(i, j)


def bucket_sizes(first: np.ndarray, n_vertices: int) -> np.ndarray:
    """Edges per bucket for a given stored-first-endpoint assignment."""
    return np.bincount(
        np.asarray(first, dtype=VERTEX_DTYPE), minlength=n_vertices
    ).astype(VERTEX_DTYPE)


@dataclass
class EdgeList:
    """Bucketed array-of-triples edge store.

    Invariants (checked by :meth:`validate`):

    * every edge satisfies the parity-hash ordering and ``ei != ej``;
    * edges are grouped by ``ei`` in non-decreasing order;
    * ``bucket_start``/``bucket_end`` delimit each vertex's bucket;
    * no duplicate ``{i, j}`` pairs (duplicates must be accumulated into
      weights at build time).
    """

    ei: np.ndarray
    ej: np.ndarray
    w: np.ndarray
    n_vertices: int
    bucket_start: np.ndarray
    bucket_end: np.ndarray

    # ------------------------------------------------------------------ build
    @classmethod
    def from_raw(
        cls,
        i: np.ndarray,
        j: np.ndarray,
        w: np.ndarray | None,
        n_vertices: int,
        *,
        accumulate: bool = True,
    ) -> "EdgeList":
        """Build from arbitrary endpoint arrays (no self loops allowed).

        Duplicate edges — in either orientation — are accumulated into a
        single triple when ``accumulate`` is true, mirroring the paper's
        "accumulate repeated edges by adding their weights".
        """
        i = np.asarray(i, dtype=VERTEX_DTYPE)
        j = np.asarray(j, dtype=VERTEX_DTYPE)
        if i.shape != j.shape or i.ndim != 1:
            raise ValueError("endpoint arrays must be equal-length 1-D")
        if w is None:
            w = np.ones(len(i), dtype=WEIGHT_DTYPE)
        else:
            w = np.asarray(w, dtype=WEIGHT_DTYPE)
            if w.shape != i.shape:
                raise ValueError("weight array must match endpoint arrays")
        if len(i) and (i.min() < 0 or max(i.max(), j.max()) >= n_vertices):
            raise ValueError("endpoint out of range for n_vertices")
        if np.any(i == j):
            raise ValueError(
                "self loops are not stored in EdgeList; split them into the "
                "CommunityGraph self-weight array first"
            )

        first, second = parity_canonical(i, j)
        # Group by (first, second): lexsort makes duplicates adjacent and
        # simultaneously produces the bucket grouping by first endpoint.
        order = np.lexsort((second, first))
        first = first[order]
        second = second[order]
        w = w[order]

        if accumulate and len(first):
            starts = segment_starts(first * np.int64(n_vertices) + second)
            w = np.add.reduceat(w, starts)
            first = first[starts]
            second = second[starts]

        return cls._from_grouped(first, second, w, n_vertices)

    @classmethod
    def _from_grouped(
        cls,
        first: np.ndarray,
        second: np.ndarray,
        w: np.ndarray,
        n_vertices: int,
    ) -> "EdgeList":
        """Assemble from already canonical, ``first``-sorted, deduped arrays."""
        counts = np.bincount(first, minlength=n_vertices) if len(first) else np.zeros(
            n_vertices, dtype=np.int64
        )
        bucket_end = np.cumsum(counts).astype(VERTEX_DTYPE)
        bucket_start = np.empty_like(bucket_end)
        if n_vertices:
            bucket_start[0] = 0
            bucket_start[1:] = bucket_end[:-1]
        return cls(
            ei=np.ascontiguousarray(first, dtype=VERTEX_DTYPE),
            ej=np.ascontiguousarray(second, dtype=VERTEX_DTYPE),
            w=np.ascontiguousarray(w, dtype=WEIGHT_DTYPE),
            n_vertices=int(n_vertices),
            bucket_start=bucket_start,
            bucket_end=bucket_end,
        )

    # ------------------------------------------------------------- properties
    @property
    def n_edges(self) -> int:
        """Number of unique non-self edges (each stored once)."""
        return len(self.ei)

    def memory_words(self) -> int:
        """64-bit words used: 3|E| triples + 2|V| bucket offsets."""
        return 3 * self.n_edges + 2 * self.n_vertices

    # -------------------------------------------------------------- accessors
    def bucket(self, v: int) -> slice:
        """Slice of the edge arrays holding vertex ``v``'s bucket.

        The bucket contains only edges whose *stored first* endpoint is
        ``v`` — an edge ``{i, j}`` lives in exactly one of the two endpoint
        buckets, per the parity hash.
        """
        if not 0 <= v < self.n_vertices:
            raise IndexError(f"vertex {v} out of range")
        return slice(int(self.bucket_start[v]), int(self.bucket_end[v]))

    def degrees(self) -> np.ndarray:
        """Unweighted degree of every vertex (self loops excluded)."""
        deg = np.bincount(self.ei, minlength=self.n_vertices)
        deg += np.bincount(self.ej, minlength=self.n_vertices)
        return deg.astype(VERTEX_DTYPE)

    def strengths(self) -> np.ndarray:
        """Sum of incident edge weights per vertex (self loops excluded)."""
        s = np.bincount(self.ei, weights=self.w, minlength=self.n_vertices)
        s += np.bincount(self.ej, weights=self.w, minlength=self.n_vertices)
        return s.astype(WEIGHT_DTYPE, copy=False)

    def total_weight(self) -> float:
        """Sum of all stored edge weights."""
        return float(self.w.sum())

    def copy(self) -> "EdgeList":
        """Deep copy (used by algorithms that mutate weights in place)."""
        return EdgeList(
            ei=self.ei.copy(),
            ej=self.ej.copy(),
            w=self.w.copy(),
            n_vertices=self.n_vertices,
            bucket_start=self.bucket_start.copy(),
            bucket_end=self.bucket_end.copy(),
        )

    # ------------------------------------------------------------- validation
    def validate(self) -> None:
        """Check all representation invariants; raise InvariantViolation."""
        ei, ej = self.ei, self.ej
        if not (len(ei) == len(ej) == len(self.w)):
            raise InvariantViolation("edge arrays have mismatched lengths")
        if len(self.bucket_start) != self.n_vertices or len(
            self.bucket_end
        ) != self.n_vertices:
            raise InvariantViolation("bucket offset arrays have wrong length")
        if len(ei) == 0:
            if np.any(self.bucket_start != self.bucket_end):
                raise InvariantViolation("non-empty bucket in empty edge list")
            return
        if ei.min() < 0 or max(ei.max(), ej.max()) >= self.n_vertices:
            raise InvariantViolation("endpoint out of range")
        if np.any(ei == ej):
            raise InvariantViolation("self loop stored in edge list")
        first, second = parity_canonical(ei, ej)
        if np.any(first != ei) or np.any(second != ej):
            raise InvariantViolation("parity-hash ordering violated")
        if np.any(np.diff(ei) < 0):
            raise InvariantViolation("edges not grouped by first endpoint")
        # Bucket offsets must tile the edge array.
        for name, arr in (("start", self.bucket_start), ("end", self.bucket_end)):
            if arr.min() < 0 or arr.max() > len(ei):
                raise InvariantViolation(f"bucket_{name} out of range")
        counts = np.bincount(ei, minlength=self.n_vertices)
        if np.any(self.bucket_end - self.bucket_start != counts):
            raise InvariantViolation("bucket sizes disagree with edge grouping")
        # Duplicates: within a bucket, second endpoints must be unique.
        key = ei * np.int64(self.n_vertices) + ej
        if len(np.unique(key)) != len(key):
            raise InvariantViolation("duplicate edge pair present")
