"""Builders converting raw edge data and NetworkX graphs into
:class:`~repro.graph.graph.CommunityGraph`."""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.graph.edgelist import EdgeList
from repro.graph.graph import CommunityGraph
from repro.types import VERTEX_DTYPE, WEIGHT_DTYPE
from repro.util.arrays import group_reduce_sum

if TYPE_CHECKING:  # pragma: no cover - typing only
    import networkx

__all__ = ["from_edges", "from_networkx", "to_networkx"]


def from_edges(
    i: np.ndarray,
    j: np.ndarray,
    w: np.ndarray | None = None,
    n_vertices: int | None = None,
) -> CommunityGraph:
    """Build a community graph from endpoint arrays.

    Handles everything a raw generator or file may produce: self loops are
    folded into the self-weight array, repeated edges (in either orientation)
    are accumulated into a single weighted triple.  Unweighted input gets
    unit weights.
    """
    i = np.asarray(i, dtype=VERTEX_DTYPE).ravel()
    j = np.asarray(j, dtype=VERTEX_DTYPE).ravel()
    if i.shape != j.shape:
        raise ValueError("endpoint arrays must have the same length")
    if w is None:
        w = np.ones(len(i), dtype=WEIGHT_DTYPE)
    else:
        w = np.asarray(w, dtype=WEIGHT_DTYPE).ravel()
        if w.shape != i.shape:
            raise ValueError("weight array must match endpoint arrays")
    if n_vertices is None:
        n_vertices = int(max(i.max(), j.max())) + 1 if len(i) else 0
    if len(i) and i.min() < 0:
        raise ValueError("negative vertex id")

    loops = i == j
    self_weights = group_reduce_sum(i[loops], w[loops], n_vertices)
    keep = ~loops
    edges = EdgeList.from_raw(i[keep], j[keep], w[keep], n_vertices)
    return CommunityGraph(edges, self_weights)


def from_networkx(g: "networkx.Graph") -> tuple[CommunityGraph, list]:
    """Convert an undirected NetworkX graph (``weight`` attribute honoured).

    Returns the community graph plus the node list mapping dense ids back to
    the original node labels (``nodes[dense_id] -> label``).
    """
    nodes = list(g.nodes())
    index = {node: k for k, node in enumerate(nodes)}
    m = g.number_of_edges()
    i = np.empty(m, dtype=VERTEX_DTYPE)
    j = np.empty(m, dtype=VERTEX_DTYPE)
    w = np.empty(m, dtype=WEIGHT_DTYPE)
    for k, (u, v, data) in enumerate(g.edges(data=True)):
        i[k] = index[u]
        j[k] = index[v]
        w[k] = data.get("weight", 1.0)
    return from_edges(i, j, w, n_vertices=len(nodes)), nodes


def to_networkx(graph: CommunityGraph) -> "networkx.Graph":
    """Convert back to NetworkX (self weights become self-loop edges)."""
    import networkx as nx

    g = nx.Graph()
    g.add_nodes_from(range(graph.n_vertices))
    e = graph.edges
    for i, j, w in zip(e.ei.tolist(), e.ej.tolist(), e.w.tolist()):
        g.add_edge(i, j, weight=w)
    for v in np.flatnonzero(graph.self_weights).tolist():
        g.add_edge(v, v, weight=float(graph.self_weights[v]))
    return g
