"""Induced subgraphs and largest-component extraction.

The paper's R-MAT workloads are "the largest component" of the generated
edge stream; these helpers implement that preprocessing step on the
community-graph representation.
"""

from __future__ import annotations

import numpy as np

from repro.graph.build import from_edges
from repro.graph.components import connected_components
from repro.graph.graph import CommunityGraph
from repro.types import NO_VERTEX, VERTEX_DTYPE

__all__ = ["induced_subgraph", "largest_component"]


def induced_subgraph(
    graph: CommunityGraph, vertices: np.ndarray
) -> tuple[CommunityGraph, np.ndarray]:
    """Subgraph induced by ``vertices`` with dense renumbering.

    Returns ``(subgraph, mapping)`` where ``mapping[k]`` is the original id
    of the subgraph's vertex ``k``.  Self weights of kept vertices are
    preserved; edges with a dropped endpoint are discarded.
    """
    vertices = np.unique(np.asarray(vertices, dtype=VERTEX_DTYPE))
    if len(vertices) and (
        vertices[0] < 0 or vertices[-1] >= graph.n_vertices
    ):
        raise ValueError("vertex id out of range")
    relabel = np.full(graph.n_vertices, NO_VERTEX, dtype=VERTEX_DTYPE)
    relabel[vertices] = np.arange(len(vertices), dtype=VERTEX_DTYPE)

    e = graph.edges
    keep = (relabel[e.ei] != NO_VERTEX) & (relabel[e.ej] != NO_VERTEX)
    sub = from_edges(
        relabel[e.ei[keep]],
        relabel[e.ej[keep]],
        e.w[keep],
        n_vertices=len(vertices),
    )
    sub.self_weights[:] += graph.self_weights[vertices]
    return sub, vertices


def largest_component(graph: CommunityGraph) -> tuple[CommunityGraph, np.ndarray]:
    """Extract the largest connected component (ties: smallest component id).

    Isolated vertices count as singleton components.  Returns the component
    subgraph and the original-id mapping, as :func:`induced_subgraph`.
    """
    labels, k = connected_components(graph.n_vertices, graph.edges.ei, graph.edges.ej)
    if k == 0:
        return graph.copy(), np.arange(0, dtype=VERTEX_DTYPE)
    sizes = np.bincount(labels, minlength=k)
    big = int(np.argmax(sizes))
    return induced_subgraph(graph, np.flatnonzero(labels == big))
