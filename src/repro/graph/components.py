"""Connected components via vectorized hook-and-compress label propagation.

This is the Shiloach–Vishkin-style algorithm the paper's toolchain (SNAP,
GraphCT) uses on the XMT: repeatedly hook each edge's larger-labeled
endpoint onto the smaller label, then pointer-jump until labels stabilize.
Both phases are whole-array NumPy operations, the Python analogue of the
flat parallel loops in the C implementation.

Needed as a substrate because the paper extracts the largest connected
component of its R-MAT graphs before clustering.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConvergenceError
from repro.types import VERTEX_DTYPE

__all__ = ["connected_components"]


def connected_components(
    n_vertices: int,
    ei: np.ndarray,
    ej: np.ndarray,
    *,
    max_iter: int | None = None,
) -> tuple[np.ndarray, int]:
    """Label connected components of an undirected edge set.

    Parameters
    ----------
    n_vertices:
        Number of vertices; isolated vertices form their own components.
    ei, ej:
        Endpoint arrays (order and duplicates irrelevant).
    max_iter:
        Safety bound on hook/compress rounds; defaults to
        ``2 * ceil(log2(n)) + 4`` which the doubling argument guarantees.

    Returns
    -------
    (labels, n_components):
        ``labels`` maps every vertex to a dense component id in
        ``0..n_components-1``, numbered by smallest contained vertex.
    """
    labels = np.arange(n_vertices, dtype=VERTEX_DTYPE)
    if n_vertices == 0 or len(ei) == 0:
        return labels, n_vertices
    ei = np.asarray(ei, dtype=VERTEX_DTYPE)
    ej = np.asarray(ej, dtype=VERTEX_DTYPE)
    if max_iter is None:
        max_iter = 2 * int(np.ceil(np.log2(max(n_vertices, 2)))) + 4

    for _ in range(max_iter):
        # Hook: every vertex adopts the smallest label seen across its edges.
        li = labels[ei]
        lj = labels[ej]
        low = np.minimum(li, lj)
        new = labels.copy()
        np.minimum.at(new, ei, low)
        np.minimum.at(new, ej, low)
        # Compress: pointer-jump labels toward roots (two hops per round).
        new = new[new]
        if np.array_equal(new, labels):
            break
        labels = new
    else:
        raise ConvergenceError(
            f"connected components did not stabilize in {max_iter} rounds"
        )

    # Fully flatten (labels form a pointer forest of bounded depth by now).
    while True:
        nxt = labels[labels]
        if np.array_equal(nxt, labels):
            break
        labels = nxt

    roots, dense = np.unique(labels, return_inverse=True)
    return dense.astype(VERTEX_DTYPE), int(len(roots))
