"""Compressed sparse row adjacency view.

The bucketed edge list stores each edge once; traversal algorithms
(components, refinement, the sequential baselines) want the full adjacency
of each vertex.  ``CSRAdjacency`` materializes the symmetric expansion — the
classic xadj/adjncy/weight layout of METIS and the paper's SNAP baseline —
in three vectorized passes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.edgelist import EdgeList
from repro.types import VERTEX_DTYPE, WEIGHT_DTYPE

__all__ = ["CSRAdjacency"]


@dataclass
class CSRAdjacency:
    """Symmetric CSR adjacency: ``adj[xadj[v]:xadj[v+1]]`` are v's neighbors."""

    xadj: np.ndarray
    adj: np.ndarray
    weight: np.ndarray
    n_vertices: int

    @classmethod
    def from_edgelist(cls, edges: EdgeList) -> "CSRAdjacency":
        """Expand a once-stored edge list to full symmetric adjacency."""
        n = edges.n_vertices
        m = edges.n_edges
        # Each edge contributes two directed arcs.
        src = np.concatenate([edges.ei, edges.ej])
        dst = np.concatenate([edges.ej, edges.ei])
        wgt = np.concatenate([edges.w, edges.w])
        order = np.argsort(src, kind="stable")
        src = src[order]
        dst = dst[order]
        wgt = wgt[order]
        counts = np.bincount(src, minlength=n)
        xadj = np.zeros(n + 1, dtype=VERTEX_DTYPE)
        np.cumsum(counts, out=xadj[1:])
        assert xadj[-1] == 2 * m
        return cls(
            xadj=xadj,
            adj=dst.astype(VERTEX_DTYPE, copy=False),
            weight=wgt.astype(WEIGHT_DTYPE, copy=False),
            n_vertices=n,
        )

    def neighbors(self, v: int) -> np.ndarray:
        """Neighbor ids of vertex ``v`` (no self loops; each once)."""
        return self.adj[self.xadj[v] : self.xadj[v + 1]]

    def neighbor_weights(self, v: int) -> np.ndarray:
        """Weights aligned with :meth:`neighbors`."""
        return self.weight[self.xadj[v] : self.xadj[v + 1]]

    def degree(self, v: int) -> int:
        return int(self.xadj[v + 1] - self.xadj[v])

    def degrees(self) -> np.ndarray:
        return np.diff(self.xadj)
