"""Compressed sparse row adjacency view and the sharded out-of-core store.

The bucketed edge list stores each edge once; traversal algorithms
(components, refinement, the sequential baselines) want the full adjacency
of each vertex.  ``CSRAdjacency`` materializes the symmetric expansion — the
classic xadj/adjncy/weight layout of METIS and the paper's SNAP baseline —
in three vectorized passes.

``ShardedCSRStore`` is the out-of-core counterpart: it spills a
:class:`~repro.graph.graph.CommunityGraph`'s arrays to a checksummed
spill file (:mod:`repro.spmatrix.spill`) and reopens them as
``np.memmap`` views, partitioned into contiguous *edge shards*.  A
shard is a window ``[lo, hi)`` over the bucketed edge arrays: loading
one touches only that window's pages, so a kernel that streams
shard-at-a-time keeps its anonymous working set at ``O(V + shard)``
while the file-backed pages stay evictable under memory pressure.
Because the memmap-backed graph is *value-identical* to the in-memory
one, every kernel — and every invariant audit — computes bit-identical
results on it.
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro.errors import SpillError
from repro.graph.edgelist import EdgeList
from repro.graph.graph import CommunityGraph
from repro.spmatrix.spill import read_spill, spill_nbytes, write_spill
from repro.types import VERTEX_DTYPE, WEIGHT_DTYPE
from repro.util.atomicio import atomic_write_text

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.resilience.faults import FaultPlan

__all__ = ["CSRAdjacency", "EdgeShard", "ShardedCSRStore", "DEFAULT_SHARDS"]


@dataclass
class CSRAdjacency:
    """Symmetric CSR adjacency: ``adj[xadj[v]:xadj[v+1]]`` are v's neighbors."""

    xadj: np.ndarray
    adj: np.ndarray
    weight: np.ndarray
    n_vertices: int

    @classmethod
    def from_edgelist(cls, edges: EdgeList) -> "CSRAdjacency":
        """Expand a once-stored edge list to full symmetric adjacency."""
        n = edges.n_vertices
        m = edges.n_edges
        # Each edge contributes two directed arcs.
        src = np.concatenate([edges.ei, edges.ej])
        dst = np.concatenate([edges.ej, edges.ei])
        wgt = np.concatenate([edges.w, edges.w])
        order = np.argsort(src, kind="stable")
        src = src[order]
        dst = dst[order]
        wgt = wgt[order]
        counts = np.bincount(src, minlength=n)
        xadj = np.zeros(n + 1, dtype=VERTEX_DTYPE)
        np.cumsum(counts, out=xadj[1:])
        assert xadj[-1] == 2 * m
        return cls(
            xadj=xadj,
            adj=dst.astype(VERTEX_DTYPE, copy=False),
            weight=wgt.astype(WEIGHT_DTYPE, copy=False),
            n_vertices=n,
        )

    def neighbors(self, v: int) -> np.ndarray:
        """Neighbor ids of vertex ``v`` (no self loops; each once)."""
        return self.adj[self.xadj[v] : self.xadj[v + 1]]

    def neighbor_weights(self, v: int) -> np.ndarray:
        """Weights aligned with :meth:`neighbors`."""
        return self.weight[self.xadj[v] : self.xadj[v + 1]]

    def degree(self, v: int) -> int:
        return int(self.xadj[v + 1] - self.xadj[v])

    def degrees(self) -> np.ndarray:
        return np.diff(self.xadj)


# --------------------------------------------------------------- out-of-core
#: Default number of edge shards when neither ``n_shards`` nor
#: ``shard_edges`` is given.
DEFAULT_SHARDS = 8

_MANIFEST = "manifest.json"
_GRAPH_FILE = "graph.spill"
_MANIFEST_VERSION = 1


@dataclass
class EdgeShard:
    """One contiguous window ``[lo, hi)`` of a spilled graph's edges.

    The arrays are zero-copy views into the store's memmaps — touching
    them faults in only this shard's pages.
    """

    index: int
    lo: int
    hi: int
    ei: np.ndarray
    ej: np.ndarray
    w: np.ndarray

    @property
    def n_edges(self) -> int:
        return self.hi - self.lo


class ShardedCSRStore:
    """A :class:`CommunityGraph` spilled to disk and reopened via ``mmap``.

    Created by :meth:`spill` (write side) or :meth:`open` (reload
    side).  The store owns one checksummed spill file holding the six
    graph arrays plus a JSON manifest recording the shard table; both
    are written atomically, so a crash mid-spill leaves either the
    previous complete spill or nothing — never a torn store.
    """

    def __init__(
        self,
        directory: Path,
        *,
        n_vertices: int,
        n_edges: int,
        shard_ranges: list[tuple[int, int]],
        arrays: dict[str, np.ndarray],
    ) -> None:
        self.directory = directory
        self.n_vertices = n_vertices
        self.n_edges = n_edges
        self.shard_ranges = shard_ranges
        self._arrays = arrays

    # ------------------------------------------------------------- write side
    @classmethod
    def spill(
        cls,
        graph: CommunityGraph,
        directory: str | os.PathLike,
        *,
        n_shards: int | None = None,
        shard_edges: int | None = None,
        faults: "FaultPlan | None" = None,
        artifact: str = "spill-graph",
        index: int = 0,
        verify: bool = False,
    ) -> "ShardedCSRStore":
        """Spill ``graph`` under ``directory`` and reopen it memmap-backed.

        ``n_shards``/``shard_edges`` fix the shard table (``shard_edges``
        wins when both are given); the default is :data:`DEFAULT_SHARDS`
        equal windows.  ``faults``/``artifact``/``index`` thread the
        chaos suite's disk-fault injection into the spill write.  The
        freshly written file is reopened without checksum verification
        by default (``verify=False``) — we just computed those bytes —
        while :meth:`open` always defaults to verifying.
        """
        d = Path(os.fspath(directory))
        d.mkdir(parents=True, exist_ok=True)
        e = graph.edges
        ranges = _shard_ranges(e.n_edges, n_shards=n_shards, shard_edges=shard_edges)
        write_spill(
            d / _GRAPH_FILE,
            {
                "ei": e.ei,
                "ej": e.ej,
                "w": e.w,
                "bucket_start": e.bucket_start,
                "bucket_end": e.bucket_end,
                "self_weights": graph.self_weights,
            },
            faults=faults,
            artifact=artifact,
            index=index,
        )
        manifest = {
            "version": _MANIFEST_VERSION,
            "n_vertices": int(e.n_vertices),
            "n_edges": int(e.n_edges),
            "spill_file": _GRAPH_FILE,
            "shards": [[int(lo), int(hi)] for lo, hi in ranges],
        }
        atomic_write_text(
            d / _MANIFEST, json.dumps(manifest, indent=2, sort_keys=True) + "\n"
        )
        return cls.open(d, verify=verify)

    # -------------------------------------------------------------- read side
    @classmethod
    def open(
        cls, directory: str | os.PathLike, *, verify: bool = True
    ) -> "ShardedCSRStore":
        """Reopen a spilled graph; raises :class:`SpillError` if torn."""
        d = Path(os.fspath(directory))
        try:
            manifest = json.loads((d / _MANIFEST).read_text(encoding="utf-8"))
        except OSError as exc:
            raise SpillError(f"{d}: no spill manifest: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise SpillError(f"{d}: corrupt spill manifest: {exc}") from exc
        if manifest.get("version") != _MANIFEST_VERSION:
            raise SpillError(
                f"{d}: unsupported spill manifest version "
                f"{manifest.get('version')!r}"
            )
        arrays = read_spill(d / manifest["spill_file"], verify=verify)
        expected = {
            "ei", "ej", "w", "bucket_start", "bucket_end", "self_weights",
        }
        if set(arrays) != expected:
            raise SpillError(
                f"{d}: spill file arrays {sorted(arrays)} != {sorted(expected)}"
            )
        n_edges = int(manifest["n_edges"])
        if len(arrays["ei"]) != n_edges:
            raise SpillError(
                f"{d}: manifest says {n_edges} edges, spill file has "
                f"{len(arrays['ei'])}"
            )
        ranges = [(int(lo), int(hi)) for lo, hi in manifest["shards"]]
        if ranges and (
            ranges[0][0] != 0
            or ranges[-1][1] != n_edges
            or any(a[1] != b[0] for a, b in zip(ranges, ranges[1:]))
        ):
            raise SpillError(f"{d}: shard table does not tile [0, {n_edges})")
        return cls(
            d,
            n_vertices=int(manifest["n_vertices"]),
            n_edges=n_edges,
            shard_ranges=ranges,
            arrays=arrays,
        )

    # ------------------------------------------------------------------ views
    @property
    def n_shards(self) -> int:
        return len(self.shard_ranges)

    @property
    def nbytes(self) -> int:
        """Payload bytes on disk (the spilled arrays)."""
        return spill_nbytes(self.directory / _GRAPH_FILE)

    def load_shard(self, k: int) -> EdgeShard:
        """Shard ``k`` as zero-copy memmap views."""
        lo, hi = self.shard_ranges[k]
        return EdgeShard(
            index=k,
            lo=lo,
            hi=hi,
            ei=self._arrays["ei"][lo:hi],
            ej=self._arrays["ej"][lo:hi],
            w=self._arrays["w"][lo:hi],
        )

    def iter_shards(self) -> Iterator[EdgeShard]:
        for k in range(self.n_shards):
            yield self.load_shard(k)

    def as_graph(self) -> CommunityGraph:
        """The spilled graph, arrays backed by the store's memmaps.

        Value-identical to the graph that was spilled, so any kernel
        run on it produces bit-identical results; the returned graph
        carries this store as its ``spill_store`` attribute so sharded
        kernels can recover the shard table.
        """
        edges = EdgeList(
            ei=self._arrays["ei"],
            ej=self._arrays["ej"],
            w=self._arrays["w"],
            n_vertices=self.n_vertices,
            bucket_start=self._arrays["bucket_start"],
            bucket_end=self._arrays["bucket_end"],
        )
        graph = CommunityGraph(edges, self._arrays["self_weights"])
        graph.spill_store = self  # type: ignore[attr-defined]
        return graph

    def cleanup(self) -> None:
        """Drop the on-disk store (best effort; views become invalid)."""
        shutil.rmtree(self.directory, ignore_errors=True)


def _shard_ranges(
    n_edges: int,
    *,
    n_shards: int | None = None,
    shard_edges: int | None = None,
) -> list[tuple[int, int]]:
    """Contiguous windows tiling ``[0, n_edges)``."""
    if shard_edges is not None:
        if shard_edges < 1:
            raise ValueError("shard_edges must be at least 1")
        size = shard_edges
    else:
        k = DEFAULT_SHARDS if n_shards is None else n_shards
        if k < 1:
            raise ValueError("n_shards must be at least 1")
        size = max(1, -(-n_edges // k))
    return [
        (lo, min(n_edges, lo + size)) for lo in range(0, n_edges, size)
    ] or ([(0, 0)] if n_edges == 0 else [])
