"""The paper's primary contribution: parallel agglomerative community
detection — edge scoring, greedy maximal matching, graph contraction and
the driver loop tying them together."""

from repro.core.scoring import (
    EdgeScorer,
    ModularityScorer,
    ConductanceScorer,
    WeightScorer,
)
from repro.core.matching import (
    MatchingResult,
    match_locally_dominant,
    match_full_sweep,
    is_maximal_matching,
    matching_weight,
    approximation_certificate,
)
from repro.core.contraction import contract, contract_hash_chains
from repro.core.termination import TerminationCriteria
from repro.core.agglomeration import (
    AgglomerationResult,
    LevelStats,
    detect_communities,
)
from repro.core.engine import (
    AgglomerationEngine,
    ContractKernel,
    MatchKernel,
    PhaseKernel,
    RunContext,
    ScoreKernel,
)
from repro.core.registry import (
    KERNEL_KINDS,
    KernelInfo,
    create_kernel,
    kernel_catalog,
    kernel_info,
    kernel_names,
    register_kernel,
    unregister_kernel,
)
from repro.core.tuner import (
    AUTO_KERNEL,
    CostModelPolicy,
    KernelTuner,
    LevelShape,
    SelectorPolicy,
    StaticPolicy,
    TunerDecision,
    fit_cost_table,
    level_shape,
    load_cost_table,
)
from repro.core.dendrogram import Dendrogram
from repro.core.refinement import refine_partition

__all__ = [
    "AgglomerationEngine",
    "RunContext",
    "PhaseKernel",
    "ScoreKernel",
    "MatchKernel",
    "ContractKernel",
    "KERNEL_KINDS",
    "KernelInfo",
    "register_kernel",
    "unregister_kernel",
    "kernel_names",
    "kernel_info",
    "kernel_catalog",
    "create_kernel",
    "AUTO_KERNEL",
    "LevelShape",
    "level_shape",
    "SelectorPolicy",
    "CostModelPolicy",
    "StaticPolicy",
    "KernelTuner",
    "TunerDecision",
    "load_cost_table",
    "fit_cost_table",
    "EdgeScorer",
    "ModularityScorer",
    "ConductanceScorer",
    "WeightScorer",
    "MatchingResult",
    "match_locally_dominant",
    "match_full_sweep",
    "is_maximal_matching",
    "matching_weight",
    "approximation_certificate",
    "contract",
    "contract_hash_chains",
    "TerminationCriteria",
    "AgglomerationResult",
    "LevelStats",
    "detect_communities",
    "Dendrogram",
    "refine_partition",
]
