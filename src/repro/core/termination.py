"""Termination criteria (§III).

The algorithm stops at a local maximum (no positive edge score) or on an
external constraint.  The paper's performance experiments follow the 10th
DIMACS Implementation Challenge spirit and stop once coverage reaches 0.5;
"real applications will impose additional constraints like a minimum number
of communities or maximum community size" — both are implemented here.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TerminationCriteria"]


@dataclass(frozen=True)
class TerminationCriteria:
    """External stopping constraints for the agglomeration loop.

    Attributes
    ----------
    coverage:
        Stop once at least this fraction of input edge weight is inside
        communities.  The paper's experiments use 0.5; ``None`` disables
        the check and the algorithm runs to its local maximum.
    min_communities:
        Never contract below this many communities.
    max_community_size:
        If set, merges that would create a community with more input
        vertices than this are vetoed (their scores are masked before
        matching).
    max_levels:
        Hard cap on contraction phases.
    min_merge_fraction:
        Stop when a level contracts fewer than this fraction of the
        current communities (the contraction has effectively stalled:
        the star-graph O(|E|·|V|) regime of §III, where only one or two
        communities merge per level).  ``None`` disables the check.
    """

    coverage: float | None = 0.5
    min_communities: int = 1
    max_community_size: int | None = None
    max_levels: int | None = None
    min_merge_fraction: float | None = None

    def __post_init__(self) -> None:
        if self.coverage is not None and not 0.0 <= self.coverage <= 1.0:
            raise ValueError("coverage target must lie in [0, 1]")
        if self.min_communities < 1:
            raise ValueError("min_communities must be at least 1")
        if self.max_community_size is not None and self.max_community_size < 1:
            raise ValueError("max_community_size must be at least 1")
        if self.max_levels is not None and self.max_levels < 0:
            raise ValueError("max_levels must be non-negative")
        if self.min_merge_fraction is not None and not (
            0.0 <= self.min_merge_fraction <= 1.0
        ):
            raise ValueError("min_merge_fraction must lie in [0, 1]")

    @classmethod
    def local_maximum(cls) -> "TerminationCriteria":
        """Run until no merge improves the metric (no external limits)."""
        return cls(coverage=None)

    @classmethod
    def paper_experiments(cls) -> "TerminationCriteria":
        """The configuration of the paper's §V performance runs.

        Coverage ≥ 0.5 per the DIMACS-challenge spirit, plus a stalled-
        contraction guard: at the paper's graph sizes coverage binds
        first; on small scaled graphs the score supply can dry up into a
        one-merge-per-level star regime that the paper's runs never
        entered, so the guard cuts the trace off at the same "still busy"
        point.
        """
        return cls(coverage=0.5, min_merge_fraction=0.1)
