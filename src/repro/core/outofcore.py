"""Out-of-core phase kernels: score → match → contract, shard at a time.

These are the cap-respecting counterparts of the in-memory kernels,
designed for graphs spilled to a :class:`~repro.graph.csr.ShardedCSRStore`.
Each kernel streams the edge arrays one contiguous shard window at a
time, so its *anonymous* working set is ``O(V + shard)`` — the
file-backed pages behind the memmaps stay evictable under memory
pressure.  The design follows the strongly-sublinear-memory MPC
matching of Ghaffari & Uitto (the ``GMM_SublinearMPC`` notes in
SNIPPETS.md): a machine/shard may hold only a small window of the edge
set, and per-vertex aggregates are the only global state.

**Bit-identity contract.**  Every kernel here produces results
bit-identical to its in-memory counterpart (property-tested in
``tests/test_engine_parity.py``), which is what lets the guardian's
spill rung migrate a live run mid-level without perturbing the
dendrogram:

* :func:`score_sharded` evaluates the scorer's elementwise formula over
  disjoint shard slices — elementwise ops commute with slicing.
* :func:`match_gmm_capped` replays the worklist matching pass by pass;
  per-vertex ``max``/``min`` reductions are exact (no rounding), so
  accumulating them shard-at-a-time yields the same fixed point, and
  tie-break priorities hash *global* edge indices.
* :func:`contract_sharded` streams the relabel into scratch buffers but
  runs the *same* global lexsort + left-to-right segmented reduction,
  preserving float accumulation order exactly (per-shard pre-reduction
  would not — duplicate groups spanning a shard boundary would sum in a
  different order).

The residual anonymous cost is the contraction's sort permutation
(``O(E')`` indices from ``np.lexsort``); everything else of edge order
lives in spill-backed scratch.  See ``docs/OUT_OF_CORE.md``.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.contraction import _mapping_from_matching
from repro.core.matching import (
    MatchingResult,
    _edge_priority,
    _SENTINEL_EDGE,
)
from repro.core.scoring import _record_scoring, validate_scores
from repro.errors import ConvergenceError
from repro.graph.csr import ShardedCSRStore, _shard_ranges
from repro.graph.edgelist import EdgeList, parity_canonical
from repro.graph.graph import CommunityGraph
from repro.obs.trace import NullTracer, Tracer, as_tracer
from repro.platform.kernels import KernelRecord, TraceRecorder
from repro.spmatrix.spill import scratch_memmap
from repro.types import NO_VERTEX, SCORE_DTYPE, VERTEX_DTYPE, WEIGHT_DTYPE
from repro.util.arrays import segment_starts

__all__ = ["score_sharded", "match_gmm_capped", "contract_sharded"]


def _store_of(graph: CommunityGraph) -> ShardedCSRStore | None:
    return getattr(graph, "spill_store", None)


def _ranges_of(graph: CommunityGraph, shard_edges: int | None) -> list[tuple[int, int]]:
    """The shard table to stream by: explicit cap, spill store, or default."""
    if shard_edges is not None:
        return _shard_ranges(graph.n_edges, shard_edges=shard_edges)
    store = _store_of(graph)
    if store is not None:
        return store.shard_ranges
    return _shard_ranges(graph.n_edges)


class _Scratch:
    """Edge-order scratch arrays: spill-backed beside the store, else RAM.

    Kernels ask for working buffers of edge length through this so that
    a spilled graph's temporaries are file-backed (evictable) while the
    same kernel stays usable — just not out-of-core — on a plain
    in-memory graph.
    """

    def __init__(self, graph: CommunityGraph, tag: str) -> None:
        store = _store_of(graph)
        self.directory: Path | None = (
            store.directory / f"scratch-{tag}" if store is not None else None
        )
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._paths: list[Path] = []

    def array(self, name: str, dtype, shape: tuple[int, ...]) -> np.ndarray:
        if self.directory is None:
            return np.empty(shape, dtype=dtype)
        path = self.directory / f"{name}.npy"
        self._paths.append(path)
        return scratch_memmap(path, dtype=dtype, shape=shape)

    def cleanup(self) -> None:
        for path in self._paths:
            path.unlink(missing_ok=True)
        if self.directory is not None:
            try:
                self.directory.rmdir()
            except OSError:  # pragma: no cover - leftover foreign files
                pass


# ------------------------------------------------------------------ scoring
def score_sharded(
    scorer,
    graph: CommunityGraph,
    recorder: TraceRecorder | None = None,
    *,
    tracer: Tracer | NullTracer | None = None,
) -> np.ndarray:
    """Score all edges shard-at-a-time into a spill-backed buffer.

    Uses the scorer's ``score_range(graph, lo, hi, vol=..., w_total=...)``
    method when it has one (all built-ins do); scorers without it fall
    back to a whole-graph :meth:`score` call — correct, just not
    cap-respecting.  Output is bit-identical to the in-memory path: the
    per-edge formulas are elementwise in the edge arrays, so evaluating
    them over disjoint slices changes nothing.
    """
    tr = as_tracer(tracer)
    store = _store_of(graph)
    if store is None or not hasattr(scorer, "score_range"):
        return scorer.score(graph, recorder)
    e = graph.edges
    scores = scratch_memmap(
        store.directory / "scores.npy", dtype=SCORE_DTYPE, shape=(e.n_edges,)
    )
    w_total = graph.total_weight()
    with tr.span("score_shards", n_shards=store.n_shards) as sp:
        if w_total == 0:
            scores[:] = 0.0
        else:
            vol = graph.strengths()
            for lo, hi in store.shard_ranges:
                chunk = scorer.score_range(
                    graph, lo, hi, vol=vol, w_total=w_total
                )
                scores[lo:hi] = validate_scores(chunk, scorer=scorer.name)
        sp.set(items=e.n_edges)
    _record_scoring(recorder, graph, scorer.name)
    return scores


# ----------------------------------------------------------------- matching
def match_gmm_capped(
    graph: CommunityGraph,
    scores: np.ndarray,
    recorder: TraceRecorder | None = None,
    *,
    tracer: Tracer | NullTracer | None = None,
    max_passes: int | None = None,
    shard_edges: int | None = None,
) -> MatchingResult:
    """Cap-respecting locally-dominant matching (GMM-style streaming).

    Replays :func:`~repro.core.matching.match_locally_dominant` pass by
    pass while never materialising an edge-length anonymous array: the
    live-edge worklist lives in a spill-backed byte mask and each pass
    streams the shard windows four times —

    1. per-vertex best score (``np.maximum.at``: exact, order-free);
    2. per-vertex best-edge tie-break (``np.minimum.at`` over hashed
       *global* edge priorities: exact, order-free);
    3. two-sided claim resolution + partner updates;
    4. worklist filtering against the updated matched set.

    Because the per-vertex reductions are exact and the tie-break
    priorities depend only on global edge indices, every pass computes
    the same claims as the in-memory worklist — the matching, pass
    count, and failed-claim tally are bit-identical, so a spilled run's
    ``matching_passes`` stats match the unconstrained run exactly.
    """
    tr = as_tracer(tracer)
    worklist_gauge = tr.gauge("match.worklist_edges")
    e = graph.edges
    n = graph.n_vertices
    m = e.n_edges
    if len(scores) != m:
        raise ValueError("scores length must equal edge count")
    ranges = _ranges_of(graph, shard_edges)
    scratch = _Scratch(graph, "match")

    partner = np.full(n, NO_VERTEX, dtype=VERTEX_DTYPE)
    unmatched = np.ones(n, dtype=bool)
    live_mask = scratch.array("live_mask", np.bool_, (m,))
    n_live = 0
    for lo, hi in ranges:
        chunk = scores[lo:hi] > 0.0
        live_mask[lo:hi] = chunk
        n_live += int(np.count_nonzero(chunk))

    matched_edges: list[np.ndarray] = []
    total_failed = 0
    passes = 0
    if max_passes is None:
        max_passes = 2 * n + 4  # worst case one pair per pass
    elif max_passes < 0:
        raise ValueError("max_passes must be non-negative")

    best = np.empty(n)
    best_edge = np.empty(n, dtype=np.int64)
    prop_counts = np.zeros(n, dtype=np.int64)
    try:
        while n_live:
            passes += 1
            if passes > max_passes:
                raise ConvergenceError("matching exceeded its pass budget")

            with tr.span("match_pass", pass_index=passes) as pass_span:
                scan_items = n_live
                worklist_gauge.set(n_live)
                pass_span.set(items=scan_items, live_edges=n_live)

                # Pass 1: per-vertex best live score (exact max — shard
                # order cannot change the fixed point).
                best.fill(-np.inf)
                for lo, hi in ranges:
                    idx = lo + np.flatnonzero(live_mask[lo:hi])
                    if not len(idx):
                        continue
                    s = scores[idx]
                    np.maximum.at(best, e.ei[idx], s)
                    np.maximum.at(best, e.ej[idx], s)

                # Pass 2: min hashed priority among score-maximal edges.
                best_edge.fill(_SENTINEL_EDGE)
                for lo, hi in ranges:
                    idx = lo + np.flatnonzero(live_mask[lo:hi])
                    if not len(idx):
                        continue
                    u = e.ei[idx]
                    v = e.ej[idx]
                    s = scores[idx]
                    prio = _edge_priority(idx)
                    at_u = s == best[u]
                    at_v = s == best[v]
                    np.minimum.at(best_edge, u[at_u], prio[at_u])
                    np.minimum.at(best_edge, v[at_v], prio[at_v])

                # Pass 3: two-sided claims.  Claim outcomes depend only
                # on the pre-pass best/best_edge state, so applying
                # partner updates shard by shard is safe.
                n_new = 0
                failed = 0
                n_proposals = 0
                if recorder is not None:
                    prop_counts.fill(0)
                for lo, hi in ranges:
                    idx = lo + np.flatnonzero(live_mask[lo:hi])
                    if not len(idx):
                        continue
                    u = e.ei[idx]
                    v = e.ej[idx]
                    prio = _edge_priority(idx)
                    chosen_u = best_edge[u] == prio
                    chosen_v = best_edge[v] == prio
                    mutual = chosen_u & chosen_v
                    n_new += int(np.count_nonzero(mutual))
                    failed += int(
                        np.count_nonzero((chosen_u | chosen_v) & ~mutual)
                    )
                    mu = u[mutual]
                    mv = v[mutual]
                    partner[mu] = mv
                    partner[mv] = mu
                    unmatched[mu] = False
                    unmatched[mv] = False
                    matched_edges.append(idx[mutual])
                    if recorder is not None:
                        np.add.at(prop_counts, v[chosen_u], 1)
                        np.add.at(prop_counts, u[chosen_v], 1)
                        n_proposals += int(np.count_nonzero(chosen_u)) + int(
                            np.count_nonzero(chosen_v)
                        )
                if n_new == 0:
                    raise ConvergenceError(
                        "no locally dominant edge found among live edges; "
                        "scores may contain NaN"
                    )
                total_failed += failed
                pass_span.set(matched=n_new, failed_claims=failed)

                if recorder is not None:
                    # Mirrors the worklist profile: one two-sided claim
                    # per proposer; collisions are proposers sharing a
                    # partner slot (distinct count via an O(V) tally).
                    distinct = int(np.count_nonzero(prop_counts))
                    colliding = n_proposals - distinct
                    recorder.record(
                        KernelRecord(
                            name="match_pass",
                            items=max(scan_items, 1),
                            mem_words=5 * scan_items + 2 * n_new,
                            atomics=2 * n_proposals,
                            locks=2 * n_new,
                            contention=min(
                                1.0, 0.5 * colliding / max(1, n_proposals)
                            ),
                        )
                    )

                # Pass 4: drop edges that lost an endpoint this pass
                # (after *all* of the pass's matches, like the in-memory
                # worklist filter).
                n_live = 0
                for lo, hi in ranges:
                    idx = lo + np.flatnonzero(live_mask[lo:hi])
                    if not len(idx):
                        continue
                    keep = unmatched[e.ei[idx]] & unmatched[e.ej[idx]]
                    live_mask[idx[~keep]] = False
                    n_live += int(np.count_nonzero(keep))
    finally:
        del live_mask
        scratch.cleanup()

    matched = (
        np.concatenate(matched_edges)
        if matched_edges
        else np.empty(0, dtype=np.int64)
    )
    matched.sort()
    return MatchingResult(
        partner=partner,
        matched_edges=matched,
        passes=passes,
        failed_claims=total_failed,
    )


# -------------------------------------------------------------- contraction
def contract_sharded(
    graph: CommunityGraph,
    matching: MatchingResult,
    recorder: TraceRecorder | None = None,
    *,
    tracer: Tracer | NullTracer | None = None,
) -> tuple[CommunityGraph, np.ndarray]:
    """Bucket-sort contraction with a spill-backed relabel stage.

    The relabel/rehash (the ``O(E)`` gathers) streams shard windows into
    scratch buffers beside the spill store; self-loop weight accumulates
    through sequential ``np.add.at`` over the same element order as the
    in-memory ``np.bincount``, so float sums agree bit for bit.  The
    final assembly — one global lexsort, segmented left-to-right
    reduction, bucket build — is byte-for-byte the in-memory pipeline on
    the scratch arrays, keeping duplicate-group accumulation order (and
    therefore every contracted weight) identical.  The sort permutation
    is the one remaining ``O(E')`` anonymous allocation.
    """
    tr = as_tracer(tracer)
    with tr.span("contract_map") as sp:
        mapping, k = _mapping_from_matching(graph, matching)
        sp.set(items=graph.n_vertices, n_communities=k)

    e = graph.edges
    m = e.n_edges
    ranges = _ranges_of(graph, None)
    scratch = _Scratch(graph, "contract")
    try:
        kept_first = scratch.array("kept_first", VERTEX_DTYPE, (m,))
        kept_second = scratch.array("kept_second", VERTEX_DTYPE, (m,))
        kept_w = scratch.array("kept_w", WEIGHT_DTYPE, (m,))

        with tr.span("contract_relabel") as sp:
            new_self = np.bincount(
                mapping, weights=graph.self_weights, minlength=k
            )
            loop_self = np.zeros(k)
            n_loops = 0
            n_keep = 0
            for lo, hi in ranges:
                ni = mapping[e.ei[lo:hi]]
                nj = mapping[e.ej[lo:hi]]
                w_chunk = e.w[lo:hi]
                loops = ni == nj
                c_loops = int(np.count_nonzero(loops))
                if c_loops:
                    # Sequential unbuffered adds in element order — the
                    # same accumulation order as one bincount over the
                    # full loop stream, so the float sums are identical.
                    np.add.at(loop_self, ni[loops], w_chunk[loops])
                    n_loops += c_loops
                keep = ~loops
                first, second = parity_canonical(ni[keep], nj[keep])
                c_keep = len(first)
                kept_first[n_keep : n_keep + c_keep] = first
                kept_second[n_keep : n_keep + c_keep] = second
                kept_w[n_keep : n_keep + c_keep] = w_chunk[keep]
                n_keep += c_keep
            if n_loops:
                new_self += loop_self
            sp.set(items=m, n_loops=n_loops)

        first = kept_first[:n_keep]
        second = kept_second[:n_keep]
        w = kept_w[:n_keep]

        with tr.span("contract_bucket_sort") as sp:
            if tr.enabled and n_keep:
                occupancy = np.bincount(first, minlength=k)
                tr.histogram("contract.bucket_occupancy").observe_many(
                    occupancy[occupancy > 0]
                )
            order = np.lexsort((second, first))
            sorted_first = scratch.array("sorted_first", VERTEX_DTYPE, (n_keep,))
            sorted_second = scratch.array(
                "sorted_second", VERTEX_DTYPE, (n_keep,)
            )
            sorted_w = scratch.array("sorted_w", WEIGHT_DTYPE, (n_keep,))
            np.take(first, order, out=sorted_first)
            np.take(second, order, out=sorted_second)
            np.take(w, order, out=sorted_w)
            first, second, w = sorted_first, sorted_second, sorted_w
            del order
            sp.set(items=n_keep)

        with tr.span("contract_accumulate") as sp:
            if n_keep:
                starts = segment_starts(first * np.int64(k) + second)
                w = np.add.reduceat(w, starts)
                first = np.asarray(first[starts])
                second = np.asarray(second[starts])
            else:
                first = np.empty(0, dtype=VERTEX_DTYPE)
                second = np.empty(0, dtype=VERTEX_DTYPE)
                w = np.empty(0, dtype=WEIGHT_DTYPE)
            edges = EdgeList._from_grouped(first, second, w, k)
            sp.set(items=len(first))
        new_graph = CommunityGraph(edges, new_self.astype(np.float64, copy=False))
    finally:
        scratch.cleanup()

    if recorder is not None:
        n = graph.n_vertices
        recorder.record(
            KernelRecord(name="contract_relabel", items=m, mem_words=6 * m)
        )
        recorder.record(
            KernelRecord(
                name="contract_bucket",
                items=m,
                mem_words=5 * m + n,
                atomics=m,
                contention=0.0,
            )
        )
        recorder.record(
            KernelRecord(name="contract_sort", items=m, mem_words=10 * m)
        )
        recorder.record(
            KernelRecord(
                name="contract_copy",
                items=new_graph.n_edges,
                mem_words=4 * new_graph.n_edges,
            )
        )
    return new_graph, mapping
