"""Local vertex-move refinement.

§II closes with "incorporating refinement into our parallel algorithm is
an area of active work" — this module implements that extension: greedy
modularity-improving single-vertex moves over the final partition
(Kernighan–Lin-style sweeps restricted to neighboring communities, the
refinement used by the multilevel algorithms the paper cites [16], [18]).

Each sweep visits every vertex once and moves it to the adjacent community
with the largest positive modularity gain, if any.  Sweeps repeat until no
move improves or the sweep budget is exhausted.  Moves are applied
immediately (Gauss–Seidel style), which converges faster than Jacobi
sweeps and cannot oscillate because every accepted move strictly
increases modularity.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRAdjacency
from repro.graph.graph import CommunityGraph
from repro.metrics.partition import Partition
from repro.types import VERTEX_DTYPE

__all__ = ["refine_partition"]


def refine_partition(
    graph: CommunityGraph,
    partition: Partition,
    *,
    max_sweeps: int = 10,
) -> tuple[Partition, int]:
    """Greedily move vertices between neighboring communities to raise
    modularity.

    Returns ``(refined_partition, n_moves)``.  The input partition is not
    modified.  Labels in the result are densely renumbered (communities
    emptied by moves disappear).
    """
    if partition.n_vertices != graph.n_vertices:
        raise ValueError("partition size does not match graph")
    if max_sweeps < 0:
        raise ValueError("max_sweeps must be non-negative")

    n = graph.n_vertices
    w_total = graph.total_weight()
    if w_total == 0 or n == 0:
        return partition, 0

    labels = partition.labels.copy()
    csr = CSRAdjacency.from_edgelist(graph.edges)
    strengths = graph.strengths()
    # Volume of each community, updated as vertices move.
    k = partition.n_communities
    vol = np.bincount(labels, weights=strengths, minlength=k)

    total_moves = 0
    for _ in range(max_sweeps):
        moves_this_sweep = 0
        for v in range(n):
            neigh = csr.neighbors(v)
            if len(neigh) == 0:
                continue
            wgt = csr.neighbor_weights(v)
            c_old = labels[v]
            # Weight from v to each adjacent community.
            neigh_labels = labels[neigh]
            comms, inv = np.unique(neigh_labels, return_inverse=True)
            w_to = np.bincount(inv, weights=wgt)
            idx_old = np.searchsorted(comms, c_old)
            w_old = (
                w_to[idx_old]
                if idx_old < len(comms) and comms[idx_old] == c_old
                else 0.0
            )
            s_v = strengths[v]
            # Gain of moving v from c_old to c: standard Louvain-style
            # ΔQ = (w_to_c - w_old)/W - s_v (vol_c - vol_old + s_v)/(2W²)
            vol_old_wo_v = vol[c_old] - s_v
            gains = (w_to - w_old) / w_total - s_v * (
                vol[comms] - vol_old_wo_v
            ) / (2.0 * w_total**2)
            if idx_old < len(comms) and comms[idx_old] == c_old:
                gains[idx_old] = 0.0
            best = int(np.argmax(gains))
            if gains[best] > 1e-15 and comms[best] != c_old:
                c_new = comms[best]
                labels[v] = c_new
                vol[c_old] -= s_v
                vol[c_new] += s_v
                moves_this_sweep += 1
        total_moves += moves_this_sweep
        if moves_this_sweep == 0:
            break

    if total_moves == 0:
        return partition, 0
    return Partition.from_labels(labels.astype(VERTEX_DTYPE)), total_moves
