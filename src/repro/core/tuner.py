"""Per-level adaptive kernel selection: shape features, cost model, tuner.

The hot path of the pipeline moves with graph shape: the paper
attributes 40–80 % of runtime to contraction, while this repo's own
attribution ledger shows *matching* dominating at small scale — and Lu &
Halappanavar observe the same heuristic-dependent crossover between
phases.  One kernel per run is therefore the wrong granularity.  This
module picks the kernel **per level**, from cheap shape features of the
community graph entering that level:

* :class:`LevelShape` / :func:`level_shape` — ``n_vertices``,
  ``n_edges``, density and the degree coefficient of variation computed
  from the CSR row lengths (one ``O(E)`` bincount, amortized by the
  ``O(E)`` scoring pass that follows it);
* a **cost table** mapping each registered kernel to linear-model
  coefficients over those features (seconds =
  ``c · [1, E, V, E·cv]``), shipped pre-calibrated from the
  ``bench/shootout.py`` sweep and re-fittable on any host
  (:func:`fit_cost_table`, ``python -m repro.bench.shootout``);
* pluggable selection policies — :class:`CostModelPolicy` (default:
  argmin of predicted seconds) and :class:`StaticPolicy` (a fixed
  static table, the degenerate tuner) behind one ``select`` protocol;
* :class:`KernelTuner` — the engine-facing seam: builds the candidate
  pool from the registry's :class:`~repro.core.registry.KernelInfo`
  capability metadata (constrained to ``supports_sharded`` kernels once
  the run has spilled), applies the policy, caches instantiated
  kernels, and ledgers every :class:`TunerDecision` so
  ``repro report`` / ``repro compare`` can explain a regression by what
  was selected, not just how long it took.

Selection never changes results: every registered matcher produces the
identical matching and every contractor the identical contracted graph
(the registry's standing bit-parity contract, enforced in
``tests/test_engine_parity.py``), so the tuner only moves the
time-to-result.  See docs/TUNING.md.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.core.registry import create_kernel, kernel_catalog, kernel_info
from repro.graph.graph import CommunityGraph

__all__ = [
    "COST_FEATURES",
    "AUTO_KERNEL",
    "DEFAULT_COST_TABLE",
    "LevelShape",
    "level_shape",
    "SelectorPolicy",
    "CostModelPolicy",
    "StaticPolicy",
    "TunerDecision",
    "KernelTuner",
    "load_cost_table",
    "fit_cost_table",
]

#: The registry/CLI name that requests per-level auto-selection.
AUTO_KERNEL = "auto"

#: Feature names a cost-table coefficient vector may span, in canonical
#: order.  ``const`` is the intercept, ``edges``/``vertices`` the level's
#: community-graph sizes, ``edges_x_cv`` the skew-sensitive interaction
#: term (edge count × degree coefficient of variation) that separates
#: chain-walk- and pass-count-sensitive kernels from oblivious ones.
COST_FEATURES = ("const", "edges", "vertices", "edges_x_cv")


# ------------------------------------------------------------------ shape
@dataclass(frozen=True)
class LevelShape:
    """Cheap shape statistics of the community graph entering one level."""

    n_vertices: int
    n_edges: int
    density: float
    degree_cv: float

    def features(self) -> dict[str, float]:
        """Feature values keyed by :data:`COST_FEATURES` name."""
        return {
            "const": 1.0,
            "edges": float(self.n_edges),
            "vertices": float(self.n_vertices),
            "edges_x_cv": float(self.n_edges) * self.degree_cv,
        }

    def as_dict(self) -> dict:
        return {
            "n_vertices": self.n_vertices,
            "n_edges": self.n_edges,
            "density": self.density,
            "degree_cv": self.degree_cv,
        }


def level_shape(graph: CommunityGraph) -> LevelShape:
    """Measure a :class:`LevelShape` from the CSR row lengths.

    One pass over the edge arrays (the same asymptotic cost as the
    scoring phase that immediately follows every selection), no
    allocation beyond the ``O(V)`` degree vector.
    """
    n = graph.n_vertices
    m = graph.n_edges
    density = 2.0 * m / (n * (n - 1)) if n > 1 else 0.0
    degree_cv = 0.0
    if n > 0 and m > 0:
        deg = graph.edges.degrees().astype(np.float64)
        mean = float(deg.mean())
        if mean > 0:
            degree_cv = float(deg.std()) / mean
    return LevelShape(
        n_vertices=n, n_edges=m, density=density, degree_cv=degree_cv
    )


# ------------------------------------------------------------- cost table
#: Static cost table the default policy ships with, fitted by
#: ``python -m repro.bench.shootout --fit-out`` over the RMAT/SBM/BA
#: suite (per-level phase seconds regressed on the level's shape
#: features; see docs/TUNING.md for the recalibration recipe).
#: Coefficients are seconds per feature unit, aligned with each
#: kernel's declared ``cost_features``.
DEFAULT_COST_TABLE: dict = {
    "version": 1,
    "features": list(COST_FEATURES),
    "source": "bench/shootout.py scale=1 seed=1 (sbm+ba+rmat)",
    "coefficients": {
        "matcher": {
            "worklist": {
                "const": 1.913476e-03,
                "edges": -5.001020e-06,
                "vertices": 3.333605e-06,
                "edges_x_cv": 5.017266e-06,
            },
            "sweep": {
                "const": 6.999416e-03,
                "edges": -2.071058e-05,
                "vertices": 1.086923e-05,
                "edges_x_cv": 2.066572e-05,
            },
            "gmm": {
                "const": 3.499073e-03,
                "edges": -7.478725e-06,
                "vertices": 5.454292e-06,
                "edges_x_cv": 7.678970e-06,
            },
        },
        "contractor": {
            "bucket": {
                "const": 4.377754e-05,
                "edges": 1.956566e-07,
                "vertices": 1.822896e-07,
            },
            "chains": {
                "const": 3.114106e-04,
                "edges": 9.307635e-08,
                "vertices": 6.575650e-07,
                "edges_x_cv": 3.111651e-07,
            },
            "shard": {
                "const": 2.975892e-04,
                "edges": 1.991204e-07,
                "vertices": 2.361426e-07,
            },
            "spmatrix": {
                "const": -1.135358e-03,
                "edges": 1.042530e-06,
                "vertices": 4.443321e-06,
            },
        },
    },
}


def _validate_table(table: Mapping) -> dict:
    """Validate a cost table's shape; returns it as a plain dict."""
    if not isinstance(table, Mapping):
        raise ValueError("cost table must be a mapping")
    version = table.get("version")
    if version != 1:
        raise ValueError(f"unsupported cost-table version {version!r}")
    features = table.get("features")
    if not isinstance(features, (list, tuple)) or not set(features) <= set(
        COST_FEATURES
    ):
        raise ValueError(
            f"cost-table features must be a subset of {COST_FEATURES}"
        )
    coeffs = table.get("coefficients")
    if not isinstance(coeffs, Mapping):
        raise ValueError("cost table has no 'coefficients' mapping")
    for kind, kernels in coeffs.items():
        if not isinstance(kernels, Mapping):
            raise ValueError(f"cost-table kind {kind!r} is not a mapping")
        for name, vec in kernels.items():
            if not isinstance(vec, Mapping):
                raise ValueError(
                    f"coefficients for {kind}/{name} must map feature->value"
                )
            bad = set(vec) - set(COST_FEATURES)
            if bad:
                raise ValueError(
                    f"coefficients for {kind}/{name} use unknown "
                    f"feature(s) {sorted(bad)}"
                )
            for feat, value in vec.items():
                if not isinstance(value, (int, float)) or not math.isfinite(
                    value
                ):
                    raise ValueError(
                        f"non-finite coefficient {kind}/{name}/{feat}"
                    )
    return dict(table)


def load_cost_table(source: str | os.PathLike | Mapping) -> dict:
    """Load and validate a cost table from a JSON file (or a dict)."""
    if isinstance(source, Mapping):
        return _validate_table(source)
    with open(source, "r", encoding="utf-8") as fh:
        try:
            data = json.load(fh)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ValueError(f"{source}: not valid JSON: {exc}") from exc
    # A shootout ledger embeds the table under config.cost_table; accept
    # either the bare table or the ledger wrapping it.
    if "coefficients" not in data and "config" in data:
        data = (data.get("config") or {}).get("cost_table") or {}
    return _validate_table(data)


def fit_cost_table(
    samples: Mapping[tuple[str, str], Sequence[tuple[LevelShape, float]]],
    *,
    source: str = "fit_cost_table",
) -> dict:
    """Least-squares fit of per-kernel cost coefficients.

    ``samples`` maps ``(kind, kernel_name)`` to observed
    ``(shape, seconds)`` pairs — the shootout harness collects one pair
    per level per run.  Each kernel is regressed on the features its
    registry :class:`~repro.core.registry.KernelInfo` declares
    (falling back to all of :data:`COST_FEATURES` for unregistered
    names), so a kernel whose runtime is skew-oblivious never picks up
    a spurious skew term from a small sample.
    """
    coefficients: dict[str, dict[str, dict[str, float]]] = {}
    for (kind, name), pairs in sorted(samples.items()):
        if not pairs:
            continue
        try:
            feats = tuple(kernel_info(kind, name).cost_features)
        except ValueError:
            feats = COST_FEATURES
        feats = feats or COST_FEATURES
        rows = np.array(
            [[shape.features()[f] for f in feats] for shape, _s in pairs]
        )
        y = np.array([max(0.0, float(s)) for _shape, s in pairs])
        coef, *_ = np.linalg.lstsq(rows, y, rcond=None)
        coefficients.setdefault(kind, {})[name] = {
            f: float(c) for f, c in zip(feats, coef)
        }
    return _validate_table(
        {
            "version": 1,
            "features": list(COST_FEATURES),
            "source": source,
            "coefficients": coefficients,
        }
    )


# --------------------------------------------------------------- policies
@runtime_checkable
class SelectorPolicy(Protocol):
    """One per-level selection strategy.

    ``select`` receives the phase kind, the level's shape, and the
    already capability-filtered candidate names; it returns the chosen
    name plus a per-candidate predicted-seconds map (``None`` for
    candidates the policy cannot price).
    """

    name: str

    def select(
        self, kind: str, shape: LevelShape, candidates: Sequence[str]
    ) -> tuple[str, dict[str, float | None]]:
        ...  # pragma: no cover - protocol stub


class CostModelPolicy:
    """Argmin of the calibrated linear cost model (the default policy)."""

    name = "cost-model"

    def __init__(self, table: Mapping | None = None) -> None:
        self.table = _validate_table(
            table if table is not None else DEFAULT_COST_TABLE
        )

    def predict(
        self, kind: str, kernel: str, shape: LevelShape
    ) -> float | None:
        """Predicted seconds for one kernel, ``None`` when untabulated."""
        vec = (self.table["coefficients"].get(kind) or {}).get(kernel)
        if vec is None:
            return None
        feats = shape.features()
        return max(0.0, sum(c * feats[f] for f, c in vec.items()))

    def select(
        self, kind: str, shape: LevelShape, candidates: Sequence[str]
    ) -> tuple[str, dict[str, float | None]]:
        if not candidates:
            raise ValueError(f"no {kind} candidates to select from")
        predicted = {n: self.predict(kind, n, shape) for n in candidates}
        priced = {n: p for n, p in predicted.items() if p is not None}
        if priced:
            # Sorted first so equal predictions break ties by name,
            # deterministically, independent of registration order.
            chosen = min(sorted(priced), key=lambda n: priced[n])
        else:
            chosen = sorted(candidates)[0]
        return chosen, predicted


class StaticPolicy:
    """A fixed kind→kernel static table — the degenerate (zeroth) tuner.

    Useful as the calibration baseline and for pinning one phase while
    the other auto-tunes.  When the pinned kernel is filtered out of
    the candidate pool (e.g. not sharded-capable after a spill), the
    first candidate in name order is substituted rather than failing
    the level.
    """

    name = "static"

    def __init__(self, choices: Mapping[str, str] | None = None) -> None:
        self.choices = dict(choices or {})

    def select(
        self, kind: str, shape: LevelShape, candidates: Sequence[str]
    ) -> tuple[str, dict[str, float | None]]:
        if not candidates:
            raise ValueError(f"no {kind} candidates to select from")
        pinned = self.choices.get(kind)
        chosen = pinned if pinned in candidates else sorted(candidates)[0]
        return chosen, {n: None for n in candidates}


# ---------------------------------------------------------------- tuner
@dataclass(frozen=True)
class TunerDecision:
    """One per-level, per-kind selection with its full rationale."""

    level: int
    kind: str
    chosen: str
    policy: str
    constrained_sharded: bool
    shape: LevelShape
    candidates: tuple[str, ...] = ()
    predicted_s: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "level": self.level,
            "kind": self.kind,
            "chosen": self.chosen,
            "policy": self.policy,
            "constrained_sharded": self.constrained_sharded,
            "shape": self.shape.as_dict(),
            "candidates": list(self.candidates),
            "predicted_s": dict(self.predicted_s),
        }


class KernelTuner:
    """The engine's selection seam: candidates → policy → kernel + ledger.

    One instance serves one run (decisions accumulate; the engine
    creates a fresh tuner per :meth:`~AgglomerationEngine.run`).
    Instantiated kernels are cached by ``(kind, name)`` so re-selecting
    the same kernel across levels does not re-invoke its factory.
    """

    def __init__(
        self,
        policy: SelectorPolicy | None = None,
        *,
        kinds: Iterable[str] = ("matcher", "contractor"),
    ) -> None:
        self.policy: SelectorPolicy = (
            policy if policy is not None else CostModelPolicy()
        )
        self.kinds = tuple(kinds)
        self.decisions: list[TunerDecision] = []
        self._kernels: dict[tuple[str, str], object] = {}

    def candidates(self, kind: str, *, sharded: bool = False) -> list[str]:
        """Capability-filtered candidate names for one phase kind.

        Once a run has spilled (``sharded=True``) only kernels whose
        :class:`~repro.core.registry.KernelInfo` advertises
        ``supports_sharded`` remain eligible — selecting anything else
        would re-materialise the edge-length anonymous arrays the spill
        just evicted.
        """
        infos = kernel_catalog(kind)
        names = [
            i.name for i in infos if not sharded or i.supports_sharded
        ]
        if not names:  # pragma: no cover - registry always has built-ins
            names = [i.name for i in infos]
        return names

    def decide(
        self,
        kind: str,
        shape: LevelShape,
        level: int,
        *,
        sharded: bool = False,
    ) -> TunerDecision:
        """Select the kernel for one level and record the decision."""
        candidates = self.candidates(kind, sharded=sharded)
        chosen, predicted = self.policy.select(kind, shape, candidates)
        decision = TunerDecision(
            level=level,
            kind=kind,
            chosen=chosen,
            policy=self.policy.name,
            constrained_sharded=sharded,
            shape=shape,
            candidates=tuple(candidates),
            predicted_s=predicted,
        )
        self.decisions.append(decision)
        return decision

    def kernel_for(self, decision: TunerDecision) -> object:
        """The (cached) kernel instance a decision selected."""
        key = (decision.kind, decision.chosen)
        kernel = self._kernels.get(key)
        if kernel is None:
            kernel = create_kernel(*key)
            self._kernels[key] = kernel
        return kernel

    def selected_counts(self) -> dict[str, dict[str, int]]:
        """``{kind: {kernel: times chosen}}`` over the recorded run."""
        counts: dict[str, dict[str, int]] = {}
        for d in self.decisions:
            per_kind = counts.setdefault(d.kind, {})
            per_kind[d.chosen] = per_kind.get(d.chosen, 0) + 1
        return counts

    def as_dict(self) -> dict:
        """The ``Repetition.tuner`` ledger block."""
        return {
            "policy": self.policy.name,
            "kinds": list(self.kinds),
            "n_decisions": len(self.decisions),
            "selected": self.selected_counts(),
            "decisions": [d.as_dict() for d in self.decisions],
        }
