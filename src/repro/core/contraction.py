"""Graph contraction (§III step 3, §IV-C) — the dominant cost (40–80 %).

:func:`contract` is the paper's *new* bucket-sort method: relabel each
edge's endpoints through the match map, re-apply the parity hash, bucket by
the first stored endpoint (an atomic fetch-and-add per edge — no locks),
sort within buckets by the second endpoint, accumulate duplicates, and copy
back out.  Our vectorized expression fuses bucketing and in-bucket sorting
into one lexsort plus a segmented reduction, touching each edge O(1) times
exactly like the paper's linear-time bucket sort.

:func:`contract_hash_chains` is the *legacy* method due to John T. Feo:
edges go into linked lists selected by an endpoint hash; each insertion
walks its list looking for a duplicate under full/empty-bit protection.
Output is identical; what differs is the recorded execution profile — the
list walks are serially dependent memory operations (``chain_ops``) that
the Cray XMT hides with threads but that strangle a cache-based OpenMP
machine.  This is exactly the ablation in the paper's §IV-C.

Both return ``(new_graph, mapping)`` where ``mapping[old_vertex]`` is the
new community id; matched pairs collapse onto one id, everything else
carries over.  The total-weight invariant (cross + self = constant) holds
by construction and is checked property-style in the tests.
"""

from __future__ import annotations

import numpy as np

from repro.core.matching import MatchingResult
from repro.graph.edgelist import EdgeList, parity_canonical
from repro.graph.graph import CommunityGraph
from repro.obs.trace import NullTracer, Tracer, as_tracer
from repro.platform.kernels import KernelRecord, TraceRecorder
from repro.types import NO_VERTEX, VERTEX_DTYPE
from repro.util.arrays import renumber_dense, segment_starts

__all__ = ["contract", "contract_hash_chains"]


def _mapping_from_matching(
    graph: CommunityGraph, matching: MatchingResult
) -> tuple[np.ndarray, int]:
    """Dense old→new vertex map: matched pairs share their min endpoint."""
    n = graph.n_vertices
    partner = matching.partner
    if len(partner) != n:
        raise ValueError("matching does not cover the graph")
    rep = np.arange(n, dtype=VERTEX_DTYPE)
    matched = partner != NO_VERTEX
    rep[matched] = np.minimum(rep[matched], partner[matched])
    return renumber_dense(rep)


def _build_contracted(
    graph: CommunityGraph,
    mapping: np.ndarray,
    k: int,
    tracer: Tracer | NullTracer | None = None,
) -> CommunityGraph:
    """Shared relabel + accumulate path (both methods produce this).

    When a tracer is attached, each stage of the bucket-sort pipeline
    gets its own span (§IV-C's relabel → bucket/sort → accumulate) and
    the distribution of bucket sizes (edges per first endpoint) lands in
    the ``contract.bucket_occupancy`` histogram.
    """
    tr = as_tracer(tracer)
    e = graph.edges

    with tr.span("contract_relabel") as sp:
        ni = mapping[e.ei]
        nj = mapping[e.ej]

        # Edges inside a merged pair become self weight.
        loops = ni == nj
        new_self = np.bincount(
            mapping, weights=graph.self_weights, minlength=k
        )
        if loops.any():
            new_self += np.bincount(ni[loops], weights=e.w[loops], minlength=k)

        keep = ~loops
        first, second = parity_canonical(ni[keep], nj[keep])
        w = e.w[keep]
        sp.set(items=e.n_edges, n_loops=int(np.count_nonzero(loops)))

    with tr.span("contract_bucket_sort") as sp:
        if tr.enabled and len(first):
            occupancy = np.bincount(first, minlength=k)
            tr.histogram("contract.bucket_occupancy").observe_many(
                occupancy[occupancy > 0]
            )
        order = np.lexsort((second, first))
        first = first[order]
        second = second[order]
        w = w[order]
        sp.set(items=len(first))

    with tr.span("contract_accumulate") as sp:
        if len(first):
            starts = segment_starts(first * np.int64(k) + second)
            w = np.add.reduceat(w, starts)
            first = first[starts]
            second = second[starts]
        edges = EdgeList._from_grouped(first, second, w, k)
        sp.set(items=len(first))
    return CommunityGraph(edges, new_self.astype(np.float64, copy=False))


def contract(
    graph: CommunityGraph,
    matching: MatchingResult,
    recorder: TraceRecorder | None = None,
    *,
    tracer: Tracer | NullTracer | None = None,
) -> tuple[CommunityGraph, np.ndarray]:
    """Bucket-sort contraction (the paper's new method).

    Requires ``|V| + 1 + 2|E|`` words of scratch beyond the input — more
    than the legacy method's ``|E| + |V|`` but with only a fetch-and-add
    of synchronization.
    """
    tr = as_tracer(tracer)
    with tr.span("contract_map") as sp:
        mapping, k = _mapping_from_matching(graph, matching)
        sp.set(items=graph.n_vertices, n_communities=k)
    new_graph = _build_contracted(graph, mapping, k, tracer=tr)

    if recorder is not None:
        m = graph.n_edges
        n = graph.n_vertices
        # Relabel + rehash: flat loop over edges.
        recorder.record(
            KernelRecord(name="contract_relabel", items=m, mem_words=6 * m)
        )
        # Bucket placement: scatter each (j; w) pair through a
        # fetch-and-add bucket cursor.
        recorder.record(
            KernelRecord(
                name="contract_bucket",
                items=m,
                mem_words=5 * m + n,
                atomics=m,
                contention=0.0,
            )
        )
        # In-bucket sort by second endpoint + duplicate accumulation:
        # each element is read and written about twice more during the
        # sort, plus the accumulate pass.
        recorder.record(
            KernelRecord(name="contract_sort", items=m, mem_words=10 * m)
        )
        # Copy the shortened buckets back into the graph's storage,
        # filling in the implicit first endpoints.
        recorder.record(
            KernelRecord(
                name="contract_copy",
                items=new_graph.n_edges,
                mem_words=4 * new_graph.n_edges,
            )
        )
    return new_graph, mapping


def _chain_walk_lengths(keys: np.ndarray, table_size: int) -> int:
    """Total list-node inspections for hash-chain insertion of ``keys``.

    Edges are inserted in arrival order into chains selected by
    ``key % table_size``; inserting an edge walks its chain over the
    *distinct* keys already present (duplicates accumulate in place when
    found).  Returns the summed walk length — the legacy method's serially
    dependent memory traffic.
    """
    if len(keys) == 0:
        return 0
    h = keys % table_size
    # Arrival order within each chain: stable sort by chain id.
    order = np.argsort(h, kind="stable")
    h_sorted = h[order]
    k_sorted = keys[order]
    starts = segment_starts(h_sorted)

    # For each insertion, the walk visits every distinct key inserted
    # earlier in its chain (then stops: either a duplicate is found or the
    # edge is appended).  Count "first occurrence of key within chain" via
    # a (chain, key) sort, then accumulate per arrival.
    order2 = np.lexsort((k_sorted, h_sorted))
    h2 = h_sorted[order2]
    k2 = k_sorted[order2]
    is_first = np.ones(len(k2), dtype=bool)
    same_chain = h2[1:] == h2[:-1]
    same_key = k2[1:] == k2[:-1]
    is_first[1:] = ~(same_chain & same_key)
    first_in_arrival = np.empty(len(k2), dtype=bool)
    first_in_arrival[order2] = is_first

    # distinct-before-me within chain, in arrival order.
    cum = np.cumsum(first_in_arrival)
    chain_base = np.repeat(
        cum[starts] - first_in_arrival[starts],
        np.diff(np.append(starts, len(k2))),
    )
    distinct_before = cum - first_in_arrival - chain_base
    # A new key inspects every distinct predecessor then appends (one more
    # write); a duplicate stops at its match among the predecessors.
    return int(distinct_before.sum() + first_in_arrival.sum())


def contract_hash_chains(
    graph: CommunityGraph,
    matching: MatchingResult,
    recorder: TraceRecorder | None = None,
    *,
    tracer: Tracer | NullTracer | None = None,
) -> tuple[CommunityGraph, np.ndarray]:
    """Legacy hash-of-linked-lists contraction (Feo's technique, [4]).

    Produces the identical contracted graph; records the chain-walk
    profile (``chain_ops``) that made this approach infeasible under
    OpenMP while costing only ``|E| + |V|`` scratch words.
    """
    tr = as_tracer(tracer)
    with tr.span("contract_map") as sp:
        mapping, k = _mapping_from_matching(graph, matching)
        sp.set(items=graph.n_vertices, n_communities=k)
    new_graph = _build_contracted(graph, mapping, k, tracer=tr)

    if recorder is not None:
        e = graph.edges
        m = graph.n_edges
        ni = mapping[e.ei]
        nj = mapping[e.ej]
        keep = ni != nj
        first, second = parity_canonical(ni[keep], nj[keep])
        keys = first * np.int64(k) + second
        table_size = max(1, m + graph.n_vertices)
        chain_ops = _chain_walk_lengths(keys, table_size)
        recorder.record(
            KernelRecord(name="contract_relabel", items=m, mem_words=6 * m)
        )
        recorder.record(
            KernelRecord(
                name="contract_chase",
                items=m,
                mem_words=2 * m,
                # Full/empty acquisition guards every chain head + append.
                locks=2 * m,
                contention=min(
                    1.0, 1.0 - len(np.unique(keys % table_size)) / max(1, m)
                ),
                chain_ops=chain_ops,
            )
        )
    return new_graph, mapping
