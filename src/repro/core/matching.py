"""Greedy heavy maximal matching (§III step 2, §IV-B).

Two implementations of the same locally-dominant matching:

* :func:`match_locally_dominant` — the paper's *improved* algorithm.  It
  maintains a worklist of currently unmatched vertices; each pass, every
  unmatched vertex proposes its highest-scored unmatched neighbor under a
  total order (score, then index), claims are checked from both sides, and
  winners leave the worklist.  Our vectorized re-expression processes the
  shrinking set of *live* edges (both endpoints unmatched) per pass — the
  same work profile as scanning each worklist vertex's bucket.

* :func:`match_full_sweep` — the paper's *legacy* algorithm from [4]: every
  pass sweeps across the entire edge array and contends on per-vertex
  best-match slots with full/empty bits.  It produces the identical
  matching here (both are fixed points of the same dominance relation and
  our tie-break is deterministic) but records the execution profile that
  made it a hot-spot disaster under OpenMP: every scanned edge issues
  atomic updates against its endpoints' slots, so a high-degree vertex
  absorbs its whole degree in atomics each sweep.

Both return a maximal matching over positive-scored edges whose total
score is within a factor of two of the maximum (Preis; Hoepman;
Manne–Bisseling) — property-tested in the suite.

Determinism note: the paper's threaded races make its matching
non-deterministic run to run; the (score, edge index) total order used here
fixes one of the valid outcomes, which is what makes exact regression
testing possible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConvergenceError
from repro.graph.graph import CommunityGraph
from repro.obs.trace import NullTracer, Tracer, as_tracer
from repro.platform.kernels import KernelRecord, TraceRecorder
from repro.types import NO_VERTEX, VERTEX_DTYPE

__all__ = [
    "MatchingResult",
    "match_locally_dominant",
    "match_full_sweep",
    "is_maximal_matching",
    "matching_weight",
    "approximation_certificate",
]

_SENTINEL_EDGE = np.iinfo(np.int64).max
_MIX_MULTIPLIER = np.int64(-7046029254386353131)  # 0x9E3779B97F4A7C15 as int64


def _edge_priority(edge_index: np.ndarray) -> np.ndarray:
    """Deterministic pseudorandom tie-break priority per edge.

    Score ties are broken by this splitmix-style bijective hash of the edge
    index rather than the raw index: with raw indices, a chain of
    equal-scored edges (common on unit-weight graphs where scores depend
    only on degrees) resolves one handshake per pass — an O(chain) pass
    count.  Random priorities cut dominance chains to expected O(log n)
    passes (the same argument as Luby's algorithm), while remaining a fixed
    total order, which is all the paper's correctness argument needs.
    """
    with np.errstate(over="ignore"):
        return edge_index * _MIX_MULTIPLIER


@dataclass
class MatchingResult:
    """Outcome of a matching kernel.

    Attributes
    ----------
    partner:
        ``|V|``-long array; ``partner[v]`` is v's matched vertex or
        :data:`~repro.types.NO_VERTEX`.
    matched_edges:
        Indices (into the graph's edge arrays) of the matched edges.
    passes:
        Number of sweeps until the worklist drained.
    failed_claims:
        Total one-sided claims that lost to a better neighbor — the
        paper's re-queued worklist entries.
    """

    partner: np.ndarray
    matched_edges: np.ndarray
    passes: int
    failed_claims: int

    @property
    def n_pairs(self) -> int:
        return len(self.matched_edges)


def _run_passes(
    graph: CommunityGraph,
    scores: np.ndarray,
    recorder: TraceRecorder | None,
    *,
    legacy_sweep: bool,
    tracer: Tracer | NullTracer | None = None,
    max_passes: int | None = None,
) -> MatchingResult:
    tr = as_tracer(tracer)
    worklist_gauge = tr.gauge("match.worklist_edges")
    e = graph.edges
    n = graph.n_vertices
    if len(scores) != e.n_edges:
        raise ValueError("scores length must equal edge count")

    partner = np.full(n, NO_VERTEX, dtype=VERTEX_DTYPE)
    candidates = np.flatnonzero(scores > 0.0)
    matched_edges: list[np.ndarray] = []
    unmatched = np.ones(n, dtype=bool)
    total_failed = 0
    passes = 0
    if max_passes is None:
        max_passes = 2 * n + 4  # worst case one pair per pass
    elif max_passes < 0:
        raise ValueError("max_passes must be non-negative")

    live = candidates
    while len(live):
        passes += 1
        if passes > max_passes:
            raise ConvergenceError("matching exceeded its pass budget")

        with tr.span("match_pass", pass_index=passes) as pass_span:
            if legacy_sweep:
                # Legacy: rescan the whole edge array and re-derive liveness.
                scanned = candidates
                mask = unmatched[e.ei[scanned]] & unmatched[e.ej[scanned]]
                live = scanned[mask]
                scan_items = len(scanned)
            else:
                scan_items = len(live)
            worklist_gauge.set(len(live))
            pass_span.set(items=scan_items, live_edges=len(live))
            if len(live) == 0:
                break

            u = e.ei[live]
            v = e.ej[live]
            s = scores[live]
            prio = _edge_priority(live)

            # Per-vertex best score over live incident edges (atomic-max in C).
            best = np.full(n, -np.inf)
            np.maximum.at(best, u, s)
            np.maximum.at(best, v, s)

            # Tie-break on minimum hashed priority among score-maximal edges —
            # a fixed total order, as the paper requires (it uses score then
            # vertex indices; see _edge_priority for why we hash).
            best_edge = np.full(n, _SENTINEL_EDGE, dtype=np.int64)
            at_u = s == best[u]
            at_v = s == best[v]
            np.minimum.at(best_edge, u[at_u], prio[at_u])
            np.minimum.at(best_edge, v[at_v], prio[at_v])

            # An edge wins when both endpoints chose it (the two-sided claim).
            mutual = (best_edge[u] == prio) & (best_edge[v] == prio)
            n_new = int(np.count_nonzero(mutual))
            if n_new == 0:
                raise ConvergenceError(
                    "no locally dominant edge found among live edges; "
                    "scores may contain NaN"
                )

            chosen_u = best_edge[u] == prio  # this edge is u's chosen claim
            chosen_v = best_edge[v] == prio
            failed = int(np.count_nonzero((chosen_u | chosen_v) & ~mutual))
            total_failed += failed

            mu = u[mutual]
            mv = v[mutual]
            partner[mu] = mv
            partner[mv] = mu
            unmatched[mu] = False
            unmatched[mv] = False
            matched_edges.append(live[mutual])
            pass_span.set(matched=n_new, failed_claims=failed)

            if recorder is not None:
                if legacy_sweep:
                    # Every scanned live edge pounds both endpoint slots with
                    # atomic-max updates: a high-degree vertex absorbs its whole
                    # degree in contended traffic each sweep (§IV-B hot spots).
                    atomics = 2 * len(live)
                    distinct = len(np.unique(np.concatenate([u, v])))
                    contention = 1.0 - distinct / max(1, atomics)
                else:
                    # Worklist algorithm: each unmatched vertex issues exactly
                    # one two-sided claim for its chosen edge.  Collisions only
                    # occur when several proposers target the same partner slot.
                    partners = np.concatenate([v[chosen_u], u[chosen_v]])
                    n_prop = len(partners)
                    atomics = 2 * n_prop
                    colliding = n_prop - len(np.unique(partners))
                    contention = 0.5 * colliding / max(1, n_prop)
                if legacy_sweep:
                    # Full sweep: every candidate edge pays a cheap liveness
                    # test; only still-live edges do the scoring reads.
                    mem_words = 2 * scan_items + 5 * len(live) + 2 * n_new
                else:
                    mem_words = 5 * scan_items + 2 * n_new
                recorder.record(
                    KernelRecord(
                        name="match_pass",
                        items=max(scan_items, 1),
                        mem_words=mem_words,
                        atomics=atomics,
                        locks=2 * n_new,
                        contention=min(1.0, contention),
                    )
                )

            if not legacy_sweep:
                keep = unmatched[u] & unmatched[v]
                live = live[keep]

    matched = (
        np.concatenate(matched_edges)
        if matched_edges
        else np.empty(0, dtype=np.int64)
    )
    matched.sort()
    return MatchingResult(
        partner=partner,
        matched_edges=matched,
        passes=passes,
        failed_claims=total_failed,
    )


def match_locally_dominant(
    graph: CommunityGraph,
    scores: np.ndarray,
    recorder: TraceRecorder | None = None,
    *,
    tracer: Tracer | NullTracer | None = None,
    max_passes: int | None = None,
) -> MatchingResult:
    """The paper's improved worklist matching (see module docstring).

    ``max_passes`` overrides the default ``2|V| + 4`` pass budget
    (exceeding it raises :class:`~repro.errors.ConvergenceError`).
    """
    return _run_passes(
        graph,
        scores,
        recorder,
        legacy_sweep=False,
        tracer=tracer,
        max_passes=max_passes,
    )


def match_full_sweep(
    graph: CommunityGraph,
    scores: np.ndarray,
    recorder: TraceRecorder | None = None,
    *,
    tracer: Tracer | NullTracer | None = None,
    max_passes: int | None = None,
) -> MatchingResult:
    """The legacy whole-edge-array sweep matching from the 2011 paper [4].

    Identical output to :func:`match_locally_dominant`; records the
    hot-spot-heavy execution profile for the ablation benchmarks.
    ``max_passes`` overrides the default ``2|V| + 4`` pass budget.
    """
    return _run_passes(
        graph,
        scores,
        recorder,
        legacy_sweep=True,
        tracer=tracer,
        max_passes=max_passes,
    )


# ----------------------------------------------------------------- checking
def is_maximal_matching(
    graph: CommunityGraph, scores: np.ndarray, result: MatchingResult
) -> bool:
    """Verify matching validity and maximality over positive-scored edges.

    Valid: ``partner`` is a symmetric involution and matched edges connect
    exactly the paired vertices.  Maximal: no positive-scored edge has both
    endpoints unmatched.
    """
    partner = result.partner
    matched_mask = partner != NO_VERTEX
    verts = np.flatnonzero(matched_mask)
    if np.any(partner[partner[verts]] != verts):
        return False
    if np.any(partner[verts] == verts):
        return False
    e = graph.edges
    me = result.matched_edges
    if len(me) != np.count_nonzero(matched_mask) // 2:
        return False
    if len(me) and not np.all(partner[e.ei[me]] == e.ej[me]):
        return False
    positive = scores > 0
    both_free = ~matched_mask[e.ei] & ~matched_mask[e.ej]
    return not np.any(positive & both_free)


def matching_weight(scores: np.ndarray, result: MatchingResult) -> float:
    """Total score of the matched edges."""
    return float(scores[result.matched_edges].sum())


def approximation_certificate(
    graph: CommunityGraph, scores: np.ndarray, result: MatchingResult
) -> tuple[float, float]:
    """A cheap ``(achieved, upper_bound)`` certificate for the matching.

    Any matching's weight is at most
    ``min(Σ positive scores, ½ Σ_v max positive incident score)`` —
    each matched edge consumes both endpoints, and an endpoint can
    contribute at most its best incident score once.  Together with the
    greedy guarantee ``achieved ≥ optimum / 2`` this gives a per-run,
    verifiable quality interval: ``achieved / upper_bound`` lower-bounds
    the true approximation ratio of this particular matching.
    """
    e = graph.edges
    if len(scores) != e.n_edges:
        raise ValueError("scores length must equal edge count")
    achieved = matching_weight(scores, result)
    positive = scores > 0
    sum_positive = float(scores[positive].sum())
    best = np.zeros(graph.n_vertices)
    np.maximum.at(best, e.ei[positive], scores[positive])
    np.maximum.at(best, e.ej[positive], scores[positive])
    upper = min(sum_positive, 0.5 * float(best.sum()))
    return achieved, upper
