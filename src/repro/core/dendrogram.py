"""Merge dendrogram: the level-by-level community maps.

Each contraction produces a dense old→new map over the previous level's
communities.  Composing prefixes of these maps yields the input-graph
community assignment at any level, which is how the driver reports both
its final partition and the whole agglomeration history (useful for the
paper's "smaller communities … form the basis for multi-level algorithms"
use case).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.metrics.partition import Partition
from repro.types import VERTEX_DTYPE

__all__ = ["Dendrogram"]


@dataclass
class Dendrogram:
    """A sequence of contraction maps over ``n_vertices`` input vertices."""

    n_vertices: int
    maps: list[np.ndarray] = field(default_factory=list)

    def push(self, mapping: np.ndarray) -> None:
        """Append one contraction's old→new community map."""
        mapping = np.asarray(mapping, dtype=VERTEX_DTYPE)
        expected = self.communities_at(self.n_levels)
        if len(mapping) != expected:
            raise ValueError(
                f"mapping covers {len(mapping)} communities, expected {expected}"
            )
        if len(mapping) and mapping.max() >= len(mapping):
            raise ValueError("contraction map must shrink (or keep) the range")
        self.maps.append(mapping)

    @property
    def n_levels(self) -> int:
        return len(self.maps)

    def communities_at(self, level: int) -> int:
        """Number of communities after ``level`` contractions."""
        if not 0 <= level <= self.n_levels:
            raise IndexError(f"level {level} out of range")
        if level == 0:
            return self.n_vertices
        return int(self.maps[level - 1].max()) + 1 if len(self.maps[level - 1]) else 0

    def labels_at(self, level: int) -> np.ndarray:
        """Input-vertex community labels after ``level`` contractions."""
        if not 0 <= level <= self.n_levels:
            raise IndexError(f"level {level} out of range")
        labels = np.arange(self.n_vertices, dtype=VERTEX_DTYPE)
        for mapping in self.maps[:level]:
            labels = mapping[labels]
        return labels

    def partition_at(self, level: int) -> Partition:
        """Input-graph :class:`Partition` after ``level`` contractions."""
        return Partition(self.labels_at(level))

    def final_partition(self) -> Partition:
        return self.partition_at(self.n_levels)
