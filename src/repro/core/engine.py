"""The phase-pipeline engine: RunContext, phase kernels, and the driver.

The paper's algorithm is a pipeline — score → match → contract repeated
over a shrinking community graph (§III) — and this module is that
pipeline as an explicit composition instead of a monolithic loop:

* :class:`RunContext` owns every cross-cutting service a run needs
  (tracer, quality timeline, recovery report, checkpoint manager,
  simulated-work recorder, execution backend, progress callback, RNG
  seed, logger) and is passed **once** through every layer, replacing
  the ad-hoc kwarg plumbing the driver had grown.
* :class:`PhaseKernel` is the one protocol scorers, matchers and
  contractors plug in behind; concrete kernels resolve by name through
  :mod:`repro.core.registry`, so ablation variants and user kernels are
  a registration away.
* :class:`AgglomerationEngine` runs the loop: termination checks,
  per-level spans, the ``max_community_size`` veto, dendrogram and
  member-count bookkeeping, checkpoint/resume, and the quality
  timeline — everything that is *driver* policy rather than kernel
  arithmetic.

Any phase can request chunked parallel execution from
``ctx.backend`` (an :class:`~repro.parallel.backends.ExecutionBackend`);
the modularity scorer uses it to score each level on the supervised
worker pool when the backend provides parallelism.  Backend choice
never changes results — kernels are deterministic and chunk writes are
disjoint — only the execution profile.

:func:`repro.core.agglomeration.detect_communities` is a thin
compatibility wrapper over this engine; see docs/ARCHITECTURE.md for
the layer diagram and extension guide.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Protocol, runtime_checkable

import numpy as np

from repro.core.dendrogram import Dendrogram
from repro.core.matching import MatchingResult
from repro.core.outofcore import (
    contract_sharded,
    match_gmm_capped,
    score_sharded,
)
from repro.core.registry import create_kernel
from repro.core.scoring import EdgeScorer, validate_scores
from repro.core.tuner import (
    AUTO_KERNEL,
    KernelTuner,
    SelectorPolicy,
    level_shape,
)
from repro.core.termination import TerminationCriteria
from repro.errors import CheckpointError, RunAbortedError
from repro.graph.edgelist import EdgeList
from repro.graph.graph import CommunityGraph
from repro.metrics.modularity import community_graph_modularity
from repro.metrics.partition import Partition
from repro.obs.memprof import (
    NULL_MEMPROF,
    NullMemoryProfiler,
    PhaseMemoryProfiler,
    as_memprof,
)
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    TelemetrySampler,
    as_telemetry,
)
from repro.obs.timeline import NullTimeline, QualityTimeline, as_timeline
from repro.obs.trace import NullTracer, Tracer, as_tracer
from repro.parallel.backends import ExecutionBackend, as_backend
from repro.platform.kernels import TraceRecorder
from repro.resilience.checkpoint import CheckpointManager, CheckpointState
from repro.resilience.guardian import (
    NULL_GUARDIAN,
    NullGuardian,
    RunGuardian,
    as_guardian,
)
from repro.resilience.report import RecoveryReport
from repro.types import NO_VERTEX, VERTEX_DTYPE
from repro.util.log import get_logger

__all__ = [
    "LevelStats",
    "AgglomerationResult",
    "RunContext",
    "PhaseKernel",
    "ScoreKernel",
    "MatchKernel",
    "ContractKernel",
    "AgglomerationEngine",
]

_log = get_logger("core.engine")


# ------------------------------------------------------------------ results
@dataclass(frozen=True)
class LevelStats:
    """Statistics of one contraction level.

    ``n_vertices``/``n_edges`` describe the community graph *entering* the
    level; coverage and modularity are measured *after* its contraction.
    """

    level: int
    n_vertices: int
    n_edges: int
    n_positive_scores: int
    n_pairs: int
    matching_passes: int
    coverage_after: float
    modularity_after: float


@dataclass
class AgglomerationResult:
    """Full outcome of a community-detection run."""

    partition: Partition
    dendrogram: Dendrogram
    levels: list[LevelStats] = field(default_factory=list)
    terminated_by: str = ""
    final_graph: CommunityGraph | None = None
    scorer_name: str = ""
    recovery: RecoveryReport = field(default_factory=RecoveryReport)
    #: Per-level kernel-selection ledger when the run auto-tuned
    #: (``matcher="auto"`` / ``contractor="auto"``); ``None`` otherwise.
    tuner: dict | None = None

    @property
    def n_communities(self) -> int:
        return self.partition.n_communities

    @property
    def n_levels(self) -> int:
        return len(self.levels)

    def total_edge_work(self) -> int:
        """Σ per-level community-graph edges — the paper's O(|E|·K) bound."""
        return sum(s.n_edges for s in self.levels)


def _limit_matching(
    matching: MatchingResult,
    scores: np.ndarray,
    max_pairs: int,
    edges: EdgeList,
) -> MatchingResult:
    """Keep only the ``max_pairs`` highest-scored matched pairs.

    Used when a full contraction would drop below ``min_communities``.
    The returned result is self-consistent: the partner array is rebuilt
    here from the surviving edges, so callers never patch it up.
    """
    if matching.n_pairs <= max_pairs:
        return matching
    me = matching.matched_edges
    order = np.argsort(scores[me], kind="stable")[::-1][:max_pairs]
    kept = np.sort(me[order])
    partner = np.full_like(matching.partner, NO_VERTEX)
    partner[edges.ei[kept]] = edges.ej[kept]
    partner[edges.ej[kept]] = edges.ei[kept]
    return MatchingResult(
        partner=partner,
        matched_edges=kept,
        passes=matching.passes,
        failed_claims=matching.failed_claims,
    )


# ----------------------------------------------------------------- context
@dataclass
class RunContext:
    """Cross-cutting services of one agglomeration run.

    Built once (usually via :meth:`create`) and passed through every
    layer — engine, phase kernels, backends — so no layer re-plumbs
    tracer/timeline/recovery/checkpoint arguments individually.

    Attributes
    ----------
    tracer:
        Wall-clock span tracer (normalized; never ``None``).
    timeline:
        Per-level quality timeline (normalized; never ``None``).
    backend:
        Execution backend phase kernels may request chunked parallel
        execution from.
    recovery:
        Accumulator for every recovery action taken during the run.
    recorder:
        Optional simulated-work recorder for the platform cost models.
    checkpoints:
        Optional checkpoint manager; ``None`` disables persistence.
    checkpoint_every:
        Persist every N-th completed level.
    progress:
        Optional per-level callback.
    seed:
        RNG seed associated with the run (stamped on the run span;
        kernels that randomize derive from it).
    log:
        Logger the engine reports per-level progress to.
    guardian:
        Run guardian (watchdog + invariant audits + degradation
        ladder); defaults to the inert :data:`NULL_GUARDIAN`.
    telemetry:
        Live-telemetry sampler the engine publishes phase/level
        transitions to (and whose RSS ring buffer the guardian's
        predictive spill consumes); defaults to the inert
        :data:`NULL_TELEMETRY`.
    memprof:
        Phase-scoped tracemalloc memory attributor; defaults to the
        inert :data:`NULL_MEMPROF`.
    """

    tracer: Tracer | NullTracer
    timeline: QualityTimeline | NullTimeline
    backend: ExecutionBackend
    recovery: RecoveryReport = field(default_factory=RecoveryReport)
    recorder: TraceRecorder | None = None
    checkpoints: CheckpointManager | None = None
    checkpoint_every: int = 1
    progress: Callable[[LevelStats], None] | None = None
    seed: int = 0
    log: Any = _log
    guardian: RunGuardian | NullGuardian = NULL_GUARDIAN
    telemetry: TelemetrySampler | NullTelemetry = NULL_TELEMETRY
    memprof: PhaseMemoryProfiler | NullMemoryProfiler = NULL_MEMPROF

    @classmethod
    def create(
        cls,
        *,
        tracer: Tracer | NullTracer | None = None,
        timeline: QualityTimeline | NullTimeline | None = None,
        backend: ExecutionBackend | str | None = None,
        recorder: TraceRecorder | None = None,
        recovery: RecoveryReport | None = None,
        checkpoint_dir: Any = None,
        checkpoint_every: int = 1,
        progress: Callable[[LevelStats], None] | None = None,
        seed: int = 0,
        guardian: RunGuardian | NullGuardian | None = None,
        telemetry: TelemetrySampler | NullTelemetry | None = None,
        memprof: PhaseMemoryProfiler | NullMemoryProfiler | None = None,
    ) -> "RunContext":
        """Normalize optional services into a ready-to-use context."""
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be at least 1")
        return cls(
            tracer=as_tracer(tracer),
            timeline=as_timeline(timeline),
            backend=as_backend(backend),
            recovery=recovery if recovery is not None else RecoveryReport(),
            recorder=recorder,
            checkpoints=(
                CheckpointManager(checkpoint_dir)
                if checkpoint_dir is not None
                else None
            ),
            checkpoint_every=checkpoint_every,
            progress=progress,
            seed=seed,
            guardian=as_guardian(guardian),
            telemetry=as_telemetry(telemetry),
            memprof=as_memprof(memprof),
        )


# ----------------------------------------------------------------- kernels
def _streams_shards(ctx: "RunContext", graph: CommunityGraph) -> bool:
    """True when this phase should stream the graph shard-at-a-time.

    Requires both halves: a backend advertising the ``sharded``
    capability (so the run *asked* for out-of-core execution — directly
    or via the guardian's spill rung) and a graph actually carrying a
    spill store (so the shard table exists).  Either alone falls back to
    the ordinary in-memory path.
    """
    return bool(getattr(ctx.backend, "sharded", False)) and (
        getattr(graph, "spill_store", None) is not None
    )


@runtime_checkable
class PhaseKernel(Protocol):
    """One pipeline phase, executable against a :class:`RunContext`.

    ``kind`` names the phase slot (``"scorer"`` / ``"matcher"`` /
    ``"contractor"``), ``name`` the concrete implementation; ``run``
    receives the context plus the phase's inputs and returns its
    outputs.  The adapters below wrap the raw kernel callables in this
    shape so the engine drives all three phases uniformly.
    """

    kind: str
    name: str

    def run(self, ctx: RunContext, graph: CommunityGraph, **inputs: Any) -> Any:
        ...  # pragma: no cover - protocol stub


class ScoreKernel:
    """Scoring phase: wraps an :class:`~repro.core.scoring.EdgeScorer`.

    Built-in scorers validate their own output (``validates_output``
    class attribute); external protocol implementations are validated
    here, once, instead of re-validating every scorer every level.
    When the scorer offers backend execution (``score_with_backend``)
    and the context's backend provides parallelism, scoring runs
    chunked on that backend with recovery accounted to the run.
    """

    kind = "scorer"

    def __init__(self, scorer: EdgeScorer) -> None:
        self.scorer = scorer
        self.name = scorer.name
        self._needs_validation = not getattr(scorer, "validates_output", False)

    def run(
        self, ctx: RunContext, graph: CommunityGraph, **inputs: Any
    ) -> np.ndarray:
        if _streams_shards(ctx, graph) and hasattr(self.scorer, "score_range"):
            # Streamed windowed scoring: bit-identical to ``score`` (the
            # formulas are elementwise), validated window-by-window, and
            # the output lands in a scratch memmap instead of anonymous
            # memory.
            return score_sharded(
                self.scorer, graph, ctx.recorder, tracer=ctx.tracer
            )
        backend_score = getattr(self.scorer, "score_with_backend", None)
        if backend_score is not None and ctx.backend.n_workers > 1:
            scores = backend_score(
                graph,
                ctx.backend,
                tracer=ctx.tracer,
                recorder=ctx.recorder,
                report=ctx.recovery,
            )
        else:
            scores = self.scorer.score(graph, ctx.recorder)
        if self._needs_validation:
            scores = validate_scores(scores, scorer=self.name)
        return scores


class MatchKernel:
    """Matching phase: wraps a matching callable from the registry."""

    kind = "matcher"

    def __init__(
        self, name: str, fn: Callable[..., MatchingResult]
    ) -> None:
        self.name = name
        self.fn = fn

    def run(
        self,
        ctx: RunContext,
        graph: CommunityGraph,
        *,
        scores: np.ndarray,
        **inputs: Any,
    ) -> MatchingResult:
        if _streams_shards(ctx, graph) and self.name == "worklist":
            # The cap-respecting streamed matcher is bit-identical to
            # the worklist matcher (same matching, passes, failed-claim
            # counts and recorder profile), so substituting it keeps
            # every statistic while bounding the anonymous working set
            # to O(V + shard).  Other matchers run as configured, on the
            # memmap-backed graph.
            return match_gmm_capped(
                graph, scores, ctx.recorder, tracer=ctx.tracer
            )
        return self.fn(graph, scores, ctx.recorder, tracer=ctx.tracer)


class ContractKernel:
    """Contraction phase: wraps a contraction callable from the registry."""

    kind = "contractor"

    def __init__(self, name: str, fn: Callable[..., tuple]) -> None:
        self.name = name
        self.fn = fn

    def run(
        self,
        ctx: RunContext,
        graph: CommunityGraph,
        *,
        matching: MatchingResult,
        **inputs: Any,
    ) -> tuple[CommunityGraph, np.ndarray]:
        if _streams_shards(ctx, graph) and self.name == "bucket":
            # Spill-backed bucket-sort contraction — bit-identical to
            # ``bucket`` (same edges, weights and recorder profile) with
            # the kept/sorted edge arrays in scratch memmaps.
            return contract_sharded(
                graph, matching, ctx.recorder, tracer=ctx.tracer
            )
        return self.fn(graph, matching, ctx.recorder, tracer=ctx.tracer)


def _resolve_scorer(scorer: EdgeScorer | str | None) -> ScoreKernel:
    if scorer is None:
        scorer = create_kernel("scorer", "modularity")  # type: ignore[assignment]
    elif isinstance(scorer, str):
        scorer = create_kernel("scorer", scorer)  # type: ignore[assignment]
    return ScoreKernel(scorer)  # type: ignore[arg-type]


def _resolve_matcher(matcher: str | Callable[..., MatchingResult]) -> MatchKernel:
    if callable(matcher):
        return MatchKernel(getattr(matcher, "__name__", "custom"), matcher)
    return MatchKernel(matcher, create_kernel("matcher", matcher))  # type: ignore[arg-type]


def _resolve_contractor(contractor: str | Callable[..., tuple]) -> ContractKernel:
    if callable(contractor):
        return ContractKernel(getattr(contractor, "__name__", "custom"), contractor)
    return ContractKernel(
        contractor, create_kernel("contractor", contractor)  # type: ignore[arg-type]
    )


# ------------------------------------------------------------------ engine
class AgglomerationEngine:
    """Drives score → match → contract over a shrinking community graph.

    The engine is configured once with its three phase kernels (by
    registry name, raw callable, or scorer instance) and termination
    criteria; :meth:`run` then executes any number of runs, each against
    its own :class:`RunContext`.  Results are bit-identical across
    execution backends and identical to the historical
    ``detect_communities`` driver — the parity suite in
    ``tests/test_engine_parity.py`` enforces both.

    Passing ``matcher="auto"`` / ``contractor="auto"`` defers that
    phase's kernel choice to a per-level :class:`~repro.core.tuner.KernelTuner`:
    each level's kernel is picked from the registry's capability-filtered
    candidate pool by ``selector`` (default: the shootout-calibrated
    :class:`~repro.core.tuner.CostModelPolicy`).  Because every
    registered kernel of a kind is bit-identical, auto-selection moves
    only the execution profile, never the result; the decisions are
    ledgered on :attr:`AgglomerationResult.tuner`, the quality timeline,
    and a per-level ``tuner_select`` trace span.
    """

    def __init__(
        self,
        scorer: EdgeScorer | str | None = None,
        *,
        matcher: str | Callable[..., MatchingResult] = "worklist",
        contractor: str | Callable[..., tuple] = "bucket",
        termination: TerminationCriteria | None = None,
        selector: SelectorPolicy | None = None,
    ) -> None:
        self.score_kernel = _resolve_scorer(scorer)
        self.selector = selector
        self.auto_matcher = matcher == AUTO_KERNEL
        self.auto_contractor = contractor == AUTO_KERNEL
        self.match_kernel: MatchKernel | None = (
            None if self.auto_matcher else _resolve_matcher(matcher)
        )
        self.contract_kernel: ContractKernel | None = (
            None if self.auto_contractor else _resolve_contractor(contractor)
        )
        self.termination = (
            termination
            if termination is not None
            else TerminationCriteria.paper_experiments()
        )

    @property
    def matcher_name(self) -> str:
        """Configured matcher name (``"auto"`` when per-level tuned)."""
        return AUTO_KERNEL if self.match_kernel is None else self.match_kernel.name

    @property
    def contractor_name(self) -> str:
        """Configured contractor name (``"auto"`` when per-level tuned)."""
        return (
            AUTO_KERNEL
            if self.contract_kernel is None
            else self.contract_kernel.name
        )

    # ------------------------------------------------------------- resume
    def _load_resume_state(
        self,
        ctx: RunContext,
        graph: CommunityGraph,
    ) -> CheckpointState | None:
        """The newest valid checkpoint, validated against the input graph."""
        if ctx.checkpoints is None:
            raise ValueError("resume=True requires checkpoint_dir")
        state, n_invalid = ctx.checkpoints.load_latest()
        ctx.recovery.checkpoints_invalid += n_invalid
        if state is not None and state.n_input_vertices != graph.n_vertices:
            raise CheckpointError(
                f"checkpoint covers {state.n_input_vertices} input "
                f"vertices but the graph has {graph.n_vertices}"
            )
        return state

    # ---------------------------------------------------------------- run
    def run(
        self,
        graph: CommunityGraph,
        ctx: RunContext | None = None,
        *,
        resume: bool = False,
    ) -> AgglomerationResult:
        """Detect communities on ``graph``; see
        :func:`repro.core.agglomeration.detect_communities` for the
        parameter-by-parameter contract this engine honors."""
        if ctx is None:
            ctx = RunContext.create()
        tr = ctx.tracer
        termination = self.termination
        guard = as_guardian(ctx.guardian)
        guard.bind(ctx, graph)
        # The live-telemetry sampler reads backend/recovery state off the
        # context every tick, so a guardian backend swap (spill rung) is
        # visible immediately; the engine publishes phase transitions.
        ctx.telemetry.bind_run(ctx)

        current = graph.copy()
        dendrogram = Dendrogram(graph.n_vertices)
        levels: list[LevelStats] = []
        # Input vertices per community, for the max_community_size veto.
        member_counts = np.ones(graph.n_vertices, dtype=VERTEX_DTYPE)
        terminated_by = "local_maximum"

        # One tuner per run: its decision ledger belongs to this run
        # alone, and its kernel cache must not leak run-scoped state.
        tuner: KernelTuner | None = None
        if self.auto_matcher or self.auto_contractor:
            kinds = [
                kind
                for kind, is_auto in (
                    ("matcher", self.auto_matcher),
                    ("contractor", self.auto_contractor),
                )
                if is_auto
            ]
            tuner = KernelTuner(self.selector, kinds=kinds)

        with tr.span(
            "agglomeration",
            scorer=self.score_kernel.name,
            matcher=self.matcher_name,
            contractor=self.contractor_name,
            backend=ctx.backend.name,
            n_workers=ctx.backend.n_workers,
            seed=ctx.seed,
        ) as run_span:
            if resume:
                state = self._load_resume_state(ctx, graph)
                if state is not None:
                    current = state.graph
                    dendrogram = Dendrogram(graph.n_vertices)
                    for mapping in state.maps:
                        dendrogram.push(mapping)
                    member_counts = np.asarray(
                        state.member_counts, dtype=VERTEX_DTYPE
                    )
                    levels = [LevelStats(**d) for d in state.level_stats]
                    ctx.recovery.resumed_from_level = state.level
                    run_span.set(resumed_from_level=state.level)
                    ctx.log.info(
                        "resumed from checkpoint level %d (%d communities)",
                        state.level,
                        current.n_vertices,
                    )

            try:
                while current.n_vertices > 0:
                    if current.n_vertices <= termination.min_communities:
                        terminated_by = "min_communities"
                        break
                    if (
                        termination.max_levels is not None
                        and len(levels) >= termination.max_levels
                    ):
                        terminated_by = "max_levels"
                        break
                    stats, current, member_counts, terminated_by = (
                        self._run_level(
                            ctx,
                            current,
                            dendrogram,
                            member_counts,
                            level_idx=len(levels),
                            guard=guard,
                            tuner=tuner,
                        )
                    )
                    if stats is None:
                        break
                    levels.append(stats)
                    self._after_level(
                        ctx, current, dendrogram, member_counts, levels
                    )
                    if terminated_by is not None:
                        break
                    terminated_by = "local_maximum"
                else:
                    # Degenerate boundary: a vertexless graph has nothing
                    # to agglomerate (equivalent to hitting the community
                    # floor immediately).
                    terminated_by = "min_communities"
            except RunAbortedError as exc:
                # The guardian spent its last ladder rung.  Persist the
                # completed levels when checkpointing is configured so
                # the aborted run stays resumable, then re-raise with
                # the forensics attached.
                path = None
                if ctx.checkpoints is not None and levels:
                    path = ctx.checkpoints.save(
                        CheckpointState(
                            level=len(levels),
                            graph=current,
                            maps=list(dendrogram.maps),
                            member_counts=member_counts,
                            level_stats=[asdict(s) for s in levels],
                            scorer_name=self.score_kernel.name,
                        )
                    )
                    ctx.recovery.checkpoints_written += 1
                    tr.counter("resilience.checkpoints_written").inc()
                exc.checkpoint_path = path
                exc.report = ctx.recovery
                run_span.set(
                    terminated_by="aborted",
                    n_levels=len(levels),
                    items=graph.n_edges,
                )
                ctx.log.error(
                    "run aborted by guardian after %d levels: %s",
                    len(levels),
                    exc,
                )
                raise

            run_span.set(
                terminated_by=terminated_by,
                n_levels=len(levels),
                items=graph.n_edges,
            )
            if tuner is not None:
                run_span.set(tuner_decisions=len(tuner.decisions))
            ctx.telemetry.publish_phase("done", None)

        # Fold pool-level recovery accounting (e.g. ParallelModularityScorer)
        # into the run's report; use a fresh scorer per run to avoid carrying
        # counts across runs.
        scorer_report = getattr(self.score_kernel.scorer, "report", None)
        if isinstance(scorer_report, RecoveryReport):
            ctx.recovery.merge(scorer_report)

        return AgglomerationResult(
            partition=dendrogram.final_partition(),
            dendrogram=dendrogram,
            levels=levels,
            terminated_by=terminated_by,
            final_graph=current,
            scorer_name=self.score_kernel.name,
            recovery=ctx.recovery,
            tuner=tuner.as_dict() if tuner is not None else None,
        )

    # -------------------------------------------------------------- level
    def _run_level(
        self,
        ctx: RunContext,
        current: CommunityGraph,
        dendrogram: Dendrogram,
        member_counts: np.ndarray,
        *,
        level_idx: int,
        guard: RunGuardian | NullGuardian = NULL_GUARDIAN,
        tuner: KernelTuner | None = None,
    ) -> tuple[
        LevelStats | None, CommunityGraph, np.ndarray, str | None
    ]:
        """One score → match → contract level.

        Returns ``(stats, graph, member_counts, terminated_by)``;
        ``stats=None`` means the run hit its local maximum inside the
        level (no positive scores) and contributed no contraction.
        ``terminated_by`` is non-``None`` when a post-level criterion
        (coverage, stall) fired.  When ``tuner`` is given it selects the
        kernels for any auto-configured phase from this level's shape.
        """
        tr = ctx.tracer
        termination = self.termination
        entering_v = current.n_vertices
        entering_e = current.n_edges
        with tr.span(
            "level", level=level_idx, n_vertices=entering_v, n_edges=entering_e
        ) as level_span:
            prepare = getattr(ctx.backend, "prepare_level", None)
            if prepare is not None and getattr(ctx.backend, "sharded", False):
                # Out-of-core: spill the level's graph and continue on
                # its value-identical memmap-backed twin (results are
                # bit-identical; see docs/OUT_OF_CORE.md).
                current = prepare(current, level_idx, tracer=tr)

            match_kernel = self.match_kernel
            contract_kernel = self.contract_kernel
            tuner_level: dict | None = None
            if tuner is not None:
                # Per-level selection: measure the entering community
                # graph's shape and let the policy pick each
                # auto-configured phase.  Selection runs *after* the
                # out-of-core prepare above, so a spilled level (via the
                # guardian's rung or an explicitly sharded backend)
                # constrains the pool to sharded-capable kernels.
                constrained = _streams_shards(ctx, current)
                with tr.span("tuner_select", level=level_idx) as sp:
                    shape = level_shape(current)
                    picked: dict[str, str] = {}
                    if match_kernel is None:
                        d = tuner.decide(
                            "matcher", shape, level_idx, sharded=constrained
                        )
                        match_kernel = MatchKernel(d.chosen, tuner.kernel_for(d))
                        picked["matcher"] = d.chosen
                    if contract_kernel is None:
                        d = tuner.decide(
                            "contractor", shape, level_idx, sharded=constrained
                        )
                        contract_kernel = ContractKernel(
                            d.chosen, tuner.kernel_for(d)
                        )
                        picked["contractor"] = d.chosen
                    sp.set(
                        policy=tuner.policy.name,
                        constrained_sharded=constrained,
                        density=shape.density,
                        degree_cv=shape.degree_cv,
                        **picked,
                    )
                tuner_level = dict(picked)
                tuner_level["constrained_sharded"] = constrained
            elif not isinstance(tr, NullTracer):
                # Fixed-kernel runs still stamp the shape features on
                # the level span when traced — this is what the shootout
                # harness regresses phase seconds against to fit the
                # tuner's cost table.
                shape = level_shape(current)
                level_span.set(
                    density=shape.density, degree_cv=shape.degree_cv
                )
            assert match_kernel is not None and contract_kernel is not None

            ctx.telemetry.publish_phase("score", level_idx)
            with tr.span("score", level=level_idx) as sp:
                with guard.phase("score", level_idx), ctx.memprof.phase(
                    "score", level_idx
                ):
                    scores = self.score_kernel.run(ctx, current)
                if termination.max_community_size is not None:
                    e = current.edges
                    too_big = (
                        member_counts[e.ei] + member_counts[e.ej]
                        > termination.max_community_size
                    )
                    scores = np.where(too_big, -np.inf, scores)
                n_positive = int(np.count_nonzero(scores > 0))
                sp.set(
                    items=entering_e,
                    scorer=self.score_kernel.name,
                    n_positive=n_positive,
                )
            if n_positive == 0:
                return None, current, member_counts, "local_maximum"

            ctx.telemetry.publish_phase("match", level_idx)
            with tr.span("match", level=level_idx) as sp:
                with guard.phase("match", level_idx), ctx.memprof.phase(
                    "match", level_idx
                ):
                    matching = match_kernel.run(
                        ctx, current, scores=scores
                    )
                guard.observe_matching(level_idx, matching, entering_v)
                max_pairs = current.n_vertices - termination.min_communities
                limited = matching.n_pairs > max_pairs
                if limited:
                    matching = _limit_matching(
                        matching, scores, max_pairs, current.edges
                    )
                sp.set(
                    items=n_positive,
                    n_pairs=matching.n_pairs,
                    passes=matching.passes,
                    failed_claims=matching.failed_claims,
                )

            before = current
            ctx.telemetry.publish_phase("contract", level_idx)
            with tr.span("contract", level=level_idx) as sp:
                with guard.phase("contract", level_idx), ctx.memprof.phase(
                    "contract", level_idx
                ):
                    current, mapping = contract_kernel.run(
                        ctx, current, matching=matching
                    )
                sp.set(
                    items=entering_e,
                    n_vertices_after=current.n_vertices,
                    n_edges_after=current.n_edges,
                )
            guard.audit_contraction(
                level_idx,
                graph_before=before,
                scores=scores,
                matching=matching,
                mapping=mapping,
                graph_after=current,
                limited=limited,
            )
            dendrogram.push(mapping)
            member_counts = np.bincount(
                mapping, weights=member_counts, minlength=current.n_vertices
            ).astype(VERTEX_DTYPE)
            if ctx.recorder is not None:
                ctx.recorder.next_level()

            cov = current.coverage()
            stats = LevelStats(
                level=level_idx,
                n_vertices=entering_v,
                n_edges=entering_e,
                n_positive_scores=n_positive,
                n_pairs=matching.n_pairs,
                matching_passes=matching.passes,
                coverage_after=cov,
                modularity_after=community_graph_modularity(current),
            )
            guard.audit_quality(
                level_idx,
                partition=dendrogram.final_partition,
                tracked_modularity=stats.modularity_after,
                tracked_coverage=cov,
            )
            level_span.set(
                n_pairs=matching.n_pairs,
                coverage_after=cov,
            )
            # Observed inside the level span so the metric's provenance
            # nests with the spans it describes in exported traces.
            tr.histogram("agglomeration.matching_passes").observe(
                matching.passes
            )

        ctx.timeline.record_level(
            level=stats.level,
            n_vertices_entering=entering_v,
            n_pairs=matching.n_pairs,
            matching_passes=matching.passes,
            n_communities=current.n_vertices,
            modularity=stats.modularity_after,
            coverage=cov,
            member_counts=member_counts,
            tuner=tuner_level,
        )

        terminated_by: str | None = None
        if termination.coverage is not None and cov >= termination.coverage:
            terminated_by = "coverage"
        elif (
            termination.min_merge_fraction is not None
            and matching.n_pairs < termination.min_merge_fraction * entering_v
        ):
            terminated_by = "stalled"
        return stats, current, member_counts, terminated_by

    # ------------------------------------------------------- housekeeping
    def _after_level(
        self,
        ctx: RunContext,
        current: CommunityGraph,
        dendrogram: Dendrogram,
        member_counts: np.ndarray,
        levels: list[LevelStats],
    ) -> None:
        """Checkpointing, logging and progress after a completed level."""
        stats = levels[-1]
        tr = ctx.tracer
        ctx.telemetry.publish_phase("idle", stats.level)
        ctx.telemetry.publish_progress(len(levels), current.n_vertices)
        if (
            ctx.checkpoints is not None
            and len(levels) % ctx.checkpoint_every == 0
        ):
            with tr.span("checkpoint_write", level=stats.level) as sp:
                path = ctx.checkpoints.save(
                    CheckpointState(
                        level=len(levels),
                        graph=current,
                        maps=list(dendrogram.maps),
                        member_counts=member_counts,
                        level_stats=[asdict(s) for s in levels],
                        scorer_name=self.score_kernel.name,
                    )
                )
                sp.set(
                    path=str(path),
                    n_communities=current.n_vertices,
                )
            ctx.recovery.checkpoints_written += 1
            tr.counter("resilience.checkpoints_written").inc()
        ctx.log.info(
            "level %d: %d -> %d communities, coverage %.3f",
            stats.level,
            stats.n_vertices,
            current.n_vertices,
            stats.coverage_after,
        )
        if ctx.progress is not None:
            ctx.progress(stats)
