"""Edge scoring (§III step 1, §IV-B).

Each community-graph edge gets an independent score: the change in the
optimization metric if its two endpoint communities merged.  Per the paper,
a score needs only the edge's weight, the two endpoints' community volumes
(strengths) and the graph total weight — one O(|V|) strength pass plus one
flat O(|E|) loop, both vectorized here.

Scorers implement the :class:`EdgeScorer` protocol, making the algorithm
"agnostic towards edge scoring methods" exactly as the paper claims; a
problem-specific scorer drops in without touching matching or contraction.

Exactness invariants (exploited by the tests):

* ``ModularityScorer``: contracting a matching increases graph modularity
  by exactly the sum of the matched edges' scores.
* ``ConductanceScorer``: contracting a matching decreases the sum of
  community conductances by exactly the matched score sum (scores are the
  *negated* conductance change, so maximizing still applies).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.errors import ScoreValidationError
from repro.graph.graph import CommunityGraph
from repro.platform.kernels import KernelRecord, TraceRecorder
from repro.types import SCORE_DTYPE

__all__ = [
    "EdgeScorer",
    "ModularityScorer",
    "ConductanceScorer",
    "WeightScorer",
    "validate_scores",
]


def validate_scores(
    scores: np.ndarray, *, scorer: str = "scorer"
) -> np.ndarray:
    """Reject NaN/inf scorer output; returns ``scores`` unchanged when clean.

    A NaN score breaks the matching's total order silently (every
    comparison is false, so NaN edges vanish from candidate sets and can
    starve the worklist), so non-finite output is a hard
    :class:`~repro.errors.ScoreValidationError` at the source.  The
    ``-inf`` veto the driver applies *after* scoring is exempt by
    construction — it never passes through this check.
    """
    finite = np.isfinite(scores)
    if not finite.all():
        bad = int(len(scores) - np.count_nonzero(finite))
        first = int(np.argmin(finite))
        raise ScoreValidationError(
            f"{scorer}: {bad} non-finite score(s) out of {len(scores)} "
            f"(first at edge {first}: {scores[first]!r})"
        )
    return scores


@runtime_checkable
class EdgeScorer(Protocol):
    """Protocol for merge-gain edge scorers.

    Implementations that validate their own output (all built-ins call
    :func:`validate_scores` before returning) advertise it with a
    ``validates_output = True`` class attribute so the engine skips its
    driver-side re-validation; external implementations without the
    attribute are validated once by the engine's score phase.
    Implementations may additionally offer ``score_with_backend`` (see
    :meth:`ModularityScorer.score_with_backend`) to run chunked on a
    :class:`~repro.parallel.backends.ExecutionBackend`, and
    ``score_range(graph, lo, hi, *, vol, w_total)`` to score one edge
    window for the out-of-core path (:mod:`repro.core.outofcore`) —
    the per-edge formulas are elementwise, so a windowed evaluation is
    bit-identical to the whole-array one.
    """

    name: str

    def score(
        self, graph: CommunityGraph, recorder: TraceRecorder | None = None
    ) -> np.ndarray:
        """Score every edge of ``graph``; positive means the merge improves
        the metric."""
        ...  # pragma: no cover - protocol stub


def _record_scoring(
    recorder: TraceRecorder | None, graph: CommunityGraph, name: str
) -> None:
    if recorder is None:
        return
    n, m = graph.n_vertices, graph.n_edges
    # One strength reduction over the edges (2|E| reads, |V| atomic adds)
    # plus the flat per-edge score loop (4 words in, 1 out per edge).
    recorder.record(
        KernelRecord(
            name="score",
            items=m,
            mem_words=2 * m + n + 5 * m,
            atomics=2 * m,
            contention=0.0,
        )
    )


class ModularityScorer:
    """ΔQ of merging an edge's endpoints: ``w/W - vol_i * vol_j / (2 W²)``."""

    name = "modularity"
    validates_output = True

    def score(
        self, graph: CommunityGraph, recorder: TraceRecorder | None = None
    ) -> np.ndarray:
        w_total = graph.total_weight()
        e = graph.edges
        if w_total == 0:
            return np.zeros(e.n_edges, dtype=SCORE_DTYPE)
        vol = graph.strengths()
        scores = e.w / w_total - vol[e.ei] * vol[e.ej] / (2.0 * w_total**2)
        _record_scoring(recorder, graph, self.name)
        return validate_scores(
            scores.astype(SCORE_DTYPE, copy=False), scorer=self.name
        )

    def score_range(
        self,
        graph: CommunityGraph,
        lo: int,
        hi: int,
        *,
        vol: np.ndarray,
        w_total: float,
    ) -> np.ndarray:
        """Score edges ``[lo, hi)`` — the same elementwise formula as
        :meth:`score` over a slice, so the out-of-core path that stitches
        these windows together reproduces :meth:`score` bit for bit.
        ``vol``/``w_total`` are the precomputed whole-graph aggregates
        (``w_total`` must be nonzero; the caller owns that special case).
        Output is unvalidated; the streaming caller validates per window.
        """
        e = graph.edges
        return (
            e.w[lo:hi] / w_total
            - vol[e.ei[lo:hi]] * vol[e.ej[lo:hi]] / (2.0 * w_total**2)
        ).astype(SCORE_DTYPE, copy=False)

    def score_with_backend(
        self,
        graph: CommunityGraph,
        backend,
        *,
        tracer=None,
        recorder: TraceRecorder | None = None,
        report=None,
    ) -> np.ndarray:
        """Score chunked on an execution backend — bit-identical to
        :meth:`score` (same arithmetic over disjoint chunk slices).

        The engine's score phase calls this instead of :meth:`score`
        whenever the run's backend provides parallelism
        (``backend.n_workers > 1``); recovery actions taken by the
        backend accumulate into ``report``.
        """
        from repro.parallel.pool import parallel_edge_scores

        scores = parallel_edge_scores(
            graph,
            backend=backend,
            tracer=tracer,
            report=report,
        )
        _record_scoring(recorder, graph, self.name)
        return scores


class ConductanceScorer:
    """Negated change in summed conductance when merging an edge's endpoints.

    For communities ``i, j`` with volumes ``vol`` and cuts
    ``cut = vol - 2 * self_weight``:

    ``score = φ(i) + φ(j) - φ(i ∪ j)`` with
    ``φ(c) = cut_c / min(vol_c, 2W - vol_c)`` and
    ``cut_{i∪j} = cut_i + cut_j - 2 w_ij``.

    Minimizing conductance becomes maximizing this score, as §III notes.
    """

    name = "conductance"
    validates_output = True

    def score(
        self, graph: CommunityGraph, recorder: TraceRecorder | None = None
    ) -> np.ndarray:
        w_total = graph.total_weight()
        e = graph.edges
        if w_total == 0:
            return np.zeros(e.n_edges, dtype=SCORE_DTYPE)
        two_w = 2.0 * w_total
        vol = graph.strengths()
        cut = vol - 2.0 * graph.self_weights

        def phi(cut_c: np.ndarray, vol_c: np.ndarray) -> np.ndarray:
            denom = np.minimum(vol_c, two_w - vol_c)
            out = np.zeros_like(cut_c, dtype=SCORE_DTYPE)
            np.divide(cut_c, denom, out=out, where=denom > 0)
            return out

        phi_i = phi(cut[e.ei], vol[e.ei])
        phi_j = phi(cut[e.ej], vol[e.ej])
        cut_merged = cut[e.ei] + cut[e.ej] - 2.0 * e.w
        vol_merged = vol[e.ei] + vol[e.ej]
        phi_merged = phi(cut_merged, vol_merged)
        _record_scoring(recorder, graph, self.name)
        return validate_scores(
            (phi_i + phi_j - phi_merged).astype(SCORE_DTYPE, copy=False),
            scorer=self.name,
        )

    def score_range(
        self,
        graph: CommunityGraph,
        lo: int,
        hi: int,
        *,
        vol: np.ndarray,
        w_total: float,
    ) -> np.ndarray:
        """Windowed :meth:`score` (see :meth:`ModularityScorer.score_range`)."""
        e = graph.edges
        two_w = 2.0 * w_total
        cut = vol - 2.0 * graph.self_weights

        def phi(cut_c: np.ndarray, vol_c: np.ndarray) -> np.ndarray:
            denom = np.minimum(vol_c, two_w - vol_c)
            out = np.zeros_like(cut_c, dtype=SCORE_DTYPE)
            np.divide(cut_c, denom, out=out, where=denom > 0)
            return out

        ei = e.ei[lo:hi]
        ej = e.ej[lo:hi]
        phi_i = phi(cut[ei], vol[ei])
        phi_j = phi(cut[ej], vol[ej])
        cut_merged = cut[ei] + cut[ej] - 2.0 * e.w[lo:hi]
        vol_merged = vol[ei] + vol[ej]
        phi_merged = phi(cut_merged, vol_merged)
        return (phi_i + phi_j - phi_merged).astype(SCORE_DTYPE, copy=False)


class WeightScorer:
    """Raw edge weight: turns the matcher into plain heavy-edge matching.

    Not a community metric — used for multilevel-partitioning-style
    coarsening and as a reference workload in the matching tests.
    """

    name = "weight"
    validates_output = True

    def score(
        self, graph: CommunityGraph, recorder: TraceRecorder | None = None
    ) -> np.ndarray:
        _record_scoring(recorder, graph, self.name)
        return validate_scores(
            graph.edges.w.astype(SCORE_DTYPE), scorer=self.name
        )

    def score_range(
        self,
        graph: CommunityGraph,
        lo: int,
        hi: int,
        *,
        vol: np.ndarray,
        w_total: float,
    ) -> np.ndarray:
        """Windowed :meth:`score` (see :meth:`ModularityScorer.score_range`)."""
        return graph.edges.w[lo:hi].astype(SCORE_DTYPE)
