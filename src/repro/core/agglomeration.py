"""The parallel agglomerative driver (§III).

Repeats score → match → contract on the community graph until a local
maximum or an external termination criterion, maintaining the dendrogram
of merges and per-level statistics.  Every vertex starts as its own
community; each level contracts an approximately-maximum-weight maximal
matching of positively-scored community pairs.

The kernels are selectable so the benchmark ablations can run the paper's
legacy variants: ``matcher`` in ``{"worklist", "sweep"}`` (§IV-B new/old)
and ``contractor`` in ``{"bucket", "chains"}`` (§IV-C new/old).  Legacy
variants compute identical results but record the execution profile that
distinguishes the platforms.
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass, field
from typing import Callable, Literal

import numpy as np

from repro.core.contraction import contract, contract_hash_chains
from repro.core.dendrogram import Dendrogram
from repro.core.matching import (
    MatchingResult,
    match_full_sweep,
    match_locally_dominant,
)
from repro.core.scoring import EdgeScorer, ModularityScorer, validate_scores
from repro.core.termination import TerminationCriteria
from repro.errors import CheckpointError
from repro.graph.graph import CommunityGraph
from repro.metrics.modularity import community_graph_modularity
from repro.metrics.partition import Partition
from repro.obs.timeline import NullTimeline, QualityTimeline, as_timeline
from repro.obs.trace import NullTracer, Tracer, as_tracer
from repro.platform.kernels import TraceRecorder
from repro.resilience.checkpoint import CheckpointManager, CheckpointState
from repro.resilience.report import RecoveryReport
from repro.types import NO_VERTEX, VERTEX_DTYPE
from repro.util.log import get_logger

__all__ = ["LevelStats", "AgglomerationResult", "detect_communities"]

_log = get_logger("core.agglomeration")

_MATCHERS: dict[str, Callable[..., MatchingResult]] = {
    "worklist": match_locally_dominant,
    "sweep": match_full_sweep,
}
_CONTRACTORS = {
    "bucket": contract,
    "chains": contract_hash_chains,
}


@dataclass(frozen=True)
class LevelStats:
    """Statistics of one contraction level.

    ``n_vertices``/``n_edges`` describe the community graph *entering* the
    level; coverage and modularity are measured *after* its contraction.
    """

    level: int
    n_vertices: int
    n_edges: int
    n_positive_scores: int
    n_pairs: int
    matching_passes: int
    coverage_after: float
    modularity_after: float


@dataclass
class AgglomerationResult:
    """Full outcome of a community-detection run."""

    partition: Partition
    dendrogram: Dendrogram
    levels: list[LevelStats] = field(default_factory=list)
    terminated_by: str = ""
    final_graph: CommunityGraph | None = None
    scorer_name: str = ""
    recovery: RecoveryReport = field(default_factory=RecoveryReport)

    @property
    def n_communities(self) -> int:
        return self.partition.n_communities

    @property
    def n_levels(self) -> int:
        return len(self.levels)

    def total_edge_work(self) -> int:
        """Σ per-level community-graph edges — the paper's O(|E|·K) bound."""
        return sum(s.n_edges for s in self.levels)


def _limit_matching(
    matching: MatchingResult,
    scores: np.ndarray,
    max_pairs: int,
) -> MatchingResult:
    """Keep only the ``max_pairs`` highest-scored matched pairs.

    Used when a full contraction would drop below ``min_communities``.
    """
    if matching.n_pairs <= max_pairs:
        return matching
    me = matching.matched_edges
    order = np.argsort(scores[me], kind="stable")[::-1][:max_pairs]
    kept = np.sort(me[order])
    partner = np.full_like(matching.partner, NO_VERTEX)
    # Rebuild the partner array from the surviving edges only.
    return MatchingResult(
        partner=partner,  # filled below by caller-visible mutation
        matched_edges=kept,
        passes=matching.passes,
        failed_claims=matching.failed_claims,
    )


def detect_communities(
    graph: CommunityGraph,
    scorer: EdgeScorer | None = None,
    *,
    termination: TerminationCriteria | None = None,
    matcher: Literal["worklist", "sweep"] = "worklist",
    contractor: Literal["bucket", "chains"] = "bucket",
    recorder: TraceRecorder | None = None,
    tracer: Tracer | NullTracer | None = None,
    timeline: QualityTimeline | NullTimeline | None = None,
    progress: Callable[[LevelStats], None] | None = None,
    checkpoint_dir: str | os.PathLike | None = None,
    resume: bool = False,
    checkpoint_every: int = 1,
) -> AgglomerationResult:
    """Detect communities by parallel agglomeration.

    Parameters
    ----------
    graph:
        Input graph (left unmodified).
    scorer:
        Merge-gain edge scorer; defaults to modularity.
    termination:
        External stopping constraints; defaults to the paper's
        coverage ≥ 0.5 experiment configuration.
    matcher, contractor:
        Kernel variants (legacy variants for the ablation benchmarks).
    recorder:
        Optional :class:`TraceRecorder` collecting the execution trace for
        platform simulation.
    tracer:
        Optional :class:`repro.obs.Tracer` recording real wall-clock
        spans (one ``"level"`` span per level with ``"score"`` /
        ``"match"`` / ``"contract"`` children, plus a
        ``"checkpoint_write"`` span per persisted level).  ``None`` uses
        the zero-overhead :data:`~repro.obs.NULL_TRACER`.
    timeline:
        Optional :class:`repro.obs.QualityTimeline` recording one
        algorithm-quality sample per completed level (modularity,
        coverage, community count, merge fraction, matching passes,
        community-size histogram).  ``None`` uses the no-op
        :data:`~repro.obs.NULL_TIMELINE`.  On ``resume`` the timeline
        covers only the levels executed in this process.
    progress:
        Optional callback invoked with each level's :class:`LevelStats`
        as it completes (long runs, CLI verbosity).
    checkpoint_dir:
        When set, atomically persist the loop state after every
        ``checkpoint_every``-th completed level (see
        :mod:`repro.resilience.checkpoint`).
    resume:
        Restart from the newest valid checkpoint in ``checkpoint_dir``
        (requires ``checkpoint_dir``); truncated or corrupt checkpoint
        files are skipped and counted, and an empty directory starts a
        fresh run.
    checkpoint_every:
        Persist every N-th level (default: every level).

    Returns
    -------
    AgglomerationResult
        Final partition of the input graph, dendrogram, per-level stats,
        the terminal community graph, the reason the loop stopped, and
        the :class:`~repro.resilience.RecoveryReport` of recovery actions
        taken along the way.
    """
    if scorer is None:
        scorer = ModularityScorer()
    if termination is None:
        termination = TerminationCriteria.paper_experiments()
    if checkpoint_every < 1:
        raise ValueError("checkpoint_every must be at least 1")
    try:
        match_fn = _MATCHERS[matcher]
    except KeyError:
        raise ValueError(f"unknown matcher {matcher!r}") from None
    try:
        contract_fn = _CONTRACTORS[contractor]
    except KeyError:
        raise ValueError(f"unknown contractor {contractor!r}") from None

    tr = as_tracer(tracer)
    tl = as_timeline(timeline)
    recovery = RecoveryReport()
    manager = (
        CheckpointManager(checkpoint_dir) if checkpoint_dir is not None else None
    )

    current = graph.copy()
    dendrogram = Dendrogram(graph.n_vertices)
    levels: list[LevelStats] = []
    # Input vertices per community, for the max_community_size veto.
    member_counts = np.ones(graph.n_vertices, dtype=VERTEX_DTYPE)
    terminated_by = "local_maximum"

    if resume:
        if manager is None:
            raise ValueError("resume=True requires checkpoint_dir")
        state, n_invalid = manager.load_latest()
        recovery.checkpoints_invalid += n_invalid
        if state is not None:
            if state.n_input_vertices != graph.n_vertices:
                raise CheckpointError(
                    f"checkpoint covers {state.n_input_vertices} input "
                    f"vertices but the graph has {graph.n_vertices}"
                )
            current = state.graph
            dendrogram = Dendrogram(graph.n_vertices)
            for mapping in state.maps:
                dendrogram.push(mapping)
            member_counts = np.asarray(
                state.member_counts, dtype=VERTEX_DTYPE
            )
            levels = [LevelStats(**d) for d in state.level_stats]
            recovery.resumed_from_level = state.level
            _log.info(
                "resumed from checkpoint level %d (%d communities)",
                state.level,
                current.n_vertices,
            )

    while True:
        if current.n_vertices <= termination.min_communities:
            terminated_by = "min_communities"
            break
        if (
            termination.max_levels is not None
            and len(levels) >= termination.max_levels
        ):
            terminated_by = "max_levels"
            break

        level_idx = len(levels)
        entering_v = current.n_vertices
        entering_e = current.n_edges
        with tr.span(
            "level", level=level_idx, n_vertices=entering_v, n_edges=entering_e
        ) as level_span:
            with tr.span("score", level=level_idx) as sp:
                # Built-in scorers validate their own output; this covers
                # protocol implementations supplied by callers too.
                scores = validate_scores(
                    scorer.score(current, recorder), scorer=scorer.name
                )
                if termination.max_community_size is not None:
                    e = current.edges
                    too_big = (
                        member_counts[e.ei] + member_counts[e.ej]
                        > termination.max_community_size
                    )
                    scores = np.where(too_big, -np.inf, scores)
                n_positive = int(np.count_nonzero(scores > 0))
                sp.set(
                    items=entering_e,
                    scorer=scorer.name,
                    n_positive=n_positive,
                )
            if n_positive == 0:
                terminated_by = "local_maximum"
                break

            with tr.span("match", level=level_idx) as sp:
                matching = match_fn(current, scores, recorder, tracer=tr)
                max_pairs = current.n_vertices - termination.min_communities
                if matching.n_pairs > max_pairs:
                    limited = _limit_matching(matching, scores, max_pairs)
                    # Rebuild partner from the kept edges.
                    partner = limited.partner
                    kept = limited.matched_edges
                    partner[current.edges.ei[kept]] = current.edges.ej[kept]
                    partner[current.edges.ej[kept]] = current.edges.ei[kept]
                    matching = limited
                sp.set(
                    items=n_positive,
                    n_pairs=matching.n_pairs,
                    passes=matching.passes,
                    failed_claims=matching.failed_claims,
                )

            with tr.span("contract", level=level_idx) as sp:
                current, mapping = contract_fn(
                    current, matching, recorder, tracer=tr
                )
                sp.set(
                    items=entering_e,
                    n_vertices_after=current.n_vertices,
                    n_edges_after=current.n_edges,
                )
            dendrogram.push(mapping)
            member_counts = np.bincount(
                mapping, weights=member_counts, minlength=current.n_vertices
            ).astype(VERTEX_DTYPE)
            if recorder is not None:
                recorder.next_level()

            cov = current.coverage()
            stats = LevelStats(
                level=level_idx,
                n_vertices=entering_v,
                n_edges=entering_e,
                n_positive_scores=n_positive,
                n_pairs=matching.n_pairs,
                matching_passes=matching.passes,
                coverage_after=cov,
                modularity_after=community_graph_modularity(current),
            )
            level_span.set(
                n_pairs=matching.n_pairs,
                coverage_after=cov,
            )
        tr.histogram("agglomeration.matching_passes").observe(matching.passes)
        tl.record_level(
            level=stats.level,
            n_vertices_entering=entering_v,
            n_pairs=matching.n_pairs,
            matching_passes=matching.passes,
            n_communities=current.n_vertices,
            modularity=stats.modularity_after,
            coverage=cov,
            member_counts=member_counts,
        )
        levels.append(stats)
        if manager is not None and len(levels) % checkpoint_every == 0:
            with tr.span("checkpoint_write", level=level_idx) as sp:
                path = manager.save(
                    CheckpointState(
                        level=len(levels),
                        graph=current,
                        maps=list(dendrogram.maps),
                        member_counts=member_counts,
                        level_stats=[asdict(s) for s in levels],
                        scorer_name=scorer.name,
                    )
                )
                sp.set(
                    path=str(path),
                    n_communities=current.n_vertices,
                )
            recovery.checkpoints_written += 1
            tr.counter("resilience.checkpoints_written").inc()
        _log.info(
            "level %d: %d -> %d communities, coverage %.3f",
            stats.level,
            entering_v,
            current.n_vertices,
            cov,
        )
        if progress is not None:
            progress(stats)

        if termination.coverage is not None and cov >= termination.coverage:
            terminated_by = "coverage"
            break
        if (
            termination.min_merge_fraction is not None
            and matching.n_pairs < termination.min_merge_fraction * entering_v
        ):
            terminated_by = "stalled"
            break

    # Fold pool-level recovery accounting (e.g. ParallelModularityScorer)
    # into the run's report; use a fresh scorer per run to avoid carrying
    # counts across runs.
    scorer_report = getattr(scorer, "report", None)
    if isinstance(scorer_report, RecoveryReport):
        recovery.merge(scorer_report)

    return AgglomerationResult(
        partition=dendrogram.final_partition(),
        dendrogram=dendrogram,
        levels=levels,
        terminated_by=terminated_by,
        final_graph=current,
        scorer_name=scorer.name,
        recovery=recovery,
    )
