"""The parallel agglomerative driver (§III) — compatibility surface.

Repeats score → match → contract on the community graph until a local
maximum or an external termination criterion, maintaining the dendrogram
of merges and per-level statistics.  Every vertex starts as its own
community; each level contracts an approximately-maximum-weight maximal
matching of positively-scored community pairs.

The loop itself lives in :mod:`repro.core.engine` — a
:class:`~repro.core.engine.RunContext` carries the cross-cutting
services (tracer, timeline, recovery, checkpoints, backend), phase
kernels resolve by name through :mod:`repro.core.registry`, and
:class:`~repro.core.engine.AgglomerationEngine` drives them.  This
module keeps the historical one-call entry point:
:func:`detect_communities` builds a context, resolves the kernels, and
delegates; results are bit-identical to the pre-engine driver (enforced
by ``tests/test_engine_parity.py``).

The kernels are selectable so the benchmark ablations can run the paper's
legacy variants: ``matcher`` in ``{"worklist", "sweep"}`` (§IV-B new/old)
and ``contractor`` in ``{"bucket", "chains"}`` (§IV-C new/old).  Legacy
variants compute identical results but record the execution profile that
distinguishes the platforms.  Passing ``"auto"`` for either defers the
choice to the per-level tuner (:mod:`repro.core.tuner`), which picks
from the full registered candidate pool each level.
"""

from __future__ import annotations

import os
from typing import Callable

from repro.core.engine import (
    AgglomerationEngine,
    AgglomerationResult,
    LevelStats,
    RunContext,
)
from repro.core.scoring import EdgeScorer
from repro.core.termination import TerminationCriteria
from repro.core.tuner import SelectorPolicy
from repro.graph.graph import CommunityGraph
from repro.obs.memprof import NullMemoryProfiler, PhaseMemoryProfiler
from repro.obs.telemetry import NullTelemetry, TelemetrySampler
from repro.obs.timeline import NullTimeline, QualityTimeline
from repro.obs.trace import NullTracer, Tracer
from repro.parallel.backends import ExecutionBackend
from repro.platform.kernels import TraceRecorder
from repro.resilience.guardian import NullGuardian, RunGuardian
from repro.util.log import get_logger

__all__ = ["LevelStats", "AgglomerationResult", "detect_communities"]

_log = get_logger("core.agglomeration")


def detect_communities(
    graph: CommunityGraph,
    scorer: EdgeScorer | str | None = None,
    *,
    termination: TerminationCriteria | None = None,
    matcher: str = "worklist",
    contractor: str = "bucket",
    selector: SelectorPolicy | None = None,
    recorder: TraceRecorder | None = None,
    tracer: Tracer | NullTracer | None = None,
    timeline: QualityTimeline | NullTimeline | None = None,
    progress: Callable[[LevelStats], None] | None = None,
    checkpoint_dir: str | os.PathLike | None = None,
    resume: bool = False,
    checkpoint_every: int = 1,
    backend: ExecutionBackend | str | None = None,
    guardian: RunGuardian | NullGuardian | None = None,
    telemetry: "TelemetrySampler | NullTelemetry | None" = None,
    memprof: "PhaseMemoryProfiler | NullMemoryProfiler | None" = None,
) -> AgglomerationResult:
    """Detect communities by parallel agglomeration.

    Thin compatibility wrapper over
    :class:`~repro.core.engine.AgglomerationEngine`: builds the
    :class:`~repro.core.engine.RunContext` from the keyword services,
    resolves the three phase kernels through the registry, and runs the
    engine once.

    Parameters
    ----------
    graph:
        Input graph (left unmodified).
    scorer:
        Merge-gain edge scorer — an
        :class:`~repro.core.scoring.EdgeScorer` instance or a registered
        scorer name (see :mod:`repro.core.registry`); defaults to
        modularity.
    termination:
        External stopping constraints; defaults to the paper's
        coverage ≥ 0.5 experiment configuration.
    matcher, contractor:
        Kernel variants by registry name (legacy variants for the
        ablation benchmarks), raw kernel callables, or ``"auto"`` to
        pick per level via the tuner (:mod:`repro.core.tuner`).
    selector:
        Selection policy for ``"auto"`` phases — any
        :class:`~repro.core.tuner.SelectorPolicy`; ``None`` uses the
        shootout-calibrated :class:`~repro.core.tuner.CostModelPolicy`.
        Ignored when neither kernel is ``"auto"``.
    recorder:
        Optional :class:`TraceRecorder` collecting the execution trace for
        platform simulation.
    tracer:
        Optional :class:`repro.obs.Tracer` recording real wall-clock
        spans (an ``"agglomeration"`` run-level span wrapping one
        ``"level"`` span per level with ``"score"`` / ``"match"`` /
        ``"contract"`` children, plus a ``"checkpoint_write"`` span per
        persisted level).  ``None`` uses the zero-overhead
        :data:`~repro.obs.NULL_TRACER`.
    timeline:
        Optional :class:`repro.obs.QualityTimeline` recording one
        algorithm-quality sample per completed level (modularity,
        coverage, community count, merge fraction, matching passes,
        community-size histogram).  ``None`` uses the no-op
        :data:`~repro.obs.NULL_TIMELINE`.  On ``resume`` the timeline
        covers only the levels executed in this process.
    progress:
        Optional callback invoked with each level's :class:`LevelStats`
        as it completes (long runs, CLI verbosity).
    checkpoint_dir:
        When set, atomically persist the loop state after every
        ``checkpoint_every``-th completed level (see
        :mod:`repro.resilience.checkpoint`).
    resume:
        Restart from the newest valid checkpoint in ``checkpoint_dir``
        (requires ``checkpoint_dir``); truncated or corrupt checkpoint
        files are skipped and counted, and an empty directory starts a
        fresh run.
    checkpoint_every:
        Persist every N-th level (default: every level).
    backend:
        Execution backend phases may request chunked parallel execution
        from — an :class:`~repro.parallel.backends.ExecutionBackend`
        instance or a registered name (``"serial"``, ``"process-pool"``).
        ``None`` runs serial.  Backend choice never changes results,
        only the execution profile.
    guardian:
        Optional :class:`~repro.resilience.RunGuardian` supervising the
        run — per-phase soft deadlines, matching-stall detection, a
        memory-budget guard, post-contraction invariant audits, and the
        adaptive degradation ladder (see docs/RESILIENCE.md).  ``None``
        runs unguarded at zero overhead.
    telemetry:
        Optional :class:`~repro.obs.telemetry.TelemetrySampler` the
        engine publishes phase/level transitions to; the caller owns
        its start/stop lifecycle.  ``None`` records nothing.
    memprof:
        Optional :class:`~repro.obs.memprof.PhaseMemoryProfiler`
        attributing allocation deltas to phases; the caller owns
        start/stop.  ``None`` profiles nothing.

    Returns
    -------
    AgglomerationResult
        Final partition of the input graph, dendrogram, per-level stats,
        the terminal community graph, the reason the loop stopped, and
        the :class:`~repro.resilience.RecoveryReport` of recovery actions
        taken along the way.
    """
    engine = AgglomerationEngine(
        scorer,
        matcher=matcher,
        contractor=contractor,
        termination=termination,
        selector=selector,
    )
    ctx = RunContext.create(
        tracer=tracer,
        timeline=timeline,
        backend=backend,
        recorder=recorder,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=checkpoint_every,
        progress=progress,
        guardian=guardian,
        telemetry=telemetry,
        memprof=memprof,
    )
    ctx.log = _log  # legacy logger name for per-level progress lines
    return engine.run(graph, ctx, resume=resume)
