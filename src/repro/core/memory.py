"""Memory accounting per the paper's space formulas.

§IV-A: the graph needs ``3|V| + 3|E|`` 64-bit words (edge triples,
bucket offsets, self weights) "plus a few additional scalars".
§IV-B: scoring and matching need ``|E| + 4|V|`` words (scores, best-match
slots, worklist, partner array) "plus an additional |V| locks on OpenMP
platforms".
§IV-C: the bucket-sort contraction needs ``|V| + 1 + 2|E|`` scratch words
(more than the legacy hash-chain method's ``|E| + |V|``).

These closed forms drive capacity planning (e.g. "uk-2007-05 needs 32-bit
labels to fit the Intel box", §V-C) and are unit-tested against the
actual array allocations of the implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MemoryEstimate", "algorithm_memory_words"]


@dataclass(frozen=True)
class MemoryEstimate:
    """64-bit word counts per §IV's accounting."""

    graph: int
    scoring_matching: int
    locks: int
    contraction_scratch: int
    contraction_scratch_legacy: int

    @property
    def total(self) -> int:
        """Peak words: graph + score/match state + contraction scratch."""
        return (
            self.graph
            + self.scoring_matching
            + self.locks
            + self.contraction_scratch
        )

    def bytes(self) -> int:
        return 8 * self.total


def algorithm_memory_words(
    n_vertices: int,
    n_edges: int,
    *,
    openmp: bool = True,
    legacy_contraction: bool = False,
) -> MemoryEstimate:
    """The paper's space formulas for a graph of the given size.

    Parameters
    ----------
    openmp:
        Count the additional ``|V|`` lock words OpenMP platforms need
        (the XMT's full/empty bits are free).
    legacy_contraction:
        Report the legacy hash-chain scratch (``|E| + |V|``) as the
        active contraction scratch instead of the bucket sort's.
    """
    if n_vertices < 0 or n_edges < 0:
        raise ValueError("sizes must be non-negative")
    bucket = n_vertices + 1 + 2 * n_edges
    legacy = n_edges + n_vertices
    return MemoryEstimate(
        graph=3 * n_vertices + 3 * n_edges,
        scoring_matching=n_edges + 4 * n_vertices,
        locks=n_vertices if openmp else 0,
        contraction_scratch=legacy if legacy_contraction else bucket,
        contraction_scratch_legacy=legacy,
    )
