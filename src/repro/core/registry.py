"""Kernel registry: scorers, matchers and contractors unified by name.

The pipeline's three phase kinds — ``scorer`` (edge scoring, §III
step 1), ``matcher`` (greedy maximal matching, §III step 2) and
``contractor`` (graph contraction, §III step 3) — each have several
interchangeable implementations: the paper's new/legacy ablation pairs,
the problem-specific scorers the algorithm is "agnostic" towards, and
whatever a user plugs in.  This module is the single naming authority
for all of them, so ablations and user kernels select by string through
one mechanism instead of per-kind lookup tables scattered through the
driver, the CLI and the bench harness.

A registered entry is a zero-argument **factory** producing the kernel
object for one run:

* ``scorer`` factories return an :class:`~repro.core.scoring.EdgeScorer`
  instance (a fresh one per call, so per-run state such as a recovery
  report never leaks between runs);
* ``matcher`` factories return a matching callable with the
  :func:`~repro.core.matching.match_locally_dominant` signature;
* ``contractor`` factories return a contraction callable with the
  :func:`~repro.core.contraction.contract` signature.

User extension::

    from repro.core.registry import register_kernel

    class MyScorer:
        name = "my-metric"
        def score(self, graph, recorder=None): ...

    register_kernel("scorer", "my-metric", MyScorer)
    detect_communities(graph, scorer="my-metric")

The built-in kernels are registered at import time; discovery
(:func:`kernel_names`) is what the CLI uses to populate its
``--scorer`` / ``--matcher`` / ``--contractor`` choices.
"""

from __future__ import annotations

from typing import Callable

from repro.core.contraction import contract, contract_hash_chains
from repro.core.matching import match_full_sweep, match_locally_dominant
from repro.core.outofcore import contract_sharded, match_gmm_capped
from repro.core.scoring import ConductanceScorer, ModularityScorer, WeightScorer

__all__ = [
    "KERNEL_KINDS",
    "register_kernel",
    "unregister_kernel",
    "kernel_names",
    "create_kernel",
]

#: The phase kinds the registry knows about.
KERNEL_KINDS = ("scorer", "matcher", "contractor")

_REGISTRY: dict[tuple[str, str], Callable[[], object]] = {}


def _check_kind(kind: str) -> None:
    if kind not in KERNEL_KINDS:
        raise ValueError(
            f"unknown kernel kind {kind!r} "
            f"(expected one of {', '.join(KERNEL_KINDS)})"
        )


def register_kernel(
    kind: str,
    name: str,
    factory: Callable[[], object],
    *,
    replace: bool = False,
) -> None:
    """Register a kernel factory under ``(kind, name)``.

    ``factory`` is called with no arguments each time the kernel is
    instantiated for a run.  Re-registering an existing name raises
    unless ``replace=True`` (so a typo cannot silently shadow a
    built-in).
    """
    _check_kind(kind)
    if not name:
        raise ValueError("kernel name must be non-empty")
    key = (kind, name)
    if key in _REGISTRY and not replace:
        raise ValueError(
            f"{kind} {name!r} is already registered "
            "(pass replace=True to override)"
        )
    _REGISTRY[key] = factory


def unregister_kernel(kind: str, name: str) -> None:
    """Remove a kernel registration (KeyError when absent)."""
    _check_kind(kind)
    del _REGISTRY[(kind, name)]


def kernel_names(kind: str) -> tuple[str, ...]:
    """Registered kernel names of one kind, sorted (CLI choices)."""
    _check_kind(kind)
    return tuple(sorted(n for k, n in _REGISTRY if k == kind))


def create_kernel(kind: str, name: str) -> object:
    """Instantiate the kernel registered under ``(kind, name)``.

    Raises ``ValueError`` naming the kind and the available options when
    the name is unknown — the message the driver and CLI surface for a
    bad ``matcher=``/``contractor=``/``scorer=`` argument.
    """
    _check_kind(kind)
    try:
        factory = _REGISTRY[(kind, name)]
    except KeyError:
        available = ", ".join(kernel_names(kind)) or "none"
        raise ValueError(
            f"unknown {kind} {name!r} (available: {available})"
        ) from None
    return factory()


# ------------------------------------------------------------- built-ins
register_kernel("scorer", "modularity", ModularityScorer)
register_kernel("scorer", "conductance", ConductanceScorer)
register_kernel("scorer", "weight", WeightScorer)
register_kernel("matcher", "worklist", lambda: match_locally_dominant)
register_kernel("matcher", "sweep", lambda: match_full_sweep)
# The GMM-style cap-respecting matcher: bit-identical to worklist/sweep
# but streams shard windows, never materialising an edge-length
# anonymous array (the out-of-core / spill-rung matcher).
register_kernel("matcher", "gmm", lambda: match_gmm_capped)
register_kernel("contractor", "bucket", lambda: contract)
register_kernel("contractor", "chains", lambda: contract_hash_chains)
# Spill-backed bucket-sort contraction for the out-of-core path.
register_kernel("contractor", "shard", lambda: contract_sharded)
