"""Kernel registry: scorers, matchers and contractors unified by name.

The pipeline's three phase kinds — ``scorer`` (edge scoring, §III
step 1), ``matcher`` (greedy maximal matching, §III step 2) and
``contractor`` (graph contraction, §III step 3) — each have several
interchangeable implementations: the paper's new/legacy ablation pairs,
the problem-specific scorers the algorithm is "agnostic" towards, and
whatever a user plugs in.  This module is the single naming authority
for all of them, so ablations and user kernels select by string through
one mechanism instead of per-kind lookup tables scattered through the
driver, the CLI and the bench harness.

A registered entry is a zero-argument **factory** producing the kernel
object for one run, plus a :class:`KernelInfo` capability descriptor
the per-level auto-tuner (:mod:`repro.core.tuner`) selects against:

* ``scorer`` factories return an :class:`~repro.core.scoring.EdgeScorer`
  instance (a fresh one per call, so per-run state such as a recovery
  report never leaks between runs);
* ``matcher`` factories return a matching callable with the
  :func:`~repro.core.matching.match_locally_dominant` signature;
* ``contractor`` factories return a contraction callable with the
  :func:`~repro.core.contraction.contract` signature.

User extension::

    from repro.core.registry import KernelInfo, register_kernel

    class MyScorer:
        name = "my-metric"
        def score(self, graph, recorder=None): ...

    register_kernel("scorer", "my-metric", MyScorer)
    detect_communities(graph, scorer="my-metric")

``register_kernel`` stays backward-compatible for bare factories: when
no ``info`` is given a conservative default descriptor is attached
(``supports_sharded=False``, ``deterministic=True``), which keeps user
kernels out of the spilled candidate pool unless they opt in.

The built-in kernels are registered at import time; discovery
(:func:`kernel_names`, :func:`kernel_catalog`) is what the CLI uses to
populate its ``--scorer`` / ``--matcher`` / ``--contractor`` choices
and the ``repro kernels`` listing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.contraction import contract, contract_hash_chains
from repro.core.matching import match_full_sweep, match_locally_dominant
from repro.core.outofcore import contract_sharded, match_gmm_capped
from repro.core.scoring import ConductanceScorer, ModularityScorer, WeightScorer
from repro.spmatrix.contract import contract_spmatrix

__all__ = [
    "KERNEL_KINDS",
    "KernelInfo",
    "register_kernel",
    "unregister_kernel",
    "kernel_names",
    "kernel_info",
    "kernel_catalog",
    "create_kernel",
]

#: The phase kinds the registry knows about.
KERNEL_KINDS = ("scorer", "matcher", "contractor")


@dataclass(frozen=True)
class KernelInfo:
    """Capability descriptor of one registered kernel.

    The auto-tuner (:mod:`repro.core.tuner`) consults these when
    building the per-level candidate pool; the ``repro kernels`` CLI
    subcommand renders them for discoverability.

    Attributes
    ----------
    kind, name:
        The registry key this descriptor belongs to.
    supports_sharded:
        ``True`` when the kernel composes with the out-of-core spill
        path — either it streams shard windows itself (``gmm``,
        ``shard``) or the engine transparently substitutes a
        bit-identical streaming twin (``worklist``, ``bucket``).  Once
        a run has spilled, auto-selection is constrained to
        sharded-capable kernels so a memory breach cannot be answered
        with a kernel that re-materialises edge-length anonymous
        arrays.
    deterministic:
        ``True`` when repeated runs on the same input produce
        bit-identical output (every built-in is; a user kernel that
        randomizes should say so).
    cost_features:
        Names of the per-level shape features the tuner's cost model
        needs to predict this kernel's runtime (subset of
        :data:`repro.core.tuner.COST_FEATURES`).
    regime:
        Free-text description of the density/degree-skew regime the
        kernel prefers — documentation for humans, not consulted by the
        cost model.
    description:
        One-line summary for the ``repro kernels`` listing.
    """

    kind: str
    name: str
    supports_sharded: bool = False
    deterministic: bool = True
    cost_features: tuple[str, ...] = ("const", "edges", "vertices")
    regime: str = ""
    description: str = ""

    def as_dict(self) -> dict:
        """JSON-ready dump (the ``repro kernels`` / ledger shape)."""
        return {
            "kind": self.kind,
            "name": self.name,
            "supports_sharded": self.supports_sharded,
            "deterministic": self.deterministic,
            "cost_features": list(self.cost_features),
            "regime": self.regime,
            "description": self.description,
        }


@dataclass(frozen=True)
class _Entry:
    factory: Callable[[], object]
    info: KernelInfo = field(repr=False, default=None)  # type: ignore[assignment]


_REGISTRY: dict[tuple[str, str], _Entry] = {}


def _check_kind(kind: str) -> None:
    if kind not in KERNEL_KINDS:
        raise ValueError(
            f"unknown kernel kind {kind!r} "
            f"(expected one of {', '.join(KERNEL_KINDS)})"
        )


def register_kernel(
    kind: str,
    name: str,
    factory: Callable[[], object],
    *,
    replace: bool = False,
    info: KernelInfo | None = None,
) -> None:
    """Register a kernel factory under ``(kind, name)``.

    ``factory`` is called with no arguments each time the kernel is
    instantiated for a run.  Re-registering an existing name raises
    unless ``replace=True`` (so a typo cannot silently shadow a
    built-in).  ``info`` attaches the capability descriptor; a bare
    registration (the historical two-argument form) gets a conservative
    default — not sharded-capable, deterministic — so pre-existing user
    kernels keep working and stay out of the spilled candidate pool.
    """
    _check_kind(kind)
    if not name:
        raise ValueError("kernel name must be non-empty")
    if info is not None and (info.kind != kind or info.name != name):
        raise ValueError(
            f"KernelInfo is keyed ({info.kind!r}, {info.name!r}) but the "
            f"registration is ({kind!r}, {name!r})"
        )
    key = (kind, name)
    if key in _REGISTRY and not replace:
        raise ValueError(
            f"{kind} {name!r} is already registered "
            "(pass replace=True to override)"
        )
    _REGISTRY[key] = _Entry(
        factory, info if info is not None else KernelInfo(kind, name)
    )


def unregister_kernel(kind: str, name: str) -> None:
    """Remove a kernel registration (KeyError when absent)."""
    _check_kind(kind)
    del _REGISTRY[(kind, name)]


def kernel_names(kind: str) -> tuple[str, ...]:
    """Registered kernel names of one kind, sorted (CLI choices)."""
    _check_kind(kind)
    return tuple(sorted(n for k, n in _REGISTRY if k == kind))


def kernel_info(kind: str, name: str) -> KernelInfo:
    """The capability descriptor registered under ``(kind, name)``."""
    _check_kind(kind)
    try:
        return _REGISTRY[(kind, name)].info
    except KeyError:
        available = ", ".join(kernel_names(kind)) or "none"
        raise ValueError(
            f"unknown {kind} {name!r} (available: {available})"
        ) from None


def kernel_catalog(kind: str | None = None) -> list[KernelInfo]:
    """Every registered descriptor, sorted by (kind, name).

    ``kind`` restricts the listing to one phase kind.  This is the
    ``repro kernels`` data source and what the tuner builds its
    candidate pools from.
    """
    if kind is not None:
        _check_kind(kind)
    return [
        _REGISTRY[key].info
        for key in sorted(_REGISTRY)
        if kind is None or key[0] == kind
    ]


def create_kernel(kind: str, name: str) -> object:
    """Instantiate the kernel registered under ``(kind, name)``.

    Raises ``ValueError`` naming the kind and the available options when
    the name is unknown — the message the driver and CLI surface for a
    bad ``matcher=``/``contractor=``/``scorer=`` argument.
    """
    _check_kind(kind)
    try:
        entry = _REGISTRY[(kind, name)]
    except KeyError:
        available = ", ".join(kernel_names(kind)) or "none"
        raise ValueError(
            f"unknown {kind} {name!r} (available: {available})"
        ) from None
    return entry.factory()


# ------------------------------------------------------------- built-ins
register_kernel(
    "scorer",
    "modularity",
    ModularityScorer,
    info=KernelInfo(
        "scorer",
        "modularity",
        supports_sharded=True,
        regime="any",
        description="CNM merge gain (the paper's default objective)",
    ),
)
register_kernel(
    "scorer",
    "conductance",
    ConductanceScorer,
    info=KernelInfo(
        "scorer",
        "conductance",
        supports_sharded=True,
        regime="any",
        description="negative conductance of the merged pair",
    ),
)
register_kernel(
    "scorer",
    "weight",
    WeightScorer,
    info=KernelInfo(
        "scorer",
        "weight",
        supports_sharded=True,
        regime="any",
        description="raw edge weight (heaviest-first agglomeration)",
    ),
)
register_kernel(
    "matcher",
    "worklist",
    lambda: match_locally_dominant,
    info=KernelInfo(
        "matcher",
        "worklist",
        # Streams via the bit-identical gmm twin once spilled.
        supports_sharded=True,
        cost_features=("const", "edges", "vertices", "edges_x_cv"),
        regime="general-purpose; cheapest when few passes survive",
        description="the paper's improved worklist matching (§IV-B new)",
    ),
)
register_kernel(
    "matcher",
    "sweep",
    lambda: match_full_sweep,
    info=KernelInfo(
        "matcher",
        "sweep",
        supports_sharded=False,
        cost_features=("const", "edges", "vertices", "edges_x_cv"),
        regime="dense, low-skew levels (full re-scans amortize)",
        description="legacy full-sweep matching (§IV-B old)",
    ),
)
# The GMM-style cap-respecting matcher: bit-identical to worklist/sweep
# but streams shard windows, never materialising an edge-length
# anonymous array (the out-of-core / spill-rung matcher).
register_kernel(
    "matcher",
    "gmm",
    lambda: match_gmm_capped,
    info=KernelInfo(
        "matcher",
        "gmm",
        supports_sharded=True,
        cost_features=("const", "edges", "vertices", "edges_x_cv"),
        regime="RAM-dwarfing inputs; pays a streaming constant in core",
        description="cap-respecting streamed matching (out-of-core twin)",
    ),
)
register_kernel(
    "contractor",
    "bucket",
    lambda: contract,
    info=KernelInfo(
        "contractor",
        "bucket",
        # Streams via the bit-identical shard twin once spilled.
        supports_sharded=True,
        regime="general-purpose (the paper's §IV-C winner)",
        description="vectorized bucket-sort contraction (§IV-C new)",
    ),
)
register_kernel(
    "contractor",
    "chains",
    lambda: contract_hash_chains,
    info=KernelInfo(
        "contractor",
        "chains",
        supports_sharded=False,
        cost_features=("const", "edges", "vertices", "edges_x_cv"),
        regime="low-collision levels; chain walks strangle skewed ones",
        description="legacy hash-of-linked-lists contraction (§IV-C old)",
    ),
)
# Spill-backed bucket-sort contraction for the out-of-core path.
register_kernel(
    "contractor",
    "shard",
    lambda: contract_sharded,
    info=KernelInfo(
        "contractor",
        "shard",
        supports_sharded=True,
        regime="RAM-dwarfing inputs; scratch lives in spill memmaps",
        description="spill-backed bucket-sort contraction (out-of-core)",
    ),
)
# Contraction as the sparse triple product P^T A P over the CSR kernels
# in spmatrix/ — the Combinatorial-BLAS formulation (§VI), bit-identical
# to bucket (enforced in tests/test_engine_parity.py).
register_kernel(
    "contractor",
    "spmatrix",
    lambda: contract_spmatrix,
    info=KernelInfo(
        "contractor",
        "spmatrix",
        supports_sharded=False,
        regime="dense community graphs where spgemm row merges win",
        description="sparse-matrix-product contraction (P^T A P, §VI)",
    ),
)
