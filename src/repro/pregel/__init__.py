"""Bulk-synchronous vertex-centric (Pregel-style) execution substrate.

§VI names "cloud-based implementations through environments like
Pregel" as a path for this algorithm.  This subpackage provides a small
BSP engine — vertex programs, message passing, vote-to-halt, aggregate
statistics — plus vertex programs for the building blocks: connected
components, weighted label propagation, and the locally-dominant
matching at the core of the paper's algorithm expressed as a
propose/accept message protocol.

The engine counts messages and supersteps, giving the communication-
volume view a distributed implementation would care about.
"""

from repro.pregel.engine import PregelEngine, SuperstepStats, VertexContext
from repro.pregel.programs import (
    ComponentsProgram,
    LabelPropagationProgram,
    MatchingProgram,
)

__all__ = [
    "PregelEngine",
    "SuperstepStats",
    "VertexContext",
    "ComponentsProgram",
    "LabelPropagationProgram",
    "MatchingProgram",
]
