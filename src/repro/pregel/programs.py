"""Vertex programs: the algorithm's building blocks as message protocols.

* :class:`ComponentsProgram` — minimum-label flooding; the classic
  Pregel connected-components example and the substrate the paper's
  preprocessing (largest component) needs.
* :class:`LabelPropagationProgram` — weighted label propagation with
  parity-staggered updates (avoids the synchronous two-cycle
  oscillation), a cheap community detector.
* :class:`MatchingProgram` — the paper's core primitive, locally
  dominant heavy-edge matching, as a propose/accept protocol: each
  round every free vertex proposes along its best live edge under the
  symmetric total order ``(weight, min id, max id)``; mutual proposals
  match, and matched vertices announce their retirement.  The global
  best live edge always matches, so the protocol makes progress every
  round and terminates with a maximal matching of weight within 1/2 of
  optimum — the same guarantee as the array kernel.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.graph.csr import CSRAdjacency
from repro.graph.graph import CommunityGraph
from repro.pregel.engine import VertexContext

__all__ = [
    "ComponentsProgram",
    "LabelPropagationProgram",
    "MatchingProgram",
]


class ComponentsProgram:
    """Minimum-label flooding; final states are component labels."""

    def init(self, vertex: int, graph: CommunityGraph) -> int:
        return vertex

    def compute(self, ctx: VertexContext, messages: list[int]) -> None:
        if ctx.superstep == 0:
            ctx.send_to_neighbors(ctx.state)
            ctx.vote_to_halt()
            return
        best = min(messages) if messages else ctx.state
        if best < ctx.state:
            ctx.state = best
            ctx.send_to_neighbors(best)
        ctx.vote_to_halt()


class LabelPropagationProgram:
    """Weighted majority label adoption with parity-staggered updates.

    State: ``{"label": int, "view": {neighbor: label}}``.  Messages are
    ``(sender, label)`` pairs; edge weights come from the receiver's own
    adjacency.  A vertex only recomputes on supersteps matching its
    parity, which breaks the synchronous oscillation of e.g. a single
    edge with two labels.
    """

    def __init__(self, graph: CommunityGraph) -> None:
        # Per-vertex neighbor -> weight lookup, built once.
        csr = CSRAdjacency.from_edgelist(graph.edges)
        self._weights: list[dict[int, float]] = [
            dict(
                zip(
                    csr.neighbors(v).tolist(),
                    csr.neighbor_weights(v).tolist(),
                )
            )
            for v in range(graph.n_vertices)
        ]

    def init(self, vertex: int, graph: CommunityGraph) -> dict[str, Any]:
        return {"label": vertex, "view": {}}

    def compute(
        self, ctx: VertexContext, messages: list[tuple[int, int]]
    ) -> None:
        state = ctx.state
        for sender, label in messages:
            state["view"][sender] = label

        if ctx.superstep == 0:
            for u in ctx.neighbors().tolist():
                ctx.send(u, (ctx.vertex, state["label"]))
            ctx.vote_to_halt()
            return

        if (ctx.superstep + ctx.vertex) % 2 == 0 and state["view"]:
            weights = self._weights[ctx.vertex]
            totals: dict[int, float] = {}
            for neighbor, label in state["view"].items():
                totals[label] = totals.get(label, 0.0) + weights[neighbor]
            # Highest total weight; ties toward the smallest label.
            best = min(
                totals, key=lambda lbl: (-totals[lbl], lbl)
            )
            if best != state["label"]:
                state["label"] = best
                for u in ctx.neighbors().tolist():
                    ctx.send(u, (ctx.vertex, best))
        ctx.vote_to_halt()


def _edge_key(w: float, u: int, v: int) -> tuple[float, int, int]:
    """Symmetric total order on edges: weight, then endpoint ids."""
    return (w, min(u, v), max(u, v))


class MatchingProgram:
    """Locally dominant heavy-edge matching via propose/accept rounds.

    Final state per vertex: ``{"status": "matched"|"free", "partner": int}``
    (``partner`` is -1 for unmatched vertices).  Message kinds:
    ``("propose", sender)`` and ``("retired", sender)``.
    """

    def init(self, vertex: int, graph: CommunityGraph) -> dict[str, Any]:
        return {
            "status": "free",
            "partner": -1,
            "dead": set(),
            "target": -1,
        }

    def _best_live_neighbor(self, ctx: VertexContext) -> int:
        state = ctx.state
        best: int = -1
        best_key: tuple[float, int, int] | None = None
        for u, w in zip(
            ctx.neighbors().tolist(), ctx.neighbor_weights().tolist()
        ):
            if u in state["dead"] or w <= 0:
                continue
            key = _edge_key(w, ctx.vertex, u)
            if best_key is None or key > best_key:
                best_key = key
                best = u
        return best

    def compute(self, ctx: VertexContext, messages: list[tuple[str, int]]) -> None:
        state = ctx.state
        proposals = set()
        for kind, sender in messages:
            if kind == "retired":
                state["dead"].add(sender)
            elif kind == "propose":
                proposals.add(sender)

        if state["status"] == "matched":
            ctx.vote_to_halt()
            return

        if ctx.superstep % 2 == 0:
            # Propose phase.
            target = self._best_live_neighbor(ctx)
            state["target"] = target
            if target < 0:
                ctx.vote_to_halt()  # no live edges left: stays free
                return
            ctx.send(target, ("propose", ctx.vertex))
        else:
            # Accept phase: a mutual proposal seals the match.
            target = state["target"]
            if target >= 0 and target in proposals:
                state["status"] = "matched"
                state["partner"] = target
                for u in ctx.neighbors().tolist():
                    if u != target:
                        ctx.send(u, ("retired", ctx.vertex))
                ctx.vote_to_halt()
        # Free vertices stay active for the next round.
