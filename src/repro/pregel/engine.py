"""The BSP engine.

Execution model (after Malewicz et al., SIGMOD 2010):

* every vertex holds a mutable ``state``;
* in each superstep, ``compute(ctx, messages)`` runs for every *active*
  vertex (one that received messages or has not voted to halt);
* messages sent in superstep ``t`` are delivered in ``t + 1``;
* the run ends when every vertex has halted and no messages are in
  flight, or when ``max_supersteps`` is exceeded.

The engine is deliberately sequential under the hood (this is a
semantics substrate, not a performance one) but the programming model is
exactly the distributed one: per-superstep message counts are recorded so
experiments can reason about communication volume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Protocol

import numpy as np

from repro.errors import ConvergenceError
from repro.graph.csr import CSRAdjacency
from repro.graph.graph import CommunityGraph
from repro.obs.trace import NullTracer, Tracer, as_tracer

__all__ = ["VertexContext", "VertexProgram", "SuperstepStats", "PregelEngine"]


@dataclass
class SuperstepStats:
    """Per-superstep execution statistics."""

    superstep: int
    active_vertices: int
    messages_sent: int


class VertexContext:
    """The API a vertex program sees while computing one vertex."""

    def __init__(self, engine: "PregelEngine", vertex: int) -> None:
        self._engine = engine
        self.vertex = vertex
        self.halted = False

    @property
    def superstep(self) -> int:
        return self._engine._superstep

    @property
    def state(self) -> Any:
        return self._engine.states[self.vertex]

    @state.setter
    def state(self, value: Any) -> None:
        self._engine.states[self.vertex] = value

    def neighbors(self) -> np.ndarray:
        return self._engine._csr.neighbors(self.vertex)

    def neighbor_weights(self) -> np.ndarray:
        return self._engine._csr.neighbor_weights(self.vertex)

    def send(self, target: int, message: Any) -> None:
        """Queue a message for delivery next superstep."""
        self._engine._outbox[target].append(message)
        self._engine._messages_this_step += 1

    def send_to_neighbors(self, message: Any) -> None:
        for u in self.neighbors().tolist():
            self.send(u, message)

    def vote_to_halt(self) -> None:
        """Deactivate until a message arrives."""
        self.halted = True


class VertexProgram(Protocol):
    """A vertex-centric program."""

    def init(self, vertex: int, graph: CommunityGraph) -> Any:
        """Initial state of ``vertex``."""
        ...  # pragma: no cover - protocol stub

    def compute(self, ctx: VertexContext, messages: list[Any]) -> None:
        """One superstep of ``ctx.vertex`` given its inbound messages."""
        ...  # pragma: no cover - protocol stub


class PregelEngine:
    """Run a :class:`VertexProgram` over a community graph to quiescence."""

    def __init__(self, graph: CommunityGraph) -> None:
        self.graph = graph
        self._csr = CSRAdjacency.from_edgelist(graph.edges)
        self.states: list[Any] = []
        self.stats: list[SuperstepStats] = []
        self._superstep = 0
        self._outbox: list[list[Any]] = []
        self._messages_this_step = 0

    def run(
        self,
        program: VertexProgram,
        *,
        max_supersteps: int = 200,
        tracer: Tracer | NullTracer | None = None,
    ) -> list[Any]:
        """Execute to quiescence; returns the final vertex states.

        With a tracer attached, the run gets a ``"pregel_run"`` span and
        every superstep a ``"superstep"`` child stamped with the active
        vertex and sent message counts.
        """
        tr = as_tracer(tracer)
        n = self.graph.n_vertices
        with tr.span("pregel_run") as run_span:
            self.states = [program.init(v, self.graph) for v in range(n)]
            self.stats = []
            halted = np.zeros(n, dtype=bool)
            inbox: list[list[Any]] = [[] for _ in range(n)]

            for step in range(max_supersteps):
                with tr.span("superstep", superstep=step) as sp:
                    self._superstep = step
                    self._outbox = [[] for _ in range(n)]
                    self._messages_this_step = 0
                    active = 0
                    for v in range(n):
                        if halted[v] and not inbox[v]:
                            continue
                        active += 1
                        ctx = VertexContext(self, v)
                        program.compute(ctx, inbox[v])
                        halted[v] = ctx.halted
                    self.stats.append(
                        SuperstepStats(
                            superstep=step,
                            active_vertices=active,
                            messages_sent=self._messages_this_step,
                        )
                    )
                    sp.set(
                        items=active,
                        active_vertices=active,
                        messages_sent=self._messages_this_step,
                    )
                inbox = self._outbox
                if active == 0:
                    run_span.set(n_supersteps=len(self.stats))
                    return self.states
                if self._messages_this_step == 0 and all(halted):
                    run_span.set(n_supersteps=len(self.stats))
                    return self.states
            raise ConvergenceError(
                f"vertex program did not quiesce in {max_supersteps} supersteps"
            )

    @property
    def n_supersteps(self) -> int:
        return len(self.stats)

    def total_messages(self) -> int:
        return sum(s.messages_sent for s in self.stats)
