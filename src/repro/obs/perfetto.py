"""Chrome trace-event (Perfetto) export for run traces.

Converts a span list into the JSON trace-event format that
``ui.perfetto.dev`` and ``chrome://tracing`` open directly, so a run's
per-level score/match/contract pipeline and the worker flight-recorder
lanes become a zoomable timeline instead of a table.

The mapping:

* every span becomes one complete event (``"ph": "X"``) with ``ts`` and
  ``dur`` in microseconds, relative to the earliest span start in the
  trace (Perfetto only needs a common origin, not absolute time);
* ``pid``/``tid`` place each span on its lane — worker flight records
  carry their worker's real OS pid, so each worker renders as its own
  process track under the parent;
* metadata events (``"ph": "M"``) name the tracks: the parent process
  becomes ``repro (parent)``, each worker ``worker <pid>``;
* span level, item count, and attributes ride along in ``args``;
* telemetry counter samples (schema v3) become counter events
  (``"ph": "C"``) — Perfetto renders each distinct sample name as its
  own counter track (e.g. ``rss_anon_mb`` as a memory curve) above the
  span lanes, sharing the same time origin.

No external dependency is involved: the format is plain JSON with a
``traceEvents`` array (`Trace Event Format`_, the stable subset
Perfetto ingests).

.. _Trace Event Format:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
import os
from typing import Sequence

from repro.obs.trace import CounterSample, Span
from repro.util.atomicio import atomic_write

__all__ = ["to_chrome_trace", "write_perfetto"]


def _lane(span: Span, parent_pid: int) -> tuple[int, int]:
    """(pid, tid) track placement for a span."""
    pid = span.pid if span.pid is not None else parent_pid
    tid = span.tid if span.tid is not None else pid
    return pid, tid


def to_chrome_trace(
    spans: Sequence[Span],
    *,
    samples: Sequence[CounterSample] | None = None,
    meta: dict | None = None,
) -> dict:
    """Build the Chrome trace-event JSON object for a span list.

    Returns ``{"traceEvents": [...], "displayTimeUnit": "ms",
    "otherData": {...}}``.  Works on v1 traces too (spans without
    pid/tid land on a single synthetic lane).  ``samples`` (telemetry
    counter time series, schema v3) render as counter tracks.
    """
    spans = list(spans)
    samples = list(samples or ())
    events: list[dict] = []
    starts = [s.start_ns for s in spans] + [s.ts_ns for s in samples]
    if spans:
        parent_pid = next(
            (s.pid for s in spans if s.pid is not None and s.name != "worker_chunk"),
            None,
        )
        if parent_pid is None:
            parent_pid = os.getpid()
    else:
        parent_pid = next(
            (s.pid for s in samples if s.pid is not None), os.getpid()
        )
    origin_ns = min(starts) if starts else 0

    lanes: set[tuple[int, int]] = set()
    counter_pids: set[int] = set()
    for s in spans:
        pid, tid = _lane(s, parent_pid)
        lanes.add((pid, tid))
        args: dict = {"span_id": s.span_id}
        if s.parent_id is not None:
            args["parent_id"] = s.parent_id
        if s.level is not None:
            args["level"] = s.level
        if s.items:
            args["items"] = s.items
        args.update(s.attrs)
        events.append(
            {
                "name": s.name,
                "cat": "repro",
                "ph": "X",
                "ts": (s.start_ns - origin_ns) / 1e3,
                "dur": s.duration_ns / 1e3,
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )

    for s in samples:
        # One "ph": "C" event per sample; Perfetto groups events sharing
        # a name into one counter track and draws the value as a curve.
        name = f"{s.name} ({s.unit})" if s.unit else s.name
        events.append(
            {
                "name": name,
                "cat": "telemetry",
                "ph": "C",
                "ts": (s.ts_ns - origin_ns) / 1e3,
                "pid": s.pid if s.pid is not None else parent_pid,
                "args": {"value": s.value},
            }
        )
        counter_pids.add(s.pid if s.pid is not None else parent_pid)

    for pid in sorted({p for p, _ in lanes} | counter_pids):
        name = "repro (parent)" if pid == parent_pid else f"worker {pid}"
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "args": {"name": name},
            }
        )
    for pid, tid in sorted(lanes):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {
                    "name": "main" if pid == parent_pid else f"worker {pid}"
                },
            }
        )

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": dict(meta or {}),
    }


def write_perfetto(
    spans: Sequence[Span],
    path: str | os.PathLike,
    *,
    samples: Sequence[CounterSample] | None = None,
    meta: dict | None = None,
) -> int:
    """Write a Chrome trace-event JSON file; returns the event count.

    Written via a temporary file and ``os.replace`` like the other
    artifact writers, so a crash mid-export never leaves a truncated
    file under the final name.
    """
    doc = to_chrome_trace(spans, samples=samples, meta=meta)
    with atomic_write(path) as fh:
        json.dump(doc, fh)
        fh.write("\n")
    return len(doc["traceEvents"])
