"""Chrome trace-event (Perfetto) export for run traces.

Converts a span list into the JSON trace-event format that
``ui.perfetto.dev`` and ``chrome://tracing`` open directly, so a run's
per-level score/match/contract pipeline and the worker flight-recorder
lanes become a zoomable timeline instead of a table.

The mapping:

* every span becomes one complete event (``"ph": "X"``) with ``ts`` and
  ``dur`` in microseconds, relative to the earliest span start in the
  trace (Perfetto only needs a common origin, not absolute time);
* ``pid``/``tid`` place each span on its lane — worker flight records
  carry their worker's real OS pid, so each worker renders as its own
  process track under the parent;
* metadata events (``"ph": "M"``) name the tracks: the parent process
  becomes ``repro (parent)``, each worker ``worker <pid>``;
* span level, item count, and attributes ride along in ``args``.

No external dependency is involved: the format is plain JSON with a
``traceEvents`` array (`Trace Event Format`_, the stable subset
Perfetto ingests).

.. _Trace Event Format:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
import os
from typing import Sequence

from repro.obs.trace import Span
from repro.util.atomicio import atomic_write

__all__ = ["to_chrome_trace", "write_perfetto"]


def _lane(span: Span, parent_pid: int) -> tuple[int, int]:
    """(pid, tid) track placement for a span."""
    pid = span.pid if span.pid is not None else parent_pid
    tid = span.tid if span.tid is not None else pid
    return pid, tid


def to_chrome_trace(
    spans: Sequence[Span], *, meta: dict | None = None
) -> dict:
    """Build the Chrome trace-event JSON object for a span list.

    Returns ``{"traceEvents": [...], "displayTimeUnit": "ms",
    "otherData": {...}}``.  Works on v1 traces too (spans without
    pid/tid land on a single synthetic lane).
    """
    spans = list(spans)
    events: list[dict] = []
    if spans:
        origin_ns = min(s.start_ns for s in spans)
        parent_pid = next(
            (s.pid for s in spans if s.pid is not None and s.name != "worker_chunk"),
            None,
        )
        if parent_pid is None:
            parent_pid = os.getpid()
    else:
        origin_ns = 0
        parent_pid = os.getpid()

    lanes: set[tuple[int, int]] = set()
    for s in spans:
        pid, tid = _lane(s, parent_pid)
        lanes.add((pid, tid))
        args: dict = {"span_id": s.span_id}
        if s.parent_id is not None:
            args["parent_id"] = s.parent_id
        if s.level is not None:
            args["level"] = s.level
        if s.items:
            args["items"] = s.items
        args.update(s.attrs)
        events.append(
            {
                "name": s.name,
                "cat": "repro",
                "ph": "X",
                "ts": (s.start_ns - origin_ns) / 1e3,
                "dur": s.duration_ns / 1e3,
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )

    for pid in sorted({p for p, _ in lanes}):
        name = "repro (parent)" if pid == parent_pid else f"worker {pid}"
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "args": {"name": name},
            }
        )
    for pid, tid in sorted(lanes):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {
                    "name": "main" if pid == parent_pid else f"worker {pid}"
                },
            }
        )

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": dict(meta or {}),
    }


def write_perfetto(
    spans: Sequence[Span],
    path: str | os.PathLike,
    *,
    meta: dict | None = None,
) -> int:
    """Write a Chrome trace-event JSON file; returns the event count.

    Written via a temporary file and ``os.replace`` like the other
    artifact writers, so a crash mid-export never leaves a truncated
    file under the final name.
    """
    doc = to_chrome_trace(spans, meta=meta)
    with atomic_write(path) as fh:
        json.dump(doc, fh)
        fh.write("\n")
    return len(doc["traceEvents"])
