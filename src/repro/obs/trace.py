"""Span-based run tracing (real wall-clock, not simulated).

The platform layer's :class:`~repro.platform.kernels.TraceRecorder`
records *simulated* work quantities (items, words, atomics) for the
paper's cost models.  This module records what actually happened on the
machine running the code: nested wall-clock **spans** over the
score → match → contract pipeline, stamped with item counts and
arbitrary attributes, so the paper's per-phase engineering claims
(contraction at 40–80 % of runtime, worklist matching removing sweep
hot spots) become observable on every real run.

Usage::

    tracer = Tracer()
    with tracer.span("level", level=0):
        with tracer.span("score", level=0) as sp:
            scores = scorer.score(graph)
            sp.set(items=graph.n_edges)

Finished spans accumulate on ``tracer.spans`` in completion order
(children before parents, like a sampling profiler's exit events); the
sinks in :mod:`repro.obs.sinks` serialize them to JSONL and render the
console profile table.

Instrumented code paths take ``tracer=None`` and fall back to the
module-level :data:`NULL_TRACER`, whose ``span()`` hands back one shared
no-op handle — the untraced hot path performs no allocation and no clock
reads.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from types import TracebackType
from typing import Any

from repro.obs.metrics import MetricsRegistry, NullMetricsRegistry
from repro.util.timing import Timer

__all__ = [
    "Span",
    "CounterSample",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "as_tracer",
]

#: Version of the span/trace event schema emitted by the sinks.
#: v2 added per-span ``pid``/``tid``/``epoch_ns`` so multi-process
#: traces (worker flight-recorder lanes) align on one clock.
#: v3 added **counter events** (``{"event": "counter_sample", "type":
#: "counter", ...}`` records interleaved with spans): timestamped
#: time-series samples from the live-telemetry sampler
#: (:mod:`repro.obs.telemetry`), exported as Perfetto counter tracks.
#: v1/v2 traces still load; readers skip unknown record types.
SCHEMA_VERSION = 3


@dataclass
class Span:
    """One finished (or in-flight) traced region.

    Attributes
    ----------
    name:
        Region identity, e.g. ``"level"``, ``"score"``, ``"match"``,
        ``"contract"``, ``"match_pass"``, ``"superstep"``.
    span_id:
        Unique id within the owning tracer (assigned in *start* order).
    parent_id:
        ``span_id`` of the enclosing span, or ``None`` at top level.
    level:
        Agglomeration level the span belongs to, when applicable.
    start_ns, end_ns:
        Monotonic-clock nanosecond timestamps (:func:`time.monotonic_ns`
        via :class:`repro.util.timing.Timer`); comparable within one
        process only.
    items:
        Number of work items the region processed (0 when not stamped).
    pid, tid:
        OS process id and native thread id that executed the region.
        Stamped on every span (not just run-level meta) so spans from
        worker processes land on their own lanes in exported traces.
    epoch_ns:
        The owning tracer's monotonic-clock epoch (``time.monotonic_ns``
        at tracer creation).  CLOCK_MONOTONIC is machine-wide on Linux,
        so worker-recorded timestamps sharing this epoch align with
        parent spans; a span whose epoch differs is from another clock
        domain and must not be compared by raw timestamp.
    attrs:
        Free-form attributes stamped via :meth:`_SpanHandle.set`.
    """

    name: str
    span_id: int
    parent_id: int | None = None
    level: int | None = None
    start_ns: int = 0
    end_ns: int = 0
    items: int = 0
    pid: int | None = None
    tid: int | None = None
    epoch_ns: int = 0
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    @property
    def duration_s(self) -> float:
        return self.duration_ns / 1e9


@dataclass(frozen=True)
class CounterSample:
    """One timestamped value of a counter time series (schema v3).

    Unlike the end-of-run metric snapshot (one aggregate value per
    counter), counter samples are a *time series*: the telemetry
    sampler records one per sampling tick, so resource usage (anonymous
    RSS, GC collections, spill bytes) becomes a curve over the run
    rather than a single total.  ``ts_ns`` shares the owning tracer's
    monotonic clock, making samples directly comparable to span
    windows; ``unit`` is a display hint (``"MiB"``, ``"bytes"``,
    ``"count"``); ``pid`` is the sampling process.
    """

    name: str
    ts_ns: int
    value: float
    unit: str = ""
    pid: int | None = None


class _SpanHandle:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_span", "_timer")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span
        self._timer = Timer()

    def set(self, *, items: int | None = None, **attrs: Any) -> "_SpanHandle":
        """Stamp attributes onto the span; chainable."""
        if items is not None:
            self._span.items = int(items)
        if attrs:
            self._span.attrs.update(attrs)
        return self

    @property
    def span(self) -> Span:
        return self._span

    def __enter__(self) -> "_SpanHandle":
        self._timer.start()
        self._span.start_ns = self._timer.start_ns or 0
        self._tracer._stack.append(self._span)
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self._timer.stop()
        self._span.end_ns = self._timer.stop_ns or self._span.start_ns
        if exc_type is not None:
            self._span.attrs.setdefault("error", exc_type.__name__)
        stack = self._tracer._stack
        if stack and stack[-1] is self._span:
            stack.pop()
        else:  # pragma: no cover - malformed nesting, keep best effort
            try:
                stack.remove(self._span)
            except ValueError:
                pass
        self._tracer.spans.append(self._span)


class Tracer:
    """Collects nested wall-clock spans plus a metrics registry.

    Spans land on :attr:`spans` in completion order; metrics (counters,
    gauges, histograms) live on :attr:`metrics`.  One tracer serves one
    logical run but may span several :func:`detect_communities` calls
    (the bench harness tags each with a ``"run"`` root span).
    """

    enabled = True

    def __init__(self) -> None:
        self.spans: list[Span] = []
        #: Counter time-series samples (schema v3), in record order.
        #: Appended by the telemetry sampler's background thread —
        #: ``list.append`` is atomic under the GIL, so no lock is
        #: needed between the sampler and the exporting main thread.
        self.counter_samples: list[CounterSample] = []
        self.metrics = MetricsRegistry()
        #: Monotonic-clock epoch stamped on every span this tracer
        #: records; worker lanes recorded against the same machine clock
        #: share it, which is what lets lanes align in exported traces.
        self.epoch_ns = time.monotonic_ns()
        self._stack: list[Span] = []
        self._next_id = 0

    def span(
        self, name: str, *, level: int | None = None, **attrs: Any
    ) -> _SpanHandle:
        """Open a traced region; use as a context manager."""
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(
            name=name,
            span_id=self._next_id,
            parent_id=parent,
            level=level,
            pid=os.getpid(),
            tid=threading.get_native_id(),
            epoch_ns=self.epoch_ns,
            attrs=dict(attrs) if attrs else {},
        )
        self._next_id += 1
        return _SpanHandle(self, span)

    def record_span(
        self,
        name: str,
        *,
        start_ns: int,
        end_ns: int,
        level: int | None = None,
        pid: int | None = None,
        tid: int | None = None,
        items: int = 0,
        **attrs: Any,
    ) -> Span:
        """Append an externally-measured, already-finished span.

        This is how worker flight records become trace lanes: the worker
        measured its own chunk window (same machine monotonic clock) and
        shipped the timestamps home; the parent records them here without
        re-timing.  The span parents onto the innermost open span, so
        draining flight records inside the ``pool_run`` region nests the
        lanes correctly.  ``pid`` defaults to the calling process;
        ``tid`` defaults to ``pid`` (worker processes are
        single-threaded), keeping one lane per worker in trace viewers.
        """
        parent = self._stack[-1].span_id if self._stack else None
        pid = os.getpid() if pid is None else int(pid)
        span = Span(
            name=name,
            span_id=self._next_id,
            parent_id=parent,
            level=level,
            start_ns=int(start_ns),
            end_ns=int(end_ns),
            items=int(items),
            pid=pid,
            tid=pid if tid is None else int(tid),
            epoch_ns=self.epoch_ns,
            attrs=dict(attrs) if attrs else {},
        )
        self._next_id += 1
        self.spans.append(span)
        return span

    def record_counter(
        self,
        name: str,
        value: float,
        *,
        ts_ns: int | None = None,
        unit: str = "",
        pid: int | None = None,
    ) -> CounterSample:
        """Append one counter time-series sample (schema v3).

        ``ts_ns`` defaults to *now* on this tracer's monotonic clock.
        Thread-safe with respect to span recording: the sample list is
        append-only and exported snapshots take a copy.
        """
        sample = CounterSample(
            name=name,
            ts_ns=time.monotonic_ns() if ts_ns is None else int(ts_ns),
            value=float(value),
            unit=unit,
            pid=os.getpid() if pid is None else int(pid),
        )
        self.counter_samples.append(sample)
        return sample

    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    # Convenience pass-throughs so instrumented code never needs to know
    # whether it holds a Tracer or the NullTracer.
    def counter(self, name: str):
        return self.metrics.counter(name)

    def gauge(self, name: str):
        return self.metrics.gauge(name)

    def histogram(self, name: str, edges=None):
        return self.metrics.histogram(name, edges)

    def find(self, name: str) -> list[Span]:
        """All finished spans with the given name, in completion order."""
        return [s for s in self.spans if s.name == name]


class _NullSpanHandle:
    """Shared do-nothing span handle — the untraced fast path."""

    __slots__ = ()

    def set(self, **_kw: Any) -> "_NullSpanHandle":
        return self

    @property
    def span(self) -> None:
        return None

    def __enter__(self) -> "_NullSpanHandle":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None


_NULL_HANDLE = _NullSpanHandle()


class NullTracer:
    """API-compatible tracer that records nothing.

    ``span()`` returns one module-level handle regardless of arguments,
    so the instrumented hot path costs a single attribute lookup and
    call — no allocation, no ``monotonic_ns`` reads.  All metric
    handles are shared no-ops too.
    """

    enabled = False
    spans: tuple = ()
    counter_samples: tuple = ()
    epoch_ns = 0

    def __init__(self) -> None:
        self.metrics = NullMetricsRegistry()

    def span(self, name: str, **_kw: Any) -> _NullSpanHandle:
        return _NULL_HANDLE

    def record_span(self, name: str, **_kw: Any) -> None:
        return None

    def record_counter(self, name: str, value: float, **_kw: Any) -> None:
        return None

    @property
    def current(self) -> None:
        return None

    def counter(self, name: str):
        return self.metrics.counter(name)

    def gauge(self, name: str):
        return self.metrics.gauge(name)

    def histogram(self, name: str, edges=None):
        return self.metrics.histogram(name, edges)

    def find(self, name: str) -> list:
        return []


#: Shared default used by every ``tracer=None`` code path.
NULL_TRACER = NullTracer()


def as_tracer(tracer: "Tracer | NullTracer | None") -> "Tracer | NullTracer":
    """Normalize an optional tracer argument to a usable instance."""
    return NULL_TRACER if tracer is None else tracer
