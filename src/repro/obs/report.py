"""Self-contained run reports: trace + timeline + ledger + attribution.

``repro report`` (see :mod:`repro.cli`) turns one run's artifacts into a
single human-readable document — the repro evidence a PR or a paper
comparison attaches:

* the per-phase breakdown (total and self time, contraction share — the
  paper's §IV-C 40–80 % claim, checked on *this* run);
* the per-level table: phase seconds, worker imbalance, and — when a
  benchmark ledger rides along — the quality curve (modularity /
  coverage per level);
* the hotspot ranking by self-time (the optimization worklist);
* worker-lane statistics and the Amdahl decomposition from
  :mod:`repro.obs.attribution`;
* the consistency-invariant verdict, so a report built from a skewed or
  mis-parented trace says so on its face.

Output is GitHub-flavoured Markdown; ``--html`` additionally wraps it
via a small built-in converter (headings, pipe tables, code fences,
inline code — the subset the report uses) so the HTML file is fully
self-contained: no JavaScript, no external assets, openable offline.

The ledger argument is duck-typed (anything shaped like
:class:`repro.bench.ledger.RunRecord`) so this module never imports the
bench layer — observability stays importable on its own.
"""

from __future__ import annotations

import html as _html
import os
import re
from typing import Any, Sequence

from repro.obs.attribution import attribute_run
from repro.obs.sinks import TraceData, phase_totals
from repro.util.atomicio import atomic_write_text

__all__ = ["render_report", "write_report", "markdown_to_html"]


def _fmt_s(v: float) -> str:
    return f"{v:.4f}"


def _table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """A GitHub-flavoured Markdown pipe table."""
    lines = [
        "| " + " | ".join(headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    lines.extend("| " + " | ".join(r) + " |" for r in rows)
    return "\n".join(lines)


def render_report(
    trace: TraceData,
    *,
    ledger: Any = None,
    title: str = "repro run report",
    attribution: dict | None = None,
) -> str:
    """Render one run's Markdown report.

    ``trace`` is a parsed JSONL trace (:func:`repro.obs.read_trace`);
    ``ledger`` an optional loaded benchmark ledger (duck-typed
    ``RunRecord``) whose repetition statistics and quality curve are
    folded in; ``attribution`` a precomputed block from
    :func:`~repro.obs.attribution.attribute_run` (computed from the
    trace's spans when omitted).
    """
    attr = (
        attribution
        if attribution is not None
        else attribute_run(trace.spans)
    )
    out: list[str] = [f"# {title}", ""]

    # ------------------------------------------------------------- context
    ctx_rows: list[list[str]] = []
    for key, value in sorted(trace.meta.items()):
        ctx_rows.append([str(key), f"`{value}`"])
    if ledger is not None:
        g = getattr(ledger, "graph", {}) or {}
        h = getattr(ledger, "host", {}) or {}
        reps = getattr(ledger, "repetitions", []) or []
        ctx_rows.append(
            [
                "graph",
                f"`{g.get('name', '?')}` "
                f"(\\|V\\|={g.get('n_vertices', '?')}, "
                f"\\|E\\|={g.get('n_edges', '?')})",
            ]
        )
        ctx_rows.append(
            [
                "host",
                f"{h.get('hostname', '?')} ({h.get('cpu_count', '?')} cpus, "
                f"python {h.get('python', '?')})",
            ]
        )
        ctx_rows.append(["repetitions", str(len(reps))])
    ctx_rows.append(["spans", str(len(trace.spans))])
    ctx_rows.append(["trace schema", f"v{trace.version}"])
    out += ["## Run context", "", _table(["key", "value"], ctx_rows), ""]

    # ------------------------------------------------------------- phases
    totals = phase_totals(trace.spans)
    phase_rows = []
    for name in ("score", "match", "contract"):
        p = attr["phases"][name]
        share = totals[name] / totals["total"] if totals["total"] > 0 else 0.0
        phase_rows.append(
            [
                name,
                _fmt_s(p["total_s"]),
                _fmt_s(p["self_s"]),
                str(p["n_spans"]),
                f"{100.0 * share:.1f}%",
            ]
        )
    phase_rows.append(
        ["total", _fmt_s(totals["total"]), "", "", "100.0%"]
    )
    out += [
        "## Phase breakdown",
        "",
        _table(
            ["phase", "total s", "self s", "spans", "share"], phase_rows
        ),
        "",
        f"Contraction share of phase time: "
        f"**{100.0 * totals['contract_share']:.1f}%** "
        f"(the paper reports 40–80% on its inputs).",
        "",
    ]

    # ------------------------------------------------------------- levels
    quality_by_level: dict[int, dict] = {}
    if ledger is not None:
        reps = getattr(ledger, "repetitions", []) or []
        if reps and getattr(reps[0], "quality", None):
            for s in reps[0].quality.get("levels", []):
                quality_by_level[s["level"]] = s
    if attr["levels"]:
        has_quality = bool(quality_by_level)
        headers = ["level", "score s", "match s", "contract s", "imbalance"]
        if has_quality:
            headers += ["communities", "modularity", "coverage"]
        rows = []
        for lv in attr["levels"]:
            row = [
                str(lv["level"]),
                _fmt_s(lv["score_s"]),
                _fmt_s(lv["match_s"]),
                _fmt_s(lv["contract_s"]),
                f"{lv['imbalance']:.2f}" if lv["imbalance"] else "-",
            ]
            if has_quality:
                q = quality_by_level.get(lv["level"])
                row += (
                    [
                        str(q["n_communities"]),
                        f"{q['modularity']:.4f}",
                        f"{q['coverage']:.4f}",
                    ]
                    if q
                    else ["-", "-", "-"]
                )
            rows.append(row)
        out += ["## Per-level timeline", "", _table(headers, rows), ""]

    # ------------------------------------------------------------ hotspots
    if attr["hotspots"]:
        out += [
            "## Hotspots (by self-time)",
            "",
            _table(
                ["rank", "span", "self s", "spans", "share"],
                [
                    [
                        str(i + 1),
                        f"`{h['name']}`",
                        _fmt_s(h["self_s"]),
                        str(h["n_spans"]),
                        f"{100.0 * h['share']:.1f}%",
                    ]
                    for i, h in enumerate(attr["hotspots"])
                ],
            ),
            "",
        ]

    # ------------------------------------------------------------- workers
    w = attr["workers"]
    amdahl = attr["amdahl"]
    serial = attr["serial"]
    out += ["## Parallel efficiency", ""]
    if w["source"] is None:
        out += ["No worker-lane data in this trace (untraced pool?).", ""]
    else:
        lane_rows = [
            [f"`{pid}`", _fmt_s(busy)]
            for pid, busy in w["busy_s"].items()
        ]
        out += [
            f"Lane source: `{w['source']}` — {w['n_lanes']} lane(s), "
            f"{w['n_chunks']} chunk(s).",
            "",
            _table(["worker (pid)", "busy s"], lane_rows),
            "",
            _table(
                ["metric", "value"],
                [
                    ["load imbalance (max/mean busy)", f"{w['imbalance']:.2f}"],
                    ["total exec time", _fmt_s(w["exec_s"])],
                    ["total queue wait", _fmt_s(w["queue_wait_s"])],
                    [
                        "serial fraction",
                        f"{100.0 * serial['fraction']:.1f}% "
                        f"({_fmt_s(serial['serial_s'])}s of "
                        f"{_fmt_s(serial['total_s'])}s)",
                    ],
                    [
                        f"Amdahl ceiling at N={amdahl['n_workers']}",
                        f"{amdahl['ceiling_at_n']:.2f}×",
                    ],
                    [
                        "Amdahl ceiling (N→∞)",
                        (
                            f"{amdahl['ceiling_inf']:.2f}×"
                            if amdahl["ceiling_inf"] != float("inf")
                            else "unbounded"
                        ),
                    ],
                ],
            ),
            "",
        ]

    # ------------------------------------------------------------- memory
    mem = attr.get("memory") or {}
    if mem.get("phases"):
        rows = []
        for name in ("score", "match", "contract"):
            p = mem["phases"].get(name)
            if p is None:
                continue
            top = p.get("top_sites") or []
            site = (
                f"`{top[0]['site']}` "
                f"({top[0]['net_bytes'] / 1e6:+.1f} MB)"
                if top
                else "-"
            )
            rows.append(
                [
                    name,
                    str(p["calls"]),
                    f"{p['net_bytes'] / 1e6:+.1f}",
                    f"{p['peak_bytes'] / 1e6:.1f}",
                    site,
                ]
            )
        if rows:
            out += [
                "## Memory attribution",
                "",
                f"Phase-scoped tracemalloc deltas "
                f"(`{mem.get('tool', 'tracemalloc')}`, "
                f"{mem.get('frames', '?')} frame(s) deep); net is "
                "allocation minus frees across the phase, peak is the "
                "traced high-water mark above the phase's entry level.",
                "",
                _table(
                    ["phase", "calls", "net MB", "peak MB", "top site"],
                    rows,
                ),
                "",
            ]

    # ---------------------------------------------------------- telemetry
    if trace.samples:
        series: dict[str, list] = {}
        for s in trace.samples:
            series.setdefault(s.name, []).append(s)
        rows = []
        for name in sorted(series):
            ss = series[name]
            values = [s.value for s in ss]
            span_s = (ss[-1].ts_ns - ss[0].ts_ns) / 1e9
            rows.append(
                [
                    f"`{name}`",
                    str(len(ss)),
                    f"{min(values):.1f}",
                    f"{max(values):.1f}",
                    f"{values[-1]:.1f}",
                    _fmt_s(span_s),
                ]
            )
        out += [
            "## Live telemetry",
            "",
            f"{len(trace.samples)} counter sample(s) across "
            f"{len(series)} series (schema v3 counter tracks; open the "
            "Perfetto export to see the curves).",
            "",
            _table(
                ["series", "samples", "min", "max", "last", "window s"],
                rows,
            ),
            "",
        ]

    # ------------------------------------------------------------- ledger
    if ledger is not None and getattr(ledger, "repetitions", None):
        reps = ledger.repetitions
        rows = []
        for phase in ("score", "match", "contract", "total"):
            values = [
                r.phases[phase]
                for r in reps
                if r.phases and phase in r.phases
            ]
            if values:
                rows.append(
                    [
                        phase,
                        _fmt_s(min(values)),
                        _fmt_s(sorted(values)[len(values) // 2]),
                        _fmt_s(max(values)),
                    ]
                )
        rows.append(
            [
                "end_to_end",
                _fmt_s(min(r.total_s for r in reps)),
                _fmt_s(sorted(r.total_s for r in reps)[len(reps) // 2]),
                _fmt_s(max(r.total_s for r in reps)),
            ]
        )
        out += [
            "## Benchmark ledger",
            "",
            f"`{getattr(ledger, 'name', '?')}` — min/median/max over "
            f"{len(reps)} repetition(s).",
            "",
            _table(["phase", "min s", "median s", "max s"], rows),
            "",
        ]

    # --------------------------------------------------------------- tuner
    tuner = None
    if ledger is not None and getattr(ledger, "repetitions", None):
        tuner = getattr(ledger.repetitions[0], "tuner", None)
    if tuner:
        sel = tuner.get("selected") or {}
        summary = "; ".join(
            f"{kind}: "
            + ", ".join(f"`{n}`×{c}" for n, c in sorted(counts.items()))
            for kind, counts in sorted(sel.items())
        )
        rows = []
        for d in tuner.get("decisions") or []:
            pred = (d.get("predicted_s") or {}).get(d.get("chosen"))
            shape = d.get("shape") or {}
            rows.append(
                [
                    str(d.get("level", "?")),
                    d.get("kind", "?"),
                    f"`{d.get('chosen', '?')}`",
                    (
                        _fmt_s(pred)
                        if isinstance(pred, (int, float))
                        else "-"
                    ),
                    str(shape.get("n_edges", "-")),
                    (
                        f"{shape['degree_cv']:.2f}"
                        if isinstance(shape.get("degree_cv"), (int, float))
                        else "-"
                    ),
                    "yes" if d.get("constrained_sharded") else "",
                ]
            )
        out += [
            "## Kernel selection (tuner)",
            "",
            f"Policy `{tuner.get('policy', '?')}` made "
            f"{tuner.get('n_decisions', 0)} per-level decision(s) — "
            f"{summary}. A regression between two ledgers with different "
            "selections here is a tuner change, not a kernel change "
            "(`repro compare` flags this as config drift).",
            "",
            _table(
                [
                    "level",
                    "kind",
                    "chosen",
                    "pred s",
                    "edges",
                    "deg CV",
                    "sharded-constrained",
                ],
                rows,
            ),
            "",
        ]
    else:
        tuner_spans = [s for s in trace.spans if s.name == "tuner_select"]
        if tuner_spans:
            rows = [
                [
                    str(s.level if s.level is not None else "?"),
                    f"`{s.attrs.get('matcher', '-')}`",
                    f"`{s.attrs.get('contractor', '-')}`",
                    (
                        f"{s.attrs['degree_cv']:.2f}"
                        if isinstance(s.attrs.get("degree_cv"), (int, float))
                        else "-"
                    ),
                    "yes" if s.attrs.get("constrained_sharded") else "",
                ]
                for s in sorted(tuner_spans, key=lambda s: s.level or 0)
            ]
            policy = tuner_spans[0].attrs.get("policy", "?")
            out += [
                "## Kernel selection (tuner)",
                "",
                f"Per-level selections from the trace's `tuner_select` "
                f"spans (policy `{policy}`; no ledger tuner block "
                "available).",
                "",
                _table(
                    [
                        "level",
                        "matcher",
                        "contractor",
                        "deg CV",
                        "sharded-constrained",
                    ],
                    rows,
                ),
                "",
            ]

    # -------------------------------------------------------- consistency
    cons = attr["consistency"]
    out += ["## Trace consistency", ""]
    if cons["violations"]:
        out += [
            f"**{len(cons['violations'])} invariant violation(s)** over "
            f"{cons['checked']} spans — treat the attribution above with "
            "suspicion:",
            "",
        ]
        out += [
            f"- `{v['kind']}` on `{v['span']}` (span {v['span_id']}): "
            f"{v['detail']}"
            for v in cons["violations"]
        ]
        out.append("")
    else:
        out += [
            f"All {cons['checked']} spans satisfy the timing invariants "
            "(child coverage, window containment, worker-lane overlap "
            "budget).",
            "",
        ]
    return "\n".join(out).rstrip() + "\n"


# ------------------------------------------------------------------ HTML
_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       max-width: 60rem; margin: 2rem auto; padding: 0 1rem;
       color: #1f2328; line-height: 1.5; }
h1, h2 { border-bottom: 1px solid #d1d9e0; padding-bottom: .3rem; }
table { border-collapse: collapse; margin: .5rem 0; }
th, td { border: 1px solid #d1d9e0; padding: .25rem .6rem;
         text-align: left; font-variant-numeric: tabular-nums; }
th { background: #f6f8fa; }
code { background: #f6f8fa; padding: .1rem .3rem; border-radius: 4px;
       font-size: .92em; }
pre { background: #f6f8fa; padding: .6rem; overflow-x: auto; }
"""


def _inline_html(text: str) -> str:
    """Escape, then apply the inline Markdown the report emits."""
    s = _html.escape(text, quote=False)
    s = s.replace("\\|", "|")
    s = re.sub(r"`([^`]+)`", r"<code>\1</code>", s)
    s = re.sub(r"\*\*([^*]+)\*\*", r"<strong>\1</strong>", s)
    return s


def markdown_to_html(md: str, *, title: str = "repro report") -> str:
    """Convert the report's Markdown subset to a self-contained HTML page.

    Supports headings, pipe tables, fenced code blocks, bullet lists,
    inline code, and bold — exactly what :func:`render_report` emits.
    Not a general-purpose Markdown engine.
    """
    lines = md.splitlines()
    body: list[str] = []
    i = 0
    while i < len(lines):
        line = lines[i]
        if line.startswith("```"):
            block = []
            i += 1
            while i < len(lines) and not lines[i].startswith("```"):
                block.append(_html.escape(lines[i]))
                i += 1
            i += 1
            body.append("<pre>" + "\n".join(block) + "</pre>")
            continue
        m = re.match(r"^(#{1,6})\s+(.*)$", line)
        if m:
            n = len(m.group(1))
            body.append(f"<h{n}>{_inline_html(m.group(2))}</h{n}>")
            i += 1
            continue
        if line.startswith("|"):
            rows = []
            while i < len(lines) and lines[i].startswith("|"):
                cells = [
                    c.strip()
                    for c in re.split(r"(?<!\\)\|", lines[i].strip())[1:-1]
                ]
                rows.append(cells)
                i += 1
            header, data = rows[0], rows[2:] if len(rows) > 2 else []
            parts = ["<table>", "<thead><tr>"]
            parts += [f"<th>{_inline_html(c)}</th>" for c in header]
            parts += ["</tr></thead>", "<tbody>"]
            for r in data:
                parts.append(
                    "<tr>"
                    + "".join(f"<td>{_inline_html(c)}</td>" for c in r)
                    + "</tr>"
                )
            parts += ["</tbody>", "</table>"]
            body.append("".join(parts))
            continue
        if line.startswith("- "):
            items = []
            while i < len(lines) and lines[i].startswith("- "):
                items.append(f"<li>{_inline_html(lines[i][2:])}</li>")
                i += 1
            body.append("<ul>" + "".join(items) + "</ul>")
            continue
        if line.strip():
            body.append(f"<p>{_inline_html(line)}</p>")
        i += 1
    return (
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
        "<meta charset=\"utf-8\">\n"
        f"<title>{_html.escape(title)}</title>\n"
        f"<style>{_CSS}</style>\n</head>\n<body>\n"
        + "\n".join(body)
        + "\n</body>\n</html>\n"
    )


def write_report(
    trace: TraceData,
    path: str | os.PathLike,
    *,
    ledger: Any = None,
    title: str = "repro run report",
    as_html: bool = False,
    attribution: dict | None = None,
) -> str:
    """Render and atomically write the report; returns the Markdown text."""
    md = render_report(
        trace, ledger=ledger, title=title, attribution=attribution
    )
    payload = markdown_to_html(md, title=title) if as_html else md
    atomic_write_text(path, payload)
    return md
