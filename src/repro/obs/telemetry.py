"""Live telemetry: in-flight resource sampling and the status heartbeat.

Every other observability layer (spans, ledger, attribution, Perfetto)
is post-mortem — nothing is visible until the run ends.  This module is
the in-flight tier: a background :class:`TelemetrySampler` thread that
periodically records

* anonymous RSS (:func:`repro.util.memprobe.rss_anon_mb`),
* cumulative GC collections,
* spill bytes and open level-store count (from the run's backend),
* live worker count (heartbeats piggybacked on the pool's metrics
  queue),
* the current phase/level (published by the engine via ``RunContext``)

into the trace as schema-v3 **counter samples**
(:meth:`~repro.obs.trace.Tracer.record_counter`), so a live run's
resource usage becomes a time series — exported as Perfetto counter
tracks by :mod:`repro.obs.perfetto` — instead of a single post-run
total.  Each tick also rewrites an atomically-replaced ``status.json``
heartbeat (current level/phase, progress, guardian ladder state, memory
and ramp rate, last-sample timestamp) that ``repro watch`` renders
live; :func:`render_status` is that renderer.

The sampler keeps a bounded ring buffer of ``(ts_ns, rss_mb)`` pairs;
:meth:`TelemetrySampler.ramp_mb_s` fits the RSS ramp rate over a recent
window.  The guardian's memory-budget probe consumes this to fire the
spill rung *predictively* — when the current trajectory would cross the
budget within its horizon — rather than waiting for the hard breach
(see :mod:`repro.resilience.guardian`).

Zero overhead when off: the default is :data:`NULL_TELEMETRY`, whose
hooks are attribute-lookup no-ops — no thread, no samples, no status
file, and the trace byte-output is unchanged.
"""

from __future__ import annotations

import gc
import json
import os
import threading
import time
from collections import deque
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.errors import ReproError
from repro.obs.trace import NullTracer, Tracer, as_tracer
from repro.util.atomicio import atomic_write_text
from repro.util.log import get_logger
from repro.util.memprobe import rss_anon_mb, rss_probe_source

if TYPE_CHECKING:  # engine imports this module; never the reverse at runtime
    from repro.core.engine import RunContext

__all__ = [
    "TelemetrySampler",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "as_telemetry",
    "record_worker_heartbeat",
    "workers_alive",
    "read_status",
    "render_status",
    "STATUS_FILENAME",
    "STATUS_SCHEMA",
    "STATUS_VERSION",
    "PHASE_IDS",
]

_log = get_logger("obs.telemetry")

#: Default name of the heartbeat file inside a run/output directory.
STATUS_FILENAME = "status.json"
STATUS_SCHEMA = "repro-status"
STATUS_VERSION = 1

#: Numeric encoding of the pipeline phase for the ``phase_id`` counter
#: track (counter tracks plot numbers, not strings).  ``idle`` covers
#: between-level housekeeping; ``done`` is published when the run ends.
PHASE_IDS = {"idle": 0, "score": 1, "match": 2, "contract": 3, "done": 4}

#: A worker whose last heartbeat is older than this is counted dead.
WORKER_LIVENESS_WINDOW_S = 15.0

# ------------------------------------------------------ worker heartbeats
#: pid -> monotonic_ns of the worker's last payload.  Written by the
#: parent's pool drain loop (single writer per key; dict item assignment
#: is atomic under the GIL), read by the sampler thread.
_worker_heartbeats: dict[int, int] = {}


def record_worker_heartbeat(pid: int) -> None:
    """Note that worker ``pid`` delivered a payload just now.

    Called by the supervised pool's drain loop, which only runs when a
    tracer is attached — the untraced path never reaches here.  Cheap
    enough to call per payload (one dict store).
    """
    _worker_heartbeats[pid] = time.monotonic_ns()


def workers_alive(
    *, window_s: float = WORKER_LIVENESS_WINDOW_S, now_ns: int | None = None
) -> int:
    """Number of workers heard from within the liveness window."""
    now = time.monotonic_ns() if now_ns is None else now_ns
    horizon = now - int(window_s * 1e9)
    return sum(1 for ts in list(_worker_heartbeats.values()) if ts >= horizon)


def _reset_worker_heartbeats() -> None:
    """Test hook: forget all heartbeats."""
    _worker_heartbeats.clear()


# --------------------------------------------------------------- sampler
class TelemetrySampler:
    """Background resource sampler for one run; see the module docstring.

    Parameters
    ----------
    tracer:
        Destination for counter samples.  A :class:`NullTracer` is
        accepted (status.json still updates; no trace records).
    interval_s:
        Sampling period of the background thread.
    status_path:
        Heartbeat file rewritten (atomically) every tick; ``None``
        disables the heartbeat.  A directory is accepted and gets
        ``status.json`` appended.
    ring_size:
        Capacity of the ``(ts_ns, rss_mb)`` ring buffer the ramp-rate
        estimate (and the guardian's predictive spill) reads.
    meta:
        Free-form run identification merged into every status snapshot
        (e.g. ``{"graph": "email-Enron"}``).

    Use as a context manager (``with sampler:``) or call
    :meth:`start` / :meth:`stop` explicitly; :meth:`stop` is idempotent
    and always joins the thread, so a ``finally: sampler.stop()`` keeps
    the thread from outliving an aborted run.
    """

    enabled = True

    def __init__(
        self,
        tracer: Tracer | NullTracer | None = None,
        *,
        interval_s: float = 0.25,
        status_path: str | os.PathLike | None = None,
        ring_size: int = 240,
        meta: dict | None = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if ring_size < 2:
            raise ValueError("ring_size must be >= 2")
        self.tracer = as_tracer(tracer)
        self.interval_s = float(interval_s)
        if status_path is not None:
            p = Path(os.fspath(status_path))
            if p.is_dir():
                p = p / STATUS_FILENAME
            self.status_path: Path | None = p
        else:
            self.status_path = None
        self.meta = dict(meta or {})
        #: ``(ts_ns, rss_mb)`` pairs, newest last.  Appends are
        #: GIL-atomic; readers snapshot with ``list(ring)``.
        self.ring: deque[tuple[int, float]] = deque(maxlen=ring_size)
        self.rss_source = rss_probe_source()
        self.n_samples = 0
        self.peak_rss_mb: float | None = None
        self.max_ramp_mb_s: float | None = None
        self._phase: str = "idle"
        self._level: int | None = None
        self._levels_done = 0
        self._n_communities: int | None = None
        self._state = "created"
        self._ctx: "RunContext | None" = None
        self._started_unix: float | None = None
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------ run wiring
    def bind_run(self, ctx: "RunContext") -> None:
        """Attach to a run context.

        Gives the sampler live access to ``ctx.backend`` (spill bytes /
        open stores — followed through the guardian's spill swap, since
        the attribute is re-read every tick) and ``ctx.recovery`` (the
        guardian ladder state for status.json).  Called by the engine
        at run start; harmless to call more than once.
        """
        self._ctx = ctx

    def publish_phase(self, phase: str, level: int | None = None) -> None:
        """Engine hook: the pipeline just entered ``phase`` at ``level``."""
        self._phase = phase
        self._level = level

    def publish_progress(
        self, levels_done: int, n_communities: int | None = None
    ) -> None:
        """Engine hook: a level completed."""
        self._levels_done = int(levels_done)
        if n_communities is not None:
            self._n_communities = int(n_communities)

    # ------------------------------------------------------- lifecycle
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "TelemetrySampler":
        """Start the background sampling thread (idempotent)."""
        if self.running:
            return self
        self._stop_event.clear()
        self._state = "running"
        self._started_unix = time.time()
        self._thread = threading.Thread(
            target=self._loop, name="repro-telemetry", daemon=True
        )
        self._thread.start()
        return self

    def stop(
        self, *, timeout_s: float = 5.0, state: str | None = None
    ) -> None:
        """Stop and join the sampler; writes a final status snapshot.

        Idempotent and exception-safe: safe to call from a ``finally``
        around an aborting run, and safe to call when :meth:`start`
        never ran.  ``state`` overrides the terminal state recorded in
        the final snapshot (e.g. ``"failed"`` when the run aborted).
        """
        self._stop_event.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=timeout_s)
            if thread.is_alive():  # pragma: no cover - pathological stall
                _log.warning("telemetry sampler thread did not join")
        if state is not None:
            self._state = state
        elif self._state == "running":
            self._state = "stopped"
        # One last sample so status.json reflects the terminal state.
        try:
            self.sample_once()
        except Exception:  # pragma: no cover - never fail a shutdown
            _log.exception("final telemetry sample failed")

    def __enter__(self) -> "TelemetrySampler":
        return self.start()

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.stop(state="failed" if exc_type is not None else None)

    def _loop(self) -> None:
        while not self._stop_event.wait(self.interval_s):
            try:
                self.sample_once()
            except Exception:  # pragma: no cover - keep the thread alive
                _log.exception("telemetry sample failed")

    # -------------------------------------------------------- sampling
    def ramp_mb_s(self, *, window_s: float | None = None) -> float | None:
        """RSS ramp rate in MiB/s over the recent window (None: unknown).

        A simple first/last slope over the ring samples inside the
        window — robust enough for trend detection and cheap enough to
        run every guardian phase boundary.
        """
        if window_s is None:
            window_s = max(10 * self.interval_s, 2.0)
        samples = list(self.ring)
        if len(samples) < 2:
            return None
        horizon = samples[-1][0] - int(window_s * 1e9)
        windowed = [s for s in samples if s[0] >= horizon]
        if len(windowed) < 2:
            windowed = samples[-2:]
        (t0, r0), (t1, r1) = windowed[0], windowed[-1]
        dt_s = (t1 - t0) / 1e9
        if dt_s <= 0:
            return None
        return (r1 - r0) / dt_s

    def sample_once(self, *, now_ns: int | None = None) -> dict:
        """Take one sample: record counters, update the ring and status.

        Returns the status snapshot dict (what status.json holds).
        Callable synchronously — tests and the final :meth:`stop`
        snapshot use it without the thread.
        """
        ts = time.monotonic_ns() if now_ns is None else int(now_ns)
        tr = self.tracer
        rss = rss_anon_mb()
        if rss is not None:
            self.ring.append((ts, rss))
            if self.peak_rss_mb is None or rss > self.peak_rss_mb:
                self.peak_rss_mb = rss
            tr.record_counter("rss_anon_mb", rss, ts_ns=ts, unit="MiB")
        gc_collections = sum(s["collections"] for s in gc.get_stats())
        tr.record_counter(
            "gc_collections", gc_collections, ts_ns=ts, unit="count"
        )
        backend = self._ctx.backend if self._ctx is not None else None
        spill_bytes = int(getattr(backend, "spilled_bytes", 0) or 0)
        spilled_levels = int(getattr(backend, "spilled_levels", 0) or 0)
        open_stores = int(getattr(backend, "open_level_stores", 0) or 0)
        if backend is not None and getattr(backend, "sharded", False):
            tr.record_counter(
                "spill_bytes", spill_bytes, ts_ns=ts, unit="bytes"
            )
            tr.record_counter(
                "open_level_stores", open_stores, ts_ns=ts, unit="count"
            )
        n_workers = workers_alive(now_ns=ts)
        tr.record_counter("workers_alive", n_workers, ts_ns=ts, unit="count")
        phase, level = self._phase, self._level
        tr.record_counter(
            "phase_id", PHASE_IDS.get(phase, -1), ts_ns=ts, unit="phase"
        )
        if level is not None:
            tr.record_counter("level", level, ts_ns=ts, unit="count")
        ramp = self.ramp_mb_s()
        if ramp is not None and (
            self.max_ramp_mb_s is None or ramp > self.max_ramp_mb_s
        ):
            self.max_ramp_mb_s = ramp
        self.n_samples += 1

        recovery = self._ctx.recovery if self._ctx is not None else None
        status = {
            "schema": STATUS_SCHEMA,
            "version": STATUS_VERSION,
            "pid": os.getpid(),
            "state": self._state,
            "started_unix": self._started_unix,
            "updated_unix": time.time(),
            "interval_s": self.interval_s,
            "phase": phase,
            "level": level,
            "levels_done": self._levels_done,
            "n_communities": self._n_communities,
            "rss_mb": rss,
            "rss_source": self.rss_source,
            "peak_rss_mb": self.peak_rss_mb,
            "ramp_mb_s": ramp,
            "gc_collections": gc_collections,
            "spill_bytes": spill_bytes,
            "spilled_levels": spilled_levels,
            "open_level_stores": open_stores,
            "workers_alive": n_workers,
            "n_samples": self.n_samples,
            "guardian": {
                "breaches": getattr(recovery, "guardian_breaches", 0),
                "spills": getattr(recovery, "spills", 0),
                "ladder": list(getattr(recovery, "ladder", ()) or ()),
            },
            "meta": self.meta,
        }
        if self.status_path is not None:
            try:
                atomic_write_text(
                    self.status_path, json.dumps(status, indent=1) + "\n"
                )
            except OSError:  # pragma: no cover - heartbeat must not kill runs
                _log.exception("status heartbeat write failed")
        return status

    def stats(self) -> dict:
        """Summary block for the bench ledger (peak + ramp per repetition)."""
        return {
            "n_samples": self.n_samples,
            "interval_s": self.interval_s,
            "rss_source": self.rss_source,
            "peak_rss_mb": self.peak_rss_mb,
            "max_ramp_mb_s": self.max_ramp_mb_s,
        }


class NullTelemetry:
    """Inert telemetry: every hook is a no-op, no thread ever starts.

    The default for every run — mirrors ``NullTracer`` /
    ``NullGuardian`` so instrumented code never branches on ``None``,
    and the untelemetered path records nothing (trace byte-output is
    unchanged).
    """

    enabled = False
    running = False
    ring: tuple = ()
    interval_s = 0.0
    n_samples = 0
    peak_rss_mb = None
    max_ramp_mb_s = None

    def bind_run(self, ctx: Any) -> None:
        return None

    def publish_phase(self, phase: str, level: int | None = None) -> None:
        return None

    def publish_progress(
        self, levels_done: int, n_communities: int | None = None
    ) -> None:
        return None

    def start(self) -> "NullTelemetry":
        return self

    def stop(
        self, *, timeout_s: float = 0.0, state: str | None = None
    ) -> None:
        return None

    def __enter__(self) -> "NullTelemetry":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None

    def ramp_mb_s(self, *, window_s: float | None = None) -> None:
        return None

    def sample_once(self, *, now_ns: int | None = None) -> dict:
        return {}

    def stats(self) -> dict:
        return {}


#: Shared inert instance (stateless, safe to reuse across runs).
NULL_TELEMETRY = NullTelemetry()


def as_telemetry(
    telemetry: "TelemetrySampler | NullTelemetry | None",
) -> "TelemetrySampler | NullTelemetry":
    """Normalize an optional telemetry argument (``None`` -> null)."""
    return NULL_TELEMETRY if telemetry is None else telemetry


# ------------------------------------------------------------ watch view
def read_status(path: str | os.PathLike) -> dict:
    """Load a status.json heartbeat; raises :class:`ReproError` on junk.

    Accepts a directory (``status.json`` appended) or a file path.
    """
    p = Path(os.fspath(path))
    if p.is_dir():
        p = p / STATUS_FILENAME
    try:
        with open(p, "r", encoding="utf-8") as fh:
            status = json.load(fh)
    except OSError as exc:
        raise ReproError(f"{p}: cannot read status: {exc}") from exc
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ReproError(f"{p}: not valid JSON: {exc}") from exc
    if not isinstance(status, dict) or status.get("schema") != STATUS_SCHEMA:
        raise ReproError(f"{p}: not a {STATUS_SCHEMA} file")
    return status


def _fmt_bytes(n: int) -> str:
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if value < 1024 or unit == "TiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024
    return f"{value:.1f} TiB"  # pragma: no cover - unreachable


def render_status(
    status: dict,
    *,
    now_unix: float | None = None,
    stale_after_s: float | None = None,
    stall_after_s: float = 30.0,
) -> str:
    """Render one status snapshot as the ``repro watch`` ASCII view.

    Staleness: the heartbeat's age exceeds ``stale_after_s`` (default:
    four sampling intervals, at least 2 s) — the writing process is
    late, paused, or gone.  Stall: the heartbeat is *fresh* but the run
    has sat in one phase/level for over ``stall_after_s`` without a new
    sample-visible state change (best-effort; the watchdog inside the
    run is the authoritative stall detector).
    """
    now = time.time() if now_unix is None else now_unix
    updated = status.get("updated_unix")
    age = max(0.0, now - updated) if updated is not None else None
    interval = float(status.get("interval_s") or 0.0)
    if stale_after_s is None:
        stale_after_s = max(4 * interval, 2.0)
    state = str(status.get("state", "unknown")).upper()
    badge = state
    if age is not None and age > stale_after_s and state == "RUNNING":
        badge = f"STALE {age:.1f}s"
    elif (
        state == "RUNNING"
        and age is not None
        and age <= stale_after_s
        and interval > 0
        and status.get("n_samples", 0) * interval > stall_after_s
        and status.get("phase") in (None, "idle")
    ):
        badge = "IDLE"

    level = status.get("level")
    phase = status.get("phase") or "-"
    phase_line = f"{phase}" + (f" (level {level})" if level is not None else "")
    rss = status.get("rss_mb")
    peak = status.get("peak_rss_mb")
    ramp = status.get("ramp_mb_s")
    mem = "-" if rss is None else f"{rss:.1f} MiB"
    if peak is not None:
        mem += f" (peak {peak:.1f})"
    if ramp is not None:
        mem += f"  ramp {ramp:+.2f} MiB/s"
    mem += f"  [{status.get('rss_source', '?')}]"
    spill = _fmt_bytes(int(status.get("spill_bytes") or 0))
    spill += (
        f" over {status.get('spilled_levels', 0)} level(s), "
        f"{status.get('open_level_stores', 0)} open store(s)"
    )
    guardian = status.get("guardian") or {}
    ladder = guardian.get("ladder") or []
    gline = (
        f"{guardian.get('breaches', 0)} breach(es), "
        f"{guardian.get('spills', 0)} spill(s)"
    )
    if ladder:
        gline += f", ladder: {' -> '.join(ladder)}"
    heartbeat = "-" if age is None else f"{age:.1f}s ago"
    if interval:
        heartbeat += f" (interval {interval:g}s)"
    meta = status.get("meta") or {}
    title = f"repro run — pid {status.get('pid', '?')} [{badge}]"
    if meta:
        detail = ", ".join(f"{k}={v}" for k, v in sorted(meta.items()))
        title += f"  {detail}"
    lines = [
        title,
        f"  phase    : {phase_line}",
        (
            f"  progress : {status.get('levels_done', 0)} level(s) done"
            + (
                f", {status['n_communities']} communities"
                if status.get("n_communities") is not None
                else ""
            )
        ),
        f"  memory   : {mem}",
        f"  spill    : {spill}",
        f"  workers  : {status.get('workers_alive', 0)} alive",
        f"  gc       : {status.get('gc_collections', 0)} collections",
        f"  guardian : {gline}",
        f"  heartbeat: {heartbeat}, {status.get('n_samples', 0)} samples",
    ]
    return "\n".join(lines)
