"""Performance attribution: self-times, worker lanes, critical path.

The span tracer records *where time went*; this module answers *why the
run was that fast and no faster* — the questions behind the paper's
scalability analysis (contraction at 40–80 % of runtime, speed-up
flattening past the memory bandwidth knee):

* **self-time** — a span's duration minus its direct children, i.e. the
  time attributable to that region's own code rather than the regions
  it called.  :func:`hotspots` ranks span names by total self-time, the
  profile a kernel optimization effort starts from.
* **worker lanes** — ``worker_chunk`` spans are the flight records
  workers self-measure and ship home (see :mod:`repro.parallel.pool`):
  per-worker busy time, queue wait, and load-imbalance ratio
  (max / mean busy time — 1.0 is a perfectly balanced pool).
* **serial fraction & Amdahl ceiling** — the share of the run that
  never enters a multi-worker region bounds any achievable speed-up:
  ``ceiling(N) = 1 / (f + (1 - f) / N)``.  This is the evidence the
  kernel auto-tuner (ROADMAP item 3) consumes.
* **consistency invariant** — in a well-formed trace every parent span
  covers its children: the direct children of a sequential span sum to
  at most the parent's duration, and worker lanes fit inside their pool
  region with at most ``n_workers``-fold overlap.
  :func:`consistency_report` re-derives both from the raw spans, so a
  broken clock, a mis-parented span, or a lane from a foreign clock
  domain is caught instead of silently skewing the attribution.

:func:`attribute_run` bundles everything into the JSON-ready
``attribution`` block the benchmark ledger embeds per repetition
(:mod:`repro.bench.ledger`) and the run report renders
(:mod:`repro.obs.report`).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Sequence

from repro.obs.trace import Span

__all__ = [
    "ATTRIBUTION_SCHEMA_VERSION",
    "WORKER_LANE_SPAN",
    "self_times",
    "hotspots",
    "worker_stats",
    "load_imbalance",
    "serial_fraction",
    "amdahl_ceiling",
    "consistency_report",
    "attribute_run",
]

#: Version of the attribution block schema embedded in ledgers.
ATTRIBUTION_SCHEMA_VERSION = 1

#: Span name of worker flight-recorder lanes.  These overlap in time by
#: design (that is the parallelism), so tree computations (self-time,
#: sequential-coverage checks) exclude them and lane computations
#: (busy time, imbalance) use only them.
WORKER_LANE_SPAN = "worker_chunk"

#: The pipeline phases attribution reports per level.
_PHASES = ("score", "match", "contract")


def _by_id(spans: Sequence[Span]) -> dict[int, Span]:
    return {s.span_id: s for s in spans}


def _level_of(span: Span, by_id: dict[int, Span]) -> int | None:
    """The agglomeration level a span belongs to (walking ancestors)."""
    seen: set[int] = set()
    cur: Span | None = span
    while cur is not None and cur.span_id not in seen:
        if cur.level is not None:
            return cur.level
        seen.add(cur.span_id)
        cur = by_id.get(cur.parent_id) if cur.parent_id is not None else None
    return None


# --------------------------------------------------------------- self-time
def self_times(spans: Sequence[Span]) -> dict[int, float]:
    """Seconds attributable to each span's own code, keyed by span id.

    Self-time is duration minus the summed durations of *direct*
    children.  Worker lanes (:data:`WORKER_LANE_SPAN`) are excluded from
    both sides: they are a parallel overlay of work the parent-side
    ``pool_chunk`` spans already account for, and their overlap would
    drive sequential parents negative.  Values are clamped at zero —
    a slightly negative residue just means children covered the parent
    completely (timer granularity).
    """
    children_s: dict[int, float] = defaultdict(float)
    for s in spans:
        if s.name == WORKER_LANE_SPAN:
            continue
        if s.parent_id is not None:
            children_s[s.parent_id] += s.duration_s
    return {
        s.span_id: max(0.0, s.duration_s - children_s[s.span_id])
        for s in spans
        if s.name != WORKER_LANE_SPAN
    }


def hotspots(spans: Sequence[Span], *, top: int = 8) -> list[dict]:
    """Span names ranked by total self-time (the optimization worklist).

    Returns ``[{"name", "self_s", "n_spans", "share"}, ...]`` sorted by
    descending self-time; ``share`` is the fraction of total self-time
    across all spans (which equals total traced wall time, since
    self-times partition the span tree).
    """
    selfs = self_times(spans)
    agg: dict[str, list[float]] = defaultdict(lambda: [0.0, 0])
    for s in spans:
        if s.name == WORKER_LANE_SPAN:
            continue
        agg[s.name][0] += selfs[s.span_id]
        agg[s.name][1] += 1
    total = sum(v[0] for v in agg.values())
    ranked = sorted(agg.items(), key=lambda kv: kv[1][0], reverse=True)
    return [
        {
            "name": name,
            "self_s": t,
            "n_spans": int(n),
            "share": t / total if total > 0 else 0.0,
        }
        for name, (t, n) in ranked[:top]
    ]


# ------------------------------------------------------------ worker lanes
def load_imbalance(busy_s: dict | Iterable[float]) -> float:
    """Max / mean worker busy time; 1.0 is perfect balance, 0.0 no data."""
    values = list(busy_s.values() if isinstance(busy_s, dict) else busy_s)
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    mean = sum(values) / len(values)
    return max(values) / mean if mean > 0 else 0.0


def worker_stats(spans: Sequence[Span]) -> dict:
    """Per-worker busy time, queue wait, and imbalance from flight lanes.

    Uses ``worker_chunk`` lanes when the run executed on worker
    processes; falls back to parent-side ``pool_chunk`` spans (which
    carry real exec windows on the inline path) so serial runs still get
    a — trivially balanced — lane analysis.  Returns::

        {"source": "worker_chunk" | "pool_chunk" | None,
         "n_lanes": N, "busy_s": {"<pid>": s, ...},
         "n_chunks": N, "imbalance": max/mean,
         "queue_wait_s": total, "exec_s": total}
    """
    lanes = [s for s in spans if s.name == WORKER_LANE_SPAN]
    source = WORKER_LANE_SPAN
    if not lanes:
        lanes = [
            s
            for s in spans
            if s.name == "pool_chunk" and s.duration_s > 0
        ]
        source = "pool_chunk" if lanes else None
    busy: dict[str, float] = defaultdict(float)
    queue_wait = 0.0
    for s in lanes:
        busy[str(s.pid if s.pid is not None else 0)] += s.duration_s
        qw = s.attrs.get("queue_wait_s")
        if qw is not None:
            queue_wait += float(qw)
    return {
        "source": source,
        "n_lanes": len(busy),
        "busy_s": dict(sorted(busy.items())),
        "n_chunks": len(lanes),
        "imbalance": load_imbalance(busy),
        "queue_wait_s": queue_wait,
        "exec_s": sum(busy.values()),
    }


# -------------------------------------------------- serial fraction / Amdahl
def _parallel_regions(spans: Sequence[Span]) -> list[Span]:
    """Spans during which more than one worker could be busy."""
    return [
        s
        for s in spans
        if s.name == "pool_run" and s.attrs.get("mode") == "processes"
    ]


def _roots(spans: Sequence[Span]) -> list[Span]:
    ids = {s.span_id for s in spans}
    return [s for s in spans if s.parent_id is None or s.parent_id not in ids]


def serial_fraction(spans: Sequence[Span]) -> dict:
    """The Amdahl decomposition of a traced run.

    ``total_s`` is the summed duration of the root span(s);
    ``parallel_s`` the time inside multi-worker pool regions
    (``pool_run`` spans in process mode); ``serial_s`` the remainder;
    ``fraction`` = serial share of total (1.0 for a fully serial run).
    """
    roots = _roots(spans)
    total = sum(s.duration_s for s in roots)
    parallel = sum(s.duration_s for s in _parallel_regions(spans))
    parallel = min(parallel, total)
    serial = total - parallel
    return {
        "total_s": total,
        "parallel_s": parallel,
        "serial_s": serial,
        "fraction": serial / total if total > 0 else 1.0,
    }


def amdahl_ceiling(serial_frac: float, n_workers: float) -> float:
    """Amdahl's-law speed-up bound for a serial fraction at N workers.

    ``amdahl_ceiling(f, inf)`` (``math.inf``) gives the asymptotic
    ceiling ``1/f``.
    """
    if not 0.0 <= serial_frac <= 1.0:
        raise ValueError(f"serial fraction must be in [0, 1], got {serial_frac}")
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    if serial_frac == 0.0:
        return float(n_workers)
    denom = serial_frac + (1.0 - serial_frac) / n_workers
    return 1.0 / denom


# -------------------------------------------------------------- consistency
def consistency_report(
    spans: Sequence[Span],
    *,
    rel_tol: float = 0.05,
    abs_tol_s: float = 0.005,
) -> list[dict]:
    """Violations of the span-tree timing invariants (empty = consistent).

    Checks, per parent span (tolerance = ``abs_tol_s + rel_tol × parent
    duration``):

    * **coverage** — direct sequential children sum to at most the
      parent's duration (children partition the parent, so child
      self-times sum to the parent within the same tolerance);
    * **containment** — each sequential child's window lies inside the
      parent's window (same process, same clock);
    * **lane overlap** — worker lanes under a pool region sum to at most
      ``n_workers ×`` the region's duration, and each lane's window ends
      inside the region's (lanes start after the submit stamp, so only
      the end needs the clock-domain check).

    Returns one dict per violation: ``{"kind", "span", "span_id",
    "detail"}``.
    """
    by_id = _by_id(spans)
    children: dict[int, list[Span]] = defaultdict(list)
    for s in spans:
        if s.parent_id is not None and s.parent_id in by_id:
            children[s.parent_id].append(s)
    out: list[dict] = []

    def violation(kind: str, span: Span, detail: str) -> None:
        out.append(
            {
                "kind": kind,
                "span": span.name,
                "span_id": span.span_id,
                "detail": detail,
            }
        )

    for pid_, kids in children.items():
        parent = by_id[pid_]
        tol = abs_tol_s + rel_tol * parent.duration_s
        tol_ns = int(tol * 1e9)
        seq = [k for k in kids if k.name != WORKER_LANE_SPAN]
        lanes = [k for k in kids if k.name == WORKER_LANE_SPAN]
        seq_total = sum(k.duration_s for k in seq)
        if seq_total > parent.duration_s + tol:
            violation(
                "coverage",
                parent,
                f"children sum to {seq_total:.6f}s but parent spans "
                f"{parent.duration_s:.6f}s (tol {tol:.6f}s)",
            )
        for k in seq:
            if (
                k.start_ns < parent.start_ns - tol_ns
                or k.end_ns > parent.end_ns + tol_ns
            ):
                violation(
                    "containment",
                    k,
                    f"child window [{k.start_ns}, {k.end_ns}] escapes "
                    f"parent {parent.name} [{parent.start_ns}, "
                    f"{parent.end_ns}]",
                )
        if lanes:
            n_workers = int(parent.attrs.get("n_workers", 1)) or 1
            lane_total = sum(k.duration_s for k in lanes)
            budget = parent.duration_s * n_workers
            if lane_total > budget + tol * n_workers:
                violation(
                    "lane_overlap",
                    parent,
                    f"worker lanes sum to {lane_total:.6f}s but the pool "
                    f"region allows {budget:.6f}s "
                    f"({n_workers} workers × {parent.duration_s:.6f}s)",
                )
            for k in lanes:
                if k.end_ns > parent.end_ns + tol_ns:
                    violation(
                        "containment",
                        k,
                        f"worker lane ends at {k.end_ns} after its pool "
                        f"region {parent.name} at {parent.end_ns} "
                        "(foreign clock domain?)",
                    )
    return out


# -------------------------------------------------------------- the block
def attribute_run(
    spans: Sequence[Span],
    *,
    top_hotspots: int = 8,
    rel_tol: float = 0.05,
    abs_tol_s: float = 0.005,
    memory: dict | None = None,
) -> dict:
    """The JSON-ready attribution block for one traced run.

    This is what the benchmark ledger embeds per repetition and the
    future kernel auto-tuner reads: per-phase totals and self-times,
    a per-level breakdown with per-level worker imbalance, the hotspot
    ranking, worker-lane statistics, the serial fraction with Amdahl
    ceilings, and the consistency-invariant verdict.  ``memory`` is the
    optional phase memory-attribution report from
    :meth:`repro.obs.memprof.PhaseMemoryProfiler.report` — when given
    (non-empty) it embeds as the ``"memory"`` block, so time and
    allocation attribution travel in one document.
    """
    spans = list(spans)
    by_id = _by_id(spans)
    selfs = self_times(spans)

    # ``self_s`` here is the phase span's *own* residue — time not in any
    # child span (kernel sub-spans, pool regions) — so a phase whose total
    # dwarfs its self-time is fully explained by its children and one
    # whose self-time dominates hides untraced work.
    phases: dict[str, dict] = {
        p: {"total_s": 0.0, "self_s": 0.0, "n_spans": 0} for p in _PHASES
    }
    for s in spans:
        if s.name in _PHASES:
            phases[s.name]["total_s"] += s.duration_s
            phases[s.name]["self_s"] += selfs[s.span_id]
            phases[s.name]["n_spans"] += 1

    # Per-level: phase seconds plus the level's own lane imbalance.
    level_phase: dict[int, dict[str, float]] = defaultdict(
        lambda: {p: 0.0 for p in _PHASES}
    )
    level_lanes: dict[int, list[Span]] = defaultdict(list)
    for s in spans:
        if s.name in _PHASES and s.level is not None:
            level_phase[s.level][s.name] += s.duration_s
        if s.name == WORKER_LANE_SPAN:
            lvl = _level_of(s, by_id)
            if lvl is not None:
                level_lanes[lvl].append(s)
    levels = []
    for lvl in sorted(level_phase):
        busy: dict[str, float] = defaultdict(float)
        for s in level_lanes.get(lvl, ()):
            busy[str(s.pid if s.pid is not None else 0)] += s.duration_s
        t = level_phase[lvl]
        levels.append(
            {
                "level": lvl,
                **{f"{p}_s": t[p] for p in _PHASES},
                "total_s": sum(t.values()),
                "imbalance": load_imbalance(busy),
            }
        )

    workers = worker_stats(spans)
    amdahl = serial_fraction(spans)
    # Pool width comes from span attrs (``pool_run``/``agglomeration``
    # stamp it), not from counting lane pids: a fork-per-chunk pool
    # leaves one pid per chunk, which would wildly overstate N.
    n_workers = max(
        (
            int(s.attrs["n_workers"])
            for s in spans
            if "n_workers" in s.attrs
        ),
        default=0,
    ) or max(workers["n_lanes"], 1)
    violations = consistency_report(
        spans, rel_tol=rel_tol, abs_tol_s=abs_tol_s
    )
    out = {
        "version": ATTRIBUTION_SCHEMA_VERSION,
        "phases": phases,
        "levels": levels,
        "hotspots": hotspots(spans, top=top_hotspots),
        "workers": workers,
        "serial": amdahl,
        "amdahl": {
            "serial_fraction": amdahl["fraction"],
            "n_workers": n_workers,
            "ceiling_at_n": amdahl_ceiling(amdahl["fraction"], n_workers),
            "ceiling_inf": (
                1.0 / amdahl["fraction"]
                if amdahl["fraction"] > 0
                else float("inf")
            ),
        },
        "consistency": {
            "checked": len(spans),
            "violations": violations,
        },
    }
    if memory:
        out["memory"] = memory
    return out
