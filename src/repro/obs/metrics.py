"""Run metrics: counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` is the scalar companion to the span tracer —
quantities that are aggregates over a run rather than timed regions:
how many matching passes each level took, how big the live worklist was,
how occupied the contraction buckets were.  Everything is plain Python
(no locks — the instrumented loops are vectorized numpy, so instrument
calls happen a handful of times per level, not per element).

``Null*`` twins back the :class:`~repro.obs.trace.NullTracer`: shared
no-op instances so the untraced path neither allocates nor branches.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "DEFAULT_BUCKETS",
]

#: Power-of-two bucket upper bounds — a sensible default for count-like
#: distributions (pass counts, bucket occupancies, chunk sizes).
DEFAULT_BUCKETS: tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only increase; use a Gauge")
        self.value += n


class Gauge:
    """Last-written value, with the min/max seen over the run.

    ``set()`` is called once per pass/level with e.g. the live worklist
    size; keeping the extremes means the summary can report the peak
    without storing the series.
    """

    __slots__ = ("name", "value", "min", "max", "n_sets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0
        self.min: float = float("inf")
        self.max: float = float("-inf")
        self.n_sets = 0

    def set(self, value: float) -> None:
        value = float(value)
        self.value = value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.n_sets += 1


class Histogram:
    """Fixed-bucket histogram.

    ``edges`` are inclusive upper bounds of the first ``len(edges)``
    buckets; one overflow bucket catches everything larger, so
    ``counts`` has ``len(edges) + 1`` entries.  A value ``v`` lands in
    the first bucket whose edge satisfies ``v <= edge`` (standard
    Prometheus ``le`` semantics).
    """

    __slots__ = ("name", "edges", "counts", "total", "sum")

    def __init__(
        self, name: str, edges: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        e = [float(x) for x in edges]
        if any(b <= a for a, b in zip(e, e[1:])):
            raise ValueError("bucket edges must be strictly increasing")
        self.name = name
        self.edges: tuple[float, ...] = tuple(e)
        self.counts = [0] * (len(e) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect.bisect_left(self.edges, value)] += 1
        self.total += 1
        self.sum += value

    def observe_many(self, values: Iterable[float] | np.ndarray) -> None:
        """Vectorized :meth:`observe` for an array of samples."""
        if not isinstance(values, np.ndarray):
            values = list(values)
        arr = np.asarray(values, dtype=np.float64)
        if arr.size == 0:
            return
        idx = np.searchsorted(np.asarray(self.edges), arr, side="left")
        binned = np.bincount(idx, minlength=len(self.counts))
        for k, c in enumerate(binned.tolist()):
            self.counts[k] += c
        self.total += int(arr.size)
        self.sum += float(arr.sum())

    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0


class MetricsRegistry:
    """Get-or-create store of named metrics."""

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        try:
            return self.counters[name]
        except KeyError:
            c = self.counters[name] = Counter(name)
            return c

    def gauge(self, name: str) -> Gauge:
        try:
            return self.gauges[name]
        except KeyError:
            g = self.gauges[name] = Gauge(name)
            return g

    def histogram(
        self, name: str, edges: Sequence[float] | None = None
    ) -> Histogram:
        try:
            return self.histograms[name]
        except KeyError:
            h = self.histograms[name] = Histogram(
                name, edges if edges is not None else DEFAULT_BUCKETS
            )
            return h

    def snapshot(self) -> dict:
        """JSON-ready dump of every metric's current state."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {
                n: {
                    "value": g.value,
                    "min": g.min if g.n_sets else None,
                    "max": g.max if g.n_sets else None,
                    "n_sets": g.n_sets,
                }
                for n, g in sorted(self.gauges.items())
            },
            "histograms": {
                n: {
                    "edges": list(h.edges),
                    "counts": list(h.counts),
                    "total": h.total,
                    "sum": h.sum,
                }
                for n, h in sorted(self.histograms.items())
            },
        }


# ------------------------------------------------------------- null twins
class _NullCounter:
    __slots__ = ()
    value = 0

    def inc(self, n: int = 1) -> None:
        return None


class _NullGauge:
    __slots__ = ()
    value = 0.0

    def set(self, value: float) -> None:
        return None


class _NullHistogram:
    __slots__ = ()
    total = 0

    def observe(self, value: float) -> None:
        return None

    def observe_many(self, values) -> None:
        return None


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullMetricsRegistry:
    """No-op registry handing out shared null metric instances."""

    counters: dict = {}
    gauges: dict = {}
    histograms: dict = {}

    def counter(self, name: str) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str, edges=None) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}
