"""Run metrics: counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` is the scalar companion to the span tracer —
quantities that are aggregates over a run rather than timed regions:
how many matching passes each level took, how big the live worklist was,
how occupied the contraction buckets were.  Everything is plain Python
(no locks — the instrumented loops are vectorized numpy, so instrument
calls happen a handful of times per level, not per element).

``Null*`` twins back the :class:`~repro.obs.trace.NullTracer`: shared
no-op instances so the untraced path neither allocates nor branches.
"""

from __future__ import annotations

import bisect
import math
import re
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "DEFAULT_BUCKETS",
]

#: Power-of-two bucket upper bounds — a sensible default for count-like
#: distributions (pass counts, bucket occupancies, chunk sizes).
DEFAULT_BUCKETS: tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only increase; use a Gauge")
        self.value += n

    def merge(self, other: "Counter") -> None:
        """Fold another counter's count into this one (sums)."""
        self.value += other.value


class Gauge:
    """Last-written value, with the min/max seen over the run.

    ``set()`` is called once per pass/level with e.g. the live worklist
    size; keeping the extremes means the summary can report the peak
    without storing the series.
    """

    __slots__ = ("name", "value", "min", "max", "n_sets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0
        self.min: float = float("inf")
        self.max: float = float("-inf")
        self.n_sets = 0

    def set(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            # A NaN would poison min/max/last and every downstream delta
            # (ledger comparisons order on these values).
            raise ValueError(f"gauge {self.name!r}: cannot set NaN")
        self.value = value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.n_sets += 1

    def merge(self, other: "Gauge") -> None:
        """Fold another gauge in: extremes union, other's last value wins
        (when it was ever set)."""
        if other.n_sets == 0:
            return
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        self.value = other.value
        self.n_sets += other.n_sets


class Histogram:
    """Fixed-bucket histogram.

    ``edges`` are inclusive upper bounds of the first ``len(edges)``
    buckets; one overflow bucket catches everything larger, so
    ``counts`` has ``len(edges) + 1`` entries.  A value ``v`` lands in
    the first bucket whose edge satisfies ``v <= edge`` (standard
    Prometheus ``le`` semantics).
    """

    __slots__ = ("name", "edges", "counts", "total", "sum")

    def __init__(
        self, name: str, edges: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        e = [float(x) for x in edges]
        if any(b <= a for a, b in zip(e, e[1:])):
            raise ValueError("bucket edges must be strictly increasing")
        self.name = name
        self.edges: tuple[float, ...] = tuple(e)
        self.counts = [0] * (len(e) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            raise ValueError(f"histogram {self.name!r}: cannot observe NaN")
        self.counts[bisect.bisect_left(self.edges, value)] += 1
        self.total += 1
        self.sum += value

    def observe_many(self, values: Iterable[float] | np.ndarray) -> None:
        """Vectorized :meth:`observe` for an array of samples."""
        if not isinstance(values, np.ndarray):
            values = list(values)
        arr = np.asarray(values, dtype=np.float64)
        if arr.size == 0:
            return
        if np.isnan(arr).any():
            raise ValueError(f"histogram {self.name!r}: cannot observe NaN")
        idx = np.searchsorted(np.asarray(self.edges), arr, side="left")
        binned = np.bincount(idx, minlength=len(self.counts))
        for k, c in enumerate(binned.tolist()):
            self.counts[k] += c
        self.total += int(arr.size)
        self.sum += float(arr.sum())

    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram in (bucket-wise count addition).

        The two histograms must have identical edges — merging across
        different bucketings would silently misattribute samples.
        """
        if other.edges != self.edges:
            raise ValueError(
                f"histogram {self.name!r}: cannot merge edges "
                f"{list(other.edges)} into {list(self.edges)}"
            )
        for k, c in enumerate(other.counts):
            self.counts[k] += c
        self.total += other.total
        self.sum += other.sum


class MetricsRegistry:
    """Get-or-create store of named metrics."""

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        try:
            return self.counters[name]
        except KeyError:
            c = self.counters[name] = Counter(name)
            return c

    def gauge(self, name: str) -> Gauge:
        try:
            return self.gauges[name]
        except KeyError:
            g = self.gauges[name] = Gauge(name)
            return g

    def histogram(
        self, name: str, edges: Sequence[float] | None = None
    ) -> Histogram:
        try:
            return self.histograms[name]
        except KeyError:
            h = self.histograms[name] = Histogram(
                name, edges if edges is not None else DEFAULT_BUCKETS
            )
            return h

    def merge(self, other: "MetricsRegistry | NullMetricsRegistry") -> None:
        """Fold another registry's metrics into this one by name.

        Metrics absent here are created; histograms merge bucket-wise
        and raise on mismatched edges.  This is how worker-process
        registries are aggregated into the parent's (see
        :mod:`repro.parallel.pool`).
        """
        for name, c in other.counters.items():
            self.counter(name).merge(c)
        for name, g in other.gauges.items():
            self.gauge(name).merge(g)
        for name, h in other.histograms.items():
            self.histogram(name, h.edges).merge(h)

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`snapshot` output.

        The inverse used to ship metrics across process boundaries:
        workers send snapshots (plain dicts pickle cheaply), the parent
        rebuilds and :meth:`merge`-s them.

        The snapshot is validated on ingest: a histogram whose
        ``counts`` length does not match its ``edges`` (the signature of
        a schema drift between worker and parent builds), a negative
        bucket count, a bucket/total mismatch, or a NaN gauge value all
        raise :class:`ValueError` naming the offending metric — the
        alternative is samples silently landing in the wrong buckets
        after a parent-side merge.
        """
        if not isinstance(snapshot, dict):
            raise ValueError(
                f"metrics snapshot must be a dict, got {type(snapshot).__name__}"
            )
        reg = cls()
        for name, value in snapshot.get("counters", {}).items():
            if int(value) < 0:
                raise ValueError(
                    f"counter {name!r}: snapshot value {value} is negative"
                )
            reg.counter(name).inc(int(value))
        for name, g in snapshot.get("gauges", {}).items():
            value = float(g["value"])
            if math.isnan(value):
                raise ValueError(
                    f"gauge {name!r}: snapshot value is NaN"
                )
            gauge = reg.gauge(name)
            gauge.value = value
            gauge.min = float(g["min"]) if g["min"] is not None else float("inf")
            gauge.max = (
                float(g["max"]) if g["max"] is not None else float("-inf")
            )
            gauge.n_sets = int(g["n_sets"])
        for name, h in snapshot.get("histograms", {}).items():
            edges = list(h["edges"])
            counts = [int(c) for c in h["counts"]]
            if len(counts) != len(edges) + 1:
                raise ValueError(
                    f"histogram {name!r}: snapshot has {len(counts)} counts "
                    f"for {len(edges)} edges (expected {len(edges) + 1}; "
                    "bucket schema mismatch between worker and parent?)"
                )
            if any(c < 0 for c in counts):
                raise ValueError(
                    f"histogram {name!r}: snapshot has negative bucket counts"
                )
            total = int(h["total"])
            if total != sum(counts):
                raise ValueError(
                    f"histogram {name!r}: snapshot total {total} does not "
                    f"match bucket sum {sum(counts)}"
                )
            hist = reg.histogram(name, edges)
            hist.counts = counts
            hist.total = total
            hist.sum = float(h["sum"])
        return reg

    def render_prometheus(self, *, namespace: str = "repro") -> str:
        """Render every metric in the Prometheus text exposition format.

        Counters become ``<ns>_<name>_total``; gauges emit their last
        value plus ``_min`` / ``_max`` companions; histograms emit the
        standard cumulative ``_bucket{le=...}`` series with ``+Inf``,
        ``_sum`` and ``_count``.  Metric names are sanitized to the
        Prometheus charset (``.`` and other separators become ``_``).
        """
        lines: list[str] = []

        def metric_name(name: str, suffix: str = "") -> str:
            base = re.sub(r"[^a-zA-Z0-9_:]", "_", f"{namespace}_{name}")
            return base + suffix

        def fmt(value: float) -> str:
            if value == float("inf"):
                return "+Inf"
            if value == float("-inf"):
                return "-Inf"
            return repr(float(value))

        for name, c in sorted(self.counters.items()):
            mname = metric_name(name, "_total")
            lines.append(f"# TYPE {mname} counter")
            lines.append(f"{mname} {c.value}")
        for name, g in sorted(self.gauges.items()):
            mname = metric_name(name)
            lines.append(f"# TYPE {mname} gauge")
            lines.append(f"{mname} {fmt(g.value)}")
            if g.n_sets:
                for suffix, v in (("_min", g.min), ("_max", g.max)):
                    sname = metric_name(name, suffix)
                    lines.append(f"# TYPE {sname} gauge")
                    lines.append(f"{sname} {fmt(v)}")
        for name, h in sorted(self.histograms.items()):
            mname = metric_name(name)
            lines.append(f"# TYPE {mname} histogram")
            cumulative = 0
            for edge, count in zip(h.edges, h.counts):
                cumulative += count
                lines.append(
                    f'{mname}_bucket{{le="{fmt(edge)}"}} {cumulative}'
                )
            lines.append(f'{mname}_bucket{{le="+Inf"}} {h.total}')
            lines.append(f"{mname}_sum {fmt(h.sum)}")
            lines.append(f"{mname}_count {h.total}")
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> dict:
        """JSON-ready dump of every metric's current state."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {
                n: {
                    "value": g.value,
                    "min": g.min if g.n_sets else None,
                    "max": g.max if g.n_sets else None,
                    "n_sets": g.n_sets,
                }
                for n, g in sorted(self.gauges.items())
            },
            "histograms": {
                n: {
                    "edges": list(h.edges),
                    "counts": list(h.counts),
                    "total": h.total,
                    "sum": h.sum,
                }
                for n, h in sorted(self.histograms.items())
            },
        }


# ------------------------------------------------------------- null twins
class _NullCounter:
    __slots__ = ()
    value = 0

    def inc(self, n: int = 1) -> None:
        return None


class _NullGauge:
    __slots__ = ()
    value = 0.0

    def set(self, value: float) -> None:
        return None


class _NullHistogram:
    __slots__ = ()
    total = 0

    def observe(self, value: float) -> None:
        return None

    def observe_many(self, values) -> None:
        return None


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullMetricsRegistry:
    """No-op registry handing out shared null metric instances."""

    counters: dict = {}
    gauges: dict = {}
    histograms: dict = {}

    def counter(self, name: str) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str, edges=None) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def merge(self, other) -> None:
        return None

    def render_prometheus(self, *, namespace: str = "repro") -> str:
        return ""

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}
