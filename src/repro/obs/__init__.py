"""Run observability: wall-clock spans, metrics, and trace export.

Four layers:

* :mod:`repro.obs.trace` — :class:`Tracer` / :class:`Span` nested
  wall-clock spans, with a zero-cost :class:`NullTracer` default;
* :mod:`repro.obs.metrics` — counters, gauges, fixed-bucket histograms,
  mergeable across registries and exportable in Prometheus text format;
* :mod:`repro.obs.timeline` — :class:`QualityTimeline`, the per-level
  algorithm-quality trajectory (modularity, coverage, merge fraction)
  that the benchmark ledger embeds;
* :mod:`repro.obs.sinks` — schema-versioned JSONL export
  (:func:`write_trace` / :func:`read_trace`) and the per-level console
  profile table (:func:`render_profile`);
* :mod:`repro.obs.attribution` — the performance-attribution analyzer:
  self-times, hotspot ranking, worker-lane statistics, load imbalance,
  serial fraction / Amdahl ceiling, and the trace consistency
  invariants (:func:`attribute_run`);
* :mod:`repro.obs.perfetto` — Chrome trace-event export
  (:func:`write_perfetto`) openable in ``ui.perfetto.dev``;
* :mod:`repro.obs.report` — the self-contained Markdown/HTML run
  report (:func:`render_report` / :func:`write_report`);
* :mod:`repro.obs.telemetry` — the live tier: a background
  :class:`TelemetrySampler` recording resource counter samples (schema
  v3) into the trace plus an atomically-written ``status.json``
  heartbeat that ``repro watch`` renders;
* :mod:`repro.obs.memprof` — :class:`PhaseMemoryProfiler`, the
  tracemalloc phase-scoped memory attributor merged into the
  attribution document.

Distinct from :mod:`repro.platform` tracing: the platform layer records
*simulated* work quantities for the paper's machine cost models; this
package measures what the current machine actually did.  See
``docs/OBSERVABILITY.md``.
"""

from repro.obs.attribution import (
    amdahl_ceiling,
    attribute_run,
    consistency_report,
    hotspots,
    load_imbalance,
    self_times,
    serial_fraction,
    worker_stats,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)
from repro.obs.memprof import (
    NULL_MEMPROF,
    NullMemoryProfiler,
    PhaseMemoryProfiler,
    as_memprof,
)
from repro.obs.perfetto import to_chrome_trace, write_perfetto
from repro.obs.report import markdown_to_html, render_report, write_report
from repro.obs.sinks import (
    TraceData,
    UnknownTraceRecordWarning,
    phase_totals,
    read_trace,
    render_profile,
    write_trace,
)
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    TelemetrySampler,
    as_telemetry,
    read_status,
    render_status,
)
from repro.obs.timeline import (
    NULL_TIMELINE,
    LevelQuality,
    NullTimeline,
    QualityTimeline,
    as_timeline,
)
from repro.obs.trace import (
    NULL_TRACER,
    CounterSample,
    NullTracer,
    Span,
    Tracer,
    as_tracer,
)

__all__ = [
    "Span",
    "CounterSample",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "as_tracer",
    "LevelQuality",
    "QualityTimeline",
    "NullTimeline",
    "NULL_TIMELINE",
    "as_timeline",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "TraceData",
    "UnknownTraceRecordWarning",
    "write_trace",
    "read_trace",
    "phase_totals",
    "render_profile",
    "TelemetrySampler",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "as_telemetry",
    "read_status",
    "render_status",
    "PhaseMemoryProfiler",
    "NullMemoryProfiler",
    "NULL_MEMPROF",
    "as_memprof",
    "attribute_run",
    "self_times",
    "hotspots",
    "worker_stats",
    "load_imbalance",
    "serial_fraction",
    "amdahl_ceiling",
    "consistency_report",
    "to_chrome_trace",
    "write_perfetto",
    "render_report",
    "write_report",
    "markdown_to_html",
]
