"""Run observability: wall-clock spans, metrics, and trace export.

Four layers:

* :mod:`repro.obs.trace` — :class:`Tracer` / :class:`Span` nested
  wall-clock spans, with a zero-cost :class:`NullTracer` default;
* :mod:`repro.obs.metrics` — counters, gauges, fixed-bucket histograms,
  mergeable across registries and exportable in Prometheus text format;
* :mod:`repro.obs.timeline` — :class:`QualityTimeline`, the per-level
  algorithm-quality trajectory (modularity, coverage, merge fraction)
  that the benchmark ledger embeds;
* :mod:`repro.obs.sinks` — schema-versioned JSONL export
  (:func:`write_trace` / :func:`read_trace`) and the per-level console
  profile table (:func:`render_profile`).

Distinct from :mod:`repro.platform` tracing: the platform layer records
*simulated* work quantities for the paper's machine cost models; this
package measures what the current machine actually did.  See
``docs/OBSERVABILITY.md``.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)
from repro.obs.sinks import (
    TraceData,
    phase_totals,
    read_trace,
    render_profile,
    write_trace,
)
from repro.obs.timeline import (
    NULL_TIMELINE,
    LevelQuality,
    NullTimeline,
    QualityTimeline,
    as_timeline,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    as_tracer,
)

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "as_tracer",
    "LevelQuality",
    "QualityTimeline",
    "NullTimeline",
    "NULL_TIMELINE",
    "as_timeline",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "TraceData",
    "write_trace",
    "read_trace",
    "phase_totals",
    "render_profile",
]
