"""Trace sinks: JSONL export/import and the console profile table.

The JSONL format is one event object per line so traces stream and
``grep``/``jq`` cleanly:

* line 1 — header: ``{"event": "header", "schema": "repro-run-trace",
  "version": 1, "meta": {...}}``
* one ``{"event": "span", ...}`` line per finished span, in completion
  order, carrying ``id``/``parent``/``name``/``level``/``start_ns``/
  ``end_ns``/``duration_s``/``items``/``attrs``;
* (schema v3) one ``{"event": "counter_sample", "type": "counter",
  "name": ..., "ts_ns": ..., "value": ...}`` line per telemetry
  time-series sample, in record order — these interleave with the run's
  history rather than summarizing it;
* one line per end-of-run metric: ``{"event": "counter" | "gauge" |
  "histogram", "name": ..., ...}``;
* a trailer: ``{"event": "end", "n_spans": N}`` — its presence proves
  the trace was not truncated mid-write.

Forward compatibility: :func:`read_trace` *skips* record kinds it does
not know (counting them in ``TraceData.skipped_records`` and warning
once per file) instead of raising, so a reader from this version never
bricks on a future schema's new record types.

:func:`read_trace` round-trips the file back into :class:`Span` objects
and a metrics snapshot.  :func:`render_profile` turns a span list into
the paper-style per-level score/match/contract table, including the
contraction share of phase runtime that §IV-C reports as 40–80 %.
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.obs.trace import (
    SCHEMA_VERSION,
    CounterSample,
    NullTracer,
    Span,
    Tracer,
)
from repro.util.atomicio import atomic_write

__all__ = [
    "write_trace",
    "read_trace",
    "TraceData",
    "UnknownTraceRecordWarning",
    "phase_totals",
    "render_profile",
]

_SCHEMA_NAME = "repro-run-trace"

#: Schema versions :func:`read_trace` can load.  v1 lacked per-span
#: ``pid``/``tid``/``epoch_ns``; those default to ``None``/0 on import.
#: v2 lacked counter samples; ``TraceData.samples`` is empty for it.
_READABLE_VERSIONS = (1, 2, SCHEMA_VERSION)


class UnknownTraceRecordWarning(UserWarning):
    """A trace contained record kinds this reader does not know.

    Raised (as a warning, once per file) by :func:`read_trace` when it
    skips records — the forward-compatibility contract that lets a v3
    reader survive v4 traces.
    """

#: The pipeline phases of one agglomeration level, in execution order.
PHASES = ("score", "match", "contract")


def _span_event(span: Span) -> dict:
    return {
        "event": "span",
        "id": span.span_id,
        "parent": span.parent_id,
        "name": span.name,
        "level": span.level,
        "start_ns": span.start_ns,
        "end_ns": span.end_ns,
        "duration_s": span.duration_s,
        "items": span.items,
        "pid": span.pid,
        "tid": span.tid,
        "epoch_ns": span.epoch_ns,
        "attrs": span.attrs,
    }


def _sample_event(sample: CounterSample) -> dict:
    # ``type`` is the v3 record-type discriminator new record families
    # carry; readers that do not know a type skip the record.
    return {
        "event": "counter_sample",
        "type": "counter",
        "name": sample.name,
        "ts_ns": sample.ts_ns,
        "value": sample.value,
        "unit": sample.unit,
        "pid": sample.pid,
    }


def write_trace(
    tracer: Tracer | NullTracer, path: str | os.PathLike, *, meta: dict | None = None
) -> int:
    """Write a tracer's spans and metrics to a JSONL file, atomically.

    Returns the number of span events written.  Writing a
    :class:`NullTracer` produces a valid (empty) trace.

    The trace is written to a temporary file in the destination
    directory, fsynced, then ``os.replace``-d into place (the same
    durability rule as :mod:`repro.resilience.checkpoint`): a crash
    mid-export can never leave a truncated file under the final name —
    a file that would otherwise still parse cleanly up to the missing
    trailer.
    """
    snapshot = tracer.metrics.snapshot()
    n_spans = 0
    with atomic_write(path) as fh:
        fh.write(
            json.dumps(
                {
                    "event": "header",
                    "schema": _SCHEMA_NAME,
                    "version": SCHEMA_VERSION,
                    "meta": meta or {},
                }
            )
            + "\n"
        )
        for span in tracer.spans:
            fh.write(json.dumps(_span_event(span)) + "\n")
            n_spans += 1
        for sample in list(tracer.counter_samples):
            fh.write(json.dumps(_sample_event(sample)) + "\n")
        for name, value in snapshot["counters"].items():
            fh.write(
                json.dumps({"event": "counter", "name": name, "value": value})
                + "\n"
            )
        for name, g in snapshot["gauges"].items():
            fh.write(json.dumps({"event": "gauge", "name": name, **g}) + "\n")
        for name, h in snapshot["histograms"].items():
            fh.write(
                json.dumps({"event": "histogram", "name": name, **h}) + "\n"
            )
        fh.write(json.dumps({"event": "end", "n_spans": n_spans}) + "\n")
    return n_spans


@dataclass
class TraceData:
    """A parsed run trace."""

    meta: dict = field(default_factory=dict)
    version: int = SCHEMA_VERSION
    spans: list[Span] = field(default_factory=list)
    samples: list[CounterSample] = field(default_factory=list)
    counters: dict[str, int] = field(default_factory=dict)
    gauges: dict[str, dict] = field(default_factory=dict)
    histograms: dict[str, dict] = field(default_factory=dict)
    complete: bool = False
    #: Records skipped because their kind is unknown to this reader
    #: (forward compatibility with future schema versions).
    skipped_records: int = 0

    def find(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]

    def sample_series(self, name: str) -> list[CounterSample]:
        """One counter's time series, in record (= time) order."""
        return [s for s in self.samples if s.name == name]


def read_trace(
    path: str | os.PathLike, *, require_complete: bool = False
) -> TraceData:
    """Load a JSONL trace written by :func:`write_trace`.

    With ``require_complete=True`` a file missing its ``end`` trailer —
    the signature of a truncated export — is rejected with
    :class:`~repro.errors.ReproError` instead of returned with
    ``complete=False``.
    """
    data = TraceData()
    try:
        with open(path, "r", encoding="utf-8") as fh:
            lines = [ln for ln in fh.read().splitlines() if ln.strip()]
    except OSError as exc:
        raise ReproError(f"{path}: cannot read trace: {exc}") from exc
    except UnicodeDecodeError as exc:
        raise ReproError(f"{path}: not valid UTF-8: {exc}") from exc
    if not lines:
        raise ReproError(f"{path}: empty trace file")
    try:
        events = [json.loads(ln) for ln in lines]
    except json.JSONDecodeError as exc:
        raise ReproError(f"{path}: not valid JSONL: {exc}") from exc

    header = events[0]
    if (
        not isinstance(header, dict)
        or header.get("event") != "header"
        or header.get("schema") != _SCHEMA_NAME
    ):
        raise ReproError(f"{path}: not a {_SCHEMA_NAME} file")
    version = header.get("version")
    if version not in _READABLE_VERSIONS:
        # Older-than-v1 or non-integer versions are malformed; *newer*
        # versions load best-effort — known record kinds parse, unknown
        # ones are skipped below with a counted warning.
        if not isinstance(version, int) or version < SCHEMA_VERSION:
            raise ReproError(
                f"{path}: unsupported trace version {version!r}"
            )
        warnings.warn(
            UnknownTraceRecordWarning(
                f"{path}: trace version {version} is newer than this "
                f"reader (v{SCHEMA_VERSION}); loading best-effort"
            ),
            stacklevel=2,
        )
    data.meta = header.get("meta", {})
    data.version = header["version"]

    unknown_kinds: dict = {}
    for ev in events[1:]:
        kind = ev.get("event")
        try:
            if kind == "span":
                data.spans.append(
                    Span(
                        name=ev["name"],
                        span_id=ev["id"],
                        parent_id=ev["parent"],
                        level=ev["level"],
                        start_ns=ev["start_ns"],
                        end_ns=ev["end_ns"],
                        items=ev.get("items", 0),
                        pid=ev.get("pid"),
                        tid=ev.get("tid"),
                        epoch_ns=ev.get("epoch_ns", 0),
                        attrs=ev.get("attrs", {}),
                    )
                )
            elif kind == "counter_sample":
                if ev.get("type", "counter") != "counter":
                    # A future sample family (e.g. distributions): skip
                    # it like any other unknown record type.
                    data.skipped_records += 1
                    unknown_kinds[f"counter_sample/{ev.get('type')!r}"] = (
                        unknown_kinds.get(
                            f"counter_sample/{ev.get('type')!r}", 0
                        )
                        + 1
                    )
                else:
                    data.samples.append(
                        CounterSample(
                            name=ev["name"],
                            ts_ns=int(ev["ts_ns"]),
                            value=float(ev["value"]),
                            unit=ev.get("unit", ""),
                            pid=ev.get("pid"),
                        )
                    )
            elif kind == "counter":
                data.counters[ev["name"]] = ev["value"]
            elif kind == "gauge":
                data.gauges[ev["name"]] = {
                    k: ev[k] for k in ("value", "min", "max", "n_sets")
                }
            elif kind == "histogram":
                data.histograms[ev["name"]] = {
                    k: ev[k] for k in ("edges", "counts", "total", "sum")
                }
            elif kind == "end":
                if ev.get("n_spans") != len(data.spans):
                    raise ReproError(
                        f"{path}: trailer says {ev.get('n_spans')} spans, "
                        f"file has {len(data.spans)}"
                    )
                data.complete = True
            else:
                # Unknown record kind: a newer writer's schema.  Skip
                # with accounting instead of raising, so old readers
                # never brick on new record types.
                data.skipped_records += 1
                unknown_kinds[str(kind)] = unknown_kinds.get(str(kind), 0) + 1
        except KeyError as exc:
            raise ReproError(f"{path}: malformed {kind} event: {exc}") from exc
    if unknown_kinds:
        detail = ", ".join(
            f"{kind} ×{n}" for kind, n in sorted(unknown_kinds.items())
        )
        warnings.warn(
            UnknownTraceRecordWarning(
                f"{path}: skipped {data.skipped_records} record(s) of "
                f"unknown kind ({detail}) — written by a newer schema?"
            ),
            stacklevel=2,
        )
    if require_complete and not data.complete:
        raise ReproError(
            f"{path}: trace has no end trailer (truncated export?)"
        )
    return data


# -------------------------------------------------------------- summaries
def phase_totals(spans: list[Span]) -> dict[str, float]:
    """Total seconds per pipeline phase plus the contraction share.

    Returns ``{"score": s, "match": s, "contract": s, "total": s,
    "contract_share": fraction}`` where ``total`` sums the three phases
    and ``contract_share`` is contraction's fraction of that total (the
    quantity the paper reports as 40–80 % of runtime).
    """
    totals = {p: 0.0 for p in PHASES}
    for s in spans:
        if s.name in totals:
            totals[s.name] += s.duration_s
    total = sum(totals.values())
    totals["total"] = total
    totals["contract_share"] = totals["contract"] / total if total > 0 else 0.0
    return totals


def _format_table(headers: list[str], rows: list[list[str]], title: str) -> str:
    widths = [
        max(len(h), *(len(r[k]) for r in rows)) if rows else len(h)
        for k, h in enumerate(headers)
    ]

    def fmt(row: list[str]) -> str:
        return "  ".join(c.rjust(widths[k]) for k, c in enumerate(row)).rstrip()

    lines = [title, fmt(headers), "  ".join("-" * w for w in widths)]
    lines.extend(fmt(r) for r in rows)
    return "\n".join(lines)


def _group_runs(spans: list[Span]) -> list[tuple[str, list[Span]]]:
    """Split spans into runs by their ``"run"`` root span, if any."""
    runs = [s for s in spans if s.name == "run"]
    if not runs:
        return [("run", list(spans))]
    by_id = {s.span_id: s for s in spans}

    def root_of(s: Span) -> int | None:
        seen = set()
        cur: Span | None = s
        while cur is not None and cur.span_id not in seen:
            if cur.name == "run":
                return cur.span_id
            seen.add(cur.span_id)
            cur = by_id.get(cur.parent_id) if cur.parent_id is not None else None
        return None

    out = []
    for run in runs:
        rid = run.span_id
        members = [s for s in spans if root_of(s) == rid]
        out.append((str(run.attrs.get("graph", f"run {rid}")), members))
    return out


def render_profile(spans: list[Span]) -> str:
    """Per-level phase-time table(s) with the contraction share.

    One table per ``"run"`` root span (or a single table when the trace
    has none), matching the paper's per-phase execution profile:
    level, entering sizes, seconds in score/match/contract, and the
    contraction percentage of total phase time.
    """
    if not spans:
        return "profile: no spans recorded"
    blocks = []
    for title, members in _group_runs(spans):
        per_level: dict[int, dict[str, float]] = {}
        level_attrs: dict[int, dict] = {}
        for s in members:
            if s.name in PHASES and s.level is not None:
                per_level.setdefault(s.level, {p: 0.0 for p in PHASES})[
                    s.name
                ] += s.duration_s
            if s.name == "level" and s.level is not None:
                level_attrs[s.level] = s.attrs
        if not per_level:
            continue
        rows = []
        for lvl in sorted(per_level):
            t = per_level[lvl]
            a = level_attrs.get(lvl, {})
            lvl_total = sum(t.values())
            rows.append(
                [
                    str(lvl),
                    str(a.get("n_vertices", "-")),
                    str(a.get("n_edges", "-")),
                    f"{t['score'] * 1e3:.2f}",
                    f"{t['match'] * 1e3:.2f}",
                    f"{t['contract'] * 1e3:.2f}",
                    f"{lvl_total * 1e3:.2f}",
                    f"{100.0 * t['contract'] / lvl_total:.1f}"
                    if lvl_total > 0
                    else "-",
                ]
            )
        totals = phase_totals(members)
        rows.append(
            [
                "all",
                "",
                "",
                f"{totals['score'] * 1e3:.2f}",
                f"{totals['match'] * 1e3:.2f}",
                f"{totals['contract'] * 1e3:.2f}",
                f"{totals['total'] * 1e3:.2f}",
                f"{100.0 * totals['contract_share']:.1f}",
            ]
        )
        table = _format_table(
            [
                "level",
                "verts",
                "edges",
                "score ms",
                "match ms",
                "contract ms",
                "total ms",
                "contract %",
            ],
            rows,
            title=f"phase profile — {title}",
        )
        blocks.append(
            table
            + f"\ncontraction share of phase time: "
            f"{100.0 * totals['contract_share']:.1f}%"
        )
    if not blocks:
        return "profile: no phase spans recorded"
    return "\n\n".join(blocks)
