"""Per-level algorithm-quality timeline of an agglomeration run.

The span tracer answers *where time went*; this module answers *what the
algorithm was doing to the partition while it went there*.  Lu &
Halappanavar and Staudt & Meyerhenke both evaluate parallel community
detection via per-iteration quality trajectories — modularity and
coverage after every coarsening step — and the paper's own termination
rule (coverage ≥ 0.5) is a statement about this trajectory.

:class:`QualityTimeline` is the recorder
:func:`~repro.core.agglomeration.detect_communities` fills when handed
one (``timeline=``): one :class:`LevelQuality` sample per contraction
level carrying

* ``modularity`` / ``coverage`` / ``mirror_coverage`` of the partition
  *after* the level's contraction;
* ``n_communities`` remaining;
* ``merge_fraction`` — matched pairs over vertices entering the level,
  the quantity the ``stalled`` termination rule thresholds;
* ``matching_passes`` — the §IV-B pass count;
* ``community_sizes`` — a fixed-bucket histogram (input vertices per
  community, power-of-two buckets) so skew is visible without storing
  the full size array;
* ``tuner`` — when the run auto-selected kernels per level
  (:mod:`repro.core.tuner`), the selections made for this level, so a
  quality trajectory is always readable alongside the kernels that
  produced it.

The timeline serializes to/from plain dicts (``as_dict`` /
``from_dict``) and is what the benchmark ledger
(:mod:`repro.bench.ledger`) embeds per repetition.  Like the tracer, a
shared :data:`NULL_TIMELINE` no-op twin backs the ``timeline=None``
path so the untimed loop neither allocates nor branches.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

import numpy as np

from repro.obs.metrics import Histogram

__all__ = [
    "TIMELINE_SCHEMA_VERSION",
    "STREAM_TIMELINE_SCHEMA_VERSION",
    "SIZE_HISTOGRAM_EDGES",
    "LevelQuality",
    "QualityTimeline",
    "BatchQuality",
    "StreamTimeline",
    "NullTimeline",
    "NULL_TIMELINE",
    "as_timeline",
]

#: Version of the timeline dict schema (embedded in ledger records).
TIMELINE_SCHEMA_VERSION = 1

#: Power-of-two bucket edges for the community-size histogram.  Sizes are
#: input vertices per community, so 2^20 covers every graph the scaled
#: analogues build; one overflow bucket catches anything larger.
SIZE_HISTOGRAM_EDGES: tuple[float, ...] = tuple(
    float(2**k) for k in range(21)
)


@dataclass(frozen=True)
class LevelQuality:
    """Quality sample after one contraction level.

    ``merge_fraction`` is matched pairs over vertices *entering* the
    level (1 pair merges 2 vertices, so a perfect matching gives 0.5);
    ``community_sizes`` is a JSON-ready histogram dict with ``edges`` /
    ``counts`` / ``total`` / ``sum`` / ``max`` keys.  ``tuner`` is
    ``None`` for fixed-kernel runs; under ``--matcher auto`` /
    ``--contractor auto`` it carries the level's kernel selections
    (``{"matcher": ..., "contractor": ..., "constrained_sharded": ...}``,
    auto-selected kinds only).  The field defaults keep version-1
    timeline dicts from before the tuner loading unchanged.
    """

    level: int
    n_communities: int
    modularity: float
    coverage: float
    mirror_coverage: float
    merge_fraction: float
    matching_passes: int
    community_sizes: dict = field(default_factory=dict)
    tuner: dict | None = None


def _size_histogram(member_counts: np.ndarray) -> dict:
    """Histogram the per-community input-vertex counts."""
    h = Histogram("community_sizes", edges=SIZE_HISTOGRAM_EDGES)
    arr = np.asarray(member_counts)
    h.observe_many(arr)
    return {
        "edges": list(h.edges),
        "counts": list(h.counts),
        "total": h.total,
        "sum": h.sum,
        "max": int(arr.max()) if arr.size else 0,
    }


class QualityTimeline:
    """Accumulates one :class:`LevelQuality` per completed level."""

    enabled = True

    def __init__(self) -> None:
        self.levels: list[LevelQuality] = []

    def record_level(
        self,
        *,
        level: int,
        n_vertices_entering: int,
        n_pairs: int,
        matching_passes: int,
        n_communities: int,
        modularity: float,
        coverage: float,
        member_counts: np.ndarray,
        tuner: dict | None = None,
    ) -> LevelQuality:
        """Append the sample for one completed contraction level."""
        sample = LevelQuality(
            level=int(level),
            n_communities=int(n_communities),
            modularity=float(modularity),
            coverage=float(coverage),
            mirror_coverage=1.0 - float(coverage),
            merge_fraction=(
                float(n_pairs) / float(n_vertices_entering)
                if n_vertices_entering > 0
                else 0.0
            ),
            matching_passes=int(matching_passes),
            community_sizes=_size_histogram(member_counts),
            tuner=dict(tuner) if tuner is not None else None,
        )
        self.levels.append(sample)
        return sample

    @property
    def n_levels(self) -> int:
        return len(self.levels)

    @property
    def final(self) -> LevelQuality | None:
        """The last recorded sample (the run's terminal quality)."""
        return self.levels[-1] if self.levels else None

    def as_dict(self) -> dict:
        """JSON-ready dump (the shape the bench ledger embeds)."""
        return {
            "version": TIMELINE_SCHEMA_VERSION,
            "levels": [asdict(s) for s in self.levels],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "QualityTimeline":
        """Rebuild a timeline from :meth:`as_dict` output."""
        version = data.get("version")
        if version != TIMELINE_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported timeline version {version!r} "
                f"(expected {TIMELINE_SCHEMA_VERSION})"
            )
        tl = cls()
        for d in data.get("levels", []):
            tl.levels.append(LevelQuality(**d))
        return tl


# -------------------------------------------------------------- streaming
#: Version of the streaming timeline dict schema.
STREAM_TIMELINE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class BatchQuality:
    """Quality sample after one streaming edge batch.

    The per-batch analogue of :class:`LevelQuality`: where the batch
    pipeline's trajectory runs over contraction levels, the streaming
    service's runs over applied batches — this is the trajectory the
    drift-triggered degradation ladder thresholds.  ``rerun`` is the
    empty string for an ordinary incremental repair, or the ladder
    reason (``"drift"``, ``"deadline"``, ``"repair-failed"``) when the
    batch escalated to a full re-detection; ``replayed`` marks samples
    recorded while recovering the WAL tail rather than ingesting live.
    """

    seq: int
    n_vertices: int
    n_edges: int
    n_communities: int
    modularity: float
    coverage: float
    latency_s: float
    rerun: str = ""
    replayed: bool = False


class StreamTimeline:
    """Accumulates one :class:`BatchQuality` per applied batch."""

    enabled = True

    def __init__(self) -> None:
        self.batches: list[BatchQuality] = []

    def record_batch(
        self,
        *,
        seq: int,
        n_vertices: int,
        n_edges: int,
        n_communities: int,
        modularity: float,
        coverage: float,
        latency_s: float,
        rerun: str = "",
        replayed: bool = False,
    ) -> BatchQuality:
        """Append the sample for one applied batch."""
        sample = BatchQuality(
            seq=int(seq),
            n_vertices=int(n_vertices),
            n_edges=int(n_edges),
            n_communities=int(n_communities),
            modularity=float(modularity),
            coverage=float(coverage),
            latency_s=float(latency_s),
            rerun=str(rerun),
            replayed=bool(replayed),
        )
        self.batches.append(sample)
        return sample

    @property
    def n_batches(self) -> int:
        return len(self.batches)

    @property
    def final(self) -> BatchQuality | None:
        """The last recorded sample (the stream's current quality)."""
        return self.batches[-1] if self.batches else None

    def as_dict(self) -> dict:
        """JSON-ready dump (embedded in ``BENCH_stream.json``)."""
        return {
            "version": STREAM_TIMELINE_SCHEMA_VERSION,
            "batches": [asdict(s) for s in self.batches],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StreamTimeline":
        """Rebuild a streaming timeline from :meth:`as_dict` output."""
        version = data.get("version")
        if version != STREAM_TIMELINE_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported stream timeline version {version!r} "
                f"(expected {STREAM_TIMELINE_SCHEMA_VERSION})"
            )
        tl = cls()
        for d in data.get("batches", []):
            tl.batches.append(BatchQuality(**d))
        return tl


class NullTimeline:
    """No-op twin for the ``timeline=None`` path."""

    enabled = False
    levels: tuple = ()
    n_levels = 0
    final = None

    def record_level(self, **_kw) -> None:
        return None

    def as_dict(self) -> dict:
        return {"version": TIMELINE_SCHEMA_VERSION, "levels": []}


#: Shared default used by every ``timeline=None`` code path.
NULL_TIMELINE = NullTimeline()


def as_timeline(
    timeline: "QualityTimeline | NullTimeline | None",
) -> "QualityTimeline | NullTimeline":
    """Normalize an optional timeline argument to a usable instance."""
    return NULL_TIMELINE if timeline is None else timeline
