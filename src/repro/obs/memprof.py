"""Phase-scoped memory attribution via :mod:`tracemalloc`.

The telemetry sampler (:mod:`repro.obs.telemetry`) answers *how much*
memory a run used over time; this module answers *which phase and which
allocation sites* the memory came from.  A :class:`PhaseMemoryProfiler`
wraps each score/match/contract execution (the engine drives it through
``RunContext.memprof``, mirroring the guardian's phase hook) and
records, per phase kind:

* the **net allocation delta** across the phase (traced current memory
  at exit minus entry — negative when a phase frees more than it
  allocates),
* the traced **peak** inside the phase (``tracemalloc.reset_peak`` on
  entry, peak reading at exit),
* the **top-N allocation sites** by net growth, aggregated across all
  executions of that phase kind (snapshot diff, grouped by
  ``file:lineno``).

The report merges into the performance-attribution document
(:func:`repro.obs.attribution.attribute_run` ``memory=`` parameter) and
renders as a section of ``repro report``.

tracemalloc instruments every Python-level allocation, so profiling is
*not* free (typically 2–4× slower with snapshot diffs) — this is a
diagnosis tool, opt-in via ``--memprof``, never a default.  The default
is :data:`NULL_MEMPROF`, whose phase hook returns a shared no-op
handle.  NumPy buffers are traced too (NumPy routes its data allocator
through tracemalloc's ``np`` domain), which is what makes the per-phase
deltas meaningful for this pipeline's array-heavy kernels.
"""

from __future__ import annotations

import tracemalloc
from typing import Any

__all__ = [
    "PhaseMemoryProfiler",
    "NullMemoryProfiler",
    "NULL_MEMPROF",
    "as_memprof",
]


class _PhaseProbe:
    """Context manager measuring one phase execution."""

    __slots__ = ("_prof", "_name", "_entry_bytes", "_entry_snapshot")

    def __init__(self, prof: "PhaseMemoryProfiler", name: str) -> None:
        self._prof = prof
        self._name = name
        self._entry_bytes = 0
        self._entry_snapshot: tracemalloc.Snapshot | None = None

    def __enter__(self) -> "_PhaseProbe":
        if not tracemalloc.is_tracing():  # pragma: no cover - defensive
            return self
        self._entry_bytes, _ = tracemalloc.get_traced_memory()
        tracemalloc.reset_peak()
        if self._prof.top_sites > 0:
            self._entry_snapshot = tracemalloc.take_snapshot()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if not tracemalloc.is_tracing():  # pragma: no cover - defensive
            return
        current, peak = tracemalloc.get_traced_memory()
        self._prof._record(
            self._name,
            net_bytes=current - self._entry_bytes,
            peak_bytes=max(0, peak - self._entry_bytes),
        )
        if self._entry_snapshot is not None:
            try:
                exit_snapshot = tracemalloc.take_snapshot()
                # tracemalloc's own bookkeeping dominates small diffs;
                # drop it so the top sites point at the pipeline.
                own = tracemalloc.Filter(False, tracemalloc.__file__)
                diff = exit_snapshot.filter_traces((own,)).compare_to(
                    self._entry_snapshot.filter_traces((own,)), "lineno"
                )
            except Exception:  # pragma: no cover - never fail the run
                return
            finally:
                self._entry_snapshot = None
            for stat in diff:
                if stat.size_diff == 0:
                    continue
                frame = stat.traceback[0]
                site = f"{frame.filename}:{frame.lineno}"
                self._prof._record_site(self._name, site, stat.size_diff)


class _NullPhaseProbe:
    """Shared do-nothing phase probe — the unprofiled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullPhaseProbe":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None


_NULL_PROBE = _NullPhaseProbe()


class PhaseMemoryProfiler:
    """Attribute allocation deltas and sites to pipeline phases.

    Parameters
    ----------
    top_sites:
        Allocation sites kept per phase kind in the report (by absolute
        net growth).  ``0`` disables snapshot diffs entirely — phase
        deltas and peaks still record, at a fraction of the overhead.
    frames:
        Traceback depth passed to ``tracemalloc.start`` (deeper frames
        cost memory per live allocation; the report only uses the
        innermost frame, so the default stays shallow).
    """

    enabled = True

    def __init__(self, *, top_sites: int = 5, frames: int = 1) -> None:
        if top_sites < 0:
            raise ValueError("top_sites must be >= 0")
        if frames < 1:
            raise ValueError("frames must be >= 1")
        self.top_sites = top_sites
        self.frames = frames
        self._owns_tracing = False
        self._phases: dict[str, dict] = {}
        self._sites: dict[str, dict[str, int]] = {}

    # ------------------------------------------------------- lifecycle
    def start(self) -> "PhaseMemoryProfiler":
        """Begin tracing (idempotent; respects a caller's own tracing)."""
        if not tracemalloc.is_tracing():
            tracemalloc.start(self.frames)
            self._owns_tracing = True
        return self

    def stop(self) -> dict:
        """Stop tracing (if this profiler started it) and return the report."""
        if self._owns_tracing and tracemalloc.is_tracing():
            tracemalloc.stop()
        self._owns_tracing = False
        return self.report()

    def __enter__(self) -> "PhaseMemoryProfiler":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # ----------------------------------------------------------- hooks
    def phase(self, name: str, level: int | None = None) -> _PhaseProbe:
        """Measure one phase execution (use as a context manager).

        ``level`` is accepted for hook-signature symmetry with the
        guardian; attribution is by phase *kind* (levels of the same
        phase aggregate), matching how the span attribution reports.
        """
        return _PhaseProbe(self, name)

    def _record(self, name: str, *, net_bytes: int, peak_bytes: int) -> None:
        entry = self._phases.setdefault(
            name, {"calls": 0, "net_bytes": 0, "peak_bytes": 0}
        )
        entry["calls"] += 1
        entry["net_bytes"] += int(net_bytes)
        entry["peak_bytes"] = max(entry["peak_bytes"], int(peak_bytes))

    def _record_site(self, name: str, site: str, size_diff: int) -> None:
        sites = self._sites.setdefault(name, {})
        sites[site] = sites.get(site, 0) + int(size_diff)

    # ---------------------------------------------------------- report
    def report(self) -> dict:
        """The attribution block: per-phase deltas plus top-N sites."""
        phases = {}
        for name, entry in self._phases.items():
            sites = sorted(
                self._sites.get(name, {}).items(),
                key=lambda kv: (-abs(kv[1]), kv[0]),
            )[: self.top_sites]
            phases[name] = {
                **entry,
                "top_sites": [
                    {"site": site, "net_bytes": size} for site, size in sites
                ],
            }
        return {
            "tool": "tracemalloc",
            "frames": self.frames,
            "top_sites": self.top_sites,
            "phases": phases,
        }


class NullMemoryProfiler:
    """Inert profiler: no tracing, no-op probes, empty report."""

    enabled = False

    def start(self) -> "NullMemoryProfiler":
        return self

    def stop(self) -> dict:
        return {}

    def __enter__(self) -> "NullMemoryProfiler":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None

    def phase(self, name: str, level: int | None = None) -> _NullPhaseProbe:
        return _NULL_PROBE

    def report(self) -> dict:
        return {}


#: Shared inert instance (stateless, safe to reuse across runs).
NULL_MEMPROF = NullMemoryProfiler()


def as_memprof(
    memprof: "PhaseMemoryProfiler | NullMemoryProfiler | None",
) -> "PhaseMemoryProfiler | NullMemoryProfiler":
    """Normalize an optional profiler argument (``None`` -> null)."""
    return NULL_MEMPROF if memprof is None else memprof
